"""Figure 10 — per-event delay breakdown of the three engines.

Paper shape: every delay is below 4 ms (real-time for sub-kilohertz
biosignal streams); the aggregator engine has the largest delay, dominated
by wireless transfer of the raw segment plus back-end processing; the
sensor engine's wireless share is negligible (it uplinks only the result);
the cross-end engine reduces delay against both (paper: -60.8% vs A,
-15.6% vs S on average).
"""

from repro.eval.experiments import fig10_rows
from repro.eval.tables import format_table


def test_fig10_delay_breakdown(benchmark, full_context, save_table):
    rows = benchmark(fig10_rows, full_context)
    by_case = {}
    for row in rows:
        by_case.setdefault(row["case"], {})[row["engine"]] = row

    for case, engines in by_case.items():
        a, s, c = engines["A"], engines["S"], engines["C"]
        # Real-time bound of the paper.
        for row in (a, s, c):
            assert row["total_ms"] < 4.0, (case, row)
        # Aggregator engine is the slowest and wireless-dominated.
        assert a["total_ms"] >= max(s["total_ms"], c["total_ms"]), case
        assert a["wireless_ms"] > a["back_ms"], case
        assert a["front_ms"] == 0.0
        # Sensor engine barely uses the link.
        assert s["wireless_ms"] < 0.05 * a["wireless_ms"], case
        # Cross-end is never slower than either single end.
        assert c["total_ms"] <= s["total_ms"] + 1e-9, case

    avg = lambda eng, key: sum(by_case[c][eng][key] for c in by_case) / len(by_case)
    red_a = 1 - avg("C", "total_ms") / avg("A", "total_ms")
    red_s = 1 - avg("C", "total_ms") / avg("S", "total_ms")

    save_table(
        "fig10",
        format_table(
            rows,
            columns=["case", "engine", "front_ms", "wireless_ms", "back_ms", "total_ms"],
            title=(
                "Figure 10: delay breakdown (ms), 90nm/Model 2 "
                f"(cross-end delay reduction: {100 * red_a:.1f}% vs A, "
                f"{100 * red_s:.1f}% vs S; paper: 60.8% / 15.6%)"
            ),
        ),
    )
    assert red_a > 0.2
    assert red_s > 0.0
