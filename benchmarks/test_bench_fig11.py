"""Figure 11 — sensor-node energy breakdown (computation vs wireless).

Paper shape: the aggregator engine's sensor energy is purely wireless (it
transmits the whole raw segment); the sensor engine's wireless energy is
barely visible (result-only uplink); the cross-end engine has the lowest
total in every benchmark (paper: -31.7% vs the sensor engine, -56.9% vs
the aggregator engine on average).
"""

from repro.eval.experiments import fig11_rows
from repro.eval.tables import format_table


def test_fig11_energy_breakdown(benchmark, full_context, save_table):
    rows = benchmark(fig11_rows, full_context)
    by_case = {}
    for row in rows:
        by_case.setdefault(row["case"], {})[row["engine"]] = row

    for case, engines in by_case.items():
        a, s, c = engines["A"], engines["S"], engines["C"]
        assert a["compute_uj"] == 0.0
        assert a["wireless_uj"] == a["total_uj"]
        assert s["wireless_uj"] < 0.05 * a["wireless_uj"], case
        assert c["total_uj"] <= min(a["total_uj"], s["total_uj"]) + 1e-9, case

    avg = lambda eng: sum(by_case[c][eng]["total_uj"] for c in by_case) / len(by_case)
    saving_s = 1 - avg("C") / avg("S")
    saving_a = 1 - avg("C") / avg("A")

    save_table(
        "fig11",
        format_table(
            rows,
            columns=["case", "engine", "compute_uj", "wireless_uj", "total_uj"],
            title=(
                "Figure 11: sensor energy breakdown (uJ/event), 90nm/Model 2 "
                f"(cross-end saving: {100 * saving_a:.1f}% vs A, "
                f"{100 * saving_s:.1f}% vs S; paper: 56.9% / 31.7%)"
            ),
        ),
    )
    assert saving_a > 0.3
    assert saving_s > 0.1
