"""The §1 motivation study: what a pure in-sensor design gives up.

Compares the simple linear-SVM / cheap-feature classifier (all a front-end
energy budget affords, per the paper's introduction) against the full
generic classification on every test case.
"""

from repro.eval.motivation import motivation_rows
from repro.eval.tables import format_table


def test_generic_classification_beats_simple_in_sensor(
    benchmark, full_context, save_table
):
    rows = benchmark.pedantic(
        motivation_rows, args=(full_context,), rounds=1, iterations=1
    )
    # The generic framework must win on average (it is the paper's entire
    # premise), and never lose catastrophically on any single case.
    mean_gap = sum(r["gap_points"] for r in rows) / len(rows)
    assert mean_gap > 0.0
    for row in rows:
        assert row["gap_points"] > -10.0, row
    save_table(
        "motivation",
        format_table(
            rows,
            title=(
                "Motivation (paper S1): simple in-sensor linear classifier vs "
                f"generic classification (mean gap {mean_gap:.1f} points)"
            ),
        ),
    )
