"""The single green light: every qualitative paper claim at full scale.

Runs the programmatic validation suite (the same checks `python -m repro
validate` exposes) against the full-scale harness and writes the pass/fail
table.  Quantitative factor bands live in the per-figure benches; this is
the one-stop summary artifact.
"""

from repro.eval.validation_suite import summarize, validate_reproduction


def test_all_claims_hold_at_full_scale(benchmark, full_context, save_table):
    results = benchmark.pedantic(
        validate_reproduction, args=(full_context,), rounds=1, iterations=1
    )
    failures = [r for r in results if not r.passed]
    assert not failures, summarize(failures)
    save_table("validation", summarize(results))
