"""Figure 12 — battery lifetime of the four cuts.

Paper shape: the two single-end engines are the extreme cuts; the trivial
cut (feature/classifier boundary, no search) is inconsistent — sometimes
better than both, sometimes in between; the Automatic XPro Generator's cut
("Cross") achieves the best lifetime consistently in every case.
"""

from repro.eval.experiments import fig12_rows
from repro.eval.tables import format_table


def test_fig12_four_cuts(benchmark, full_context, save_table):
    rows = benchmark(fig12_rows, full_context)

    for row in rows:
        best = max(
            row["aggregator_hours"],
            row["sensor_hours"],
            row["trivial_hours"],
        )
        # The generator's cut is consistently at least as good as every
        # fixed strategy (within delay feasibility, Eq. 4).
        assert row["cross_hours"] >= 0.999 * max(
            row["aggregator_hours"], row["sensor_hours"]
        ), row
        assert row["cross_hours"] >= 0.75 * best, row

    # The trivial cut must NOT dominate everywhere (it is the "intuitive
    # but inconsistent" strawman of Section 5.5); the generator must beat
    # it for at least one case, or match it when it happens to be optimal.
    assert any(r["cross_hours"] > r["trivial_hours"] * 1.001 for r in rows) or all(
        abs(r["cross_hours"] - r["trivial_hours"]) < 1e-6 for r in rows
    )

    save_table(
        "fig12",
        format_table(
            rows,
            title="Figure 12: lifetime of four cuts (hours), 90nm/Model 2",
            float_format="{:.4g}",
        ),
    )
