"""Benchmarks of the design-space tooling beyond the paper's figures.

- Pareto frontier of the delay/energy tradeoff (the Eq. 4 limit is one
  point of a whole curve);
- silicon area of the in-sensor analytic part across process nodes (the
  synthesis-report axis the paper's ASIC flow implies);
- feature-usage profile of the trained ensembles (the §2.1 claim that
  random-subspace training finds each biosignal's favourable features).
"""

from repro.eval.feature_usage import usage_rows
from repro.eval.pareto import pareto_frontier
from repro.eval.tables import format_table
from repro.hw.area import area_report


def test_pareto_frontier(benchmark, full_context, save_table):
    generator = full_context.generator("E1", "90nm", "model2")
    frontier = benchmark(pareto_frontier, generator, 10)

    delays = [p.delay_s for p in frontier]
    energies = [p.energy_j for p in frontier]
    assert delays == sorted(delays)
    assert energies == sorted(energies, reverse=True)

    rows = [
        {
            "delay_limit_ms": p.delay_limit_s * 1e3,
            "delay_ms": p.delay_s * 1e3,
            "energy_uj": p.energy_j * 1e6,
            "in_sensor_cells": len(p.in_sensor),
        }
        for p in frontier
    ]
    save_table(
        "pareto",
        format_table(rows, title="Delay/energy Pareto frontier (E1, 90nm/Model 2)"),
    )


def test_silicon_area(benchmark, full_context, save_table):
    rows = []
    for symbol in full_context.all_cases():
        topology = full_context.topology(symbol, "90nm")
        cross = full_context.strategy_metrics(symbol, "90nm", "model2")["cross"]
        full = area_report(topology, "90nm")
        sensor_part = area_report(topology, "90nm", in_sensor=cross.in_sensor)
        assert sensor_part.area_mm2 <= full.area_mm2 + 1e-12
        # A wearable analytic die budget: single-digit mm^2.
        assert full.area_mm2 < 10.0
        rows.append(
            {
                "case": symbol,
                "full_engine_mm2": full.area_mm2,
                "in_sensor_part_mm2": sensor_part.area_mm2,
                "gate_equivalents": full.gate_equivalents,
            }
        )
    benchmark(area_report, full_context.topology("E1", "90nm"), "90nm")
    save_table(
        "silicon_area",
        format_table(rows, title="In-sensor silicon area at 90nm (estimate)"),
    )


def test_feature_usage_profile(benchmark, full_context, save_table):
    rows = []
    for symbol in full_context.all_cases():
        engine = full_context.engine(symbol)
        rows.extend(usage_rows(engine.ensemble, engine.layout, symbol))
    benchmark(
        usage_rows,
        full_context.engine("C1").ensemble,
        full_context.engine("C1").layout,
        "C1",
    )
    # Sanity: every case selects features from more than one domain — the
    # generic feature set is genuinely exercised.
    for symbol in full_context.all_cases():
        case_rows = [
            r for r in rows if r["case"] == symbol and r["domain"] != "(all DWT)"
        ]
        active = [r for r in case_rows if r["selections"] > 0]
        assert len(active) >= 2, symbol
    save_table(
        "feature_usage",
        format_table(
            rows,
            columns=["case", "domain", "selections", "share_pct"],
            title="Feature-domain usage of the trained ensembles",
        ),
    )
