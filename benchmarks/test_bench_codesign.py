"""Benchmark: algorithm/hardware co-design frontier (C2 workload).

Sweeps the classifier shape (subspace width, ensemble size) and shows the
accuracy vs sensor-lifetime tradeoff the generated cuts realise.
"""

from repro.eval.codesign import codesign_rows
from repro.eval.tables import format_table
from repro.signals.datasets import load_case


def test_codesign_frontier(benchmark, full_context, save_table):
    dataset = load_case("C2", n_segments=240)
    rows = benchmark.pedantic(
        codesign_rows, args=(dataset,), kwargs={"seed": 17}, rounds=1, iterations=1
    )
    assert len(rows) == 4
    # Structural sanity across the sweep:
    for row in rows:
        assert 0.5 <= row["accuracy"] <= 1.0
        assert row["used_features"] <= 56
        assert row["cross_energy_uj"] > 0
    # Wider subspaces touch at least as many features as narrow ones
    # (at equal draw counts and member counts).
    by_dim = {
        (r["subspace_dim"], r["n_draws"]): r["used_features"] for r in rows
    }
    if (6, 40) in by_dim and (18, 40) in by_dim:
        assert by_dim[(18, 40)] >= by_dim[(6, 40)]
    save_table(
        "codesign",
        format_table(
            rows,
            title="Co-design sweep: classifier shape vs accuracy vs lifetime "
                  "(C2, 90nm/Model 2)",
        ),
    )
