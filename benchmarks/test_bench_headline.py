"""Section 5 headline claims.

Paper: *"XPro can increase the battery life of the sensor node by 1.6-2.4X
while at the same time reducing system delay by 15.6-60.8%"* — the 2.4x /
60.8% against the in-aggregator engine and the 1.6x / 15.6% against the
in-sensor engine.

The benchmark regenerates those aggregates on the synthetic substrate and
asserts the same winners at roughly the same factors.
"""

from repro.eval.experiments import headline_summary
from repro.eval.tables import format_table


def test_headline_claims(benchmark, full_context, save_table):
    summary = benchmark(headline_summary, full_context)

    # Same winner, comparable factors (paper: 2.4x and 1.6x).
    assert 1.5 <= summary["battery_x_vs_aggregator"] <= 3.5
    assert 1.1 <= summary["battery_x_vs_sensor"] <= 2.2
    # Delay reductions positive against both single-end engines
    # (paper: 60.8% and 15.6%).
    assert 20.0 <= summary["delay_reduction_vs_aggregator_pct"] <= 80.0
    assert 0.0 < summary["delay_reduction_vs_sensor_pct"] <= 60.0

    rows = [
        {
            "metric": "battery life vs aggregator engine",
            "paper": "2.4x",
            "measured": f"{summary['battery_x_vs_aggregator']:.2f}x",
        },
        {
            "metric": "battery life vs sensor engine",
            "paper": "1.6x",
            "measured": f"{summary['battery_x_vs_sensor']:.2f}x",
        },
        {
            "metric": "delay reduction vs aggregator engine",
            "paper": "60.8%",
            "measured": f"{summary['delay_reduction_vs_aggregator_pct']:.1f}%",
        },
        {
            "metric": "delay reduction vs sensor engine",
            "paper": "15.6%",
            "measured": f"{summary['delay_reduction_vs_sensor_pct']:.1f}%",
        },
    ]
    save_table("headline", format_table(rows, title="Section 5 headline numbers"))
