"""Section 5.5 deep-dive: what the generator actually places where.

The paper inspects the generated cuts qualitatively ("the cut produced by
the generator arranges a basic SVM classifier to the sensor node and some
light-weight features onto the aggregator...").  This benchmark prints the
per-module anatomy of every generated cut, plus the uplink traffic it
induces, so the reproduction's cuts can be compared against that
discussion — and asserts the structural invariants that must hold for any
energy-rational cut.
"""

from repro.cells.render import render_cut_summary
from repro.eval.tables import format_table


def test_cut_anatomy(benchmark, full_context, save_table):
    rows = []
    summaries = []
    for symbol in full_context.all_cases():
        topology = full_context.topology(symbol, "90nm")
        cross = full_context.strategy_metrics(symbol, "90nm", "model2")["cross"]
        in_sensor = cross.in_sensor

        by_module = {}
        for name, cell in topology.cells.items():
            sides = by_module.setdefault(cell.module, [0, 0])
            sides[0 if name in in_sensor else 1] += 1

        # Structural invariants of a rational cut:
        # 1. The DWT chain never splits mid-way with a band flowing back
        #    (a band uplinked is a band whose deeper levels should follow
        #    or stay; formally: if level k is in the aggregator, level k+1
        #    is too — its input would otherwise cross twice).
        dwt_sides = [
            (int(n.split("dwt_l")[1]), n in in_sensor)
            for n in topology.cells
            if n.startswith("dwt_l")
        ]
        dwt_sides.sort()
        seen_aggregator = False
        for _level, on_sensor in dwt_sides:
            if not on_sensor:
                seen_aggregator = True
            assert not (seen_aggregator and on_sensor), (symbol, dwt_sides)
        # 2. A Std cell never sits on the opposite side of its Var producer
        #    with the Var value crossing twice... (its input is 1 scalar, so
        #    any placement is legal; assert instead that if Std is in-sensor
        #    its Var predecessor is too — receiving a scalar to sqrt it and
        #    possibly send it back can never beat computing downstream).
        for name, cell in topology.cells.items():
            if cell.module == "std" and name in in_sensor:
                (var_ref,) = cell.inputs
                assert var_ref.cell in in_sensor, (symbol, name)

        rows.append(
            {
                "case": symbol,
                "in_sensor": len(in_sensor),
                "total": len(topology),
                "svm_in_sensor": by_module.get("svm", [0, 0])[0],
                "svm_total": sum(by_module.get("svm", [0, 0])),
                "uplink_bits": cross.crossing_bits_up,
                "downlink_bits": cross.crossing_bits_down,
            }
        )
        summaries.append(
            f"--- {symbol} ---\n" + render_cut_summary(topology, in_sensor)
        )

    benchmark(
        lambda: full_context.strategy_metrics("C1", "90nm", "model2")["cross"]
    )
    save_table(
        "cut_anatomy",
        format_table(rows, title="Generated cut anatomy (90nm/Model 2)")
        + "\n\n"
        + "\n\n".join(summaries),
    )
