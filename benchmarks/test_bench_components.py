"""Microbenchmarks of the core computational components.

These are conventional pytest-benchmark timings (many rounds) of the hot
paths: DWT, feature extraction, SVM inference, the Dinic min-cut on a real
XPro s-t graph, the Automatic Generator end to end, and the cross-end
engine's per-segment classification.
"""

import numpy as np
import pytest

from repro.core.engine import CrossEndEngine
from repro.core.generator import AutomaticXProGenerator
from repro.core.layout import FeatureLayout
from repro.dsp.features import feature_vector
from repro.dsp.wavelet import dwt_multilevel
from repro.graph.stgraph import build_st_graph
from repro.hw.wireless import WirelessLink


@pytest.fixture(scope="module")
def setup(full_context):
    ctx = full_context
    symbol = "E1"
    topology = ctx.topology(symbol, "90nm")
    lib = ctx.energy_library("90nm")
    link = WirelessLink("model2")
    generator = AutomaticXProGenerator(topology, lib, link, ctx.cpu)
    return ctx, symbol, topology, lib, link, generator


def test_dwt_multilevel_128(benchmark):
    segment = np.random.default_rng(0).normal(size=128)
    bands = benchmark(dwt_multilevel, segment, 5)
    assert len(bands) == 6


def test_feature_vector_128(benchmark):
    segment = np.random.default_rng(0).normal(size=128)
    vec = benchmark(feature_vector, segment)
    assert vec.shape == (8,)


def test_full_feature_layout_extract(benchmark):
    layout = FeatureLayout(segment_length=128)
    segment = np.random.default_rng(0).normal(size=128)
    vec = benchmark(layout.extract, segment)
    assert vec.shape == (56,)


def test_ensemble_inference(benchmark, setup):
    ctx, symbol, *_ = setup
    engine = ctx.engine(symbol)
    segment = np.random.default_rng(0).normal(size=128)
    pred = benchmark(engine.predict_segment, segment)
    assert pred in (0, 1)


def test_st_graph_construction(benchmark, setup):
    _, _, topology, lib, link, _ = setup
    graph = benchmark(build_st_graph, topology, lib, link)
    assert len(graph.compute_energy) == len(topology)


def test_min_cut_solve(benchmark, setup):
    _, _, topology, lib, link, _ = setup

    def build_and_solve():
        return build_st_graph(topology, lib, link).solve()

    in_sensor, capacity = benchmark(build_and_solve)
    assert capacity > 0


def test_generator_end_to_end(benchmark, setup):
    *_, generator = setup
    result = benchmark(generator.generate)
    assert result.metrics.sensor_total_j > 0


def test_cross_end_classification(benchmark, setup):
    _, _, topology, _, _, generator = setup
    engine = CrossEndEngine(topology, generator.generate().partition)
    segment = np.random.default_rng(0).normal(size=topology.segment_length)
    result = benchmark(engine.classify, segment)
    assert result.prediction in (0, 1)
