"""Figure 4 — energy characterisation of the three ALU modes per module.

Paper shape: serial is the energy-optimal ("red star") mode for most
modules, Std and DWT prefer pipeline, and the parallel DWT sits orders of
magnitude above serial (a monotonic parallel matrix multiply needs a large
number of simultaneous multipliers).
"""

from repro.eval.experiments import fig4_rows
from repro.eval.tables import format_table


def test_fig4_mode_characterization(benchmark, full_context, save_table):
    rows = benchmark(fig4_rows, full_context)
    by_module = {r["module"]: r for r in rows}

    # Paper shape assertions.
    for module in ("max", "min", "mean", "var", "czero", "skew", "kurt",
                   "svm", "fusion"):
        assert by_module[module]["best_mode"] == "serial", module
    assert by_module["std"]["best_mode"] == "pipeline"
    assert by_module["dwt"]["best_mode"] == "pipeline"
    assert by_module["dwt"]["parallel"] > 30 * by_module["dwt"]["serial"]

    save_table(
        "fig4",
        format_table(
            rows,
            columns=["module", "serial", "parallel", "pipeline", "best_mode"],
            title="Figure 4: ALU-mode energy per event (pJ), 90nm",
        ),
    )
