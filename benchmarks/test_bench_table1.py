"""Table 1 — attributes of the six biosignal test cases.

Regenerates the dataset attribute table and verifies the synthetic datasets
actually realise those attributes (segment lengths and counts).
"""

from repro.eval.experiments import table1_rows
from repro.eval.tables import format_table
from repro.signals.datasets import load_case


def test_table1(benchmark, save_table):
    rows = benchmark(table1_rows)
    assert [r["symbol"] for r in rows] == ["C1", "C2", "E1", "E2", "M1", "M2"]
    # The generated datasets must realise the printed attributes.
    for row in rows:
        ds = load_case(str(row["symbol"]), n_segments=16)
        assert ds.segment_length == row["segment_length"]
    save_table("table1", format_table(rows, title="Table 1: dataset attributes"))
