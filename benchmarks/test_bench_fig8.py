"""Figure 8 — sensor battery life vs process technology (wireless Model 2).

Paper shape: normalised to the aggregator engine, the cross-end engine wins
at every node; at 130 nm the two single-end engines are comparable, while
at 90/45 nm shrinking computation energy pulls the sensor engine ahead of
the aggregator engine.  Headline: ~2.4x over the aggregator engine and
~1.6x over the sensor engine on average.
"""

import math

from repro.eval.experiments import fig8_rows
from repro.eval.tables import format_table


def _gmean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_fig8_battery_vs_process_node(benchmark, full_context, save_table):
    rows = benchmark(fig8_rows, full_context)

    by_node = {}
    for row in rows:
        by_node.setdefault(row["node"], []).append(row)

    # Cross-end never loses to the aggregator baseline, at any node.
    for row in rows:
        assert row["cross_norm"] >= 1.0 - 1e-9, row

    # 130nm: single-end engines comparable (within ~2x of each other).
    for row in by_node["130nm"]:
        assert 0.4 < row["sensor_norm"] < 2.5, row

    # 90nm and 45nm: sensor engine ahead of the aggregator engine for most
    # cases, and further ahead at 45nm than at 90nm (computation scaling).
    for node in ("90nm", "45nm"):
        ahead = [r for r in by_node[node] if r["sensor_norm"] > 1.0]
        assert len(ahead) >= 5, node
    for r90, r45 in zip(by_node["90nm"], by_node["45nm"]):
        assert r45["sensor_norm"] > r90["sensor_norm"]

    gain_vs_aggregator = _gmean([r["cross_norm"] for r in rows])
    gain_vs_sensor = _gmean([r["cross_norm"] / r["sensor_norm"] for r in rows])
    # Paper: 2.4x / 1.6x.  Accept the same "who wins by roughly what
    # factor" band on the synthetic substrate.
    assert 1.5 <= gain_vs_aggregator <= 3.5
    assert 1.1 <= gain_vs_sensor <= 2.2

    save_table(
        "fig8",
        format_table(
            rows,
            columns=["node", "case", "aggregator_norm", "sensor_norm", "cross_norm"],
            title=(
                "Figure 8: battery life vs process node, Model 2 "
                f"(gmean cross-end gain: {gain_vs_aggregator:.2f}x vs A, "
                f"{gain_vs_sensor:.2f}x vs S; paper: 2.4x / 1.6x)"
            ),
        ),
    )
