"""Figure 9 — sensor battery life vs wireless model (90 nm).

Paper shape: under the high-energy Model 1 radio the sensor engine beats
the aggregator engine decisively; under the ultra-low-power Model 3 the
ordering *reverses* (transmitting raw data becomes cheap); the cross-end
engine has the longest lifetime under every model.
"""

from repro.eval.experiments import fig9_rows
from repro.eval.tables import format_table


def test_fig9_battery_vs_wireless_model(benchmark, full_context, save_table):
    rows = benchmark(fig9_rows, full_context)
    by_model = {}
    for row in rows:
        by_model.setdefault(row["wireless"], []).append(row)

    # Model 1: expensive radio -> sensor engine far ahead of aggregator.
    for row in by_model["model1"]:
        assert row["sensor_norm"] > 1.3 * row["aggregator_norm"], row

    # Model 3: cheap radio -> ordering reverses for every case (the paper's
    # "the aggregator engine reserves the trend": +74.6% over sensor).
    for row in by_model["model3"]:
        assert row["aggregator_norm"] > row["sensor_norm"], row

    # Cross-end achieves the best lifetime across the 3 models x 6 cases.
    for row in rows:
        best_single = max(row["aggregator_norm"], row["sensor_norm"])
        assert row["cross_norm"] >= best_single - 1e-9, row

    save_table(
        "fig9",
        format_table(
            rows,
            columns=["wireless", "case", "aggregator_norm", "sensor_norm", "cross_norm"],
            title="Figure 9: battery life vs wireless model, 90nm "
                  "(normalised to aggregator engine under Model 1)",
        ),
    )
