"""Scalar-vs-batch performance benchmark and regression gate.

Times the vectorized hot paths against their scalar references — feature
extraction, multi-level DWT, ensemble inference, the end-to-end segment
pipeline, the warm-started generator fast path, the batch wire data
plane (framing/CRC/Q16.16 codec), the struct-of-arrays fleet engine
(vs its per-object scalar twin), the struct-of-arrays multi-stream
ingestion engine (vs its per-stream scalar twin) and the fold-sliced
subspace training fast path (vs the pinned reference SMO protocol) —
and writes the machine-readable report to
``benchmarks/results/BENCH_perf.json`` (``results-fast/`` under
``XPRO_BENCH_FAST=1``).  See ``docs/PERFORMANCE.md`` for the report
schema and the gate semantics.

The regression gate compares the fresh report against the committed
baseline: any tracked speedup ratio falling more than 25% below the
baseline's gate floor fails.  Ratios of two timings on the same machine
are compared (never absolute throughput), so the gate is portable across
runner hardware.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.eval.perf import (
    SCHEMA,
    collect_perf_report,
    compare_reports,
    load_perf_report,
    perf_rows,
    write_perf_report,
)
from repro.eval.tables import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
FAST_MODE = os.environ.get("XPRO_BENCH_FAST", "") not in ("", "0")

#: The committed full-mode baseline the gate compares against.
BASELINE_PATH = RESULTS_DIR / "BENCH_perf.json"


@pytest.fixture(scope="module")
def perf_report():
    """One benchmark sweep per session, written to the results directory."""
    report = collect_perf_report(fast=FAST_MODE)
    out_dir = RESULTS_DIR.with_name("results-fast") if FAST_MODE else RESULTS_DIR
    out_dir.mkdir(exist_ok=True)
    write_perf_report(report, out_dir / "BENCH_perf.json")
    return report


def test_report_schema(perf_report, save_table):
    assert perf_report["schema"] == SCHEMA
    assert perf_report["tracked"], "no tracked metrics collected"
    for name in perf_report["tracked"]:
        assert name in perf_report["metrics"]
        assert name in perf_report["gate"]
    save_table("perf", format_table(perf_rows(perf_report), title="Batch speedups"))


def test_batch_paths_equivalent(perf_report):
    """Every timed batch path must agree with its scalar reference."""
    disagreements = [
        name
        for name, case in perf_report["cases"].items()
        if not case["equivalent"]
    ]
    assert not disagreements, f"scalar/batch mismatch in: {disagreements}"


def test_extraction_speedup_floor(perf_report):
    """Acceptance: >= 5x batch feature extraction at 256 segments."""
    case = perf_report["cases"]["extraction"]
    assert case["n_items"] >= 256
    assert case["speedup"] >= 5.0, f"extraction speedup {case['speedup']:.2f} < 5"


def test_generator_speedup_floor(perf_report):
    """Acceptance: >= 5x delay-constrained generate() on the warm fast path.

    The generator stage runs a delay-limit ladder that forces the full
    Lagrangian bisection at every point; the warm path shares one s-t
    graph template, residual warm starts and the evaluation memo across
    the ladder, vs a cold rebuild-per-solve generator.
    """
    case = perf_report["cases"]["generator"]
    assert case["equivalent"], "warm and cold generator paths disagreed"
    assert case["speedup"] >= 5.0, f"generator speedup {case['speedup']:.2f} < 5"


def test_wire_speedup_floor(perf_report):
    """Acceptance: >= 8x on the batch wire data plane at 512 payloads.

    The wire case's equivalence flag also covers the seeded
    scalar-vs-fast campaign replay, so this floor doubles as the
    bit-identity acceptance check for the campaign fast path.
    """
    case = perf_report["cases"]["wire"]
    assert case["n_items"] >= 512
    assert case["equivalent"], "batch wire plane diverged from the scalar path"
    assert case["speedup"] >= 8.0, f"wire speedup {case['speedup']:.2f} < 8"


def test_fleet_speedup_floor(perf_report):
    """Acceptance: >= 8x struct-of-arrays fleet engine over the scalar twin.

    Both paths run single-core, so the ratio is portable across runner
    hardware (unlike the retired absolute networks-per-second floor).
    The equivalence flag asserts full bit-identity — counters, energies,
    latencies, NaN-sentinel availability and final channel states — via
    ``fleet_results_identical``, under the shared per-network RNG
    draw-order contract.  Full mode sizes the fleet at 10^4 devices.
    """
    case = perf_report["cases"].get("fleet")
    if case is None:
        pytest.skip("fleet stage not collected in this run")
    assert case["equivalent"], "SoA fleet engine diverged from the scalar twin"
    if not FAST_MODE:
        assert case["n_items"] >= 10_000
    assert case["speedup"] >= 8.0, f"fleet speedup {case['speedup']:.2f} < 8"


def test_streaming_speedup_floor(perf_report):
    """Acceptance: >= 8x SoA multi-stream engine over the scalar twin.

    Full mode runs >= 1000 concurrent streams on a heterogeneous
    window/hop grid.  The equivalence flag asserts full bit-identity —
    per-window scores, decisions, window sequencing and every
    backpressure/rejection counter — via ``stream_results_identical``,
    and the case carries p50/p99 per-window tick-latency extras in the
    written report.
    """
    case = perf_report["cases"].get("streaming")
    if case is None:
        pytest.skip("streaming stage not collected in this run")
    assert case["equivalent"], "SoA stream engine diverged from the scalar twin"
    assert case["p50_window_latency_ms"] > 0.0
    assert case["p99_window_latency_ms"] >= case["p50_window_latency_ms"]
    if not FAST_MODE:
        assert case["n_streams"] >= 1000
        assert case["speedup"] >= 8.0, (
            f"streaming speedup {case['speedup']:.2f} < 8"
        )


def test_training_speedup_floor(perf_report):
    """Acceptance: >= 5x fold-sliced training fast path at paper scale.

    Full mode runs the §4.4 protocol end to end — 100 subspace draws ×
    10-fold CV plus final refits — on the C1 case; fast mode trims the
    draw count but keeps the per-draw work, so the ratio carries.  The
    equivalence flag asserts decision-identical ensembles (same retained
    subsets, bitwise-equal dual coefficients/biases, same
    ``used_feature_indices``, identical predictions), in full mode
    across all six Table-1 cases.
    """
    case = perf_report["cases"].get("training")
    if case is None:
        pytest.skip("training stage not collected in this run")
    assert case["equivalent"], "fast training path diverged from the reference"
    assert case["cv_folds"] >= 10
    if not FAST_MODE:
        assert case["n_items"] >= 100
        assert case["cases_checked"] >= 6
    assert case["speedup"] >= 5.0, f"training speedup {case['speedup']:.2f} < 5"


def test_regression_gate(perf_report):
    """Fresh tracked ratios must stay within 25% of the committed baseline."""
    if not BASELINE_PATH.exists():
        pytest.skip("no committed baseline yet (benchmarks/results/BENCH_perf.json)")
    baseline = load_perf_report(BASELINE_PATH)
    failures = compare_reports(perf_report, baseline)
    assert not failures, "perf regression gate failed:\n" + "\n".join(failures)
