"""Fleet supervision benchmark: breaker economics, quarantine, resume.

Runs the supervision stage against the C1 case and asserts the
paper-level acceptance criteria of the supervision tier:

- the link circuit breaker **strictly reduces wasted retry radio
  energy** under the flapping-link mix *without* reducing decision
  availability (the graceful-degradation cache serves blocked events);
- the fleet supervisor **quarantines** the flapping device and walks it
  back through recovery/probation on clean rounds;
- an interrupted campaign **resumes bit-identically** to the
  uninterrupted run on both the fast and the scalar runner.

The machine-readable summary lands in
``benchmarks/results/BENCH_supervision.json`` (``results-fast/`` under
``XPRO_BENCH_FAST=1``); CI smoke runs the same gate via
``python -m repro supervision --smoke``.  See ``docs/SUPERVISION.md``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.eval.supervision import (
    SCENARIOS,
    SUMMARY_SCHEMA,
    check_supervision_gate,
    fleet_rows,
    load_supervision_summary,
    supervision_eval,
    supervision_rows,
    write_supervision_summary,
)
from repro.eval.tables import format_table
from repro.sim.supervise import HEALTHY, RECOVERING

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
FAST_MODE = os.environ.get("XPRO_BENCH_FAST", "") not in ("", "0")


@pytest.fixture(scope="module")
def supervision_summary(full_context):
    """One supervision stage per session, summary written out."""
    out_dir = RESULTS_DIR.with_name("results-fast") if FAST_MODE else RESULTS_DIR
    out_dir.mkdir(exist_ok=True)
    if FAST_MODE:
        events, devices, round_events = 240, 3, 80
    else:
        events, devices, round_events = 800, 4, 150
    summary = supervision_eval(
        full_context,
        symbol="C1",
        n_events=events,
        seed=11,
        devices=devices,
        rounds=6,
        round_events=round_events,
    )
    write_supervision_summary(summary, out_dir / "BENCH_supervision.json")
    return summary


def test_summary_schema_and_roundtrip(supervision_summary, save_table):
    assert supervision_summary["schema"] == SUMMARY_SCHEMA
    out_dir = RESULTS_DIR.with_name("results-fast") if FAST_MODE else RESULTS_DIR
    loaded = load_supervision_summary(out_dir / "BENCH_supervision.json")
    assert loaded == supervision_summary
    save_table(
        "supervision",
        format_table(
            supervision_rows(supervision_summary),
            title="Circuit breaker under the flapping-link mix (C1)",
            float_format="{:.4g}",
        )
        + "\n\n"
        + format_table(
            fleet_rows(supervision_summary),
            title="Fleet supervision: final device states",
        ),
    )


def test_breaker_strictly_reduces_wasted_energy(supervision_summary):
    """Acceptance: less wasted retry radio energy with the breaker on."""
    rows = {row["scenario"]: row for row in supervision_rows(supervision_summary)}
    off, on = rows[SCENARIOS[0]], rows[SCENARIOS[1]]
    assert on["wasted_radio_uj"] < off["wasted_radio_uj"]
    assert on["blocked_events"] > 0 and on["opens"] > 0
    assert supervision_summary["wasted_radio_saved_uj"] > 0
    assert supervision_summary["breaker_saves_energy"] is True


def test_breaker_preserves_availability(supervision_summary):
    """Acceptance: the breaker must not cost decision availability."""
    rows = {row["scenario"]: row for row in supervision_rows(supervision_summary)}
    off, on = rows[SCENARIOS[0]], rows[SCENARIOS[1]]
    assert on["availability_pct"] >= off["availability_pct"] - 1e-9
    assert supervision_summary["availability_preserved"] is True


def test_fleet_quarantines_and_recovers_sick_device(supervision_summary):
    """The flapping device is quarantined, rested and rehabilitated."""
    fleet = supervision_summary["fleet"]
    assert fleet["sick_quarantines"] >= 1
    assert fleet["sick_rest_rounds"] >= 1
    assert fleet["sick_final_state"] in (HEALTHY, RECOVERING)
    healthy_peers = [
        name
        for name, state in fleet["final_states"].items()
        if name != fleet["sick_device"]
    ]
    assert all(fleet["final_states"][n] == HEALTHY for n in healthy_peers)
    # The sick device was unscheduled while quarantined.
    quarantined_rounds = [
        h for h in fleet["history"] if fleet["sick_device"] not in h["scheduled"]
    ]
    assert len(quarantined_rounds) == fleet["sick_rest_rounds"]


def test_resume_is_bit_identical_on_both_runners(supervision_summary):
    """Acceptance: interrupt + resume reproduces the reference reports."""
    resume = supervision_summary["resume"]
    assert resume is not None
    assert resume["runners_identical"] is True
    for runner in ("fast", "scalar"):
        block = resume["runners"][runner]
        assert block["bit_identical"] is True
        assert block["reference_digest"] == block["resumed_digest"]
    assert supervision_summary["resume_bit_identical"] is True


def test_supervision_gate_passes(supervision_summary):
    """The CI gate itself must accept the fresh summary."""
    check_supervision_gate(supervision_summary)
