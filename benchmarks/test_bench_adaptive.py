"""Benchmark: the adaptive partition controller under a drifting channel.

Quantifies the value of runtime re-partitioning: a wearable whose channel
degrades from 2% to 50% payload loss, comparing

- the **static** deployment (the clean-channel cut, kept forever),
- the **adaptive** controller (re-cut when the loss estimate drifts),
- the **oracle** (the optimal cut for the true loss at every phase).

The controller must recover most of the static-vs-oracle gap.
"""

import numpy as np

from repro.core.adaptive import AdaptivePartitionController
from repro.core.generator import AutomaticXProGenerator
from repro.eval.tables import format_table
from repro.hw.wireless import WirelessLink
from repro.sim.evaluate import evaluate_partition


def test_adaptive_controller_recovers_oracle_gap(
    benchmark, full_context, save_table
):
    topology = full_context.topology("E1", "90nm")
    lib = full_context.energy_library("90nm")
    cpu = full_context.cpu

    def energy_at(partition, loss):
        return evaluate_partition(
            topology, partition.in_sensor, lib, WirelessLink("model2", loss), cpu
        ).sensor_total_j

    clean_gen = AutomaticXProGenerator(topology, lib, WirelessLink("model2"), cpu)
    static = clean_gen.generate().partition

    phases = [(0.02, 400), (0.5, 600), (0.05, 400)]
    rng = np.random.default_rng(11)

    def run_adaptive():
        ctrl = AdaptivePartitionController(
            clean_gen, recheck_interval=100, min_improvement=0.01,
            switch_cost_j=20e-6,
        )
        energy = 0.0
        for loss, n_events in phases:
            for _ in range(n_events):
                ctrl.observe_event(bool(rng.random() < loss))
                energy += energy_at(ctrl.current, loss)
        return ctrl, energy

    ctrl, adaptive_energy = benchmark.pedantic(
        run_adaptive, rounds=1, iterations=1
    )

    static_energy = sum(
        n * energy_at(static, loss) for loss, n in phases
    )
    oracle_energy = 0.0
    for loss, n_events in phases:
        oracle_gen = AutomaticXProGenerator(
            topology, lib, WirelessLink("model2", loss), cpu
        )
        oracle = oracle_gen.generate().partition
        oracle_energy += n_events * energy_at(oracle, loss)

    # Oracle <= adaptive <= static (allowing estimator lag slack).
    assert oracle_energy <= adaptive_energy * (1 + 1e-9)
    assert adaptive_energy <= static_energy * (1 + 1e-9)
    gap_recovered = (
        (static_energy - adaptive_energy) / (static_energy - oracle_energy)
        if static_energy > oracle_energy
        else 1.0
    )
    assert gap_recovered > 0.3  # recovers a meaningful share of the gap

    rows = [
        {"policy": "static (clean-channel cut)", "total_energy_mj": static_energy * 1e3},
        {"policy": "adaptive controller", "total_energy_mj": adaptive_energy * 1e3},
        {"policy": "oracle (per-phase optimum)", "total_energy_mj": oracle_energy * 1e3},
        {"policy": "gap recovered", "total_energy_mj": gap_recovered},
    ]
    save_table(
        "adaptive_controller",
        format_table(
            rows,
            title=(
                "Adaptive re-partitioning under channel drift (E1; "
                f"{sum(e.switched for e in ctrl.history)} switches)"
            ),
        ),
    )
