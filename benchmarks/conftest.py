"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper's evaluation
at full harness scale (360-segment datasets, the paper's 100-draw random
subspace protocol).  Training the six classifiers takes a minute or two of
pure Python and happens exactly once per session, inside the
``full_context`` fixture, so the timed sections measure the XPro machinery
(topology construction, s-t graphs, min-cuts, evaluation) rather than SMO.

Every benchmark writes its regenerated table to ``benchmarks/results/`` so
the paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from a
single run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval.context import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def full_context():
    """The full-scale experiment context, with all six cases pre-trained."""
    ctx = ExperimentContext()
    for symbol in ctx.all_cases():
        ctx.engine(symbol)
    return ctx


@pytest.fixture(scope="session")
def save_table():
    """Callable writing a rendered table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _save
