"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper's evaluation
at full harness scale (360-segment datasets, the paper's 100-draw random
subspace protocol).  Training the six classifiers takes a minute or two of
pure Python and happens exactly once per session, inside the
``full_context`` fixture, so the timed sections measure the XPro machinery
(topology construction, s-t graphs, min-cuts, evaluation) rather than SMO.

Every benchmark writes its regenerated table to ``benchmarks/results/`` so
the paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from a
single run.

Setting ``XPRO_BENCH_FAST=1`` shrinks the training scale (fewer segments
and subspace draws) for CI smoke runs.  The fault/integrity campaigns keep
their full event counts and seeds, so the resilience assertions still
exercise the real machinery — only the classifier training is reduced, and
the regenerated tables are NOT paper-comparable in fast mode.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.pipeline import TrainingConfig
from repro.eval.context import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FAST_MODE = os.environ.get("XPRO_BENCH_FAST", "") not in ("", "0")


@pytest.fixture(scope="session")
def full_context():
    """The full-scale experiment context, with all six cases pre-trained.

    Under ``XPRO_BENCH_FAST=1`` the context trains at smoke scale instead
    (60 segments, 10 draws) so CI can exercise the benchmark paths in
    seconds rather than minutes.
    """
    if FAST_MODE:
        ctx = ExperimentContext(
            n_segments=60, training=TrainingConfig(n_draws=10)
        )
    else:
        ctx = ExperimentContext()
    for symbol in ctx.all_cases():
        ctx.engine(symbol)
    return ctx


@pytest.fixture(scope="session")
def save_table():
    """Callable writing a rendered table to benchmarks/results/<name>.txt.

    Fast-mode runs write to ``benchmarks/results-fast/`` instead, so a CI
    smoke run never clobbers the committed full-scale tables.
    """
    out_dir = RESULTS_DIR.with_name("results-fast") if FAST_MODE else RESULTS_DIR
    out_dir.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (out_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _save
