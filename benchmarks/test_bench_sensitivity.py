"""Robustness of the reproduced conclusions to the calibration constant.

DESIGN.md documents a single calibrated constant (`DEFAULT_CALIBRATION`,
the computation-energy multiplier anchored to the paper's 130 nm
crossover).  A reproduction whose conclusions only hold at one magic value
would be fragile; this benchmark sweeps the constant across a 4x range and
asserts the qualitative claims survive:

- the cross-end cut is never worse than the feasible single-end engines;
- the Fig. 9 Model-1 vs Model-3 ordering flip persists;
- the cross-end advantage over the aggregator engine stays material.
"""

from repro.core.generator import AutomaticXProGenerator
from repro.eval.tables import format_table
from repro.graph.cuts import aggregator_cut, sensor_cut
from repro.hw.energy import EnergyLibrary
from repro.hw.wireless import WirelessLink
from repro.sim.evaluate import evaluate_partition


def test_calibration_sensitivity(benchmark, full_context, save_table):
    engine = full_context.engine("E1")
    cpu = full_context.cpu
    rows = []
    for calibration in (0.5, 0.95, 2.0):
        lib = EnergyLibrary("90nm", calibration=calibration)
        topology = engine.build_topology(lib)

        def _metrics(link_name, in_sensor=None):
            link = WirelessLink(link_name)
            if in_sensor is None:
                gen = AutomaticXProGenerator(topology, lib, link, cpu)
                return gen.generate().metrics
            return evaluate_partition(topology, in_sensor, lib, link, cpu)

        cross = _metrics("model2")
        sensor = _metrics("model2", sensor_cut(topology))
        agg = _metrics("model2", aggregator_cut(topology))

        # Invariant 1: never worse than the feasible single ends.
        limit = min(sensor.delay_total_s, agg.delay_total_s) * (1 + 1e-9)
        for m in (sensor, agg):
            if m.delay_total_s <= limit:
                assert cross.sensor_total_j <= m.sensor_total_j + 1e-15

        # Invariant 2: the radio-cost ordering flip (Model 1 vs Model 3).
        s_m1 = _metrics("model1", sensor_cut(topology)).sensor_total_j
        a_m1 = _metrics("model1", aggregator_cut(topology)).sensor_total_j
        s_m3 = _metrics("model3", sensor_cut(topology)).sensor_total_j
        a_m3 = _metrics("model3", aggregator_cut(topology)).sensor_total_j
        assert s_m1 < a_m1  # expensive radio: in-sensor wins
        assert a_m3 < s_m3  # cheap radio: in-aggregator wins

        rows.append(
            {
                "calibration": calibration,
                "cross_uj": cross.sensor_total_j * 1e6,
                "sensor_uj": sensor.sensor_total_j * 1e6,
                "aggregator_uj": agg.sensor_total_j * 1e6,
                "gain_vs_aggregator": agg.sensor_total_j / cross.sensor_total_j,
            }
        )
        # Invariant 3: material advantage over raw streaming at every scale.
        assert rows[-1]["gain_vs_aggregator"] > 1.3

    lib = EnergyLibrary("90nm", calibration=0.95)
    topology = engine.build_topology(lib)
    gen = AutomaticXProGenerator(topology, lib, WirelessLink("model2"), cpu)
    benchmark(gen.generate)

    save_table(
        "calibration_sensitivity",
        format_table(
            rows,
            title="Sensitivity: conclusions across a 4x calibration range (E1, 90nm)",
        ),
    )
