"""Benchmark: the min-cut generator vs conventional heuristic search.

Section 5.5 claims the generator's cuts "are difficult to search through
conventional heuristic algorithms".  This benchmark runs greedy steepest
descent and simulated annealing against the min-cut on every test case and
reports the energy gap and the wall-clock cost of each search.

Also includes the channel-loss sensitivity study for the lossy-link
extension: as the loss rate rises, the optimal cut retreats into the
sensor and the cross-end advantage over the aggregator engine grows.
"""

import time

from repro.core.generator import AutomaticXProGenerator
from repro.core.heuristics import greedy_descent, simulated_annealing
from repro.eval.tables import format_table
from repro.hw.wireless import WirelessLink


def test_heuristic_vs_min_cut(benchmark, full_context, save_table):
    lib = full_context.energy_library("90nm")
    link = WirelessLink("model2")
    rows = []
    for symbol in full_context.all_cases():
        topology = full_context.topology(symbol, "90nm")
        generator = AutomaticXProGenerator(topology, lib, link, full_context.cpu)

        t0 = time.perf_counter()
        optimal = generator.evaluate(generator.min_cut_partition().in_sensor)
        t_mincut = time.perf_counter() - t0

        t0 = time.perf_counter()
        greedy = generator.evaluate(
            greedy_descent(topology, lib, link, full_context.cpu)
        )
        t_greedy = time.perf_counter() - t0

        t0 = time.perf_counter()
        annealed = generator.evaluate(
            simulated_annealing(
                topology, lib, link, full_context.cpu, n_steps=400, seed=2
            )
        )
        t_sa = time.perf_counter() - t0

        assert optimal.sensor_total_j <= greedy.sensor_total_j + 1e-15
        assert optimal.sensor_total_j <= annealed.sensor_total_j + 1e-15
        rows.append(
            {
                "case": symbol,
                "mincut_uj": optimal.sensor_total_j * 1e6,
                "greedy_uj": greedy.sensor_total_j * 1e6,
                "anneal_uj": annealed.sensor_total_j * 1e6,
                "mincut_ms": t_mincut * 1e3,
                "greedy_ms": t_greedy * 1e3,
                "anneal_ms": t_sa * 1e3,
            }
        )

    # Time one representative min-cut for the benchmark statistics.
    topology = full_context.topology("E1", "90nm")
    generator = AutomaticXProGenerator(topology, lib, link, full_context.cpu)
    benchmark(lambda: generator.min_cut_partition())

    save_table(
        "heuristics",
        format_table(
            rows,
            title="Min-cut generator vs heuristic search (90nm/Model 2)",
        ),
    )


def test_loss_sensitivity(benchmark, full_context, save_table):
    """Channel-loss extension: cut migration and lifetime impact."""
    lib = full_context.energy_library("90nm")
    topology = full_context.topology("E1", "90nm")
    rows = []
    for loss in (0.0, 0.1, 0.3, 0.5):
        link = WirelessLink("model2", loss_rate=loss)
        generator = AutomaticXProGenerator(topology, lib, link, full_context.cpu)
        result = generator.generate()
        refs = generator.reference_metrics()
        rows.append(
            {
                "loss_rate": loss,
                "in_sensor_cells": len(result.partition.in_sensor),
                "cross_uj": result.metrics.sensor_total_j * 1e6,
                "aggregator_uj": refs["aggregator"].sensor_total_j * 1e6,
                "gain_vs_aggregator": refs["aggregator"].sensor_total_j
                / result.metrics.sensor_total_j,
            }
        )
    # The aggregator engine pays retries on the full raw stream, so the
    # cross-end advantage grows with loss.
    assert rows[-1]["gain_vs_aggregator"] >= rows[0]["gain_vs_aggregator"]
    # And the optimal cut never shrinks its in-sensor part as loss rises.
    sizes = [r["in_sensor_cells"] for r in rows]
    assert sizes == sorted(sizes)

    link = WirelessLink("model2", loss_rate=0.3)
    generator = AutomaticXProGenerator(topology, lib, link, full_context.cpu)
    benchmark(generator.generate)

    save_table(
        "loss_sensitivity",
        format_table(rows, title="Extension: channel loss sensitivity (E1, 90nm)"),
    )
