"""Scalability of the Automatic Generator with topology size.

The paper claims polynomial-time partitioning; this benchmark builds
synthetic topologies far larger than any real XPro instance (up to ~400
cells: many parallel feature banks feeding layered classifiers) and
measures the min-cut solve time, asserting it stays in interactive
territory and that the solved cuts remain optimal against the evaluator's
reference cuts.
"""

import time

import numpy as np

from repro.cells.cell import SOURCE_CELL, FunctionalCell, OutputPort, PortRef
from repro.cells.topology import CellTopology
from repro.core.generator import AutomaticXProGenerator
from repro.eval.tables import format_table
from repro.hw.energy import ALUMode, EnergyLibrary
from repro.hw.wireless import WirelessLink


def _synthetic_topology(n_banks: int, bank_width: int, seed: int = 0) -> CellTopology:
    """``n_banks`` parallel feature banks feeding a classifier layer."""
    rng = np.random.default_rng(seed)
    cells = []
    classifier_inputs = []
    for b in range(n_banks):
        for w in range(bank_width):
            name = f"f{b}_{w}"
            ops = {
                "add": int(rng.integers(50, 400)),
                "mul": int(rng.integers(10, 200)),
            }
            cells.append(
                FunctionalCell(
                    name=name,
                    module="feature",
                    op_counts=ops,
                    mode=ALUMode.SERIAL,
                    inputs=(PortRef(SOURCE_CELL),),
                    outputs=(OutputPort("out", 1, 8),),
                    compute=lambda arrays: {"out": np.zeros(1)},
                )
            )
            classifier_inputs.append(PortRef(name, "out"))
    # A layer of classifiers, each over a random slice of features.
    clf_refs = []
    for c in range(max(2, n_banks // 2)):
        take = rng.choice(len(classifier_inputs), size=min(8, len(classifier_inputs)), replace=False)
        name = f"clf{c}"
        cells.append(
            FunctionalCell(
                name=name,
                module="svm",
                op_counts={"mul": int(rng.integers(500, 4000)), "super": 20},
                mode=ALUMode.SERIAL,
                inputs=tuple(classifier_inputs[int(i)] for i in take),
                outputs=(OutputPort("out", 1, 8),),
                compute=lambda arrays: {"out": np.zeros(1)},
            )
        )
        clf_refs.append(PortRef(name, "out"))
    cells.append(
        FunctionalCell(
            name="fusion",
            module="fusion",
            op_counts={"mul": len(clf_refs), "add": len(clf_refs)},
            mode=ALUMode.SERIAL,
            inputs=tuple(clf_refs),
            outputs=(OutputPort("out", 1, 8),),
            compute=lambda arrays: {"out": np.zeros(1)},
        )
    )
    return CellTopology(128, cells, PortRef("fusion", "out"))


def test_generator_scales_to_large_topologies(benchmark, save_table):
    lib = EnergyLibrary("90nm")
    link = WirelessLink("model2")
    from repro.hw.aggregator import AggregatorCPU

    cpu = AggregatorCPU()
    rows = []
    for n_banks, width in ((4, 4), (8, 8), (16, 12), (24, 16)):
        topology = _synthetic_topology(n_banks, width)
        generator = AutomaticXProGenerator(topology, lib, link, cpu)
        t0 = time.perf_counter()
        partition = generator.min_cut_partition()
        solve_ms = (time.perf_counter() - t0) * 1e3
        metrics = generator.evaluate(partition.in_sensor)
        refs = generator.reference_metrics()
        assert metrics.sensor_total_j <= min(
            m.sensor_total_j for m in refs.values()
        ) + 1e-15
        rows.append(
            {
                "cells": len(topology),
                "solve_ms": solve_ms,
                "in_sensor": len(partition.in_sensor),
                "energy_uj": metrics.sensor_total_j * 1e6,
            }
        )
        assert solve_ms < 30_000  # interactive even at ~400 cells

    big = _synthetic_topology(16, 12)
    generator = AutomaticXProGenerator(big, lib, link, cpu)
    benchmark(generator.min_cut_partition)

    save_table(
        "scalability",
        format_table(rows, title="Min-cut solve time vs topology size"),
    )
