"""Adversarial chaos benchmark: search the fault space, emit replay bundles.

Runs the full strategist -> driver -> judge orchestration against the C1
case, asserts the paper-level acceptance criteria (the search finds a
fault mix strictly worse than every fixed seeded mix, and its worst-case
replay bundle re-runs bit-identically on both campaign runners), and
writes the machine-readable summary to
``benchmarks/results/BENCH_chaos.json`` (``results-fast/`` under
``XPRO_BENCH_FAST=1``) together with the Pareto-frontier replay bundles.

The nightly regression gate (``scripts/check_chaos_regression.py``)
compares a freshly searched summary against the committed baseline
``benchmarks/results/BENCH_chaos_baseline.json``; see ``docs/CHAOS.md``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.eval.chaos import (
    SUMMARY_SCHEMA,
    chaos_from_context,
    chaos_rows,
    compare_chaos_summaries,
    write_chaos_summary,
)
from repro.eval.tables import format_table
from repro.sim.chaos import assert_replay, load_bundle

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
FAST_MODE = os.environ.get("XPRO_BENCH_FAST", "") not in ("", "0")


@pytest.fixture(scope="module")
def chaos_summary(full_context):
    """One adversarial search per session, summary + bundles written out."""
    out_dir = RESULTS_DIR.with_name("results-fast") if FAST_MODE else RESULTS_DIR
    out_dir.mkdir(exist_ok=True)
    bundle_dir = out_dir / "chaos-bundles"
    if FAST_MODE:
        events, population, generations = 200, 4, 2
    else:
        events, population, generations = 600, 8, 4
    summary = chaos_from_context(
        full_context,
        symbol="C1",
        n_events=events,
        seed=11,
        population=population,
        generations=generations,
        bundle_dir=bundle_dir,
    )
    write_chaos_summary(summary, out_dir / "BENCH_chaos.json")
    return summary


def test_summary_schema(chaos_summary, save_table):
    assert chaos_summary["schema"] == SUMMARY_SCHEMA
    assert chaos_summary["fixed"], "no fixed-mix baselines judged"
    assert chaos_summary["frontier"], "empty Pareto frontier"
    save_table(
        "chaos",
        format_table(
            chaos_rows(chaos_summary),
            title="Adversarial chaos search (C1, worst cases found)",
            float_format="{:.4g}",
        ),
    )


def test_search_beats_every_fixed_mix(chaos_summary):
    """Acceptance: strictly worse on availability or silent corruption
    than every fixed seeded mix of the resilience/integrity evals."""
    assert chaos_summary["strictly_worse_than_fixed"] is True


def test_worst_bundle_replays_bit_identically(chaos_summary):
    """Acceptance: the worst-case bundle re-ran bit-identically on both
    the fast and the scalar campaign runner during the eval itself."""
    replay = chaos_summary["replay"]
    assert replay is not None
    assert replay["bit_identical"] is True
    assert replay["fast_digest"] == replay["scalar_digest"]


def test_emitted_bundles_load_and_replay(chaos_summary):
    """Every Pareto-frontier bundle on disk must replay to its digest."""
    paths = chaos_summary["bundle_paths"]
    assert paths, "no replay bundles were written"
    # Replaying every frontier bundle on both runners is the eval's job;
    # here one round-trip per bundle (auto runner) keeps the bench honest.
    for path in paths:
        result = assert_replay(load_bundle(path))
        assert result.matches


def test_summary_is_self_consistent(chaos_summary):
    """The summary's own axes_max must dominate its frontier rows."""
    for row in chaos_summary["frontier"]:
        assert row["unavailability_pct"] <= (
            100.0 * chaos_summary["axes_max"]["unavailability"] + 1e-9
        )
        assert row["silent_corruption_pct"] <= (
            100.0 * chaos_summary["axes_max"]["silent_corruption"] + 1e-9
        )
    assert compare_chaos_summaries(chaos_summary, chaos_summary) == []
