"""Benchmark: availability and latency under the seeded fault campaign.

Replays the standard fault mix (hard link outage + Gilbert-Elliott burst
loss + payload corruption + sensor brownout + aggregator stall) over the
C1 partition under the three resilience configurations and checks the
PR's acceptance criteria:

- the legacy unbounded ``1/(1-p)`` model diverges during the hard outage;
- bounded-retry ARQ keeps the worst-case try count and latency finite;
- graceful degradation lifts decision availability to >= 99% while the
  campaign stays bit-for-bit reproducible across runs.
"""

import math

from repro.eval.resilience import (
    SCENARIOS,
    arq_model_rows,
    resilience_reports,
    resilience_rows,
)
from repro.eval.tables import format_table

N_EVENTS = 2000
SEED = 11


def test_resilience_under_fault_campaign(benchmark, full_context, save_table):
    reports = benchmark.pedantic(
        resilience_reports,
        args=(full_context,),
        kwargs=dict(symbol="C1", n_events=N_EVENTS, seed=SEED),
        rounds=1,
        iterations=1,
    )

    legacy, bounded, degraded = (reports[label] for label in SCENARIOS)

    # The hard outage makes the unbounded expectation diverge.
    assert legacy is None

    # Bounded ARQ: finite worst case, but the outage drops decisions.
    assert bounded.worst_tries <= 4
    assert math.isfinite(bounded.max_latency_s)
    assert bounded.n_dropped > 0
    assert bounded.availability < 0.99

    # Graceful degradation restores availability past the 99% bar.
    assert degraded.availability >= 0.99
    assert degraded.n_dropped == 0
    assert degraded.fallback_events > 0
    assert degraded.worst_tries <= 4

    # The whole campaign is bit-for-bit reproducible.
    replay = resilience_reports(
        full_context, symbol="C1", n_events=N_EVENTS, seed=SEED
    )
    assert replay[SCENARIOS[1]] == bounded
    assert replay[SCENARIOS[2]] == degraded

    scenario_table = format_table(
        resilience_rows(full_context, symbol="C1", n_events=N_EVENTS, seed=SEED),
        title=(
            "Resilience under the seeded fault campaign "
            f"(C1 at 90nm / model2, {N_EVENTS} events, seed {SEED})"
        ),
        float_format="{:.4g}",
    )
    model_table = format_table(
        arq_model_rows(),
        title="Closed-form ARQ model: legacy 1/(1-p) vs truncated geometric",
        float_format="{:.4g}",
    )
    save_table("resilience", scenario_table + "\n\n" + model_table)
