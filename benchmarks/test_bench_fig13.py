"""Figure 13 — per-event energy overhead on the aggregator.

Paper shape: the cross-end engine's aggregator-side energy is well below
the aggregator engine's ("less than half" in the paper), because it hosts
fewer software cells and its radio listens for much shorter payloads.  The
52-hour aggregator-battery figure of Section 5.6 is also sanity-checked.
"""

from repro.eval.experiments import fig13_rows
from repro.eval.tables import format_table
from repro.hw.battery import AGGREGATOR_BATTERY


def test_fig13_aggregator_overhead(benchmark, full_context, save_table):
    rows = benchmark(fig13_rows, full_context)

    for row in rows:
        assert row["cross_over_aggregator"] <= 1.0 + 1e-9, row
    mean_ratio = sum(r["cross_over_aggregator"] for r in rows) / len(rows)
    # Direction reproduced (cross-end strictly lighter on the aggregator);
    # the paper's >2x magnitude depends on its generator placing SVM
    # members in-sensor, which our calibrated energy balance does not
    # always reproduce — see EXPERIMENTS.md, Fig. 13 notes.
    assert mean_ratio < 0.95

    # Section 5.6: a 2900 mAh aggregator battery sustains XPro for tens of
    # hours even with a generous 150 mW platform baseline on top of the
    # analytic load.
    worst_cross_uj = max(r["cross_uj"] for r in rows)
    power = worst_cross_uj * 1e-6 / 0.5 + 150e-3  # ~2 events/s + baseline
    hours = AGGREGATOR_BATTERY.lifetime_hours(power)
    assert hours > 52

    save_table(
        "fig13",
        format_table(
            rows,
            title=(
                "Figure 13: aggregator energy overhead (uJ/event), 90nm/Model 2 "
                f"(mean C/A ratio {mean_ratio:.2f}; paper: < 0.5)"
            ),
        ),
    )
