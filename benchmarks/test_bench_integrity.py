"""Benchmark: wire integrity under seeded bit-flip injection.

Replays the corruption campaign (Gilbert-Elliott burst loss + byte-level
bit flips into real encoded frames) over the C1 partition under the three
wire formats and checks the PR's acceptance criteria:

- CRC-16 detects >= 99% of the injected multi-bit corruptions;
- the no-CRC baseline silently accepts corrupted Q16.16 feature payloads;
- sequence-number retransmission recovers the availability that
  detect-only discarding gives up;
- the framed link's energy accounting includes the header/CRC overhead
  while the legacy unframed path stays bit-for-bit identical.
"""

import math

from repro.eval.resilience import (
    INTEGRITY_SCENARIOS,
    integrity_reports,
    integrity_rows,
)
from repro.eval.tables import format_table
from repro.hw.framing import FramingConfig
from repro.hw.wireless import WirelessLink

N_EVENTS = 2000
SEED = 11
CORRUPTION_RATE = 0.05


def test_integrity_under_bitflip_campaign(benchmark, full_context, save_table):
    reports = benchmark.pedantic(
        integrity_reports,
        args=(full_context,),
        kwargs=dict(
            symbol="C1",
            n_events=N_EVENTS,
            seed=SEED,
            corruption_rate=CORRUPTION_RATE,
        ),
        rounds=1,
        iterations=1,
    )

    no_crc, detect_only, retransmit = (
        reports[label] for label in INTEGRITY_SCENARIOS
    )

    # The no-CRC baseline delivers corrupted Q16.16 features silently.
    assert no_crc.corrupted_deliveries > 0
    assert no_crc.corruptions_silent > 0

    # CRC-16 catches >= 99% of the injected multi-bit corruptions.
    for report in (detect_only, retransmit):
        assert report.frames_corrupted > 0
        assert report.corruption_detection_rate >= 0.99
        assert report.corrupted_deliveries == 0

    # Detect-only discards trade silent corruption for visible
    # unavailability; sequence-numbered retransmission buys it back.
    assert detect_only.integrity_discards > 0
    assert retransmit.integrity_discards == 0
    assert retransmit.availability >= detect_only.availability
    assert retransmit.retransmissions > detect_only.retransmissions

    # Legacy unframed accounting is bit-for-bit unchanged; the framed
    # link charges strictly more bits per crossing value.
    plain = WirelessLink("model2")
    framed = WirelessLink("model2", framing=FramingConfig())
    for n_values in (1, 4, 16, 64):
        assert plain.payload_bits(n_values, 32) == n_values * 32 + 8
        assert framed.payload_bits(n_values, 32) > plain.payload_bits(
            n_values, 32
        )
        assert (
            framed.framing_overhead_bits(n_values, 32)
            == framed.payload_bits(n_values, 32)
            - plain.payload_bits(n_values, 32)
        )

    # The whole campaign is bit-for-bit reproducible.
    replay = integrity_reports(
        full_context,
        symbol="C1",
        n_events=N_EVENTS,
        seed=SEED,
        corruption_rate=CORRUPTION_RATE,
    )
    for label in INTEGRITY_SCENARIOS:
        assert replay[label] == reports[label]

    table = format_table(
        integrity_rows(
            full_context,
            symbol="C1",
            n_events=N_EVENTS,
            seed=SEED,
            corruption_rate=CORRUPTION_RATE,
        ),
        title=(
            "Wire integrity under bit-flip injection "
            f"(C1 at 90nm / model2, {N_EVENTS} events, seed {SEED}, "
            f"corruption rate {CORRUPTION_RATE})"
        ),
        float_format="{:.4g}",
    )
    save_table("integrity", table)

    assert math.isfinite(retransmit.max_latency_s)
