"""Ablation benchmarks of XPro's design choices (DESIGN.md §2, paper §3/§5.7).

Full-scale quantification of each design rule and extension:

- design rule 2 (ALU-mode selection) vs forced monotonic modes;
- design rule 3 (Var->Std cell reuse) vs duplicated datapaths;
- the random-subspace classifier vs bagging/AdaBoost (feature-cell cost);
- the §4.2 exclusion of Bluetooth Low Energy;
- the energy premium of the Eq. 4 real-time constraint;
- the §5.7 multi-node BSN and multi-class extensions.
"""

import numpy as np
import pytest

from repro.core.layout import FeatureLayout
from repro.eval.ablations import (
    alu_mode_ablation,
    ble_ablation,
    cell_reuse_ablation,
    delay_constraint_ablation,
    ensemble_ablation,
)
from repro.eval.tables import format_table
from repro.hw.wireless import WirelessLink
from repro.sim.evaluate import evaluate_partition
from repro.sim.lifetime import (
    MODALITY_SAMPLE_RATES,
    event_period_s,
)
from repro.sim.multinode import BSNNode, MultiNodeBSN
from repro.signals.datasets import TABLE1_CASES, load_case


def test_alu_mode_rule(benchmark, full_context, save_table):
    topology = full_context.topology("E1", "90nm")
    lib = full_context.energy_library("90nm")
    result = benchmark(alu_mode_ablation, topology, lib)
    for mode in ("serial", "parallel", "pipeline"):
        assert result["chosen"] <= result[mode] * (1 + 1e-12)
    rows = [
        {"policy": k, "energy_uj": v * 1e6, "vs_chosen": v / result["chosen"]}
        for k, v in result.items()
    ]
    save_table(
        "ablation_alu_mode",
        format_table(rows, title="Ablation: ALU-mode policy (E1 topology, 90nm)"),
    )


def test_cell_reuse_rule(benchmark, full_context, save_table):
    engine = full_context.engine("E1")
    topology = full_context.topology("E1", "90nm")
    lib = full_context.energy_library("90nm")
    result = benchmark(cell_reuse_ablation, topology, lib, engine.layout)
    assert result["no_reuse"] >= result["reuse"]
    rows = [
        {
            "variant": "var-cell reuse (rule 3)",
            "energy_uj": result["reuse"] * 1e6,
        },
        {
            "variant": "duplicated variance datapath",
            "energy_uj": result["no_reuse"] * 1e6,
        },
    ]
    save_table(
        "ablation_reuse",
        format_table(
            rows,
            title=f"Ablation: Std cell reuse ({int(result['std_cell_count'])} "
                  "Std cells in topology)",
        ),
    )


def test_ensemble_choice(benchmark, full_context, save_table):
    dataset = load_case("C2", n_segments=240)
    layout = FeatureLayout(segment_length=dataset.segment_length)
    lib = full_context.energy_library("90nm")
    rows = benchmark.pedantic(
        ensemble_ablation,
        args=(dataset, layout, lib),
        kwargs={"n_members": 6, "n_draws": 30, "seed": 11},
        rounds=1,
        iterations=1,
    )
    by_method = {r["method"]: r for r in rows}
    rs = by_method["random_subspace"]
    for other in ("bagging", "adaboost"):
        assert rs["used_features"] < by_method[other]["used_features"]
        assert (
            rs["feature_cell_energy_uj"]
            < by_method[other]["feature_cell_energy_uj"]
        )
        # Accuracy stays comparable (within 15 points) — the paper's claim
        # is suitability, not dominance.
        assert rs["test_accuracy"] > by_method[other]["test_accuracy"] - 0.15
    save_table(
        "ablation_ensemble",
        format_table(rows, title="Ablation: ensemble method (C2, 6 members)"),
    )


def test_ble_exclusion(benchmark, full_context, save_table):
    topology = full_context.topology("E1", "90nm")
    lib = full_context.energy_library("90nm")
    spec = TABLE1_CASES["E1"]
    period = event_period_s(spec.segment_length, MODALITY_SAMPLE_RATES["eeg"])
    rows = benchmark.pedantic(
        ble_ablation,
        args=(topology, lib, full_context.cpu, period),
        rounds=1,
        iterations=1,
    )
    by_radio = {r["radio"]: r for r in rows}
    # BLE demolishes the raw-streaming design, as the paper argues.
    assert by_radio["ble"]["aggregator_h"] < 0.1 * by_radio["model3"]["aggregator_h"]
    save_table(
        "ablation_ble",
        format_table(rows, title="Ablation: BLE vs implant radios (E1)",
                     float_format="{:.4g}"),
    )


def test_delay_constraint_premium(benchmark, full_context, save_table):
    rows = []
    for symbol in full_context.all_cases():
        topology = full_context.topology(symbol, "90nm")
        lib = full_context.energy_library("90nm")
        result = delay_constraint_ablation(
            topology, lib, WirelessLink("model2"), full_context.cpu
        )
        result["case"] = symbol
        rows.append(result)
    benchmark.pedantic(
        delay_constraint_ablation,
        args=(
            full_context.topology("C1", "90nm"),
            full_context.energy_library("90nm"),
            WirelessLink("model2"),
            full_context.cpu,
        ),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["energy_premium_pct"] >= -1e-9
    save_table(
        "ablation_delay_constraint",
        format_table(
            rows,
            columns=[
                "case",
                "unconstrained_energy_uj",
                "constrained_energy_uj",
                "energy_premium_pct",
                "unconstrained_delay_ms",
                "constrained_delay_ms",
            ],
            title="Ablation: Eq. 4 delay constraint premium (90nm/Model 2)",
        ),
    )


def test_multinode_bsn_extension(benchmark, full_context, save_table):
    """§5.7: a three-sensor BSN (ECG + EEG + EMG) under TDMA vs MIMO."""
    nodes = []
    for symbol, modality in (("C1", "ecg"), ("E1", "eeg"), ("M1", "emg")):
        metrics = full_context.strategy_metrics(symbol, "90nm", "model2")["cross"]
        spec = TABLE1_CASES[symbol]
        period = event_period_s(
            spec.segment_length, MODALITY_SAMPLE_RATES[modality]
        )
        nodes.append(BSNNode(symbol, metrics, period))

    def build_and_report():
        return (
            MultiNodeBSN(nodes, protocol="tdma").report(),
            MultiNodeBSN(nodes, protocol="mimo").report(),
        )

    tdma, mimo = benchmark(build_and_report)
    assert tdma.channel_utilisation < 1.0  # cross-end traffic fits one channel
    assert mimo.worst_event_delay_s <= tdma.worst_event_delay_s
    assert tdma.bsn_lifetime_h == mimo.bsn_lifetime_h  # energy unchanged
    rows = [
        {
            "protocol": name,
            "bsn_lifetime_h": rep.bsn_lifetime_h,
            "channel_util": rep.channel_utilisation,
            "worst_delay_ms": rep.worst_event_delay_s * 1e3,
            "aggregator_mw": rep.aggregator_power_w * 1e3,
        }
        for name, rep in (("tdma", tdma), ("mimo", mimo))
    ]
    save_table(
        "extension_multinode",
        format_table(rows, title="Extension (§5.7): 3-node BSN, cross-end engines"),
    )


def test_multiclass_extension(benchmark, full_context, save_table):
    """§5.7: multi-class EMG — the generator applies unchanged."""
    from repro.core.generator import AutomaticXProGenerator
    from repro.core.multiclass import build_multiclass_topology
    from repro.dsp.normalize import MinMaxNormalizer
    from repro.ml.multiclass import OneVsRestSubspaceClassifier
    from repro.signals.datasets import load_multiclass_emg

    dataset = load_multiclass_emg(n_classes=4, n_segments=200)
    layout = FeatureLayout(segment_length=dataset.segment_length)
    features = layout.extract_matrix(dataset.segments)
    normalizer = MinMaxNormalizer().fit(features)
    classifier = OneVsRestSubspaceClassifier(
        layout.n_features, n_classes=4, subspace_dim=8, n_draws=20,
        keep_fraction=0.15, seed=3,
    ).fit(normalizer.transform(features), dataset.labels)
    lib = full_context.energy_library("90nm")
    topology = build_multiclass_topology(layout, classifier, normalizer, lib)
    generator = AutomaticXProGenerator(
        topology, lib, WirelessLink("model2"), full_context.cpu
    )

    result = benchmark(generator.generate)
    refs = generator.reference_metrics()
    limit = result.delay_limit_s
    rows = []
    for name, metrics in [
        ("aggregator", refs["aggregator"]),
        ("sensor", refs["sensor"]),
        ("cross", result.metrics),
    ]:
        rows.append(
            {
                "engine": name,
                "sensor_uj": metrics.sensor_total_j * 1e6,
                "delay_ms": metrics.delay_total_s * 1e3,
            }
        )
        if name != "cross" and metrics.delay_total_s <= limit * (1 + 1e-9):
            assert result.metrics.sensor_total_j <= metrics.sensor_total_j + 1e-15
    save_table(
        "extension_multiclass",
        format_table(
            rows,
            title=f"Extension (§5.7): 4-class EMG "
                  f"({len(topology)} cells, {classifier.total_members} members)",
        ),
    )


def test_noise_robustness(benchmark, full_context, save_table):
    """Sensor-noise sweep: SV counts and the cut adapt with workload shift."""
    from repro.eval.ablations import noise_robustness_rows

    lib = full_context.energy_library("90nm")
    rows = benchmark.pedantic(
        noise_robustness_rows,
        args=(lib, full_context.cpu),
        rounds=1,
        iterations=1,
    )
    # Noisier data -> harder separation -> at least as many support vectors.
    svs = [r["mean_support_vectors"] for r in rows]
    assert svs[-1] >= svs[0]
    # Accuracy must not increase as noise grows (weak monotonicity).
    assert rows[-1]["accuracy"] <= rows[0]["accuracy"] + 0.05
    save_table(
        "ablation_noise",
        format_table(rows, title="Ablation: measurement-noise sensitivity (ECG)"),
    )
