#!/usr/bin/env python
"""CI perf-regression gate: compare a fresh BENCH_perf.json to the baseline.

Usage::

    python scripts/check_perf_regression.py FRESH BASELINE [--threshold 0.25]

Exits 0 when every tracked metric in the fresh report stays within the
allowed fraction of the committed baseline's gate floor, 1 otherwise
(printing one line per failed metric).  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.perf import (
    DEFAULT_THRESHOLD,
    TRACKED_METRICS,
    compare_reports,
    load_perf_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly measured BENCH_perf.json")
    parser.add_argument("baseline", help="committed baseline BENCH_perf.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional regression (default %(default)s)",
    )
    args = parser.parse_args(argv)

    fresh = load_perf_report(args.fresh)
    baseline = load_perf_report(args.baseline)
    # A stale baseline (e.g. missing a newly tracked stage such as
    # fleet.speedup / streaming.speedup, the SoA-vs-scalar-twin gates, or
    # training.speedup, the fold-sliced-SMO-vs-reference gate) would
    # silently shrink the gate's coverage.
    stale = [m for m in TRACKED_METRICS if m not in baseline.get("tracked", [])]
    if stale:
        print("perf regression gate FAILED:")
        for name in stale:
            print(
                f"  {name}: not in the committed baseline — regenerate it "
                "with scripts/update_perf_baseline.py"
            )
        return 1
    failures = compare_reports(fresh, baseline, threshold=args.threshold)
    if failures:
        print("perf regression gate FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    tracked = ", ".join(
        f"{name}={fresh['metrics'][name]:.2f}" for name in baseline.get("tracked", [])
    )
    print(f"perf regression gate OK ({tracked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
