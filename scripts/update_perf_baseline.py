#!/usr/bin/env python
"""Regenerate the committed perf baseline (benchmarks/results/BENCH_perf.json).

Usage::

    python scripts/update_perf_baseline.py [--runs 3] [--out PATH]

Runs the full benchmark sweep ``--runs`` times plus one fast-mode run,
keeps the first full run as the reported measurement, and sets each gate
floor to ``GATE_MARGIN`` times the *minimum* tracked ratio observed across
all runs.  Ratcheting the floors from a multi-run minimum keeps the 25%
regression gate green under timer noise (single-run ratios vary ~±40% on
busy runners) while a real regression — losing vectorization collapses
every tracked ratio to ~1x — still fails by an order of magnitude.

Run this after intentionally changing hot-path performance — or after
adding a tracked stage (the gate script rejects baselines missing one,
e.g. ``fleet.speedup`` / ``streaming.speedup``, the SoA-vs-scalar-twin
gates, or ``training.speedup``, the fold-sliced-SMO-vs-reference gate) —
and commit the refreshed JSON with the change.

The training stage dominates full-run wall time: its scalar side is the
pinned reference SMO at paper scale (100 draws x 10-fold CV), minutes
per run by design.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.perf import (
    GATE_MARGIN,
    TRACKED_METRICS,
    collect_perf_report,
    write_perf_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--runs", type=int, default=3, help="full benchmark runs (default 3)"
    )
    parser.add_argument(
        "--out",
        default="benchmarks/results/BENCH_perf.json",
        help="output path (default %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.runs < 1:
        parser.error("--runs must be >= 1")

    # Every run includes the fleet and streaming stages: their speedups
    # are tracked, so the multi-run minimum must observe them alongside
    # the other ratios (each scalar-twin-vs-SoA bench runs in ~1 s,
    # unlike the retired process-pool sweep that earned a first-run-only
    # exemption).
    reports = []
    for i in range(args.runs):
        print(f"full run {i + 1}/{args.runs} ...", flush=True)
        reports.append(collect_perf_report(fast=False))
    print("fast-mode run ...", flush=True)
    reports.append(collect_perf_report(fast=True))

    baseline = reports[0]
    missing = [m for m in TRACKED_METRICS if m not in baseline["tracked"]]
    if missing:  # a baseline must cover every gated stage
        parser.error(f"baseline run is missing tracked metrics: {missing}")
    for name in baseline["tracked"]:
        observed = [r["metrics"][name] for r in reports]
        baseline["gate"][name] = round(min(observed) * GATE_MARGIN, 2)
        print(
            f"{name}: observed {[round(v, 2) for v in observed]}"
            f" -> gate floor {baseline['gate'][name]}"
        )
    path = write_perf_report(baseline, args.out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
