#!/usr/bin/env python
"""Nightly chaos-regression gate: fresh worst case vs the committed baseline.

Usage::

    python scripts/check_chaos_regression.py FRESH BASELINE [--threshold 0.15]

Exits 0 when the freshly searched worst case stays within the allowed
fraction of the committed baseline on every Pareto axis (and the fast and
scalar runners agreed bit-for-bit on the worst replay bundle), 1 otherwise
(printing one line per failure).  See docs/CHAOS.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.chaos import (
    DEFAULT_CHAOS_THRESHOLD,
    compare_chaos_summaries,
    load_chaos_summary,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly searched BENCH_chaos.json")
    parser.add_argument("baseline", help="committed BENCH_chaos_baseline.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_CHAOS_THRESHOLD,
        help="allowed fractional worsening per axis (default %(default)s)",
    )
    args = parser.parse_args(argv)

    fresh = load_chaos_summary(args.fresh)
    baseline = load_chaos_summary(args.baseline)
    failures = compare_chaos_summaries(fresh, baseline, threshold=args.threshold)
    if failures:
        print("chaos regression gate FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    axes = ", ".join(
        f"{axis}={value:.4f}" for axis, value in fresh.get("axes_max", {}).items()
    )
    print(f"chaos regression gate OK ({axes})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
