"""repro — reproduction of XPro (ISCA 2017).

**XPro: A Cross-End Processing Architecture for Data Analytics in
Wearables** embeds a generic biosignal classification pipeline into a
wearable system by partitioning fine-grained functional cells between a
battery-constrained sensor node and a data aggregator, using an automatic
min-cut-based generator.  This library implements the whole stack from
scratch: synthetic biosignal workloads, the DSP/ML pipeline, functional-cell
hardware models, the s-t graph partitioner, a cross-end system simulator and
the full evaluation harness.

Quickstart::

    from repro import XProSystem

    system = XProSystem.for_case("C1")          # train + generate partition
    print(system.partition.in_sensor)           # cells placed on the sensor
    print(system.metrics.sensor_total_j)        # energy per event, joules
    pred = system.classify(system.dataset.segments[0])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import (
    AutomaticXProGenerator,
    CrossEndEngine,
    CrossEndResult,
    FeatureLayout,
    GeneratorResult,
    Partition,
    TrainedAnalyticEngine,
    TrainingConfig,
    train_analytic_engine,
)
from repro.cells.topology import CellTopology
from repro.errors import XProError
from repro.hw.aggregator import AggregatorCPU
from repro.hw.energy import ALUMode, EnergyLibrary
from repro.hw.wireless import WirelessLink
from repro.sim.evaluate import PartitionMetrics, evaluate_partition
from repro.signals.datasets import BiosignalDataset, load_case

__version__ = "1.0.0"

__all__ = [
    "ALUMode",
    "AggregatorCPU",
    "AutomaticXProGenerator",
    "BiosignalDataset",
    "CellTopology",
    "CrossEndEngine",
    "CrossEndResult",
    "EnergyLibrary",
    "FeatureLayout",
    "GeneratorResult",
    "Partition",
    "PartitionMetrics",
    "TrainedAnalyticEngine",
    "TrainingConfig",
    "WirelessLink",
    "XProError",
    "XProSystem",
    "evaluate_partition",
    "load_case",
    "train_analytic_engine",
]


@dataclass
class XProSystem:
    """A fully assembled XPro instance: data, classifier, partition, engine.

    Build one with :meth:`for_case`; then :meth:`classify` runs segments
    through the partitioned cross-end engine, and :attr:`metrics` carries
    the per-event energy/delay figures of the generated partition.
    """

    dataset: BiosignalDataset
    trained: TrainedAnalyticEngine
    topology: CellTopology
    generator: AutomaticXProGenerator
    result: GeneratorResult
    engine: CrossEndEngine

    @classmethod
    def for_case(
        cls,
        symbol: str = "C1",
        node: str = "90nm",
        wireless: str = "model2",
        n_segments: Optional[int] = 240,
        training: Optional[TrainingConfig] = None,
        delay_limit_s: Optional[float] = None,
    ) -> "XProSystem":
        """Train, build and partition an XPro instance for one test case.

        Args:
            symbol: Table 1 case symbol (C1, C2, E1, E2, M1, M2).
            node: Process technology of the sensor ("130nm"/"90nm"/"45nm").
            wireless: Transceiver model ("model1"/"model2"/"model3").
            n_segments: Dataset subsample (None = full Table 1 size).
            training: Training protocol overrides.
            delay_limit_s: Explicit delay constraint; default is the
                paper's Eq. 4 limit.
        """
        dataset = load_case(symbol, n_segments)
        trained = train_analytic_engine(dataset, training)
        energy_lib = EnergyLibrary(node)
        topology = trained.build_topology(energy_lib)
        generator = AutomaticXProGenerator(
            topology, energy_lib, WirelessLink(wireless), AggregatorCPU()
        )
        result = generator.generate(delay_limit_s=delay_limit_s)
        engine = CrossEndEngine(topology, result.partition)
        return cls(
            dataset=dataset,
            trained=trained,
            topology=topology,
            generator=generator,
            result=result,
            engine=engine,
        )

    @property
    def partition(self) -> Partition:
        """The generated cross-end partition."""
        return self.result.partition

    @property
    def metrics(self) -> PartitionMetrics:
        """Per-event energy/delay metrics of the generated partition."""
        return self.result.metrics

    def classify(self, segment: np.ndarray) -> int:
        """Classify one raw segment through the cross-end engine."""
        return self.engine.classify(segment).prediction

    def accuracy(self) -> float:
        """Cross-end engine accuracy over the system's whole dataset."""
        preds = self.engine.classify_batch(self.dataset.segments)
        return float(np.mean(preds == self.dataset.labels))
