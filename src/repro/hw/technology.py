"""Process technology points: TSMC 130 / 90 / 45 nm.

The paper synthesises functional cells against TSMC 130, 90 and 45 nm
standard-cell libraries at a 16 MHz clock (Section 4.3).  Without the EDA
flow we model each node as a scaling of a 90 nm reference point:

- **dynamic energy** scales with ``C V^2``; across these planar nodes each
  full-node step is roughly a 2.2x energy change (capacitance shrink plus
  supply drop from ~1.2 V at 130 nm to ~0.9 V at 45 nm), consistent with
  published adder/multiplier energy surveys;
- **leakage power** grows as features shrink; normalised leakage per gate is
  higher at 45 nm, which is why the static term in the ALU-mode model does
  not vanish with scaling.

Only *relative* energies across nodes matter for the paper's figures (all
lifetime plots are normalised), so this two-parameter scaling preserves every
trend in Figures 8/9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProcessTechnology:
    """One CMOS process point.

    Attributes:
        name: Display name, e.g. ``"90nm"``.
        feature_nm: Drawn feature size in nanometres.
        dynamic_scale: Dynamic-energy multiplier relative to the 90 nm
            reference (130 nm > 1, 45 nm < 1).
        leakage_scale: Relative leakage density (informational: at the
            16 MHz duty-cycled operating point the energy model is
            dynamic-dominated, so leakage enters the figures only through
            the per-cycle clock/control term; the attribute documents the
            node's physical trend for area/standby extensions).
        supply_v: Nominal supply voltage (informational).
    """

    name: str
    feature_nm: int
    dynamic_scale: float
    leakage_scale: float
    supply_v: float

    def __post_init__(self) -> None:
        if self.dynamic_scale <= 0 or self.leakage_scale <= 0:
            raise ConfigurationError("scaling factors must be positive")


#: The three evaluated nodes, keyed by name.  90 nm is the reference and the
#: paper's default setup (Section 5.2).
PROCESS_NODES: Dict[str, ProcessTechnology] = {
    "130nm": ProcessTechnology("130nm", 130, dynamic_scale=2.2, leakage_scale=0.6, supply_v=1.2),
    "90nm": ProcessTechnology("90nm", 90, dynamic_scale=1.0, leakage_scale=1.0, supply_v=1.0),
    "45nm": ProcessTechnology("45nm", 45, dynamic_scale=1.0 / 2.2, leakage_scale=1.8, supply_v=0.9),
}


def get_node(name: str) -> ProcessTechnology:
    """Look up a process node by name (e.g. ``"90nm"``)."""
    if name not in PROCESS_NODES:
        raise ConfigurationError(
            f"unknown process node {name!r}; available: {sorted(PROCESS_NODES)}"
        )
    return PROCESS_NODES[name]
