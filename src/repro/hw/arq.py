"""Bounded-retry stop-and-wait ARQ for the body-area link.

The paper evaluates a loss-free channel; the lossy-link extension modelled
i.i.d. payload loss with *unbounded* stop-and-wait retransmission, whose
expected transmission count ``1 / (1 - p)`` diverges as the loss rate
``p`` approaches 1.  Real wearable radios bound the retry count: after a
per-try timeout the payload is retransmitted with exponential backoff, and
after ``max_retries`` failed retries it is *dropped* and the decision layer
must degrade gracefully (see :mod:`repro.core.degrade`).

With at most ``N = max_retries + 1`` tries per payload the transmission
count follows a *truncated geometric* distribution, and every moment the
energy/delay models need has a closed form:

- delivery probability ``1 - p^N``;
- expected transmissions ``(1 - p^N) / (1 - p)`` (``N`` at ``p = 1``);
- worst-case transmissions ``N`` — finite for every ``p``, including
  ``p = 1`` where the unbounded model diverges.

``max_retries=None`` reproduces the legacy unbounded model exactly (no
timeouts, expectation ``1 / (1 - p)``), keeping the paper's numbers
bit-identical; it rejects ``p = 1`` deterministically.

Retry *jitter* is deterministic (a golden-ratio low-discrepancy sequence
over the attempt index) so that every simulation of the same configuration
is reproducible bit-for-bit without threading an RNG through the link
models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError, SimulationError

#: Fractional part of the golden ratio; drives the deterministic jitter.
_GOLDEN = 0.6180339887498949

#: Hard cap on simulated tries for the unbounded policy; exceeding it means
#: the channel never let the payload through (e.g. an outage window keyed to
#: the event), which is exactly the divergence bounded ARQ exists to fix.
DEFAULT_MAX_SIMULATED_TRIES = 10_000


@dataclass(frozen=True)
class ARQOutcome:
    """Result of simulating one payload through the ARQ policy.

    Attributes:
        delivered: Whether the payload got through within the try budget.
        tries: Transmissions actually performed (>= 1).
        delay_s: Total link occupancy: on-air time of every try plus the
            backoff waits between tries.
    """

    delivered: bool
    tries: int
    delay_s: float


@dataclass(frozen=True)
class ARQConfig:
    """Bounded-retry stop-and-wait ARQ policy parameters.

    Attributes:
        max_retries: Retries after the first try (``N = max_retries + 1``
            tries total), then drop.  ``None`` selects the legacy unbounded
            stop-and-wait model (no timeouts, divergent at ``p = 1``).
        timeout_s: Wait before the first retry.
        backoff_factor: Multiplicative backoff growth per further retry.
        jitter_fraction: Amplitude of the deterministic jitter applied to
            each backoff wait (0 disables it).
    """

    max_retries: Optional[int] = 3
    timeout_s: float = 2e-3
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries is not None and self.max_retries < 0:
            raise ConfigurationError("max_retries must be None or >= 0")
        if self.timeout_s < 0:
            raise ConfigurationError("timeout_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")

    # -- structure ---------------------------------------------------------------

    @property
    def bounded(self) -> bool:
        """Whether the retry budget is finite."""
        return self.max_retries is not None

    @property
    def max_tries(self) -> float:
        """Maximum transmissions per payload (``inf`` when unbounded)."""
        if self.max_retries is None:
            return math.inf
        return self.max_retries + 1

    def backoff_s(self, retry: int) -> float:
        """Wait before retry number ``retry`` (1-based).

        The legacy unbounded policy models ideal stop-and-wait with zero
        timeout overhead, so it always returns 0.
        """
        if retry < 1:
            raise ConfigurationError("retry index must be >= 1")
        if self.max_retries is None:
            return 0.0
        jitter = 1.0 + self.jitter_fraction * math.modf(retry * _GOLDEN)[0]
        return self.timeout_s * self.backoff_factor ** (retry - 1) * jitter

    # -- closed-form truncated-geometric moments ---------------------------------

    def _check_loss(self, loss_rate: float) -> float:
        if not 0.0 <= loss_rate <= 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1]")
        if loss_rate == 1.0 and self.max_retries is None:
            raise ConfigurationError(
                "loss_rate = 1 diverges under unbounded stop-and-wait; "
                "use a bounded ARQConfig (max_retries set)"
            )
        return float(loss_rate)

    def delivery_probability(self, loss_rate: float) -> float:
        """Probability one payload is delivered within the try budget."""
        p = self._check_loss(loss_rate)
        if self.max_retries is None:
            return 1.0
        return 1.0 - p ** (self.max_retries + 1)

    def expected_transmissions(self, loss_rate: float) -> float:
        """Mean transmissions per payload (truncated-geometric mean).

        Converges to the legacy ``1 / (1 - p)`` as ``max_retries`` grows
        and saturates at ``max_retries + 1`` as ``p`` approaches 1.
        """
        p = self._check_loss(loss_rate)
        if p == 0.0:
            return 1.0
        if self.max_retries is None:
            return 1.0 / (1.0 - p)
        n = self.max_retries + 1
        if p == 1.0:
            return float(n)
        return (1.0 - p**n) / (1.0 - p)

    def expected_backoff_s(self, loss_rate: float) -> float:
        """Mean total backoff wait per payload.

        The wait before retry ``r`` is incurred iff the first ``r`` tries
        all failed (probability ``p^r``); the unbounded legacy policy has
        no timeouts, so its expectation is 0.
        """
        p = self._check_loss(loss_rate)
        if self.max_retries is None or p == 0.0:
            return 0.0
        return sum(p**r * self.backoff_s(r) for r in range(1, self.max_retries + 1))

    def worst_case_transmissions(self) -> float:
        """Largest possible transmission count (``inf`` when unbounded)."""
        return self.max_tries

    def worst_case_delay_s(self, on_air_s: float) -> float:
        """Worst-case link occupancy of one payload (``inf`` when unbounded)."""
        if on_air_s < 0:
            raise ConfigurationError("on_air_s must be >= 0")
        if self.max_retries is None:
            return math.inf
        air = (self.max_retries + 1) * on_air_s
        waits = sum(self.backoff_s(r) for r in range(1, self.max_retries + 1))
        return air + waits

    # -- per-try simulation ---------------------------------------------------------

    def simulate(
        self,
        try_lost: Callable[[int], bool],
        on_air_s: float,
        max_simulated_tries: int = DEFAULT_MAX_SIMULATED_TRIES,
    ) -> ARQOutcome:
        """Run one payload through the policy against a per-try loss source.

        Args:
            try_lost: Callback receiving the 1-based attempt number and
                returning True when that transmission is lost.
            on_air_s: Serialisation time of one transmission.
            max_simulated_tries: Safety cap for the unbounded policy; hit
                it and a :class:`~repro.errors.SimulationError` is raised,
                surfacing the divergence the bounded policy avoids.

        Returns:
            The :class:`ARQOutcome` (delivered/dropped, tries, occupancy).
        """
        if on_air_s < 0:
            raise ConfigurationError("on_air_s must be >= 0")
        tries = 0
        delay = 0.0
        while True:
            tries += 1
            delay += on_air_s
            if not try_lost(tries):
                return ARQOutcome(delivered=True, tries=tries, delay_s=delay)
            if self.max_retries is not None and tries >= self.max_retries + 1:
                return ARQOutcome(delivered=False, tries=tries, delay_s=delay)
            if tries >= max_simulated_tries:
                raise SimulationError(
                    f"unbounded ARQ exceeded {max_simulated_tries} tries on one "
                    "payload: the channel never recovered (retry storm); use a "
                    "bounded ARQConfig to keep per-payload delay finite"
                )
            delay += self.backoff_s(tries)


#: The legacy unbounded stop-and-wait policy (the paper's lossy-link model).
UNBOUNDED_ARQ = ARQConfig(max_retries=None, timeout_s=0.0, jitter_fraction=0.0)
