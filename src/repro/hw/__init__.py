"""Hardware energy/delay substrate.

Models everything the paper characterises with EDA tools and published
transceiver designs (Section 4.2/4.3):

- :mod:`repro.hw.technology` -- TSMC 130/90/45 nm process points and the
  dynamic-energy scaling between them.
- :mod:`repro.hw.energy` -- per-operation energy tables, ALU working modes
  (serial / parallel / pipeline) and per-module characterisation (Figure 4).
- :mod:`repro.hw.wireless` -- the three implant transceiver models and the
  common packet protocol (8-bit header per payload).
- :mod:`repro.hw.arq` -- bounded-retry stop-and-wait ARQ with the
  truncated-geometric transmission model (the resilience extension).
- :mod:`repro.hw.framing` -- byte-level data-plane framing: Q16.16
  payload serialisation, CRC-16/CCITT trailers, sequence numbers and
  the receiver-side reassembler with integrity counters.
- :mod:`repro.hw.battery` -- Polymer Li-Ion runtime model.
- :mod:`repro.hw.aggregator` -- ARM Cortex-A8-class CPU energy/latency model
  for the in-aggregator software cells.
"""

from repro.hw.aggregator import AggregatorCPU
from repro.hw.arq import ARQConfig, ARQOutcome, UNBOUNDED_ARQ
from repro.hw.framing import (
    CRC16_ESCAPE_PROBABILITY,
    Frame,
    FrameReassembler,
    FramingConfig,
    IntegrityCounters,
    crc16_ccitt,
    decode_frame,
    decode_values,
    encode_frame,
    encode_values,
    fragment_payload,
)
from repro.hw.area import AreaReport, area_report, cell_gate_equivalents
from repro.hw.battery import BatteryModel, SENSOR_BATTERY, AGGREGATOR_BATTERY
from repro.hw.energy import (
    ALUMode,
    EnergyLibrary,
    ModeCharacterization,
    OperationEnergyTable,
)
from repro.hw.technology import PROCESS_NODES, ProcessTechnology
from repro.hw.memory import MemoryReport, cell_buffer_bytes, memory_report
from repro.hw.power_gating import DEFAULT_POWER_GATING, PowerGatingModel, gating_overhead_report
from repro.hw.wireless import BLE_MODEL, WIRELESS_MODELS, TransceiverModel, WirelessLink

__all__ = [
    "AGGREGATOR_BATTERY",
    "ARQConfig",
    "ARQOutcome",
    "UNBOUNDED_ARQ",
    "AreaReport",
    "CRC16_ESCAPE_PROBABILITY",
    "Frame",
    "FrameReassembler",
    "FramingConfig",
    "IntegrityCounters",
    "crc16_ccitt",
    "decode_frame",
    "decode_values",
    "encode_frame",
    "encode_values",
    "fragment_payload",
    "BLE_MODEL",
    "DEFAULT_POWER_GATING",
    "PowerGatingModel",
    "area_report",
    "cell_gate_equivalents",
    "gating_overhead_report",
    "MemoryReport",
    "cell_buffer_bytes",
    "memory_report",
    "ALUMode",
    "AggregatorCPU",
    "BatteryModel",
    "EnergyLibrary",
    "ModeCharacterization",
    "OperationEnergyTable",
    "PROCESS_NODES",
    "ProcessTechnology",
    "SENSOR_BATTERY",
    "TransceiverModel",
    "WIRELESS_MODELS",
    "WirelessLink",
]
