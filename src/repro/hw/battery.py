"""Polymer Li-Ion battery runtime model.

Section 5.1: *"We follow the popular Polymer Li-Ion battery model [8] to
estimate the lifetime of sensor node"* — reference [8] is Chen &
Rincon-Mora's electrical battery model, whose headline behaviour is that the
*usable* capacity depends nonlinearly on the discharge rate (rate-capacity
effect).  We model that with a Peukert-style derating on top of the nominal
energy capacity:

    usable_fraction(I) = (I_rated / I)^(k - 1)    for I > I_rated, else 1

with a small Peukert exponent ``k`` typical of Li-polymer chemistry (1.05).
At the microamp-level loads of wearable sensors the derating is negligible,
exactly as the paper's normalised lifetime plots assume — but the model is
there so heavier loads (e.g. the aggregator radio experiments) are not
overestimated.

Standard configurations: the 40 mAh sensor-node battery (Section 1) and the
2900 mAh iPhone-7-class aggregator battery (Section 5.6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BatteryModel:
    """One battery configuration.

    Attributes:
        capacity_mah: Rated charge capacity in milliamp-hours.
        voltage_v: Nominal terminal voltage.
        peukert_exponent: Rate-capacity exponent (1.0 = ideal source).
        rated_current_a: Discharge current at which the rated capacity was
            specified (the C/5 rate by default).
    """

    capacity_mah: float
    voltage_v: float
    peukert_exponent: float = 1.05
    rated_current_a: float | None = None

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise ConfigurationError("capacity and voltage must be positive")
        if self.peukert_exponent < 1.0:
            raise ConfigurationError("peukert_exponent must be >= 1.0")

    @property
    def energy_j(self) -> float:
        """Nominal stored energy in joules."""
        return self.capacity_mah * 1e-3 * 3600.0 * self.voltage_v

    @property
    def _rated_current(self) -> float:
        if self.rated_current_a is not None:
            return self.rated_current_a
        return self.capacity_mah * 1e-3 / 5.0  # C/5 rate

    def usable_energy_j(self, load_power_w: float) -> float:
        """Usable energy at a given constant load (rate-capacity derated)."""
        if load_power_w < 0:
            raise ConfigurationError("load power must be non-negative")
        if load_power_w == 0:
            return self.energy_j
        current = load_power_w / self.voltage_v
        rated = self._rated_current
        if current <= rated:
            return self.energy_j
        fraction = (rated / current) ** (self.peukert_exponent - 1.0)
        return self.energy_j * fraction

    def lifetime_hours(self, load_power_w: float) -> float:
        """Runtime in hours under a constant average load power."""
        if load_power_w <= 0:
            return float("inf")
        return self.usable_energy_j(load_power_w) / load_power_w / 3600.0


#: The 40 mAh coin-class battery of the wearable sensor node (Section 1).
SENSOR_BATTERY = BatteryModel(capacity_mah=40.0, voltage_v=3.0)

#: The 2900 mAh, 3.5 V aggregator (iPhone 7 class) battery (Section 5.6).
AGGREGATOR_BATTERY = BatteryModel(capacity_mah=2900.0, voltage_v=3.5)
