"""Silicon area model for the in-sensor analytic part.

The paper synthesises the functional cells with Design Compiler and reports
energy; area is the other axis every ASIC flow reports, and it constrains
how many cells a wearable die can host.  We model it the standard way an
early-phase estimate does:

- every primitive unit has a gate-equivalent (GE, 2-input-NAND) count from
  textbook datapath figures (32-bit ripple adder ~ 300 GE, array
  multiplier ~ 3000 GE, iterative divider/sqrt ~ 4000 GE, comparator
  ~ 100 GE);
- a cell's S-ALU instantiates one unit per op *type* it uses in SERIAL
  mode, ``width`` copies of each in PARALLEL mode, and one unit plus
  ``k``-stage registers in PIPELINE mode;
- buffers contribute 8 GE/bit for the output ports (Fig. 3's cell-private
  buffer);
- GE area per node comes from the standard-cell density of each process
  (um^2 per gate: ~5.0 at 130 nm, ~2.4 at 90 nm, ~0.8 at 45 nm).

Absolute mm^2 values are estimates; the relative comparisons (cell vs
cell, node vs node, and the "does the in-sensor part fit a sensor die"
sanity check) are what the tests and benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Mapping, Optional

from repro.errors import ConfigurationError
from repro.hw.energy import ALUMode

if TYPE_CHECKING:  # deferred: repro.cells depends on repro.hw, not vice versa
    from repro.cells.cell import FunctionalCell
    from repro.cells.topology import CellTopology

#: Gate-equivalent count of one 32-bit unit per op type.
UNIT_GATE_EQUIVALENTS: Mapping[str, int] = {
    "add": 300,
    "sub": 300,
    "mul": 3000,
    "div": 4000,
    "cmp": 100,
    "super": 4500,
}

#: Pipeline stage register cost (32-bit register + muxing), GE per stage.
PIPELINE_STAGE_GE = 250

#: Output-buffer cost, GE per bit of buffered data.
BUFFER_GE_PER_BIT = 8

#: Control/clock overhead per cell (enable logic, async clock, handshake).
CELL_CONTROL_GE = 400

#: Standard-cell density: um^2 of silicon per gate equivalent.
UM2_PER_GE = {"130nm": 5.0, "90nm": 2.4, "45nm": 0.8}


@dataclass(frozen=True)
class AreaReport:
    """Area accounting for a set of cells.

    Attributes:
        gate_equivalents: Total GE of the accounted cells.
        area_mm2: Silicon area at the chosen node.
        per_cell_ge: GE per cell name.
    """

    gate_equivalents: int
    area_mm2: float
    per_cell_ge: Mapping[str, int]


def cell_gate_equivalents(cell: "FunctionalCell") -> int:
    """Gate-equivalent estimate of one functional cell."""
    ge = CELL_CONTROL_GE
    op_types = [op for op, count in cell.op_counts.items() if count > 0]
    for op in op_types:
        if op not in UNIT_GATE_EQUIVALENTS:
            raise ConfigurationError(f"no area model for op {op!r}")
        unit = UNIT_GATE_EQUIVALENTS[op]
        if cell.mode is ALUMode.PARALLEL:
            ge += unit * (cell.parallel_width or 1)
        else:
            ge += unit
    if cell.mode is ALUMode.PIPELINE:
        ge += PIPELINE_STAGE_GE * 4  # default 4-stage pipeline
    for port in cell.outputs:
        ge += BUFFER_GE_PER_BIT * port.bits
    return ge


def area_report(
    topology: "CellTopology",
    node: str = "90nm",
    in_sensor: Optional[FrozenSet[str]] = None,
) -> AreaReport:
    """Area of (the in-sensor subset of) a topology at a process node.

    Args:
        topology: The cell dataflow graph.
        node: Process node name (must be one of :data:`UM2_PER_GE`).
        in_sensor: If given, only these cells are accounted (the in-sensor
            analytic part is what occupies sensor silicon; the aggregator
            side is software).
    """
    if node not in UM2_PER_GE:
        raise ConfigurationError(
            f"no density for node {node!r}; available: {sorted(UM2_PER_GE)}"
        )
    names = set(topology.cells) if in_sensor is None else set(in_sensor)
    unknown = names - set(topology.cells)
    if unknown:
        raise ConfigurationError(f"unknown cells: {sorted(unknown)}")
    per_cell: Dict[str, int] = {
        name: cell_gate_equivalents(topology.cell(name)) for name in sorted(names)
    }
    total = sum(per_cell.values())
    area_um2 = total * UM2_PER_GE[node]
    return AreaReport(
        gate_equivalents=total,
        area_mm2=area_um2 / 1e6,
        per_cell_ge=per_cell,
    )
