"""ARM Cortex-A8-class aggregator CPU model.

Section 5.6 uses gem5 + McPAT to simulate an ARM Cortex A8 running the
in-aggregator functional cells as C++ software.  We replace that with an
analytic per-operation model (DESIGN.md substitution #3):

- **throughput**: an effective rate of 500 M primitive-ops/s — an in-order
  A8 around 1 GHz sustaining ~0.5 useful datapath ops per cycle once loads,
  stores and loop control are amortised in;
- **active energy**: ~1.2 nJ per primitive op (0.6 W active core power at
  that throughput), two to three orders above the specialised in-sensor
  cells — the general-purpose overhead the paper's in-sensor ASIC avoids;
- **idle savings**: when the sensor node carries more of the pipeline, the
  aggregator spends more of each event window in a low-power state; the
  radio listen power during reception windows is accounted separately by
  the system simulator.

Only Figure 13 (relative aggregator-side energy, aggregator engine vs
cross-end engine) depends on this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError

#: Super-ops (exp/sqrt) expand to a libm call on the CPU — several tens of
#: primitive ops' worth of work.
_CPU_OP_WEIGHT = {
    "add": 1.0,
    "sub": 1.0,
    "mul": 1.0,
    "div": 4.0,
    "cmp": 1.0,
    "super": 25.0,
}


@dataclass(frozen=True)
class AggregatorCPU:
    """Analytic energy/latency model of the aggregator's application CPU.

    Attributes:
        ops_per_second: Effective primitive-op throughput.
        energy_per_op_j: Active energy per (weighted) primitive op.
        idle_power_w: Power in the low-power wait state between work.
        radio_listen_power_w: Receiver power while the aggregator radio is
            actively listening for a payload from the sensor.
    """

    ops_per_second: float = 500e6
    energy_per_op_j: float = 1.2e-9
    idle_power_w: float = 5e-3
    radio_listen_power_w: float = 30e-3

    def __post_init__(self) -> None:
        if self.ops_per_second <= 0 or self.energy_per_op_j <= 0:
            raise ConfigurationError("CPU rates must be positive")
        if self.idle_power_w < 0 or self.radio_listen_power_w < 0:
            raise ConfigurationError("powers must be non-negative")

    def weighted_ops(self, op_counts: Mapping[str, int]) -> float:
        """Weighted primitive-op count of a software cell execution."""
        total = 0.0
        for op, count in op_counts.items():
            if count < 0:
                raise ConfigurationError(f"negative count for op {op!r}")
            weight = _CPU_OP_WEIGHT.get(op)
            if weight is None:
                raise ConfigurationError(f"unknown CPU op {op!r}")
            total += weight * count
        return total

    def compute_time(self, op_counts: Mapping[str, int]) -> float:
        """Seconds to execute a software cell on the CPU."""
        return self.weighted_ops(op_counts) / self.ops_per_second

    def compute_energy(self, op_counts: Mapping[str, int]) -> float:
        """Joules to execute a software cell on the CPU."""
        return self.weighted_ops(op_counts) * self.energy_per_op_j

    def listen_energy(self, listen_seconds: float) -> float:
        """Energy spent keeping the radio in receive mode."""
        if listen_seconds < 0:
            raise ConfigurationError("listen time must be non-negative")
        return self.radio_listen_power_w * listen_seconds

    def idle_energy(self, idle_seconds: float) -> float:
        """Energy spent in the low-power state for the rest of the window."""
        if idle_seconds < 0:
            raise ConfigurationError("idle time must be non-negative")
        return self.idle_power_w * idle_seconds
