"""Byte-level data-plane framing: Q16.16 serialisation, CRC-16, sequencing.

The paper charges every transferred intermediate for TX/RX energy
(Section 4.5) but says nothing about how those Q16.16 words survive a
body-area channel.  Real wearable stacks frame their payloads: a header
carrying a version, flags, a sequence number and the payload length, the
payload itself, and a CRC trailer that lets the receiver reject corrupted
bits instead of silently folding them into downstream features.  This
module provides that layer as concrete bytes, so fault injection can flip
*real* bits and the CRC has to earn its detections:

- :func:`encode_values` / :func:`decode_values` -- the Q16.16 payload
  serialiser (big-endian two's-complement raw words, saturating exactly
  like the :mod:`repro.dsp.fixedpoint` datapath);
- :func:`crc16_ccitt` -- CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF),
  the 16-bit CRC BLE and IEEE 802.15.4 data frames use;
- :class:`FramingConfig`, :func:`encode_frame`, :func:`decode_frame`,
  :func:`fragment_payload` -- the frame codec and fragmenter;
- :class:`FrameReassembler` -- the receiver: verifies CRCs, tracks
  sequence numbers (duplicates, reordering, gaps) and exposes
  :class:`IntegrityCounters` including a silent-escape estimate.

Batch data plane
----------------

The per-frame codec above processes one byte at a time in Python, which
makes it the dominant cost of the fault-injection harnesses.  The batch
codec removes that: frames live in a padded ``(n_frames, max_len)``
``uint8`` matrix with per-frame lengths, and every per-byte loop becomes
a numpy operation vectorised *across frames* (the CRC's outer loop runs
over byte position, never over frames):

- :func:`batch_crc16_ccitt` -- CRC-16 of N byte strings at once,
  bit-identical to :func:`crc16_ccitt` per row;
- :func:`encode_values` / :func:`decode_values` are vectorised
  internally (``encode_values_scalar`` / ``decode_values_scalar`` keep
  the per-value reference implementations);
- :func:`encode_frames` / :func:`decode_frames` -- the batch frame
  codec, bit-identical to :func:`encode_frame` / :func:`decode_frame`
  per row;
- :func:`pack_byte_rows` / :func:`unpack_byte_rows` -- conversions
  between byte strings and the padded-matrix representation.

A 16-bit CRC is not a proof of integrity: a uniformly random corruption
passes with probability ``2**-16``.  The counters therefore carry an
*estimate* of silent escapes alongside the detected count, which is the
honest way to report CRC protection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dsp.fixedpoint import FixedPointFormat, Q16_16
from repro.errors import ConfigurationError, IntegrityError

#: Frame header layout: 1 byte version/flags, 2 bytes sequence number,
#: 2 bytes payload length — all big-endian.
HEADER_BYTES = 5

#: CRC-16 trailer width.
CRC_BYTES = 2

#: Current wire-format version (4 bits on the wire).
FRAME_VERSION = 1

#: Sequence numbers live in an unsigned 16-bit space and wrap.
SEQ_MODULUS = 1 << 16

#: Flag bit: a CRC-16 trailer follows the payload.
FLAG_CRC = 0x01

#: Flag bit: this frame is the last fragment of its payload.
FLAG_LAST = 0x02

#: Probability a uniformly random corruption passes a 16-bit CRC.
CRC16_ESCAPE_PROBABILITY = 2.0**-16


def _crc16_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) & 0xFFFF if crc & 0x8000 else (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_CRC16_TABLE = _crc16_table()


def crc16_ccitt(data: bytes, init: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE of ``data`` (poly 0x1021, MSB-first)."""
    crc = init & 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


#: The CRC table as a numpy lookup array, for the batch CRC.
_CRC16_TABLE_NP = np.asarray(_CRC16_TABLE, dtype=np.uint16)


def pack_byte_rows(rows: Sequence[bytes]) -> Tuple[np.ndarray, np.ndarray]:
    """Pack byte strings into a zero-padded ``(n, max_len)`` uint8 matrix.

    Returns:
        ``(matrix, lengths)`` — bytes of row ``i`` occupy
        ``matrix[i, :lengths[i]]``; the padding beyond each length is 0.
    """
    lengths = np.fromiter((len(r) for r in rows), dtype=np.int64,
                          count=len(rows))
    max_len = int(lengths.max()) if len(rows) else 0
    matrix = np.zeros((len(rows), max_len), dtype=np.uint8)
    if max_len:
        flat = np.frombuffer(b"".join(rows), dtype=np.uint8)
        row_idx = np.repeat(np.arange(len(rows)), lengths)
        col_idx = np.arange(lengths.sum()) - np.repeat(
            np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths
        )
        matrix[row_idx, col_idx] = flat
    return matrix, lengths


def unpack_byte_rows(matrix: np.ndarray, lengths: np.ndarray) -> List[bytes]:
    """Inverse of :func:`pack_byte_rows`: per-row byte strings."""
    data = np.ascontiguousarray(matrix, dtype=np.uint8)
    return [data[i, : int(n)].tobytes() for i, n in enumerate(lengths)]


def batch_crc16_ccitt(
    frames: Union[np.ndarray, Sequence[bytes]],
    lengths: Optional[np.ndarray] = None,
    init: int = 0xFFFF,
) -> np.ndarray:
    """CRC-16/CCITT-FALSE of N byte strings at once.

    Row ``i`` of the result equals ``crc16_ccitt(frames[i][:lengths[i]])``
    bit-for-bit.  The loop runs over *byte position* (bounded by the
    longest frame) while every CRC register update is vectorised across
    frames through the table as a uint16 lookup array — the transpose of
    the scalar loop, which walks bytes within one frame.

    Args:
        frames: ``(n, max_len)`` uint8 matrix (rows padded past their
            length) or a sequence of byte strings.
        lengths: Per-row byte counts; defaults to the full matrix width.
        init: CRC register preset (0xFFFF for CRC-16/CCITT-FALSE).

    Returns:
        ``(n,)`` uint16 CRC array.
    """
    if not isinstance(frames, np.ndarray):
        frames, lengths = pack_byte_rows(frames)
    matrix = np.ascontiguousarray(frames, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ConfigurationError("frames must be a (n_frames, max_len) matrix")
    n, max_len = matrix.shape
    if lengths is None:
        lengths = np.full(n, max_len, dtype=np.int64)
    else:
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.shape != (n,):
            raise ConfigurationError("lengths must have one entry per frame")
        if lengths.min(initial=0) < 0 or lengths.max(initial=0) > max_len:
            raise ConfigurationError("frame lengths must be in [0, max_len]")
    crc = np.full(n, init & 0xFFFF, dtype=np.uint16)
    limit = int(lengths.max(initial=0))
    for pos in range(limit):
        active = pos < lengths
        idx = ((crc >> np.uint16(8)) ^ matrix[:, pos]) & np.uint16(0xFF)
        crc = np.where(active, (crc << np.uint16(8)) ^ _CRC16_TABLE_NP[idx], crc)
    return crc


# -- Q16.16 payload serialisation ---------------------------------------------


def _serial_width(fmt: FixedPointFormat) -> int:
    """Word width in bytes; rejects non-byte-aligned formats."""
    if fmt.total_bits % 8 != 0:
        raise ConfigurationError(
            f"serialisation needs a byte-aligned format, got {fmt.total_bits} bits"
        )
    return fmt.total_bits // 8


def encode_values_scalar(values, fmt: FixedPointFormat = Q16_16) -> bytes:
    """Per-value reference implementation of :func:`encode_values`."""
    width = _serial_width(fmt)
    arr = np.asarray(values, dtype=np.float64).ravel()
    if not np.isfinite(arr).all():
        raise ConfigurationError("cannot serialise non-finite values")
    out = bytearray()
    for value in arr:
        raw = fmt.from_float(float(value))
        out += raw.to_bytes(width, "big", signed=True)
    return bytes(out)


def decode_values_scalar(data: bytes, fmt: FixedPointFormat = Q16_16) -> np.ndarray:
    """Per-value reference implementation of :func:`decode_values`."""
    width = _serial_width(fmt)
    if len(data) % width != 0:
        raise IntegrityError(
            f"payload length {len(data)} is not a multiple of the "
            f"{width}-byte word size"
        )
    values = [
        fmt.to_float(int.from_bytes(data[i : i + width], "big", signed=True))
        for i in range(0, len(data), width)
    ]
    return np.asarray(values, dtype=np.float64)


def quantize_raw(values, fmt: FixedPointFormat = Q16_16) -> np.ndarray:
    """Vectorised :meth:`FixedPointFormat.from_float`: raw words as int64.

    Applies the exact round-half-away / saturate semantics of the scalar
    datapath to a whole array at once.
    """
    arr = np.asarray(values, dtype=np.float64)
    scaled = np.where(
        arr >= 0,
        np.floor(arr * fmt.scale + 0.5),
        -np.floor(-arr * fmt.scale + 0.5),
    )
    return np.clip(scaled, fmt.min_raw, fmt.max_raw).astype(np.int64)


def encode_values(values, fmt: FixedPointFormat = Q16_16) -> bytes:
    """Serialise real values as big-endian two's-complement ``fmt`` words.

    Each value is quantised exactly as the fixed-point datapath would
    (round-half-away, saturate), so a value already on the ``fmt`` grid
    round-trips bit-identically — including both saturation boundaries.
    Vectorised; byte-for-byte identical to :func:`encode_values_scalar`.
    """
    width = _serial_width(fmt)
    if width > 8:  # beyond one int64 word: keep the arbitrary-width path
        return encode_values_scalar(values, fmt)
    arr = np.asarray(values, dtype=np.float64).ravel()
    if not np.isfinite(arr).all():
        raise ConfigurationError("cannot serialise non-finite values")
    return raw_to_bytes(quantize_raw(arr, fmt), width)


def raw_to_bytes(raw: np.ndarray, width: int) -> bytes:
    """Big-endian two's-complement serialisation of int64 raw words."""
    if width in (1, 2, 4, 8):
        return raw.astype(f">i{width}").tobytes()
    # Arbitrary width: arithmetic shifts of the sign-extended int64 word
    # yield exactly the low `width` two's-complement bytes.
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64) * 8
    return ((raw[:, None] >> shifts) & 0xFF).astype(np.uint8).tobytes()


def decode_values(data: bytes, fmt: FixedPointFormat = Q16_16) -> np.ndarray:
    """Inverse of :func:`encode_values`; returns float64 on the ``fmt`` grid.

    Vectorised; element-for-element identical to
    :func:`decode_values_scalar`.
    """
    width = _serial_width(fmt)
    # int64 reconstruction and exact float64 division both need the raw
    # word inside the double's 53-bit mantissa; wider formats fall back.
    if width > 8 or fmt.total_bits > 52:
        return decode_values_scalar(data, fmt)
    if len(data) % width != 0:
        raise IntegrityError(
            f"payload length {len(data)} is not a multiple of the "
            f"{width}-byte word size"
        )
    if width in (1, 2, 4, 8):
        raw = np.frombuffer(data, dtype=f">i{width}").astype(np.int64)
    else:
        chunks = np.frombuffer(data, dtype=np.uint8).reshape(-1, width)
        unsigned = np.zeros(len(chunks), dtype=np.int64)
        for col in range(width):
            unsigned = (unsigned << 8) | chunks[:, col]
        sign_bit = np.int64(1) << (8 * width - 1)
        raw = unsigned - ((unsigned & sign_bit) << 1)
    return raw / fmt.scale


# -- frame codec --------------------------------------------------------------


@dataclass(frozen=True)
class FramingConfig:
    """Wire-format parameters of the data-plane framing layer.

    Attributes:
        max_payload_bytes: Fragmentation threshold; payloads longer than
            this are split across frames.
        crc: Whether frames carry (and the receiver checks) a CRC-16
            trailer.  ``False`` models the no-protection baseline, where
            corruption is undetectable by construction.
        version: Wire-format version stamped into every header (4 bits).
    """

    max_payload_bytes: int = 64
    crc: bool = True
    version: int = FRAME_VERSION

    def __post_init__(self) -> None:
        if not 1 <= self.max_payload_bytes <= 0xFFFF:
            raise ConfigurationError("max_payload_bytes must be in [1, 65535]")
        if not 0 <= self.version <= 0xF:
            raise ConfigurationError("version must fit in 4 bits")

    @property
    def header_bits(self) -> int:
        """Header width in bits."""
        return HEADER_BYTES * 8

    @property
    def crc_bits(self) -> int:
        """Trailer width in bits (0 when CRC protection is off)."""
        return CRC_BYTES * 8 if self.crc else 0

    @property
    def overhead_bits_per_frame(self) -> int:
        """Header + trailer bits added to every frame."""
        return self.header_bits + self.crc_bits

    def frame_count(
        self, payload_bytes: Union[int, np.ndarray]
    ) -> Union[int, np.ndarray]:
        """Frames needed to carry a payload of ``payload_bytes`` bytes.

        Accepts an ndarray of sizes and returns an int64 array for batch
        link planning.
        """
        if isinstance(payload_bytes, np.ndarray):
            sizes = payload_bytes.astype(np.int64)
            if sizes.size and int(sizes.min()) < 0:
                raise ConfigurationError("payload_bytes must be non-negative")
            return np.where(sizes == 0, 0, -(-sizes // self.max_payload_bytes))
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be non-negative")
        if payload_bytes == 0:
            return 0
        return -(-payload_bytes // self.max_payload_bytes)

    def framed_bits(
        self, payload_bytes: Union[int, np.ndarray]
    ) -> Union[int, np.ndarray]:
        """Total on-air bits of a framed payload (excluding radio headers).

        ndarray-aware, like :meth:`frame_count`.
        """
        return 8 * payload_bytes + self.frame_count(payload_bytes) * (
            self.overhead_bits_per_frame
        )


@dataclass(frozen=True)
class Frame:
    """One decoded frame.

    Attributes:
        seq: 16-bit sequence number.
        payload: Payload bytes.
        last: Whether this frame closes its payload (FLAG_LAST).
        crc_protected: Whether the frame carried a verified CRC trailer.
    """

    seq: int
    payload: bytes
    last: bool
    crc_protected: bool


def encode_frame(
    payload: bytes,
    seq: int,
    config: FramingConfig,
    last: bool = True,
) -> bytes:
    """Encode one frame: header, payload, optional CRC-16 trailer."""
    if len(payload) > config.max_payload_bytes:
        raise ConfigurationError(
            f"payload of {len(payload)} bytes exceeds max_payload_bytes="
            f"{config.max_payload_bytes}; fragment it first"
        )
    flags = (FLAG_CRC if config.crc else 0) | (FLAG_LAST if last else 0)
    header = bytes(
        [
            (config.version << 4) | flags,
            (seq >> 8) & 0xFF,
            seq & 0xFF,
            (len(payload) >> 8) & 0xFF,
            len(payload) & 0xFF,
        ]
    )
    body = header + payload
    if config.crc:
        crc = crc16_ccitt(body)
        body += bytes([(crc >> 8) & 0xFF, crc & 0xFF])
    return body


def decode_frame(data: bytes, config: FramingConfig) -> Frame:
    """Decode and verify one frame; raises :class:`IntegrityError` on any
    malformation the wire format can detect (short frame, bad version,
    length mismatch, CRC failure).

    Without CRC protection only *structural* damage is detectable; bit
    flips confined to the payload decode successfully — the silent
    corruption this layer exists to expose.
    """
    if len(data) < HEADER_BYTES:
        raise IntegrityError(f"frame of {len(data)} bytes is shorter than a header")
    version = data[0] >> 4
    flags = data[0] & 0x0F
    if version != config.version:
        raise IntegrityError(
            f"frame version {version} does not match expected {config.version}"
        )
    has_crc = bool(flags & FLAG_CRC)
    if has_crc != config.crc:
        raise IntegrityError(
            "frame CRC flag does not match the configured wire format"
        )
    seq = (data[1] << 8) | data[2]
    length = (data[3] << 8) | data[4]
    expected = HEADER_BYTES + length + (CRC_BYTES if has_crc else 0)
    if len(data) != expected:
        raise IntegrityError(
            f"frame length {len(data)} does not match header-declared {expected}"
        )
    payload = data[HEADER_BYTES : HEADER_BYTES + length]
    if has_crc:
        stated = (data[-2] << 8) | data[-1]
        actual = crc16_ccitt(data[:-CRC_BYTES])
        if stated != actual:
            raise IntegrityError(
                f"CRC mismatch: trailer 0x{stated:04X}, computed 0x{actual:04X}"
            )
    return Frame(
        seq=seq,
        payload=bytes(payload),
        last=bool(flags & FLAG_LAST),
        crc_protected=has_crc,
    )


def fragment_payload(
    payload: bytes, seq_start: int, config: FramingConfig
) -> List[bytes]:
    """Split a payload into encoded frames with consecutive sequence numbers.

    The final fragment carries FLAG_LAST; an empty payload produces a
    single empty LAST frame so the receiver still sees a payload boundary.
    """
    chunks = [
        payload[i : i + config.max_payload_bytes]
        for i in range(0, len(payload), config.max_payload_bytes)
    ] or [b""]
    return [
        encode_frame(
            chunk,
            (seq_start + i) % SEQ_MODULUS,
            config,
            last=(i == len(chunks) - 1),
        )
        for i, chunk in enumerate(chunks)
    ]


# -- batch frame codec --------------------------------------------------------


def encode_frames(
    payloads: Sequence[bytes],
    seqs,
    config: FramingConfig,
    last=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Encode many frames at once; the batch twin of :func:`encode_frame`.

    Args:
        payloads: One payload per frame, each at most
            ``config.max_payload_bytes`` long.
        seqs: Per-frame sequence numbers (array-like; wrapped mod
            :data:`SEQ_MODULUS`).
        config: Wire-format parameters.
        last: FLAG_LAST per frame — ``None`` (all last, matching the
            :func:`encode_frame` default), a single bool, or a bool
            array.

    Returns:
        ``(matrix, lengths)``: a zero-padded ``(n, max_len)`` uint8
        matrix and per-frame encoded lengths.  Row ``i`` trimmed to
        ``lengths[i]`` is byte-identical to the scalar
        ``encode_frame(payloads[i], seqs[i], config, last[i])``.
    """
    n = len(payloads)
    plens = np.fromiter((len(p) for p in payloads), dtype=np.int64, count=n)
    if n and int(plens.max()) > config.max_payload_bytes:
        worst = int(plens.max())
        raise ConfigurationError(
            f"payload of {worst} bytes exceeds max_payload_bytes="
            f"{config.max_payload_bytes}; fragment it first"
        )
    seq_arr = np.mod(np.asarray(seqs, dtype=np.int64), SEQ_MODULUS)
    if seq_arr.shape != (n,):
        raise ConfigurationError(
            f"seqs must be a length-{n} vector, got shape {seq_arr.shape}"
        )
    if last is None:
        last_arr = np.ones(n, dtype=bool)
    else:
        last_arr = np.broadcast_to(np.asarray(last, dtype=bool), (n,))
    body_lens = HEADER_BYTES + plens
    total_lens = body_lens + (CRC_BYTES if config.crc else 0)
    if n == 0:
        return np.zeros((0, 0), dtype=np.uint8), total_lens
    matrix = np.zeros((n, int(total_lens.max())), dtype=np.uint8)
    flags = (FLAG_CRC if config.crc else 0) | np.where(last_arr, FLAG_LAST, 0)
    matrix[:, 0] = (config.version << 4) | flags
    matrix[:, 1] = (seq_arr >> 8) & 0xFF
    matrix[:, 2] = seq_arr & 0xFF
    matrix[:, 3] = (plens >> 8) & 0xFF
    matrix[:, 4] = plens & 0xFF
    if int(plens.max()):
        payload_matrix, _ = pack_byte_rows(payloads)
        matrix[:, HEADER_BYTES : HEADER_BYTES + payload_matrix.shape[1]] = (
            payload_matrix
        )
    if config.crc:
        crc = batch_crc16_ccitt(matrix, lengths=body_lens)
        rows = np.arange(n)
        matrix[rows, body_lens] = (crc >> np.uint16(8)).astype(np.uint8)
        matrix[rows, body_lens + 1] = crc.astype(np.uint8)
    return matrix, total_lens


@dataclass
class FrameBatch:
    """Per-frame verdicts and decoded fields from :func:`decode_frames`.

    Frame ``i`` mirrors the scalar :func:`decode_frame`: either
    ``ok[i]`` with identical seq/payload/last fields, or ``not ok[i]``
    with ``errors[i]`` carrying the exact :class:`IntegrityError`
    message the scalar decoder would have raised.
    """

    ok: np.ndarray
    seq: np.ndarray
    last: np.ndarray
    crc_protected: np.ndarray
    payloads: List[Optional[bytes]]
    errors: List[Optional[str]]

    def __len__(self) -> int:
        return len(self.payloads)

    def frame(self, i: int) -> Frame:
        """Frame ``i`` as a scalar :class:`Frame`; raises its
        :class:`IntegrityError` when the frame was rejected."""
        if not self.ok[i]:
            raise IntegrityError(self.errors[i])
        payload = self.payloads[i]
        assert payload is not None
        return Frame(
            seq=int(self.seq[i]),
            payload=payload,
            last=bool(self.last[i]),
            crc_protected=bool(self.crc_protected[i]),
        )


def decode_frames(
    frames: Union[np.ndarray, Sequence[bytes]],
    config: FramingConfig,
    lengths: Optional[np.ndarray] = None,
) -> FrameBatch:
    """Decode and verify many frames at once; batch twin of
    :func:`decode_frame`.

    Accepts either a padded ``(n, max_len)`` uint8 matrix with
    per-frame ``lengths`` (rows assumed full-width when omitted) or a
    sequence of byte strings.  Verdict priority matches the scalar
    decoder exactly: short frame, then version, CRC-flag and length
    mismatches, then CRC failure.
    """
    if isinstance(frames, np.ndarray):
        matrix = np.ascontiguousarray(frames, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ConfigurationError(
                f"frames must be a 2-D byte matrix, got shape {matrix.shape}"
            )
        if lengths is None:
            lens = np.full(len(matrix), matrix.shape[1], dtype=np.int64)
        else:
            lens = np.asarray(lengths, dtype=np.int64)
            if lens.shape != (len(matrix),):
                raise ConfigurationError(
                    f"lengths must be a length-{len(matrix)} vector, "
                    f"got shape {lens.shape}"
                )
            if len(matrix) and not (
                0 <= int(lens.min()) and int(lens.max()) <= matrix.shape[1]
            ):
                raise ConfigurationError(
                    "lengths must lie in [0, max_len] of the frame matrix"
                )
    else:
        matrix, lens = pack_byte_rows(list(frames))
    n = len(matrix)
    # Pad so header columns are always addressable; the padding is only
    # read for frames already rejected as shorter than a header.
    if matrix.shape[1] < HEADER_BYTES:
        matrix = np.pad(matrix, ((0, 0), (0, HEADER_BYTES - matrix.shape[1])))
    b0 = matrix[:, 0].astype(np.int64)
    version = b0 >> 4
    flags = b0 & 0x0F
    seq = (matrix[:, 1].astype(np.int64) << 8) | matrix[:, 2]
    length = (matrix[:, 3].astype(np.int64) << 8) | matrix[:, 4]
    has_crc = (flags & FLAG_CRC) != 0
    expected = HEADER_BYTES + length + np.where(has_crc, CRC_BYTES, 0)
    # Error codes in scalar check order; first failure wins per frame.
    err = np.zeros(n, dtype=np.int8)
    err = np.where(lens < HEADER_BYTES, 1, err)
    err = np.where((err == 0) & (version != config.version), 2, err)
    err = np.where((err == 0) & (has_crc != config.crc), 3, err)
    err = np.where((err == 0) & (lens != expected), 4, err)
    stated = computed = None
    if config.crc and n:
        width = matrix.shape[1]
        body_lens = np.clip(lens - CRC_BYTES, 0, width)
        computed = batch_crc16_ccitt(matrix, lengths=body_lens)
        rows = np.arange(n)
        hi = matrix[rows, np.clip(lens - 2, 0, width - 1)].astype(np.int64)
        lo = matrix[rows, np.clip(lens - 1, 0, width - 1)].astype(np.int64)
        stated = (hi << 8) | lo
        err = np.where((err == 0) & (stated != computed), 5, err)
    ok = err == 0
    payloads: List[Optional[bytes]] = [None] * n
    errors: List[Optional[str]] = [None] * n
    for i in np.nonzero(ok)[0]:
        payloads[i] = matrix[i, HEADER_BYTES : HEADER_BYTES + int(length[i])].tobytes()
    for i in np.nonzero(~ok)[0]:
        code = int(err[i])
        if code == 1:
            errors[i] = f"frame of {int(lens[i])} bytes is shorter than a header"
        elif code == 2:
            errors[i] = (
                f"frame version {int(version[i])} does not match expected "
                f"{config.version}"
            )
        elif code == 3:
            errors[i] = "frame CRC flag does not match the configured wire format"
        elif code == 4:
            errors[i] = (
                f"frame length {int(lens[i])} does not match header-declared "
                f"{int(expected[i])}"
            )
        else:
            assert stated is not None and computed is not None
            errors[i] = (
                f"CRC mismatch: trailer 0x{int(stated[i]):04X}, "
                f"computed 0x{int(computed[i]):04X}"
            )
    return FrameBatch(
        ok=ok,
        seq=seq,
        last=(flags & FLAG_LAST) != 0,
        crc_protected=has_crc,
        payloads=payloads,
        errors=errors,
    )


# -- receiver ----------------------------------------------------------------


@dataclass
class IntegrityCounters:
    """Receiver-side integrity bookkeeping.

    Attributes:
        frames_ok: Frames accepted (structure and CRC verified).
        frames_corrupt: Frames rejected by a failed integrity check.
        frames_duplicate: Frames discarded as duplicates / stale reorders.
        sequence_gaps: Gap events (a jump past the expected sequence number).
        frames_missing: Frames the gaps imply were never received.
        payloads_ok: Complete payloads reassembled.
    """

    frames_ok: int = 0
    frames_corrupt: int = 0
    frames_duplicate: int = 0
    sequence_gaps: int = 0
    frames_missing: int = 0
    payloads_ok: int = 0

    @property
    def frames_total(self) -> int:
        """Frames pushed into the reassembler."""
        return self.frames_ok + self.frames_corrupt + self.frames_duplicate

    @property
    def silent_escape_estimate(self) -> float:
        """Expected corrupted frames that *passed* the CRC.

        Each detected corruption is one draw that failed the 16-bit check;
        with escape probability ``q = 2**-16`` the expected number of
        undetected companions is ``detected * q / (1 - q)``.  Without CRC
        protection every corruption is silent and this estimate is
        meaningless (the detector never fires), so it stays 0 — silent
        corruption must then be measured end-to-end instead.
        """
        q = CRC16_ESCAPE_PROBABILITY
        return self.frames_corrupt * q / (1.0 - q)


class FrameReassembler:
    """Receiver-side frame verifier, sequencer and payload reassembler.

    Feed raw frame bytes to :meth:`push`; complete payloads come back once
    their LAST fragment arrives.  Corrupted frames are counted and
    dropped; duplicate and reordered frames are counted and discarded;
    sequence jumps are counted as gaps (with the number of frames the jump
    skipped) and the reassembler resynchronises on the new number.

    Args:
        config: Wire-format parameters (must match the sender's).
    """

    def __init__(self, config: FramingConfig) -> None:
        self.config = config
        self.counters = IntegrityCounters()
        self._expected_seq: Optional[int] = None
        self._fragments: List[bytes] = []

    def reset(self) -> None:
        """Clear counters, sequence state and any partial payload."""
        self.counters = IntegrityCounters()
        self._expected_seq = None
        self._fragments = []

    def push(self, raw: bytes) -> Optional[bytes]:
        """Process one received frame; returns a payload when complete."""
        try:
            frame = decode_frame(raw, self.config)
        except IntegrityError:
            self.counters.frames_corrupt += 1
            return None
        if self._expected_seq is not None:
            distance = (frame.seq - self._expected_seq) % SEQ_MODULUS
            if distance == 0:
                pass
            elif distance < SEQ_MODULUS // 2:
                # Forward jump: `distance` frames never arrived.
                self.counters.sequence_gaps += 1
                self.counters.frames_missing += distance
                self._fragments = []
            else:
                # A sequence number from the past: duplicate or stale reorder.
                self.counters.frames_duplicate += 1
                return None
        self.counters.frames_ok += 1
        self._expected_seq = (frame.seq + 1) % SEQ_MODULUS
        self._fragments.append(frame.payload)
        if frame.last:
            payload = b"".join(self._fragments)
            self._fragments = []
            self.counters.payloads_ok += 1
            return payload
        return None
