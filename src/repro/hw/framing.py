"""Byte-level data-plane framing: Q16.16 serialisation, CRC-16, sequencing.

The paper charges every transferred intermediate for TX/RX energy
(Section 4.5) but says nothing about how those Q16.16 words survive a
body-area channel.  Real wearable stacks frame their payloads: a header
carrying a version, flags, a sequence number and the payload length, the
payload itself, and a CRC trailer that lets the receiver reject corrupted
bits instead of silently folding them into downstream features.  This
module provides that layer as concrete bytes, so fault injection can flip
*real* bits and the CRC has to earn its detections:

- :func:`encode_values` / :func:`decode_values` -- the Q16.16 payload
  serialiser (big-endian two's-complement raw words, saturating exactly
  like the :mod:`repro.dsp.fixedpoint` datapath);
- :func:`crc16_ccitt` -- CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF),
  the 16-bit CRC BLE and IEEE 802.15.4 data frames use;
- :class:`FramingConfig`, :func:`encode_frame`, :func:`decode_frame`,
  :func:`fragment_payload` -- the frame codec and fragmenter;
- :class:`FrameReassembler` -- the receiver: verifies CRCs, tracks
  sequence numbers (duplicates, reordering, gaps) and exposes
  :class:`IntegrityCounters` including a silent-escape estimate.

A 16-bit CRC is not a proof of integrity: a uniformly random corruption
passes with probability ``2**-16``.  The counters therefore carry an
*estimate* of silent escapes alongside the detected count, which is the
honest way to report CRC protection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.dsp.fixedpoint import FixedPointFormat, Q16_16
from repro.errors import ConfigurationError, IntegrityError

#: Frame header layout: 1 byte version/flags, 2 bytes sequence number,
#: 2 bytes payload length — all big-endian.
HEADER_BYTES = 5

#: CRC-16 trailer width.
CRC_BYTES = 2

#: Current wire-format version (4 bits on the wire).
FRAME_VERSION = 1

#: Sequence numbers live in an unsigned 16-bit space and wrap.
SEQ_MODULUS = 1 << 16

#: Flag bit: a CRC-16 trailer follows the payload.
FLAG_CRC = 0x01

#: Flag bit: this frame is the last fragment of its payload.
FLAG_LAST = 0x02

#: Probability a uniformly random corruption passes a 16-bit CRC.
CRC16_ESCAPE_PROBABILITY = 2.0**-16


def _crc16_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) & 0xFFFF if crc & 0x8000 else (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_CRC16_TABLE = _crc16_table()


def crc16_ccitt(data: bytes, init: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE of ``data`` (poly 0x1021, MSB-first)."""
    crc = init & 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


# -- Q16.16 payload serialisation ---------------------------------------------


def encode_values(
    values, fmt: FixedPointFormat = Q16_16
) -> bytes:
    """Serialise real values as big-endian two's-complement ``fmt`` words.

    Each value is quantised exactly as the fixed-point datapath would
    (round-half-away, saturate), so a value already on the ``fmt`` grid
    round-trips bit-identically — including both saturation boundaries.
    """
    if fmt.total_bits % 8 != 0:
        raise ConfigurationError(
            f"serialisation needs a byte-aligned format, got {fmt.total_bits} bits"
        )
    width = fmt.total_bits // 8
    arr = np.asarray(values, dtype=np.float64).ravel()
    if not np.isfinite(arr).all():
        raise ConfigurationError("cannot serialise non-finite values")
    out = bytearray()
    for value in arr:
        raw = fmt.from_float(float(value))
        out += raw.to_bytes(width, "big", signed=True)
    return bytes(out)


def decode_values(data: bytes, fmt: FixedPointFormat = Q16_16) -> np.ndarray:
    """Inverse of :func:`encode_values`; returns float64 on the ``fmt`` grid."""
    if fmt.total_bits % 8 != 0:
        raise ConfigurationError(
            f"serialisation needs a byte-aligned format, got {fmt.total_bits} bits"
        )
    width = fmt.total_bits // 8
    if len(data) % width != 0:
        raise IntegrityError(
            f"payload length {len(data)} is not a multiple of the "
            f"{width}-byte word size"
        )
    values = [
        fmt.to_float(int.from_bytes(data[i : i + width], "big", signed=True))
        for i in range(0, len(data), width)
    ]
    return np.asarray(values, dtype=np.float64)


# -- frame codec --------------------------------------------------------------


@dataclass(frozen=True)
class FramingConfig:
    """Wire-format parameters of the data-plane framing layer.

    Attributes:
        max_payload_bytes: Fragmentation threshold; payloads longer than
            this are split across frames.
        crc: Whether frames carry (and the receiver checks) a CRC-16
            trailer.  ``False`` models the no-protection baseline, where
            corruption is undetectable by construction.
        version: Wire-format version stamped into every header (4 bits).
    """

    max_payload_bytes: int = 64
    crc: bool = True
    version: int = FRAME_VERSION

    def __post_init__(self) -> None:
        if not 1 <= self.max_payload_bytes <= 0xFFFF:
            raise ConfigurationError("max_payload_bytes must be in [1, 65535]")
        if not 0 <= self.version <= 0xF:
            raise ConfigurationError("version must fit in 4 bits")

    @property
    def header_bits(self) -> int:
        """Header width in bits."""
        return HEADER_BYTES * 8

    @property
    def crc_bits(self) -> int:
        """Trailer width in bits (0 when CRC protection is off)."""
        return CRC_BYTES * 8 if self.crc else 0

    @property
    def overhead_bits_per_frame(self) -> int:
        """Header + trailer bits added to every frame."""
        return self.header_bits + self.crc_bits

    def frame_count(self, payload_bytes: int) -> int:
        """Frames needed to carry a payload of ``payload_bytes`` bytes."""
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be non-negative")
        if payload_bytes == 0:
            return 0
        return -(-payload_bytes // self.max_payload_bytes)

    def framed_bits(self, payload_bytes: int) -> int:
        """Total on-air bits of a framed payload (excluding radio headers)."""
        return 8 * payload_bytes + self.frame_count(payload_bytes) * (
            self.overhead_bits_per_frame
        )


@dataclass(frozen=True)
class Frame:
    """One decoded frame.

    Attributes:
        seq: 16-bit sequence number.
        payload: Payload bytes.
        last: Whether this frame closes its payload (FLAG_LAST).
        crc_protected: Whether the frame carried a verified CRC trailer.
    """

    seq: int
    payload: bytes
    last: bool
    crc_protected: bool


def encode_frame(
    payload: bytes,
    seq: int,
    config: FramingConfig,
    last: bool = True,
) -> bytes:
    """Encode one frame: header, payload, optional CRC-16 trailer."""
    if len(payload) > config.max_payload_bytes:
        raise ConfigurationError(
            f"payload of {len(payload)} bytes exceeds max_payload_bytes="
            f"{config.max_payload_bytes}; fragment it first"
        )
    flags = (FLAG_CRC if config.crc else 0) | (FLAG_LAST if last else 0)
    header = bytes(
        [
            (config.version << 4) | flags,
            (seq >> 8) & 0xFF,
            seq & 0xFF,
            (len(payload) >> 8) & 0xFF,
            len(payload) & 0xFF,
        ]
    )
    body = header + payload
    if config.crc:
        crc = crc16_ccitt(body)
        body += bytes([(crc >> 8) & 0xFF, crc & 0xFF])
    return body


def decode_frame(data: bytes, config: FramingConfig) -> Frame:
    """Decode and verify one frame; raises :class:`IntegrityError` on any
    malformation the wire format can detect (short frame, bad version,
    length mismatch, CRC failure).

    Without CRC protection only *structural* damage is detectable; bit
    flips confined to the payload decode successfully — the silent
    corruption this layer exists to expose.
    """
    if len(data) < HEADER_BYTES:
        raise IntegrityError(f"frame of {len(data)} bytes is shorter than a header")
    version = data[0] >> 4
    flags = data[0] & 0x0F
    if version != config.version:
        raise IntegrityError(
            f"frame version {version} does not match expected {config.version}"
        )
    has_crc = bool(flags & FLAG_CRC)
    if has_crc != config.crc:
        raise IntegrityError(
            "frame CRC flag does not match the configured wire format"
        )
    seq = (data[1] << 8) | data[2]
    length = (data[3] << 8) | data[4]
    expected = HEADER_BYTES + length + (CRC_BYTES if has_crc else 0)
    if len(data) != expected:
        raise IntegrityError(
            f"frame length {len(data)} does not match header-declared {expected}"
        )
    payload = data[HEADER_BYTES : HEADER_BYTES + length]
    if has_crc:
        stated = (data[-2] << 8) | data[-1]
        actual = crc16_ccitt(data[:-CRC_BYTES])
        if stated != actual:
            raise IntegrityError(
                f"CRC mismatch: trailer 0x{stated:04X}, computed 0x{actual:04X}"
            )
    return Frame(
        seq=seq,
        payload=bytes(payload),
        last=bool(flags & FLAG_LAST),
        crc_protected=has_crc,
    )


def fragment_payload(
    payload: bytes, seq_start: int, config: FramingConfig
) -> List[bytes]:
    """Split a payload into encoded frames with consecutive sequence numbers.

    The final fragment carries FLAG_LAST; an empty payload produces a
    single empty LAST frame so the receiver still sees a payload boundary.
    """
    chunks = [
        payload[i : i + config.max_payload_bytes]
        for i in range(0, len(payload), config.max_payload_bytes)
    ] or [b""]
    return [
        encode_frame(
            chunk,
            (seq_start + i) % SEQ_MODULUS,
            config,
            last=(i == len(chunks) - 1),
        )
        for i, chunk in enumerate(chunks)
    ]


# -- receiver ----------------------------------------------------------------


@dataclass
class IntegrityCounters:
    """Receiver-side integrity bookkeeping.

    Attributes:
        frames_ok: Frames accepted (structure and CRC verified).
        frames_corrupt: Frames rejected by a failed integrity check.
        frames_duplicate: Frames discarded as duplicates / stale reorders.
        sequence_gaps: Gap events (a jump past the expected sequence number).
        frames_missing: Frames the gaps imply were never received.
        payloads_ok: Complete payloads reassembled.
    """

    frames_ok: int = 0
    frames_corrupt: int = 0
    frames_duplicate: int = 0
    sequence_gaps: int = 0
    frames_missing: int = 0
    payloads_ok: int = 0

    @property
    def frames_total(self) -> int:
        """Frames pushed into the reassembler."""
        return self.frames_ok + self.frames_corrupt + self.frames_duplicate

    @property
    def silent_escape_estimate(self) -> float:
        """Expected corrupted frames that *passed* the CRC.

        Each detected corruption is one draw that failed the 16-bit check;
        with escape probability ``q = 2**-16`` the expected number of
        undetected companions is ``detected * q / (1 - q)``.  Without CRC
        protection every corruption is silent and this estimate is
        meaningless (the detector never fires), so it stays 0 — silent
        corruption must then be measured end-to-end instead.
        """
        q = CRC16_ESCAPE_PROBABILITY
        return self.frames_corrupt * q / (1.0 - q)


class FrameReassembler:
    """Receiver-side frame verifier, sequencer and payload reassembler.

    Feed raw frame bytes to :meth:`push`; complete payloads come back once
    their LAST fragment arrives.  Corrupted frames are counted and
    dropped; duplicate and reordered frames are counted and discarded;
    sequence jumps are counted as gaps (with the number of frames the jump
    skipped) and the reassembler resynchronises on the new number.

    Args:
        config: Wire-format parameters (must match the sender's).
    """

    def __init__(self, config: FramingConfig) -> None:
        self.config = config
        self.counters = IntegrityCounters()
        self._expected_seq: Optional[int] = None
        self._fragments: List[bytes] = []

    def reset(self) -> None:
        """Clear counters, sequence state and any partial payload."""
        self.counters = IntegrityCounters()
        self._expected_seq = None
        self._fragments = []

    def push(self, raw: bytes) -> Optional[bytes]:
        """Process one received frame; returns a payload when complete."""
        try:
            frame = decode_frame(raw, self.config)
        except IntegrityError:
            self.counters.frames_corrupt += 1
            return None
        if self._expected_seq is not None:
            distance = (frame.seq - self._expected_seq) % SEQ_MODULUS
            if distance == 0:
                pass
            elif distance < SEQ_MODULUS // 2:
                # Forward jump: `distance` frames never arrived.
                self.counters.sequence_gaps += 1
                self.counters.frames_missing += distance
                self._fragments = []
            else:
                # A sequence number from the past: duplicate or stale reorder.
                self.counters.frames_duplicate += 1
                return None
        self.counters.frames_ok += 1
        self._expected_seq = (frame.seq + 1) % SEQ_MODULUS
        self._fragments.append(frame.payload)
        if frame.last:
            payload = b"".join(self._fragments)
            self._fragments = []
            self.counters.payloads_ok += 1
            return payload
        return None
