"""Wireless transceiver models and the inter-end communication link.

Section 4.2 evaluates three published ultra-low-power medical-implant
transceivers, reduced (as the paper itself does) to their energy-per-bit
figures:

========  ==================  ============  ============  ==========
Model     Reference design    Tx (nJ/bit)   Rx (nJ/bit)   Data rate
========  ==================  ============  ============  ==========
Model 1   FSK/MSK + OOK [5]   2.90          3.30          1 Mbps
Model 2   current-reuse [29]  1.53          1.71          2 Mbps
Model 3   MedRadio OOK [30]   0.42          0.295         2 Mbps
========  ==================  ============  ============  ==========

The common protocol carries an 8-bit header per payload (Section 4.2).
Bluetooth Low Energy is deliberately excluded, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.arq import ARQConfig, UNBOUNDED_ARQ
from repro.hw.framing import FramingConfig

_NJ = 1e-9


@dataclass(frozen=True)
class TransceiverModel:
    """Energy-per-bit model of one wireless transceiver design.

    Attributes:
        name: Display name ("model1"..."model3").
        tx_nj_per_bit: Average transmission energy, nJ/bit (paper's Ct).
        rx_nj_per_bit: Average reception energy, nJ/bit (paper's Cr).
        data_rate_bps: Link data rate, bits/second (drives the delay model).
        header_bits: Protocol header prepended to each payload.
    """

    name: str
    tx_nj_per_bit: float
    rx_nj_per_bit: float
    data_rate_bps: float
    header_bits: int = 8

    def __post_init__(self) -> None:
        if self.tx_nj_per_bit <= 0 or self.rx_nj_per_bit <= 0:
            raise ConfigurationError("energy-per-bit must be positive")
        if self.data_rate_bps <= 0:
            raise ConfigurationError("data rate must be positive")
        if self.header_bits < 0:
            raise ConfigurationError("header_bits must be non-negative")


#: The three evaluated transceivers (Section 4.2), keyed by short name.
WIRELESS_MODELS: Dict[str, TransceiverModel] = {
    "model1": TransceiverModel("model1", 2.90, 3.30, 1e6),
    "model2": TransceiverModel("model2", 1.53, 1.71, 2e6),
    "model3": TransceiverModel("model3", 0.42, 0.295, 2e6),
}


#: Bluetooth Low Energy, for the exclusion study only.  The paper (§4.2)
#: deliberately leaves BLE out, citing measurements [47] that its
#: energy-per-bit sits orders of magnitude above the uW-level implant
#: radios; this model (effective ~50 nJ/bit with protocol overheads at
#: 1 Mbps application throughput) makes that argument quantitative in
#: ``benchmarks/test_bench_ablations.py``.
BLE_MODEL = TransceiverModel("ble", 50.0, 55.0, 1e6)


def get_wireless_model(name: str) -> TransceiverModel:
    """Look up a transceiver model by name (e.g. ``"model2"``)."""
    if name not in WIRELESS_MODELS:
        raise ConfigurationError(
            f"unknown wireless model {name!r}; available: {sorted(WIRELESS_MODELS)}"
        )
    return WIRELESS_MODELS[name]


class WirelessLink:
    """The inter-end communication link between sensor node and aggregator.

    Implements Eq. 3 of the paper::

        Ew = Nt * B * Ct + Nr * B * Cr

    plus the 8-bit protocol header per payload and the serialisation delay
    at the transceiver's data rate.

    A body-area channel is not loss-free: ``loss_rate`` models stop-and-wait
    retransmission under i.i.d. payload loss, inflating every energy and
    delay figure by the expected transmission count (acknowledgement
    traffic is folded into the per-bit figures, as the published
    transceiver measurements already include protocol overhead).  The
    paper's evaluation corresponds to ``loss_rate = 0``.

    Without an ``arq`` policy the legacy *unbounded* stop-and-wait model
    applies: expectation ``1 / (1 - p)``, which diverges as ``p`` tends to
    1, so ``loss_rate = 1`` is rejected deterministically.  With a bounded
    :class:`~repro.hw.arq.ARQConfig` the truncated-geometric model applies
    instead: every figure stays finite for all ``p`` in ``[0, 1]`` (it
    saturates at ``max_retries + 1`` transmissions) at the cost of a
    nonzero payload-drop probability, which the resilience layer
    (:mod:`repro.sim.faults`, :mod:`repro.core.degrade`) handles.

    Args:
        model: Transceiver model (name or object).
        loss_rate: Per-payload loss probability; ``[0, 1)`` without ARQ,
            ``[0, 1]`` with a bounded ARQ policy.
        arq: Retransmission policy; None selects the legacy unbounded
            stop-and-wait model (the paper-compatible default).
        framing: Optional data-plane framing (:mod:`repro.hw.framing`).
            ``None`` reproduces the paper's zero-overhead accounting
            bit-for-bit: one 8-bit radio header per payload, no frame
            headers, no CRC.  With a :class:`FramingConfig` the payload is
            serialised into frames and every frame is charged its header,
            its optional CRC-16 trailer and its own radio header — the
            honest cost of wire integrity.
    """

    def __init__(
        self,
        model: TransceiverModel | str = "model2",
        loss_rate: float = 0.0,
        arq: Optional[ARQConfig] = None,
        framing: Optional[FramingConfig] = None,
    ) -> None:
        self.model = get_wireless_model(model) if isinstance(model, str) else model
        self.arq = UNBOUNDED_ARQ if arq is None else arq
        self.framing = framing
        if not 0.0 <= loss_rate <= 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1]")
        if loss_rate == 1.0 and not self.arq.bounded:
            raise ConfigurationError(
                "loss_rate = 1 diverges under unbounded stop-and-wait "
                "(expected transmissions 1/(1-p)); pass a bounded ARQConfig "
                "to saturate at max_retries + 1 transmissions instead"
            )
        self.loss_rate = float(loss_rate)

    @property
    def expected_transmissions(self) -> float:
        """Mean transmissions per payload under the loss/ARQ model."""
        return self.arq.expected_transmissions(self.loss_rate)

    @property
    def delivery_probability(self) -> float:
        """Probability a payload is delivered within the ARQ try budget."""
        return self.arq.delivery_probability(self.loss_rate)

    def payload_bits(self, n_values: int, bits_per_value: int) -> int:
        """Total on-air bits for one payload of ``n_values`` samples.

        Without framing this is the paper's accounting: raw value bits
        plus one 8-bit radio header.  With framing, the values are packed
        into bytes and fragmented into frames, and each frame pays its
        5-byte header, its CRC-16 trailer (when enabled) and its own radio
        header.
        """
        if n_values < 0 or bits_per_value <= 0:
            raise ConfigurationError("invalid payload shape")
        if n_values == 0:
            return 0
        if self.framing is None:
            return n_values * bits_per_value + self.model.header_bits
        payload_bytes = -(-n_values * bits_per_value // 8)
        n_frames = self.framing.frame_count(payload_bytes)
        return (
            self.framing.framed_bits(payload_bytes)
            + n_frames * self.model.header_bits
        )

    def payload_bits_batch(
        self, n_values: np.ndarray, bits_per_value: int
    ) -> np.ndarray:
        """Vectorized :meth:`payload_bits` over an array of payload sizes.

        Applies the same accounting — including framed fragmentation when
        the link carries a :class:`~repro.hw.framing.FramingConfig` — to
        every entry at once, riding the ndarray-aware
        :meth:`FramingConfig.frame_count` / :meth:`FramingConfig.framed_bits`
        planning helpers.  Entry ``i`` equals
        ``payload_bits(n_values[i], bits_per_value)`` exactly.
        """
        sizes = np.asarray(n_values, dtype=np.int64)
        if sizes.ndim != 1:
            raise ConfigurationError("n_values must be one-dimensional")
        if bits_per_value <= 0 or (sizes < 0).any():
            raise ConfigurationError("invalid payload shape")
        if self.framing is None:
            bits = sizes * bits_per_value + self.model.header_bits
            return np.where(sizes == 0, 0, bits)
        payload_bytes = -(-sizes * bits_per_value // 8)
        n_frames = self.framing.frame_count(payload_bytes)
        bits = (
            self.framing.framed_bits(payload_bytes)
            + n_frames * self.model.header_bits
        )
        return np.where(sizes == 0, 0, bits)

    def framing_overhead_bits(self, n_values: int, bits_per_value: int) -> int:
        """Extra on-air bits the framing layer adds over the legacy path."""
        if self.framing is None or n_values == 0:
            return 0
        legacy = n_values * bits_per_value + self.model.header_bits
        return self.payload_bits(n_values, bits_per_value) - legacy

    def tx_energy(self, n_values: int, bits_per_value: int) -> float:
        """Sensor-side energy (J) to transmit one payload (retries included)."""
        return (
            self.payload_bits(n_values, bits_per_value)
            * self.model.tx_nj_per_bit
            * _NJ
            * self.expected_transmissions
        )

    def rx_energy(self, n_values: int, bits_per_value: int) -> float:
        """Receiver-side energy (J) to receive one payload (retries included)."""
        return (
            self.payload_bits(n_values, bits_per_value)
            * self.model.rx_nj_per_bit
            * _NJ
            * self.expected_transmissions
        )

    def transfer_delay(self, n_values: int, bits_per_value: int) -> float:
        """Expected link occupancy (s) of one payload.

        Covers on-air serialisation of every expected transmission plus
        the expected ARQ backoff waits (zero under the legacy unbounded
        policy, which models ideal stop-and-wait).
        """
        bits = self.payload_bits(n_values, bits_per_value)
        if bits == 0:
            return 0.0
        return (
            bits / self.model.data_rate_bps * self.expected_transmissions
            + self.arq.expected_backoff_s(self.loss_rate)
        )

    def worst_case_transfer_delay(
        self, n_values: int, bits_per_value: int
    ) -> float:
        """Worst-case link occupancy (s) of one payload.

        Finite whenever the ARQ policy is bounded; ``inf`` under the
        legacy unbounded stop-and-wait model on a lossy channel.
        """
        bits = self.payload_bits(n_values, bits_per_value)
        if bits == 0:
            return 0.0
        if self.loss_rate == 0.0:
            return bits / self.model.data_rate_bps
        return self.arq.worst_case_delay_s(bits / self.model.data_rate_bps)

    def tx_energy_bits(self, bits: int) -> float:
        """Energy (J) to transmit a raw bit count (header already included)."""
        if bits < 0:
            raise ConfigurationError("bits must be non-negative")
        return bits * self.model.tx_nj_per_bit * _NJ * self.expected_transmissions

    def rx_energy_bits(self, bits: int) -> float:
        """Energy (J) to receive a raw bit count (header already included)."""
        if bits < 0:
            raise ConfigurationError("bits must be non-negative")
        return bits * self.model.rx_nj_per_bit * _NJ * self.expected_transmissions

    def single_try_tx_energy_bits(self, bits: int) -> float:
        """Energy (J) of exactly one transmission of a raw bit count.

        Unlike :meth:`tx_energy_bits` this does *not* scale by the
        expected-transmission count of the loss/ARQ model — it is the
        per-attempt figure the supervision layer needs when a circuit
        breaker (:class:`~repro.sim.supervise.LinkCircuitBreaker`) caps
        attempts per event, so retries are counted as they actually
        happen instead of in expectation.
        """
        if bits < 0:
            raise ConfigurationError("bits must be non-negative")
        return bits * self.model.tx_nj_per_bit * _NJ

    def single_try_rx_energy_bits(self, bits: int) -> float:
        """Energy (J) of exactly one reception of a raw bit count.

        The receive-side twin of :meth:`single_try_tx_energy_bits`:
        per-attempt accounting for breaker-gated links, with no
        expected-transmission inflation.
        """
        if bits < 0:
            raise ConfigurationError("bits must be non-negative")
        return bits * self.model.rx_nj_per_bit * _NJ
