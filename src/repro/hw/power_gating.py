"""Power-gating overhead model for functional cells.

Section 4.3: *"Power-gating overhead is appropriately accounted for,
although we have a similar observation as prior research [19] that the
energy and delay overhead from power gating is very limited and does not
affect the design and conclusion of the proposed cross-end architecture."*

Each idle cell is power-gated (Fig. 3: modules "powered off via power
gating" until data arrives); waking it costs the energy of recharging the
virtual-VDD rail plus a settle time before computation may start.  The
model prices one sleep→wake→sleep cycle per cell per event:

- ``wake_energy``: proportional to the cell's gate count, which we proxy
  by its per-event dynamic energy (bigger cells have more capacitance to
  recharge);
- ``wake_cycles``: a fixed settle latency added to the cell's critical
  path.

The defaults keep the overhead at the ~1% level the paper (via [19])
reports; :func:`gating_overhead_report` quantifies it for a topology so
the claim is checkable rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.errors import ConfigurationError
from repro.hw.energy import EnergyLibrary

if TYPE_CHECKING:  # deferred: repro.cells depends on repro.hw, not vice versa
    from repro.cells.topology import CellTopology


@dataclass(frozen=True)
class PowerGatingModel:
    """One sleep/wake cycle's cost per cell activation.

    Attributes:
        wake_energy_fraction: Wake-up energy as a fraction of the cell's
            per-event computation energy (rail recharge scales with cell
            size; ~1% is typical of fine-grained gating [19]).
        wake_cycles: Settle cycles before the woken cell may compute.
        sleep_leak_fraction: Residual leakage of a gated cell relative to
            ungated leakage (the gating win itself; informational).
    """

    wake_energy_fraction: float = 0.01
    wake_cycles: int = 2
    sleep_leak_fraction: float = 0.03

    def __post_init__(self) -> None:
        if self.wake_energy_fraction < 0:
            raise ConfigurationError("wake_energy_fraction must be >= 0")
        if self.wake_cycles < 0:
            raise ConfigurationError("wake_cycles must be >= 0")
        if not 0 <= self.sleep_leak_fraction <= 1:
            raise ConfigurationError("sleep_leak_fraction must be in [0, 1]")

    def wake_energy_j(self, cell_energy_j: float) -> float:
        """Energy of one wake-up for a cell of the given per-event energy."""
        if cell_energy_j < 0:
            raise ConfigurationError("cell energy must be >= 0")
        return self.wake_energy_fraction * cell_energy_j


#: Default model matching the paper's "very limited overhead" observation.
DEFAULT_POWER_GATING = PowerGatingModel()


def gating_overhead_report(
    topology: "CellTopology",
    energy_lib: EnergyLibrary,
    model: PowerGatingModel = DEFAULT_POWER_GATING,
) -> Dict[str, float]:
    """Quantify power-gating overhead for one topology.

    Returns:
        ``base_energy_j`` (computation without gating), ``wake_energy_j``
        (added by one wake per cell per event), ``energy_overhead_pct``,
        and ``delay_overhead_cycles`` (settle cycles on the deepest path).
    """
    base = 0.0
    wake = 0.0
    depth = 0
    # Depth = longest chain of cells (each adds one wake settle).
    finish: Dict[str, int] = {}
    for name in topology.cell_names:
        cell = topology.cell(name)
        cost = energy_lib.cell_cost(cell.op_counts, cell.mode, cell.parallel_width)
        base += cost.energy_j
        wake += model.wake_energy_j(cost.energy_j)
        level = 1 + max(
            (finish.get(p, 0) for p in topology.predecessors(name)), default=0
        )
        finish[name] = level
        depth = max(depth, level)
    return {
        "base_energy_j": base,
        "wake_energy_j": wake,
        "energy_overhead_pct": 100.0 * wake / base if base > 0 else 0.0,
        "delay_overhead_cycles": float(depth * model.wake_cycles),
    }
