"""Per-operation energy library and ALU-mode model (Figure 4 substrate).

The paper characterises every functional cell with Synopsys Design/Power
Compiler against TSMC standard-cell libraries at a 16 MHz clock and compares
three S-ALU working modes — serial, parallel, pipeline — per module
(Section 3.1.2, Figure 4).  Without the EDA flow we use an analytic model
whose terms mirror the physical effects the paper names:

- **Dynamic op energy** ``E_dyn = sum(count_op * e_op)`` from a per-op table
  whose 90 nm values sit in the range of published 32-bit adder/multiplier
  surveys; other nodes scale by :class:`~repro.hw.technology.ProcessTechnology`.
- **Clock/control energy** ``E_clk * active_cycles`` — the "static energy
  consumption of clock tree" XPro reduces with asynchronous per-cell clocks;
  it penalises modes with long busy times.
- **Serial iteration penalty** — iterative serial implementations of
  long-latency ops (division, sqrt/exp "super" ops) redo alignment and
  control work every iteration; modelled as an extra ``ITERATION_PENALTY *
  E_dyn(long ops)``.  This is why Std (a single sqrt) prefers pipeline.
- **Pipeline latch energy** — per-op energy of forwarding results through
  ``k`` stage registers.  This is why cheap-op cells prefer serial.
- **Parallel duplication overhead** — ``W`` replicated units cost broadcast
  wiring and per-unit glue proportional to the unit's size (heavy for
  multipliers); this is why the parallel DWT lands ~two orders of magnitude
  above serial, exactly as the paper reports.

The model is a calibrated surrogate: its constants were chosen so the
*orderings* of Figure 4 (serial optimal for most modules, pipeline optimal
for Std and DWT, parallel DWT ~100x serial) hold by construction, with each
term attached to the physical cause the paper gives.  See DESIGN.md,
substitution #2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hw.technology import ProcessTechnology, get_node

#: Conversion: the op table is specified in picojoules.
_PJ = 1e-12


class ALUMode(Enum):
    """S-ALU working mode of a functional cell (Section 3.1.2)."""

    SERIAL = "serial"
    PARALLEL = "parallel"
    PIPELINE = "pipeline"


@dataclass(frozen=True)
class OperationSpec:
    """Energy and latency of one primitive S-ALU operation at 90 nm."""

    energy_pj: float
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.energy_pj < 0 or self.latency_cycles < 1:
            raise ConfigurationError("invalid operation spec")


@dataclass(frozen=True)
class OperationEnergyTable:
    """Per-operation dynamic energies (pJ) and latencies at the 90 nm reference.

    ``super`` is the S-ALU super-computation unit (exponent, square root,
    reciprocal — Section 3.1.1).  Values sit in the range of published
    32-bit datapath figures; only relative magnitudes matter for the
    reproduced trends.
    """

    ops: Mapping[str, OperationSpec] = field(
        default_factory=lambda: {
            "add": OperationSpec(6.0, 1),
            "sub": OperationSpec(6.0, 1),
            "mul": OperationSpec(35.0, 2),
            "div": OperationSpec(70.0, 12),
            "cmp": OperationSpec(3.0, 1),
            "super": OperationSpec(180.0, 24),
        }
    )

    #: Clock-tree + control + buffer energy per active cycle (pJ).
    clock_pj_per_cycle: float = 1.4
    #: Extra per-op, per-stage latch energy in pipeline mode (pJ).
    pipeline_latch_pj: float = 2.0
    #: Pipeline depth (stages).
    pipeline_stages: int = 4
    #: Serial-mode multiplier on the dynamic energy of long-latency ops.
    iteration_penalty: float = 1.0
    #: Latency (cycles) above which an op counts as "long" for the penalty.
    long_latency_threshold: int = 8
    #: Parallel glue overhead coefficients (per extra unit).
    parallel_alpha_light: float = 0.10
    parallel_alpha_heavy: float = 0.80

    def spec(self, op: str) -> OperationSpec:
        """Look up one op, raising a clear error for unknown names."""
        if op not in self.ops:
            raise ConfigurationError(
                f"unknown operation {op!r}; available: {sorted(self.ops)}"
            )
        return self.ops[op]


#: Default operation table shared across the library.
DEFAULT_OPERATION_TABLE = OperationEnergyTable()

#: Default computation-energy calibration.  Chosen once so that the total
#: in-sensor computation energy of a trained generic classifier matches the
#: raw-data transmission energy at the 130 nm node under wireless Model 2 —
#: the crossover the paper observes in Fig. 8 ("in the 130nm case, the
#: lifetime of both sensor node engine and aggregator engine is similar").
#: See DESIGN.md, substitution #2.
DEFAULT_CALIBRATION = 0.95


@dataclass(frozen=True)
class EnergyDelay:
    """Energy (joules) and delay (cycles) of one cell execution."""

    energy_j: float
    cycles: int

    def __add__(self, other: "EnergyDelay") -> "EnergyDelay":
        return EnergyDelay(self.energy_j + other.energy_j, self.cycles + other.cycles)


@dataclass(frozen=True)
class ModeCharacterization:
    """Figure-4 row: per-mode energies of one module and the optimum.

    Attributes:
        module: Module name (e.g. ``"std"``, ``"dwt"``).
        per_mode: mode -> energy in joules per event.
        best_mode: The energy-optimal ("red star") mode.
    """

    module: str
    per_mode: Mapping[ALUMode, float]
    best_mode: ALUMode

    def energy_of(self, mode: ALUMode) -> float:
        """Energy per event of the given mode, joules."""
        return self.per_mode[mode]


class EnergyLibrary:
    """Per-cell energy/delay evaluation at a given process node.

    Args:
        technology: Process node (name or object); default 90 nm.
        table: Operation energy table; default :data:`DEFAULT_OPERATION_TABLE`.
        clock_hz: Cell clock; the paper simulates at 16 MHz.
        calibration: Global multiplier on computation energy.  Used once, to
            align the computation/communication balance point with the
            paper's observed crossover (E_compute(all cells) ~ E_tx(raw) at
            130 nm); see DESIGN.md.
    """

    def __init__(
        self,
        technology: ProcessTechnology | str = "90nm",
        table: OperationEnergyTable = DEFAULT_OPERATION_TABLE,
        clock_hz: float = 16e6,
        calibration: float | None = None,
    ) -> None:
        self.technology = (
            get_node(technology) if isinstance(technology, str) else technology
        )
        if clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")
        if calibration is None:
            calibration = DEFAULT_CALIBRATION
        if calibration <= 0:
            raise ConfigurationError("calibration must be positive")
        self.table = table
        self.clock_hz = float(clock_hz)
        self.calibration = float(calibration)

    # -- helpers --------------------------------------------------------------

    def _scaled(self, pj: float) -> float:
        """pJ at 90 nm -> joules at this node, with calibration applied."""
        return pj * _PJ * self.technology.dynamic_scale * self.calibration

    def _dynamic_split(self, op_counts: Mapping[str, int]) -> Tuple[float, float, float, int]:
        """Return (E_dyn_total, E_dyn_long, E_dyn_heavy, serial_cycles) in pJ/cycles."""
        total = 0.0
        long_part = 0.0
        heavy_part = 0.0
        cycles = 0
        for op, count in op_counts.items():
            if count < 0:
                raise ConfigurationError(f"negative count for op {op!r}")
            spec = self.table.spec(op)
            e = count * spec.energy_pj
            total += e
            cycles += count * spec.latency_cycles
            if spec.latency_cycles >= self.table.long_latency_threshold:
                long_part += e
            if op in ("mul", "div", "super"):
                heavy_part += e
        return total, long_part, heavy_part, cycles

    # -- public API -----------------------------------------------------------

    def serial_cycles(self, op_counts: Mapping[str, int]) -> int:
        """Busy cycles of a serial execution of the given op counts."""
        return self._dynamic_split(op_counts)[3]

    def cell_cost(
        self,
        op_counts: Mapping[str, int],
        mode: ALUMode = ALUMode.SERIAL,
        parallel_width: Optional[int] = None,
    ) -> EnergyDelay:
        """Energy and delay of executing ``op_counts`` in the given mode.

        Args:
            op_counts: op name -> count for one cell activation ("event").
            mode: S-ALU working mode.
            parallel_width: Number of replicated units in PARALLEL mode
                (defaults to 64, the widest datapath the paper's segments
                need); ignored for other modes.

        Returns:
            :class:`EnergyDelay` with energy in joules and delay in cycles.
        """
        dyn, dyn_long, dyn_heavy, cycles_serial = self._dynamic_split(op_counts)
        if cycles_serial == 0:
            return EnergyDelay(0.0, 0)
        tbl = self.table
        if mode is ALUMode.SERIAL:
            energy_pj = (
                dyn
                + tbl.iteration_penalty * dyn_long
                + tbl.clock_pj_per_cycle * cycles_serial
            )
            cycles = cycles_serial
        elif mode is ALUMode.PIPELINE:
            k = tbl.pipeline_stages
            n_ops = sum(op_counts.values())
            cycles = max(1, math.ceil(cycles_serial / k) + k)
            energy_pj = (
                dyn
                + tbl.pipeline_latch_pj * k * n_ops
                + tbl.clock_pj_per_cycle * cycles
            )
        elif mode is ALUMode.PARALLEL:
            width = 64 if parallel_width is None else int(parallel_width)
            if width < 1:
                raise ConfigurationError("parallel_width must be >= 1")
            heavy_share = dyn_heavy / dyn if dyn > 0 else 0.0
            alpha = (
                tbl.parallel_alpha_light
                + (tbl.parallel_alpha_heavy - tbl.parallel_alpha_light) * heavy_share
            )
            cycles = max(1, math.ceil(cycles_serial / width) + max(1, int(math.log2(width))))
            energy_pj = (
                dyn * (1.0 + alpha * (width - 1))
                + tbl.clock_pj_per_cycle * cycles * width
            )
        else:  # pragma: no cover - enum is exhaustive
            raise ConfigurationError(f"unknown ALU mode {mode!r}")
        return EnergyDelay(self._scaled(energy_pj), int(cycles))

    def characterize_module(
        self,
        module: str,
        op_counts_by_mode: Mapping[ALUMode, Mapping[str, int]],
        parallel_width: Optional[int] = None,
    ) -> ModeCharacterization:
        """Per-mode energy characterisation of one module (one Fig. 4 panel).

        ``op_counts_by_mode`` allows the op counts themselves to differ per
        mode — the DWT module is the paper's example, where serial/parallel
        realisations are matrix multiplications while the pipeline
        realisation is a filter bank.
        """
        per_mode: Dict[ALUMode, float] = {}
        for mode in ALUMode:
            counts = op_counts_by_mode.get(mode)
            if counts is None:
                raise ConfigurationError(
                    f"module {module!r} missing op counts for mode {mode.value}"
                )
            per_mode[mode] = self.cell_cost(counts, mode, parallel_width).energy_j
        best = min(per_mode, key=per_mode.get)
        return ModeCharacterization(module=module, per_mode=per_mode, best_mode=best)

    def seconds(self, cycles: int) -> float:
        """Convert busy cycles to seconds at the cell clock."""
        return cycles / self.clock_hz
