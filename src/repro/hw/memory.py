"""On-sensor buffer/SRAM sizing for the in-sensor analytic part.

Every functional cell owns a private buffer (Fig. 3) holding its inputs
while it computes and its outputs until consumers take them.  The sensor
die must provision SRAM for all of that plus the acquisition buffer for
the raw segment.  This model sizes it:

- **acquisition buffer**: one raw segment at the ADC width (double-
  buffered, so acquisition of segment *k+1* overlaps analysis of *k*);
- **per-cell output buffers**: each output port's payload, at the
  datapath width (32-bit Q16.16 words internally, regardless of the
  narrower on-air encoding);
- **working registers**: a small fixed overhead per cell (accumulators,
  state).

As with the area model, absolute bytes are estimates; the useful outputs
are comparisons (which cut needs how much sensor SRAM) and the sanity
check against realistic wearable SRAM budgets (tens of KiB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # repro.cells depends on repro.hw, not vice versa
    from repro.cells.topology import CellTopology

#: Datapath word width in bytes (32-bit Q16.16).
WORD_BYTES = 4

#: Fixed working-register overhead per cell, bytes.
CELL_STATE_BYTES = 32


@dataclass(frozen=True)
class MemoryReport:
    """SRAM accounting for the in-sensor part.

    Attributes:
        acquisition_bytes: Double-buffered raw segment storage.
        cell_buffer_bytes: Sum of in-sensor cells' output buffers + state.
        total_bytes: Everything the sensor die must provision.
        per_cell_bytes: Buffer bytes per in-sensor cell.
    """

    acquisition_bytes: int
    cell_buffer_bytes: int
    per_cell_bytes: Dict[str, int]

    @property
    def total_bytes(self) -> int:
        """Total provisioned SRAM."""
        return self.acquisition_bytes + self.cell_buffer_bytes

    @property
    def total_kib(self) -> float:
        """Total in KiB."""
        return self.total_bytes / 1024.0


def cell_buffer_bytes(cell) -> int:
    """Buffer bytes of one functional cell (outputs + working state)."""
    total = CELL_STATE_BYTES
    for port in cell.outputs:
        total += port.n_values * WORD_BYTES
    return total


def memory_report(
    topology: "CellTopology",
    in_sensor: Optional[FrozenSet[str]] = None,
) -> MemoryReport:
    """SRAM requirement of (the in-sensor subset of) a topology.

    Args:
        topology: The cell dataflow graph.
        in_sensor: Cells on the sensor; default is the whole topology
            (the in-sensor engine).
    """
    names = set(topology.cells) if in_sensor is None else set(in_sensor)
    unknown = names - set(topology.cells)
    if unknown:
        raise ConfigurationError(f"unknown cells: {sorted(unknown)}")
    per_cell = {
        name: cell_buffer_bytes(topology.cell(name)) for name in sorted(names)
    }
    acquisition = 2 * topology.segment_length * WORD_BYTES  # double buffer
    return MemoryReport(
        acquisition_bytes=acquisition,
        cell_buffer_bytes=sum(per_cell.values()),
        per_cell_bytes=per_cell,
    )
