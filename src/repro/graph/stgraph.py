"""The XPro s-t graph construction (Section 3.2.2).

Nodes:

- ``F`` — the front-end sensor node (cut source);
- ``B`` — the back-end aggregator (cut sink);
- one node per functional cell;
- one *data node* per produced port with at least one consumer (plus the
  result port).  Data nodes generalise the paper's dummy node "D": the
  paper introduces D for the raw source segment so that "grouped" cells
  (cells reading the same data) share a single transmission cost; the same
  construction applies verbatim to every intermediate port with multiple
  consumers, so we instantiate one per port.

Edges (capacity = energy in joules; cut counts edges from the F side to the
B side):

- ``cell -> B`` with the cell's in-sensor computation energy: cut exactly
  when the cell stays on the sensor (Eq. 2's ``P_i * t_i`` term);
- ``producer -> data_node`` with the port's one-shot transmission energy
  (payload + 8-bit header), and ``data_node -> consumer`` with infinite
  capacity: if the producer is on the sensor and *any* consumer is in the
  aggregator, the infinite edges force the data node to the B side and the
  Tx edge into the cut — transmission paid once, "grouped" property held;
- ``consumer -> producer`` with the port's reception energy: cut when the
  consumer sits on the sensor but its producer's data comes from the
  aggregator (the reverse-direction edge of the paper's construction);
- the raw segment is the virtual producer ``F`` itself (the paper's
  ``F -> D`` edge with the full-raw-transmission weight);
- the result port's data node gets an infinite edge to ``B``: the
  classification outcome must always reach the aggregator.

With this construction, the capacity of any finite F/B cut equals the
sensor-node energy per event of the corresponding partition — verified
against the independent system simulator in the integration tests — and the
min cut is the energy-optimal partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.cells.cell import SOURCE_CELL, PortRef
from repro.cells.topology import CellTopology
from repro.errors import ConfigurationError, PartitionError
from repro.graph.maxflow import INFINITY, FlowNetwork
from repro.hw.energy import EnergyLibrary
from repro.hw.wireless import WirelessLink

#: Node ids of the two ends.
FRONT = "F"
BACK = "B"


def _data_node(ref: PortRef) -> str:
    return f"D[{ref.cell}.{ref.port}]"


@dataclass(frozen=True)
class STGraph:
    """The built s-t graph plus the bookkeeping to interpret cuts.

    Attributes:
        network: The flow network (consumed by :meth:`solve`).
        topology: The cell topology the graph was built from.
        compute_energy: cell name -> in-sensor computation energy (J).
        tx_energy: port ref -> one-shot transmission energy (J).
        rx_energy: (port ref, consumer) -> reception energy (J).
    """

    network: FlowNetwork
    topology: CellTopology
    compute_energy: Dict[str, float]
    tx_energy: Dict[PortRef, float]
    rx_energy: Dict[Tuple[PortRef, str], float]

    def solve(self) -> Tuple[FrozenSet[str], float]:
        """Run min-cut and return (in-sensor cell set, sensor energy).

        The returned set contains only real cell names (data nodes and the
        F/B terminals are stripped).
        """
        result = self.network.max_flow(FRONT, BACK)
        if result.max_flow == INFINITY:
            raise PartitionError("s-t graph has no finite cut (bad construction)")
        cell_names = set(self.topology.cells)
        in_sensor = frozenset(n for n in result.source_side if n in cell_names)
        return in_sensor, result.max_flow


def build_st_graph(
    topology: CellTopology,
    energy_lib: EnergyLibrary,
    link: WirelessLink,
    delay_weights: Dict[str, float] | None = None,
) -> STGraph:
    """Build the s-t graph for a topology under given hardware models.

    Args:
        topology: The functional-cell dataflow graph.
        energy_lib: In-sensor energy model (node + ALU modes).
        link: Wireless link model (Tx/Rx energies per payload).
        delay_weights: Optional Lagrangian terms added to capacities by the
            delay-constrained generator: maps ``"cell:<name>"``,
            ``"back:<name>"``, ``"tx:<cell>.<port>"`` and
            ``"rx:<cell>.<port>:<consumer>"`` keys to extra joule-equivalent
            weights.  Absent keys add nothing.

    Returns:
        The :class:`STGraph` ready to :meth:`~STGraph.solve`.
    """
    weights = delay_weights or {}
    net = FlowNetwork()
    compute_energy: Dict[str, float] = {}
    tx_energy: Dict[PortRef, float] = {}
    rx_energy: Dict[Tuple[PortRef, str], float] = {}

    consumers_map = topology.consumers_by_port()
    result_ref = topology.result

    # Cell computation edges (and optional back-end Lagrangian edges).
    for name, cell in topology.cells.items():
        cost = energy_lib.cell_cost(cell.op_counts, cell.mode, cell.parallel_width)
        compute_energy[name] = cost.energy_j
        net.add_edge(name, BACK, cost.energy_j + weights.get(f"cell:{name}", 0.0))
        back_weight = weights.get(f"back:{name}", 0.0)
        if back_weight > 0.0:
            net.add_edge(FRONT, name, back_weight)

    # Data nodes: one per consumed port (plus the result port).
    for ref, port in topology.producer_ports():
        port_consumers = consumers_map.get(ref, [])
        is_result = ref == result_ref
        if not port_consumers and not is_result:
            continue
        dnode = _data_node(ref)
        producer = FRONT if ref.cell == SOURCE_CELL else ref.cell
        tx = link.tx_energy(port.n_values, port.bits_per_value)
        tx_energy[ref] = tx
        net.add_edge(
            producer, dnode, tx + weights.get(f"tx:{ref.cell}.{ref.port}", 0.0)
        )
        for consumer in port_consumers:
            net.add_edge(dnode, consumer, INFINITY)
            if ref.cell != SOURCE_CELL:
                rx = link.rx_energy(port.n_values, port.bits_per_value)
                rx_energy[(ref, consumer)] = rx
                net.add_edge(
                    consumer,
                    ref.cell,
                    rx + weights.get(f"rx:{ref.cell}.{ref.port}:{consumer}", 0.0),
                )
        if is_result:
            net.add_edge(dnode, BACK, INFINITY)

    return STGraph(
        network=net,
        topology=topology,
        compute_energy=compute_energy,
        tx_energy=tx_energy,
        rx_energy=rx_energy,
    )


# -- parametric template (warm-started Lagrangian re-solves) -------------------


@dataclass
class TemplateSolveStats:
    """Work counters of one :class:`STGraphTemplate` (for tests and tuning).

    Attributes:
        cold_solves: Solves that started from zero flow.
        warm_solves: Solves restarted from a stored residual state.
        cold_augmenting_paths: Augmenting paths pushed by the cold solves.
        warm_augmenting_paths: Augmenting paths pushed by the warm solves.
    """

    cold_solves: int = 0
    warm_solves: int = 0
    cold_augmenting_paths: int = 0
    warm_augmenting_paths: int = 0

    @property
    def total_solves(self) -> int:
        """All solves run through the template."""
        return self.cold_solves + self.warm_solves


@dataclass
class STGraphTemplate:
    """A reusable, parametrically priced s-t graph.

    The graph *structure* (nodes, arcs, twin pairing, CSR index) of one
    ``(topology, energy_lib, link)`` context never changes across the
    generator's Lagrangian search — only the capacities move, linearly in
    the delay price: ``capacity(lambda) = base + lambda * coefficient``
    per forward edge.  The template therefore builds the network once and
    re-solves it via :meth:`~repro.graph.maxflow.FlowNetwork.clone_with_capacities`,
    warm-starting each solve from the stored residual state of the largest
    previously solved ``lambda' <= lambda``: capacities are non-decreasing
    in lambda (all coefficients are non-negative), so the earlier flow is
    still feasible and only the incremental flow must be augmented.

    The template deliberately holds no :class:`~repro.cells.topology.CellTopology`
    reference — just the derived arrays plus the cell-name set needed to
    interpret cuts — so it is picklable and can be shipped to the worker
    processes of :func:`repro.sim.parallel.sweep` even when the topology's
    cell compute closures are not.

    The warm-start contract (see ``docs/PERFORMANCE.md``): residual states
    are reusable for any ``lambda >= lambda'`` of the *same* template;
    whenever the topology, energy library or link model changes, the
    template must be rebuilt (the generator does this automatically).

    Attributes:
        network: The structural prototype, carrying the ``lambda = 0``
            base capacities.  Never solved directly — every solve runs on
            a capacity clone.
        cell_names: Real cell names (terminals/data nodes are stripped
            from cut sides).
        base_capacities: Per-forward-edge energy term (J).
        delay_coefficients: Per-forward-edge delay term (s) priced by
            lambda (J/s).
        max_warm_states: Bound on stored residual states.
        stats: Accumulated work counters.
    """

    network: FlowNetwork
    cell_names: FrozenSet[str]
    base_capacities: List[float]
    delay_coefficients: List[float]
    max_warm_states: int = 64
    stats: TemplateSolveStats = field(default_factory=TemplateSolveStats)
    _states: List[Tuple[float, List[float]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.base_capacities) != self.network.n_forward_edges:
            raise ConfigurationError("base capacities do not match the network")
        if len(self.delay_coefficients) != self.network.n_forward_edges:
            raise ConfigurationError("delay coefficients do not match the network")
        if any(c < 0 for c in self.delay_coefficients):
            raise ConfigurationError("delay coefficients must be non-negative")
        if self.max_warm_states < 1:
            raise ConfigurationError("max_warm_states must be >= 1")

    # -- warm-state bookkeeping ------------------------------------------------

    def clear_warm_states(self) -> None:
        """Drop every stored residual state (solves go cold again)."""
        self._states.clear()

    @property
    def n_warm_states(self) -> int:
        """Number of stored residual states."""
        return len(self._states)

    def _best_state(self, lam: float) -> Optional[Tuple[float, List[float]]]:
        """The stored state with the largest ``lambda' <= lam``, if any."""
        best: Optional[Tuple[float, List[float]]] = None
        for state in self._states:
            if state[0] <= lam and (best is None or state[0] > best[0]):
                best = state
        return best

    def _store_state(self, lam: float, residual: List[float]) -> None:
        for i, (stored_lam, _) in enumerate(self._states):
            if stored_lam == lam:
                self._states[i] = (lam, residual)
                return
        self._states.append((lam, residual))
        self._states.sort(key=lambda s: s[0])
        if len(self._states) > self.max_warm_states:
            # Keep the lambda = 0 anchor and the spread of larger prices;
            # evict the smallest non-anchor lambda (densest, least reused
            # once the bisection has moved past it).
            del self._states[1]

    # -- solving ---------------------------------------------------------------

    def capacities(self, lam: float) -> List[float]:
        """Forward-edge capacities at one delay price."""
        if lam < 0:
            raise ConfigurationError("lambda must be non-negative")
        if lam == 0.0:
            return list(self.base_capacities)
        return [
            b + lam * c
            for b, c in zip(self.base_capacities, self.delay_coefficients)
        ]

    def solve_lagrangian(
        self, lam: float = 0.0, warm: bool = True
    ) -> Tuple[FrozenSet[str], float]:
        """Min-cut at one delay price; returns (in-sensor cells, capacity).

        Args:
            lam: The Lagrangian delay price in J/s (0 = pure energy cut).
            warm: Restart from the best stored residual state when one
                exists (and store this solve's state for later re-solves).
                ``False`` forces a cold reference solve that leaves the
                stored states untouched.
        """
        caps = self.capacities(lam)
        state = self._best_state(lam) if warm else None
        if state is None:
            net = self.network.clone_with_capacities(caps)
            base_flow = 0.0
        else:
            # Re-impose the earlier flow on the re-priced capacities: the
            # flow on forward arc 2k is exactly its residual twin 2k+1.
            # Capacities are non-decreasing in lambda, so the flow stays
            # feasible; the clamp only guards pathological float drift.
            _, residual = state
            full = [0.0] * (2 * len(caps))
            for k, c in enumerate(caps):
                f = residual[2 * k + 1]
                if f > c:
                    f = c
                full[2 * k] = c - f
                full[2 * k + 1] = f
            net = self.network.clone_with_capacities(residual_capacities=full)
            base_flow = net.net_flow_from(FRONT)
        result = net.max_flow(FRONT, BACK)
        if state is None:
            self.stats.cold_solves += 1
            self.stats.cold_augmenting_paths += result.augmenting_paths
        else:
            self.stats.warm_solves += 1
            self.stats.warm_augmenting_paths += result.augmenting_paths
        total = base_flow + result.max_flow
        if total == INFINITY:
            raise PartitionError("s-t graph has no finite cut (bad construction)")
        if warm:
            self._store_state(lam, net.residual_capacities())
        in_sensor = frozenset(
            n for n in result.source_side if n in self.cell_names
        )
        return in_sensor, total


def build_st_graph_template(
    topology: CellTopology,
    energy_lib: EnergyLibrary,
    link: WirelessLink,
    delay_coefficients: Mapping[str, float] | None = None,
) -> STGraphTemplate:
    """Build the parametric s-t graph template for one hardware context.

    The construction mirrors :func:`build_st_graph` edge for edge, but
    splits every capacity into its energy base and its per-lambda delay
    coefficient so the same structure can be re-priced at any delay price.
    The ``delay_coefficients`` mapping uses the same keys as
    ``build_st_graph``'s ``delay_weights`` (``"cell:<name>"``,
    ``"back:<name>"``, ``"tx:<cell>.<port>"``,
    ``"rx:<cell>.<port>:<consumer>"``) holding the weight *per unit
    lambda* (i.e. the delay in seconds attributed to that edge).

    The one structural difference from a per-lambda cold build: the
    Lagrangian back edges (``F -> cell``) are present whenever their
    coefficient is positive, carrying zero capacity at ``lambda = 0``.
    Zero-capacity edges are invisible to the solver's traversals, so cuts
    and flow values are unaffected.
    """
    coeffs = dict(delay_coefficients or {})
    net = FlowNetwork()
    base: List[float] = []
    coef: List[float] = []

    def edge(u: str, v: str, energy: float, delay: float = 0.0) -> None:
        net.add_edge(u, v, energy)
        base.append(energy)
        coef.append(delay)

    consumers_map = topology.consumers_by_port()
    result_ref = topology.result

    for name, cell in topology.cells.items():
        cost = energy_lib.cell_cost(cell.op_counts, cell.mode, cell.parallel_width)
        edge(name, BACK, cost.energy_j, coeffs.get(f"cell:{name}", 0.0))
        back_coef = coeffs.get(f"back:{name}", 0.0)
        if back_coef > 0.0:
            edge(FRONT, name, 0.0, back_coef)

    for ref, port in topology.producer_ports():
        port_consumers = consumers_map.get(ref, [])
        is_result = ref == result_ref
        if not port_consumers and not is_result:
            continue
        dnode = _data_node(ref)
        producer = FRONT if ref.cell == SOURCE_CELL else ref.cell
        tx = link.tx_energy(port.n_values, port.bits_per_value)
        edge(producer, dnode, tx, coeffs.get(f"tx:{ref.cell}.{ref.port}", 0.0))
        for consumer in port_consumers:
            edge(dnode, consumer, INFINITY)
            if ref.cell != SOURCE_CELL:
                rx = link.rx_energy(port.n_values, port.bits_per_value)
                edge(
                    consumer,
                    ref.cell,
                    rx,
                    coeffs.get(f"rx:{ref.cell}.{ref.port}:{consumer}", 0.0),
                )
        if is_result:
            edge(dnode, BACK, INFINITY)

    return STGraphTemplate(
        network=net,
        cell_names=frozenset(topology.cells),
        base_capacities=base,
        delay_coefficients=coef,
    )
