"""The XPro s-t graph construction (Section 3.2.2).

Nodes:

- ``F`` — the front-end sensor node (cut source);
- ``B`` — the back-end aggregator (cut sink);
- one node per functional cell;
- one *data node* per produced port with at least one consumer (plus the
  result port).  Data nodes generalise the paper's dummy node "D": the
  paper introduces D for the raw source segment so that "grouped" cells
  (cells reading the same data) share a single transmission cost; the same
  construction applies verbatim to every intermediate port with multiple
  consumers, so we instantiate one per port.

Edges (capacity = energy in joules; cut counts edges from the F side to the
B side):

- ``cell -> B`` with the cell's in-sensor computation energy: cut exactly
  when the cell stays on the sensor (Eq. 2's ``P_i * t_i`` term);
- ``producer -> data_node`` with the port's one-shot transmission energy
  (payload + 8-bit header), and ``data_node -> consumer`` with infinite
  capacity: if the producer is on the sensor and *any* consumer is in the
  aggregator, the infinite edges force the data node to the B side and the
  Tx edge into the cut — transmission paid once, "grouped" property held;
- ``consumer -> producer`` with the port's reception energy: cut when the
  consumer sits on the sensor but its producer's data comes from the
  aggregator (the reverse-direction edge of the paper's construction);
- the raw segment is the virtual producer ``F`` itself (the paper's
  ``F -> D`` edge with the full-raw-transmission weight);
- the result port's data node gets an infinite edge to ``B``: the
  classification outcome must always reach the aggregator.

With this construction, the capacity of any finite F/B cut equals the
sensor-node energy per event of the corresponding partition — verified
against the independent system simulator in the integration tests — and the
min cut is the energy-optimal partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.cells.cell import SOURCE_CELL, PortRef
from repro.cells.topology import CellTopology
from repro.errors import PartitionError
from repro.graph.maxflow import INFINITY, FlowNetwork
from repro.hw.energy import EnergyLibrary
from repro.hw.wireless import WirelessLink

#: Node ids of the two ends.
FRONT = "F"
BACK = "B"


def _data_node(ref: PortRef) -> str:
    return f"D[{ref.cell}.{ref.port}]"


@dataclass(frozen=True)
class STGraph:
    """The built s-t graph plus the bookkeeping to interpret cuts.

    Attributes:
        network: The flow network (consumed by :meth:`solve`).
        topology: The cell topology the graph was built from.
        compute_energy: cell name -> in-sensor computation energy (J).
        tx_energy: port ref -> one-shot transmission energy (J).
        rx_energy: (port ref, consumer) -> reception energy (J).
    """

    network: FlowNetwork
    topology: CellTopology
    compute_energy: Dict[str, float]
    tx_energy: Dict[PortRef, float]
    rx_energy: Dict[Tuple[PortRef, str], float]

    def solve(self) -> Tuple[FrozenSet[str], float]:
        """Run min-cut and return (in-sensor cell set, sensor energy).

        The returned set contains only real cell names (data nodes and the
        F/B terminals are stripped).
        """
        result = self.network.max_flow(FRONT, BACK)
        if result.max_flow == INFINITY:
            raise PartitionError("s-t graph has no finite cut (bad construction)")
        cell_names = set(self.topology.cells)
        in_sensor = frozenset(n for n in result.source_side if n in cell_names)
        return in_sensor, result.max_flow


def build_st_graph(
    topology: CellTopology,
    energy_lib: EnergyLibrary,
    link: WirelessLink,
    delay_weights: Dict[str, float] | None = None,
) -> STGraph:
    """Build the s-t graph for a topology under given hardware models.

    Args:
        topology: The functional-cell dataflow graph.
        energy_lib: In-sensor energy model (node + ALU modes).
        link: Wireless link model (Tx/Rx energies per payload).
        delay_weights: Optional Lagrangian terms added to capacities by the
            delay-constrained generator: maps ``"cell:<name>"``,
            ``"back:<name>"``, ``"tx:<cell>.<port>"`` and
            ``"rx:<cell>.<port>:<consumer>"`` keys to extra joule-equivalent
            weights.  Absent keys add nothing.

    Returns:
        The :class:`STGraph` ready to :meth:`~STGraph.solve`.
    """
    weights = delay_weights or {}
    net = FlowNetwork()
    compute_energy: Dict[str, float] = {}
    tx_energy: Dict[PortRef, float] = {}
    rx_energy: Dict[Tuple[PortRef, str], float] = {}

    consumers_map = topology.consumers_by_port()
    result_ref = topology.result

    # Cell computation edges (and optional back-end Lagrangian edges).
    for name, cell in topology.cells.items():
        cost = energy_lib.cell_cost(cell.op_counts, cell.mode, cell.parallel_width)
        compute_energy[name] = cost.energy_j
        net.add_edge(name, BACK, cost.energy_j + weights.get(f"cell:{name}", 0.0))
        back_weight = weights.get(f"back:{name}", 0.0)
        if back_weight > 0.0:
            net.add_edge(FRONT, name, back_weight)

    # Data nodes: one per consumed port (plus the result port).
    for ref, port in topology.producer_ports():
        port_consumers = consumers_map.get(ref, [])
        is_result = ref == result_ref
        if not port_consumers and not is_result:
            continue
        dnode = _data_node(ref)
        producer = FRONT if ref.cell == SOURCE_CELL else ref.cell
        tx = link.tx_energy(port.n_values, port.bits_per_value)
        tx_energy[ref] = tx
        net.add_edge(
            producer, dnode, tx + weights.get(f"tx:{ref.cell}.{ref.port}", 0.0)
        )
        for consumer in port_consumers:
            net.add_edge(dnode, consumer, INFINITY)
            if ref.cell != SOURCE_CELL:
                rx = link.rx_energy(port.n_values, port.bits_per_value)
                rx_energy[(ref, consumer)] = rx
                net.add_edge(
                    consumer,
                    ref.cell,
                    rx + weights.get(f"rx:{ref.cell}.{ref.port}:{consumer}", 0.0),
                )
        if is_result:
            net.add_edge(dnode, BACK, INFINITY)

    return STGraph(
        network=net,
        topology=topology,
        compute_energy=compute_energy,
        tx_energy=tx_energy,
        rx_energy=rx_energy,
    )
