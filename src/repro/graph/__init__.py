"""Graph-theory substrate: max-flow/min-cut and the XPro s-t construction.

- :mod:`repro.graph.maxflow` -- Dinic's algorithm with min-cut extraction,
  implemented from scratch.
- :mod:`repro.graph.stgraph` -- the paper's s-t graph (Section 3.2.2):
  front node ``F``, back node ``B``, per-port dummy data nodes generalising
  the paper's "D" node, compute edges, and Tx/Rx communication edge pairs.
- :mod:`repro.graph.cuts` -- named reference cuts (in-sensor, in-aggregator,
  trivial feature/classifier boundary) and exhaustive enumeration for small
  topologies.
"""

from repro.graph.maxflow import FlowNetwork, MaxFlowResult
from repro.graph.visualize import st_graph_to_dot, topology_to_dot
from repro.graph.stgraph import (
    STGraph,
    STGraphTemplate,
    TemplateSolveStats,
    build_st_graph,
    build_st_graph_template,
)
from repro.graph.cuts import (
    aggregator_cut,
    enumerate_partitions,
    sensor_cut,
    trivial_cut,
)

__all__ = [
    "FlowNetwork",
    "MaxFlowResult",
    "STGraph",
    "STGraphTemplate",
    "TemplateSolveStats",
    "st_graph_to_dot",
    "topology_to_dot",
    "aggregator_cut",
    "build_st_graph",
    "build_st_graph_template",
    "enumerate_partitions",
    "sensor_cut",
    "trivial_cut",
]
