"""Graphviz DOT export of topologies and s-t graphs.

For users with graphviz available, these exporters produce DOT sources of
the functional-cell dataflow and of the §3.2 s-t graph (with edge weights
in nanojoules) — the diagrams of the paper's Figures 6 and 7, generated
from live objects.  The library itself never shells out to ``dot``; it
only emits the text.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from repro.cells.cell import SOURCE_CELL
from repro.cells.topology import CellTopology
from repro.graph.maxflow import INFINITY
from repro.graph.stgraph import STGraph


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def topology_to_dot(
    topology: CellTopology,
    in_sensor: Optional[FrozenSet[str]] = None,
) -> str:
    """DOT source for the functional-cell dataflow graph (Fig. 6b style).

    Args:
        topology: The cell graph.
        in_sensor: Optional partition; in-sensor cells are filled.
    """
    lines: List[str] = [
        "digraph topology {",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=10];",
        f"  {_quote(SOURCE_CELL)} [shape=ellipse, label=\"source\\n"
        f"{topology.segment_length} samples\"];",
    ]
    for name, cell in topology.cells.items():
        style = ""
        if in_sensor is not None:
            style = (
                ', style=filled, fillcolor="lightblue"'
                if name in in_sensor
                else ', style=filled, fillcolor="lightgray"'
            )
        label = f"{name}\\n{cell.module}/{cell.mode.value}"
        lines.append(f"  {_quote(name)} [label=\"{label}\"{style}];")
    for name, cell in topology.cells.items():
        for ref in cell.inputs:
            dim = topology.port_of(ref).n_values
            lines.append(
                f"  {_quote(ref.cell)} -> {_quote(name)} [label=\"{dim}\"];"
            )
    lines.append("}")
    return "\n".join(lines)


def st_graph_to_dot(graph: STGraph) -> str:
    """DOT source for the s-t graph (Fig. 7 style), weights in nJ.

    Must be called on a freshly built graph (before :meth:`STGraph.solve`
    consumes its capacities).
    """
    lines: List[str] = [
        "digraph stgraph {",
        "  rankdir=LR;",
        "  node [fontsize=10];",
        '  "F" [shape=doublecircle]; "B" [shape=doublecircle];',
    ]
    for u, v, capacity in graph.network.edge_list():
        if capacity == INFINITY:
            label = "inf"
            attrs = ', style=dashed'
        else:
            label = f"{capacity * 1e9:.3g}"
            attrs = ""
        lines.append(
            f"  {_quote(str(u))} -> {_quote(str(v))} "
            f"[label=\"{label}\"{attrs}];"
        )
    lines.append("}")
    return "\n".join(lines)
