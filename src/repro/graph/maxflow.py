"""Dinic's max-flow / min-cut algorithm.

A from-scratch implementation over float capacities (the s-t graph's edge
weights are energies in joules).  Infinite capacities are supported — they
model the "grouped" constraint edges of the paper's construction and can
never appear in a finite min cut.

Complexity is O(V^2 E), far more than enough for XPro topologies (tens of
cells, a few hundred edges); the same solver also backs the unit tests on
classic textbook networks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

from repro.errors import ConfigurationError

#: Capacity treated as infinite (used for grouping-constraint edges).
INFINITY = float("inf")

#: Floats below this are considered zero when saturating edges.
_EPS = 1e-15


@dataclass
class _Edge:
    """One directed arc plus a pointer to its residual twin."""

    target: int
    capacity: float
    twin_index: int
    is_residual: bool


@dataclass(frozen=True)
class MaxFlowResult:
    """Outcome of a max-flow computation.

    Attributes:
        max_flow: The maximum s-t flow value (== min-cut capacity).
        source_side: Node ids reachable from the source in the residual
            graph — the "F side" of the minimum cut.
        cut_edges: The saturated edges crossing the cut, as (u, v, capacity).
    """

    max_flow: float
    source_side: frozenset
    cut_edges: Tuple[Tuple[Hashable, Hashable, float], ...]


class FlowNetwork:
    """A directed flow network over arbitrary hashable node ids."""

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._nodes: List[Hashable] = []
        self._adj: List[List[_Edge]] = []

    def _node(self, node: Hashable) -> int:
        if node not in self._index:
            self._index[node] = len(self._nodes)
            self._nodes.append(node)
            self._adj.append([])
        return self._index[node]

    @property
    def nodes(self) -> Tuple[Hashable, ...]:
        """All node ids, in insertion order."""
        return tuple(self._nodes)

    def add_edge(self, u: Hashable, v: Hashable, capacity: float) -> None:
        """Add a directed edge with the given capacity.

        Parallel edges are allowed and are simply additional arcs; the cut
        semantics are unaffected.
        """
        if capacity < 0:
            raise ConfigurationError(f"negative capacity on edge {u!r}->{v!r}")
        if u == v:
            raise ConfigurationError(f"self-loop on node {u!r}")
        ui, vi = self._node(u), self._node(v)
        self._adj[ui].append(_Edge(vi, capacity, len(self._adj[vi]), False))
        self._adj[vi].append(_Edge(ui, 0.0, len(self._adj[ui]) - 1, True))

    def edge_list(self) -> List[Tuple[Hashable, Hashable, float]]:
        """All forward edges as (u, v, capacity) (current residual values)."""
        out = []
        for ui, edges in enumerate(self._adj):
            for edge in edges:
                if not edge.is_residual:
                    out.append((self._nodes[ui], self._nodes[edge.target], edge.capacity))
        return out

    # -- Dinic ----------------------------------------------------------------

    def _bfs_levels(self, s: int, t: int) -> List[int]:
        levels = [-1] * len(self._nodes)
        levels[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for edge in self._adj[u]:
                if edge.capacity > _EPS and levels[edge.target] < 0:
                    levels[edge.target] = levels[u] + 1
                    queue.append(edge.target)
        return levels

    def _dfs_augment(
        self, u: int, t: int, pushed: float, levels: List[int], iters: List[int]
    ) -> float:
        if u == t:
            return pushed
        while iters[u] < len(self._adj[u]):
            edge = self._adj[u][iters[u]]
            if edge.capacity > _EPS and levels[edge.target] == levels[u] + 1:
                flow = self._dfs_augment(
                    edge.target, t, min(pushed, edge.capacity), levels, iters
                )
                if flow > _EPS:
                    edge.capacity -= flow
                    self._adj[edge.target][edge.twin_index].capacity += flow
                    return flow
            iters[u] += 1
        return 0.0

    def max_flow(self, source: Hashable, sink: Hashable) -> MaxFlowResult:
        """Compute the maximum flow and extract the minimum cut.

        The network is consumed (capacities become residuals); build a fresh
        network to solve again.
        """
        if source not in self._index or sink not in self._index:
            raise ConfigurationError("source/sink not present in the network")
        s, t = self._index[source], self._index[sink]
        if s == t:
            raise ConfigurationError("source and sink must differ")
        total = 0.0
        while True:
            levels = self._bfs_levels(s, t)
            if levels[t] < 0:
                break
            iters = [0] * len(self._nodes)
            while True:
                pushed = self._dfs_augment(s, t, INFINITY, levels, iters)
                if pushed <= _EPS:
                    break
                total += pushed

        # Residual reachability from s = source side of the min cut.
        reachable: Set[int] = set()
        queue = deque([s])
        reachable.add(s)
        while queue:
            u = queue.popleft()
            for edge in self._adj[u]:
                if edge.capacity > _EPS and edge.target not in reachable:
                    reachable.add(edge.target)
                    queue.append(edge.target)

        cut_edges: List[Tuple[Hashable, Hashable, float]] = []
        for ui in reachable:
            for edge in self._adj[ui]:
                if not edge.is_residual and edge.target not in reachable:
                    original = edge.capacity + self._adj[edge.target][edge.twin_index].capacity
                    cut_edges.append(
                        (self._nodes[ui], self._nodes[edge.target], original)
                    )
        return MaxFlowResult(
            max_flow=total,
            source_side=frozenset(self._nodes[i] for i in reachable),
            cut_edges=tuple(cut_edges),
        )

    # -- push-relabel (independent second solver) --------------------------------

    def max_flow_push_relabel(self, source: Hashable, sink: Hashable) -> MaxFlowResult:
        """Goldberg-Tarjan push-relabel max flow (FIFO variant).

        An algorithmically independent solver over the same network,
        used to cross-validate Dinic's results in the test suite (two
        implementations agreeing by construction is far stronger evidence
        than one).  The network is consumed, as with :meth:`max_flow`.

        Infinite capacities are clamped to a finite bound exceeding the
        total finite capacity, which cannot change any finite min cut.
        """
        if source not in self._index or sink not in self._index:
            raise ConfigurationError("source/sink not present in the network")
        s, t = self._index[source], self._index[sink]
        if s == t:
            raise ConfigurationError("source and sink must differ")
        n = len(self._nodes)

        finite_total = sum(
            e.capacity
            for edges in self._adj
            for e in edges
            if not e.is_residual and e.capacity != INFINITY
        )
        bound = 2.0 * finite_total + 1.0
        for edges in self._adj:
            for e in edges:
                if e.capacity == INFINITY:
                    e.capacity = bound

        height = [0] * n
        excess = [0.0] * n
        height[s] = n
        queue: deque = deque()
        for edge in self._adj[s]:
            if edge.capacity > _EPS:
                flow = edge.capacity
                edge.capacity = 0.0
                self._adj[edge.target][edge.twin_index].capacity += flow
                excess[edge.target] += flow
                if edge.target not in (s, t):
                    queue.append(edge.target)

        arc_ptr = [0] * n
        while queue:
            u = queue.popleft()
            while excess[u] > _EPS:
                if arc_ptr[u] == len(self._adj[u]):
                    # Relabel: one above the lowest admissible neighbour.
                    min_h = min(
                        (
                            height[e.target]
                            for e in self._adj[u]
                            if e.capacity > _EPS
                        ),
                        default=None,
                    )
                    if min_h is None:
                        break
                    height[u] = min_h + 1
                    arc_ptr[u] = 0
                    continue
                edge = self._adj[u][arc_ptr[u]]
                if edge.capacity > _EPS and height[u] == height[edge.target] + 1:
                    flow = min(excess[u], edge.capacity)
                    edge.capacity -= flow
                    self._adj[edge.target][edge.twin_index].capacity += flow
                    excess[u] -= flow
                    had_none = excess[edge.target] <= _EPS
                    excess[edge.target] += flow
                    if had_none and edge.target not in (s, t):
                        queue.append(edge.target)
                else:
                    arc_ptr[u] += 1

        # Residual reachability from the source = min-cut source side.
        reachable: Set[int] = {s}
        bfs = deque([s])
        while bfs:
            u = bfs.popleft()
            for edge in self._adj[u]:
                if edge.capacity > _EPS and edge.target not in reachable:
                    reachable.add(edge.target)
                    bfs.append(edge.target)
        cut_edges: List[Tuple[Hashable, Hashable, float]] = []
        for ui in reachable:
            for edge in self._adj[ui]:
                if not edge.is_residual and edge.target not in reachable:
                    original = (
                        edge.capacity + self._adj[edge.target][edge.twin_index].capacity
                    )
                    cut_edges.append(
                        (self._nodes[ui], self._nodes[edge.target], original)
                    )
        return MaxFlowResult(
            max_flow=excess[t],
            source_side=frozenset(self._nodes[i] for i in reachable),
            cut_edges=tuple(cut_edges),
        )
