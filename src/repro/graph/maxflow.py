"""Max-flow / min-cut solvers over a flat CSR edge layout.

A from-scratch implementation over float capacities (the s-t graph's edge
weights are energies in joules).  Infinite capacities are supported — they
model the "grouped" constraint edges of the paper's construction and can
never appear in a finite min cut.

The network stores its edges in flat parallel arrays rather than per-edge
objects:

- ``_etarget[e]`` — head node index of arc ``e``;
- ``_ecap[e]`` — current (residual) capacity of arc ``e``;
- arcs are appended in twin pairs, so the residual twin of arc ``e`` is
  always ``e ^ 1`` (even indices are forward arcs, odd are residuals);
- per-node adjacency is a CSR pair ``(_csr_start, _csr_edges)`` built
  lazily from the insertion-order arc lists, preserving the traversal
  order of the historical per-edge-object implementation (and therefore
  its exact float-accumulation order: results are bitwise identical).

Because every structural array is immutable once built, a solved or
re-priced copy of the network costs one capacity array:
:meth:`FlowNetwork.clone_with_capacities` shares nodes, targets, twins and
the CSR index between clones.  The parametric warm-started re-solves of
:mod:`repro.graph.stgraph` are built on exactly this property.

Complexity of Dinic's algorithm is O(V^2 E), far more than enough for
XPro topologies (tens of cells, a few hundred edges); the same solver also
backs the unit tests on classic textbook networks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError

#: Capacity treated as infinite (used for grouping-constraint edges).
INFINITY = float("inf")

#: Floats below this are considered zero when saturating edges.
_EPS = 1e-15


@dataclass(frozen=True)
class MaxFlowResult:
    """Outcome of a max-flow computation.

    Attributes:
        max_flow: The maximum s-t flow value (== min-cut capacity).  When
            the solve started from a pre-loaded residual state (see
            :meth:`FlowNetwork.clone_with_capacities`), this is only the
            *incremental* flow pushed by this solve.
        source_side: Node ids reachable from the source in the residual
            graph — the "F side" of the minimum cut.
        cut_edges: The saturated edges crossing the cut, as (u, v, capacity).
        augmenting_paths: Number of augmenting paths pushed by this solve.
        bfs_rounds: Number of level-graph (BFS) phases run by this solve.
    """

    max_flow: float
    source_side: frozenset
    cut_edges: Tuple[Tuple[Hashable, Hashable, float], ...]
    augmenting_paths: int = 0
    bfs_rounds: int = 0


class FlowNetwork:
    """A directed flow network over arbitrary hashable node ids."""

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._nodes: List[Hashable] = []
        #: Per-node arc ids in insertion order (the pre-CSR adjacency).
        self._heads: List[List[int]] = []
        #: Flat arc arrays; arc e's residual twin is e ^ 1.
        self._etarget: List[int] = []
        self._ecap: List[float] = []
        #: Lazily built CSR view of ``_heads`` (shared across clones).
        self._csr_start: Optional[List[int]] = None
        self._csr_edges: Optional[List[int]] = None
        #: Structural clones may not grow the shared arrays.
        self._frozen = False

    def _node(self, node: Hashable) -> int:
        if node not in self._index:
            if self._frozen:
                raise ConfigurationError(
                    "cannot add nodes to a capacity clone (shared structure)"
                )
            self._index[node] = len(self._nodes)
            self._nodes.append(node)
            self._heads.append([])
        return self._index[node]

    @property
    def nodes(self) -> Tuple[Hashable, ...]:
        """All node ids, in insertion order."""
        return tuple(self._nodes)

    @property
    def n_forward_edges(self) -> int:
        """Number of forward arcs (one per :meth:`add_edge` call)."""
        return len(self._etarget) // 2

    def add_edge(self, u: Hashable, v: Hashable, capacity: float) -> None:
        """Add a directed edge with the given capacity.

        Parallel edges are allowed and are simply additional arcs; the cut
        semantics are unaffected.
        """
        if self._frozen:
            raise ConfigurationError(
                "cannot add edges to a capacity clone (shared structure)"
            )
        if capacity < 0:
            raise ConfigurationError(f"negative capacity on edge {u!r}->{v!r}")
        if u == v:
            raise ConfigurationError(f"self-loop on node {u!r}")
        ui, vi = self._node(u), self._node(v)
        e = len(self._etarget)
        self._etarget.append(vi)
        self._ecap.append(capacity)
        self._etarget.append(ui)
        self._ecap.append(0.0)
        self._heads[ui].append(e)
        self._heads[vi].append(e + 1)
        self._csr_start = None
        self._csr_edges = None

    def edge_list(self) -> List[Tuple[Hashable, Hashable, float]]:
        """All forward edges as (u, v, capacity) (current residual values)."""
        out = []
        for ui, arcs in enumerate(self._heads):
            for e in arcs:
                if not e & 1:
                    out.append((self._nodes[ui], self._nodes[self._etarget[e]],
                                self._ecap[e]))
        return out

    # -- capacity views / clones ---------------------------------------------

    def _ensure_csr(self) -> Tuple[List[int], List[int]]:
        if self._csr_start is None or self._csr_edges is None:
            start = [0] * (len(self._nodes) + 1)
            order: List[int] = []
            for i, arcs in enumerate(self._heads):
                order.extend(arcs)
                start[i + 1] = len(order)
            self._csr_start, self._csr_edges = start, order
        return self._csr_start, self._csr_edges

    def residual_capacities(self) -> List[float]:
        """A snapshot of the full arc capacity array (forward + residual)."""
        return list(self._ecap)

    def forward_capacities(self) -> List[float]:
        """Current capacities of the forward arcs, in insertion order."""
        return self._ecap[0::2]

    def clone_with_capacities(
        self,
        forward_capacities: Optional[Sequence[float]] = None,
        *,
        residual_capacities: Optional[Sequence[float]] = None,
    ) -> "FlowNetwork":
        """A solvable copy sharing every structural array with this network.

        Node interning, arc targets, twin pairing and the CSR index are
        shared by reference — only the capacity array is fresh — so
        re-pricing and re-solving the same graph costs O(E) floats instead
        of a full rebuild.  The clone rejects :meth:`add_edge`.

        Args:
            forward_capacities: New capacity per forward arc (one per
                historical :meth:`add_edge` call, in insertion order);
                residual arcs start at zero flow.
            residual_capacities: Full per-arc capacity array (length
                ``2 * n_forward_edges``), e.g. a prior solve's
                :meth:`residual_capacities` — used to restart a solver
                from an existing feasible flow.

        Exactly one of the two arguments must be given.
        """
        if (forward_capacities is None) == (residual_capacities is None):
            raise ConfigurationError(
                "give exactly one of forward_capacities / residual_capacities"
            )
        clone = FlowNetwork.__new__(FlowNetwork)
        clone._index = self._index
        clone._nodes = self._nodes
        clone._heads = self._heads
        clone._etarget = self._etarget
        start, order = self._ensure_csr()
        clone._csr_start = start
        clone._csr_edges = order
        clone._frozen = True
        if forward_capacities is not None:
            caps = list(forward_capacities)
            if len(caps) != self.n_forward_edges:
                raise ConfigurationError(
                    f"expected {self.n_forward_edges} forward capacities, "
                    f"got {len(caps)}"
                )
            if any(c < 0 for c in caps):
                raise ConfigurationError("negative capacity in clone")
            full = [0.0] * len(self._etarget)
            full[0::2] = caps
            clone._ecap = full
        else:
            assert residual_capacities is not None
            full = list(residual_capacities)
            if len(full) != len(self._etarget):
                raise ConfigurationError(
                    f"expected {len(self._etarget)} arc capacities, "
                    f"got {len(full)}"
                )
            if any(c < 0 for c in full):
                raise ConfigurationError("negative capacity in clone")
            clone._ecap = full
        return clone

    def net_flow_from(self, node: Hashable) -> float:
        """Net flow currently leaving ``node``, read off the residual arcs.

        The flow carried by forward arc ``e`` equals the capacity
        accumulated on its residual twin ``e ^ 1``; summing twins of arcs
        leaving the node minus twins of arcs entering it gives the node's
        net outflow.  For a source node this is the total s-t flow of the
        residual state (used to price warm-started re-solves).
        """
        if node not in self._index:
            raise ConfigurationError(f"node {node!r} not present in the network")
        idx = self._index[node]
        target, cap = self._etarget, self._ecap
        total = 0.0
        for e in range(0, len(target), 2):
            if target[e ^ 1] == idx:
                total += cap[e ^ 1]
            elif target[e] == idx:
                total -= cap[e ^ 1]
        return total

    # -- Dinic ----------------------------------------------------------------

    def _terminals(self, source: Hashable, sink: Hashable) -> Tuple[int, int]:
        if source not in self._index or sink not in self._index:
            raise ConfigurationError("source/sink not present in the network")
        s, t = self._index[source], self._index[sink]
        if s == t:
            raise ConfigurationError("source and sink must differ")
        return s, t

    def max_flow(self, source: Hashable, sink: Hashable) -> MaxFlowResult:
        """Compute the maximum flow and extract the minimum cut.

        The network is consumed (capacities become residuals); use
        :meth:`clone_with_capacities` to solve the same structure again.
        Starting from a clone pre-loaded with a feasible residual state,
        the reported ``max_flow`` is the incremental flow only.
        """
        s, t = self._terminals(source, sink)
        n = len(self._nodes)
        start, order = self._ensure_csr()
        target, cap = self._etarget, self._ecap
        levels = [-1] * n
        iters = [0] * n
        total = 0.0
        paths = 0
        rounds = 0
        queue: deque = deque()

        while True:
            # BFS: level graph over arcs with residual capacity.
            for i in range(n):
                levels[i] = -1
            levels[s] = 0
            rounds += 1
            queue.clear()
            queue.append(s)
            while queue:
                u = queue.popleft()
                nxt = levels[u] + 1
                for i in range(start[u], start[u + 1]):
                    e = order[i]
                    v = target[e]
                    if cap[e] > _EPS and levels[v] < 0:
                        levels[v] = nxt
                        queue.append(v)
            if levels[t] < 0:
                break

            # Blocking flow: iterative DFS with per-node arc iterators.
            # Mirrors the recursive formulation arc-for-arc: advancing
            # keeps the iterator on the taken arc (a pushed path restarts
            # from the source through the same arcs), a dead end advances
            # the parent's iterator past the arc that led there.
            for i in range(n):
                iters[i] = start[i]
            path: List[int] = []
            u = s
            while True:
                if u == t:
                    flow = INFINITY
                    for e in path:
                        if cap[e] < flow:
                            flow = cap[e]
                    for e in path:
                        cap[e] -= flow
                        cap[e ^ 1] += flow
                    total += flow
                    paths += 1
                    path.clear()
                    u = s
                    continue
                lvl = levels[u] + 1
                it = iters[u]
                stop = start[u + 1]
                advanced = False
                while it < stop:
                    e = order[it]
                    if cap[e] > _EPS and levels[target[e]] == lvl:
                        iters[u] = it
                        path.append(e)
                        u = target[e]
                        advanced = True
                        break
                    it += 1
                if advanced:
                    continue
                iters[u] = it
                if u == s:
                    break
                e = path.pop()
                u = target[e ^ 1]
                iters[u] += 1

        reachable = self._residual_reachable(s)
        return MaxFlowResult(
            max_flow=total,
            source_side=frozenset(self._nodes[i] for i in reachable),
            cut_edges=self._cut_edges(reachable),
            augmenting_paths=paths,
            bfs_rounds=rounds,
        )

    # -- shared cut extraction -------------------------------------------------

    def _residual_reachable(self, s: int) -> Set[int]:
        """Nodes reachable from ``s`` in the residual graph."""
        start, order = self._ensure_csr()
        target, cap = self._etarget, self._ecap
        reachable: Set[int] = {s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for i in range(start[u], start[u + 1]):
                e = order[i]
                v = target[e]
                if cap[e] > _EPS and v not in reachable:
                    reachable.add(v)
                    queue.append(v)
        return reachable

    def _cut_edges(
        self, reachable: Set[int]
    ) -> Tuple[Tuple[Hashable, Hashable, float], ...]:
        """Forward edges crossing the cut, with their original capacities."""
        target, cap = self._etarget, self._ecap
        cut: List[Tuple[Hashable, Hashable, float]] = []
        for ui in reachable:
            for e in self._heads[ui]:
                if not e & 1 and target[e] not in reachable:
                    original = cap[e] + cap[e ^ 1]
                    cut.append(
                        (self._nodes[ui], self._nodes[target[e]], original)
                    )
        return tuple(cut)

    # -- push-relabel (independent second solver) --------------------------------

    def max_flow_push_relabel(self, source: Hashable, sink: Hashable) -> MaxFlowResult:
        """Goldberg-Tarjan push-relabel max flow (FIFO variant).

        An algorithmically independent solver over the same network,
        used to cross-validate Dinic's results in the test suite (two
        implementations agreeing by construction is far stronger evidence
        than one).  The network is consumed, as with :meth:`max_flow`.

        Infinite capacities are clamped to a finite bound exceeding the
        total finite capacity, which cannot change any finite min cut.
        """
        s, t = self._terminals(source, sink)
        n = len(self._nodes)
        start, order = self._ensure_csr()
        target, cap = self._etarget, self._ecap

        finite_total = sum(
            cap[e]
            for e in range(0, len(target), 2)
            if cap[e] != INFINITY
        )
        bound = 2.0 * finite_total + 1.0
        for e in range(len(cap)):
            if cap[e] == INFINITY:
                cap[e] = bound

        height = [0] * n
        excess = [0.0] * n
        height[s] = n
        queue: deque = deque()
        for i in range(start[s], start[s + 1]):
            e = order[i]
            if cap[e] > _EPS:
                flow = cap[e]
                cap[e] = 0.0
                cap[e ^ 1] += flow
                v = target[e]
                excess[v] += flow
                if v not in (s, t):
                    queue.append(v)

        arc_ptr = list(start[:n])
        while queue:
            u = queue.popleft()
            while excess[u] > _EPS:
                if arc_ptr[u] == start[u + 1]:
                    # Relabel: one above the lowest admissible neighbour.
                    min_h = None
                    for i in range(start[u], start[u + 1]):
                        e = order[i]
                        if cap[e] > _EPS:
                            h = height[target[e]]
                            if min_h is None or h < min_h:
                                min_h = h
                    if min_h is None:
                        break
                    height[u] = min_h + 1
                    arc_ptr[u] = start[u]
                    continue
                e = order[arc_ptr[u]]
                v = target[e]
                if cap[e] > _EPS and height[u] == height[v] + 1:
                    flow = min(excess[u], cap[e])
                    cap[e] -= flow
                    cap[e ^ 1] += flow
                    excess[u] -= flow
                    had_none = excess[v] <= _EPS
                    excess[v] += flow
                    if had_none and v not in (s, t):
                        queue.append(v)
                else:
                    arc_ptr[u] += 1

        reachable = self._residual_reachable(s)
        return MaxFlowResult(
            max_flow=excess[t],
            source_side=frozenset(self._nodes[i] for i in reachable),
            cut_edges=self._cut_edges(reachable),
        )
