"""Reference cuts and exhaustive partition enumeration.

The paper compares four cuts (Figure 12):

- the **aggregator engine**: every functional cell in the back-end
  (the paper's Cut-1);
- the **sensor node engine**: every functional cell in the front-end
  (the paper's Cut-2);
- the **trivial cut**: feature extractors (and DWT) on the sensor, the
  classifier ensemble and fusion in the aggregator — "placed between the
  feature extractors and the classifier";
- the **Cross cut** produced by the Automatic XPro Generator (min-cut).

:func:`enumerate_partitions` yields every subset of cells for small
topologies; the tests use it to certify that the generator's cut is the true
optimum.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterator

from repro.cells.topology import CellTopology
from repro.errors import ConfigurationError

#: Module families considered "classifier side" by the trivial cut.
_CLASSIFIER_MODULES = frozenset({"svm", "fusion"})


def sensor_cut(topology: CellTopology) -> FrozenSet[str]:
    """All cells on the sensor node (the in-sensor single-end engine)."""
    return frozenset(topology.cells)


def aggregator_cut(topology: CellTopology) -> FrozenSet[str]:
    """No cells on the sensor node (the in-aggregator single-end engine)."""
    return frozenset()


def trivial_cut(topology: CellTopology) -> FrozenSet[str]:
    """Features (and their DWT predecessors) in-sensor, classifiers in-aggregator.

    This is the intuitive cut of Section 5.5: features are a compact
    representation of the segment, so cutting at the feature/classifier
    boundary minimises transmitted data without any search.
    """
    return frozenset(
        name
        for name, cell in topology.cells.items()
        if cell.module not in _CLASSIFIER_MODULES
    )


def enumerate_partitions(
    topology: CellTopology, max_cells: int = 16
) -> Iterator[FrozenSet[str]]:
    """Yield every in-sensor subset of cells (exhaustive design space).

    Any subset is a legal partition — data crossing the cut in either
    direction is transmitted by the link — so the design space is the full
    power set.  Guarded by ``max_cells`` because it is exponential; intended
    for certifying optimality on small test topologies.
    """
    names = sorted(topology.cells)
    if len(names) > max_cells:
        raise ConfigurationError(
            f"refusing to enumerate 2^{len(names)} partitions (> 2^{max_cells})"
        )
    for size in range(len(names) + 1):
        for subset in combinations(names, size):
            yield frozenset(subset)
