"""Signal-quality assessment and acquisition gating.

Deployed wearables do not classify every window: motion artifacts,
electrode pops and saturated amplifiers produce garbage segments that cost
full analysis energy and yield meaningless decisions.  A signal-quality
index (SQI) stage — a handful of cheap checks *before* the analytic
engine — rejects them at a tiny fraction of the cost.

:class:`SignalQualityIndex` computes four standard checks:

- **saturation**: fraction of samples pinned at the ADC rails;
- **flatline**: fraction of consecutive samples with (near-)zero delta
  (a disconnected electrode reads constant);
- **impulse artifacts**: extreme-sample fraction beyond ``k`` robust
  standard deviations (motion spikes);
- **dynamic range**: peak-to-peak span collapsing toward zero.

:class:`QualityGate` wraps the index into the accept/reject decision and
accounts for the energy saved by not running rejected windows through the
analytic engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QualityReport:
    """Outcome of assessing one segment.

    Attributes:
        score: Overall quality in [0, 1] (1 = clean).
        saturation_fraction: Share of samples at the rails.
        flatline_fraction: Share of near-zero sample-to-sample deltas.
        impulse_fraction: Share of extreme outlier samples.
        dynamic_range: Peak-to-peak amplitude.
        flags: Human-readable names of the failed checks.
    """

    score: float
    saturation_fraction: float
    flatline_fraction: float
    impulse_fraction: float
    dynamic_range: float
    flags: tuple

    @property
    def acceptable(self) -> bool:
        """Whether no check failed."""
        return not self.flags


class SignalQualityIndex:
    """Configurable segment-quality assessor.

    Args:
        rail: ADC full-scale magnitude; samples with ``|x| >= rail`` count
            as saturated.
        flatline_epsilon: Delta magnitude below which consecutive samples
            count as flat.
        impulse_sigmas: Robust-z threshold for impulse artifacts.  The
            defaults leave headroom for *physiologic* spikes — an ECG's
            QRS complex is a legitimate extreme-amplitude excursion
            spanning a few percent of the segment — while catching
            artifact bursts that exceed that share.
        max_saturation: Failing threshold for the saturation fraction.
        max_flatline: Failing threshold for the flatline fraction.
        max_impulse: Failing threshold for the impulse fraction.
        min_dynamic_range: Failing threshold for peak-to-peak span.
    """

    def __init__(
        self,
        rail: float = 32.0,
        flatline_epsilon: float = 1e-6,
        impulse_sigmas: float = 8.0,
        max_saturation: float = 0.01,
        max_flatline: float = 0.2,
        max_impulse: float = 0.06,
        min_dynamic_range: float = 1e-3,
    ) -> None:
        if rail <= 0 or impulse_sigmas <= 0:
            raise ConfigurationError("rail and impulse_sigmas must be positive")
        self.rail = float(rail)
        self.flatline_epsilon = float(flatline_epsilon)
        self.impulse_sigmas = float(impulse_sigmas)
        self.max_saturation = float(max_saturation)
        self.max_flatline = float(max_flatline)
        self.max_impulse = float(max_impulse)
        self.min_dynamic_range = float(min_dynamic_range)

    def assess(self, segment: Sequence[float]) -> QualityReport:
        """Assess one segment; never raises on bad data (that is its job)."""
        arr = np.asarray(segment, dtype=np.float64)
        if arr.ndim != 1 or arr.size < 2:
            raise ConfigurationError("segment must be 1-D with >= 2 samples")

        saturation = float(np.mean(np.abs(arr) >= self.rail))
        deltas = np.abs(np.diff(arr))
        flatline = float(np.mean(deltas <= self.flatline_epsilon))
        median = float(np.median(arr))
        mad = float(np.median(np.abs(arr - median)))
        robust_sigma = 1.4826 * mad if mad > 0 else float(arr.std()) or 1.0
        impulse = float(
            np.mean(np.abs(arr - median) > self.impulse_sigmas * robust_sigma)
        )
        dynamic_range = float(arr.max() - arr.min())

        flags: List[str] = []
        if saturation > self.max_saturation:
            flags.append("saturation")
        if flatline > self.max_flatline:
            flags.append("flatline")
        if impulse > self.max_impulse:
            flags.append("impulse")
        if dynamic_range < self.min_dynamic_range:
            flags.append("dynamic_range")

        # Score: product of per-check headrooms, clipped to [0, 1].
        parts = [
            1.0 - min(saturation / max(self.max_saturation, 1e-12), 1.0),
            1.0 - min(flatline / max(self.max_flatline, 1e-12), 1.0),
            1.0 - min(impulse / max(self.max_impulse, 1e-12), 1.0),
            min(dynamic_range / max(self.min_dynamic_range, 1e-12), 1.0),
        ]
        score = float(np.prod(parts))
        return QualityReport(
            score=score,
            saturation_fraction=saturation,
            flatline_fraction=flatline,
            impulse_fraction=impulse,
            dynamic_range=dynamic_range,
            flags=tuple(flags),
        )


@dataclass
class QualityGate:
    """Accept/reject gate in front of the analytic engine.

    Attributes:
        sqi: The quality assessor.
        check_energy_j: Energy of running the SQI checks themselves (a few
            hundred adds/compares — orders below the analytic engine).
    """

    sqi: SignalQualityIndex
    check_energy_j: float = 5e-9

    def __post_init__(self) -> None:
        if self.check_energy_j < 0:
            raise ConfigurationError("check_energy_j must be >= 0")

    def accept(self, segment: Sequence[float]) -> bool:
        """Whether the segment should proceed to classification."""
        return self.sqi.assess(segment).acceptable

    def expected_energy_j(
        self, engine_energy_j: float, reject_rate: float
    ) -> float:
        """Mean per-window energy with gating at a given reject rate.

        ``E = E_check + (1 - r) * E_engine`` — every window pays the cheap
        check, only accepted ones pay the engine.
        """
        if engine_energy_j < 0:
            raise ConfigurationError("engine energy must be >= 0")
        if not 0.0 <= reject_rate <= 1.0:
            raise ConfigurationError("reject_rate must be in [0, 1]")
        return self.check_energy_j + (1.0 - reject_rate) * engine_energy_j
