"""Windowing utilities for streaming biosignal analysis.

A deployed wearable does not receive pre-cut segments: the ADC produces a
continuous sample stream and the analytic engine processes it in fixed-size
windows (one "event" per window in the paper's energy accounting).  These
helpers cut streams into the segment shapes the classification pipeline
expects.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigurationError


def sliding_windows(
    samples: Sequence[float], window: int, stride: int | None = None
) -> np.ndarray:
    """Cut a sample array into (possibly overlapping) windows.

    Args:
        samples: 1-D sample sequence.
        window: Window length in samples.
        stride: Hop between window starts; defaults to ``window``
            (non-overlapping, the paper's event model).

    Returns:
        Array of shape ``(n_windows, window)``; trailing samples that do not
        fill a whole window are dropped.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1:
        raise ConfigurationError("samples must be one-dimensional")
    if window <= 0:
        raise ConfigurationError("window must be positive")
    hop = window if stride is None else int(stride)
    if hop <= 0:
        raise ConfigurationError("stride must be positive")
    if len(arr) < window:
        return np.empty((0, window))
    starts = range(0, len(arr) - window + 1, hop)
    return np.stack([arr[s : s + window] for s in starts])


def segment_stream(
    chunks: Iterable[Sequence[float]], window: int
) -> Iterator[np.ndarray]:
    """Re-segment an iterable of arbitrary-size chunks into fixed windows.

    This is the software model of the sensor's acquisition buffer: samples
    arrive in whatever burst sizes the ADC DMA produces, and complete
    windows are emitted as soon as they fill.

    Args:
        chunks: Iterable of 1-D sample chunks (any lengths, in order).
        window: Window length in samples.

    Yields:
        1-D arrays of exactly ``window`` samples.
    """
    if window <= 0:
        raise ConfigurationError("window must be positive")
    buffer: List[float] = []
    for chunk in chunks:
        arr = np.asarray(chunk, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError("chunks must be one-dimensional")
        buffer.extend(arr.tolist())
        while len(buffer) >= window:
            yield np.asarray(buffer[:window])
            del buffer[:window]
