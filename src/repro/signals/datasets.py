"""The six biosignal test cases of Table 1, as synthetic datasets.

The paper evaluates six binary-classification cases (Section 4.1, Table 1):

======  ==================  ==============  ==============
Symbol  Source dataset      Segment length  Segment number
======  ==================  ==============  ==============
C1      ECGTwoLead (UCR)    82              1162
C2      ECGFivedays (UCR)   136             884
E1      EEGDifficult01      128             1000
E2      EEGDifficult02      128             1000
M1      EMGHandLat (UCI)    132             1200
M2      EMGHandTip (UCI)    132             1200
======  ==================  ==============  ==============

:func:`load_case` reproduces each case with the synthetic generators of
:mod:`repro.signals.waveforms` at exactly these dimensions, deterministically
from a per-case seed.  Segment counts can be scaled down uniformly (for fast
unit tests) without changing segment lengths — lengths are what the
energy/partitioning results depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.signals.waveforms import (
    ECGGenerator,
    EEGGenerator,
    EMGGenerator,
    SignalGenerator,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Static attributes of one Table 1 test case.

    Attributes:
        symbol: Paper symbol (C1, C2, E1, E2, M1, M2).
        source_name: Name of the archive dataset the paper used.
        modality: ``"ecg" | "eeg" | "emg"``.
        segment_length: Samples per segment (Table 1).
        segment_number: Number of labelled segments (Table 1).
        seed: Deterministic per-case seed for the synthetic generator.
    """

    symbol: str
    source_name: str
    modality: str
    segment_length: int
    segment_number: int
    seed: int

    def make_generator(self) -> SignalGenerator:
        """Instantiate the synthetic generator matching this case.

        Per-case morphology parameters are tuned so classification accuracy
        lands in a realistic band (~0.75-0.95) rather than saturating:
        saturated cases train SVMs with almost no support vectors, which
        would make the in-sensor classifier unrealistically cheap (the paper
        notes SV counts track dataset separability, Section 5.5).
        """
        if self.modality == "ecg":
            st_shift, noise = (0.22, 0.08) if self.symbol == "C1" else (0.25, 0.07)
            return ECGGenerator(
                self.segment_length, st_shift=st_shift, noise_level=noise
            )
        if self.modality == "eeg":
            difficulty = 0.45 if self.symbol == "E1" else 0.55
            return EEGGenerator(self.segment_length, difficulty=difficulty)
        if self.modality == "emg":
            contrast = 0.5 if self.symbol == "M1" else 0.45
            return EMGGenerator(self.segment_length, burst_contrast=contrast)
        if self.modality == "acc":
            from repro.signals.waveforms import AccelerometerGenerator

            return AccelerometerGenerator(self.segment_length)
        raise ConfigurationError(f"unknown modality {self.modality!r}")


#: The six evaluation cases, keyed by paper symbol, matching Table 1 exactly.
TABLE1_CASES: Dict[str, DatasetSpec] = {
    "C1": DatasetSpec("C1", "ECGTwoLead", "ecg", 82, 1162, seed=0xC1),
    "C2": DatasetSpec("C2", "ECGFivedays", "ecg", 136, 884, seed=0xC2),
    "E1": DatasetSpec("E1", "EEGDifficult01", "eeg", 128, 1000, seed=0xE1),
    "E2": DatasetSpec("E2", "EEGDifficult02", "eeg", 128, 1000, seed=0xE2),
    "M1": DatasetSpec("M1", "EMGHandLat", "emg", 132, 1200, seed=0x31),
    "M2": DatasetSpec("M2", "EMGHandTip", "emg", 132, 1200, seed=0x32),
}

#: Case symbols in the paper's presentation order.
CASE_ORDER: Tuple[str, ...] = ("C1", "C2", "E1", "E2", "M1", "M2")


@dataclass
class BiosignalDataset:
    """A realised labelled dataset for one test case.

    Attributes:
        spec: The static Table 1 attributes.
        segments: Array of shape ``(segment_number, segment_length)``.
        labels: Binary label vector of length ``segment_number``.
    """

    spec: DatasetSpec
    segments: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.segments.ndim != 2:
            raise ConfigurationError("segments must be a 2-D array")
        if len(self.segments) != len(self.labels):
            raise ConfigurationError("segments/labels length mismatch")

    @property
    def n_segments(self) -> int:
        """Number of labelled segments."""
        return len(self.segments)

    @property
    def segment_length(self) -> int:
        """Samples per segment."""
        return self.segments.shape[1]

    def class_counts(self) -> Tuple[int, int]:
        """``(n_class0, n_class1)``."""
        n_pos = int(self.labels.sum())
        return len(self.labels) - n_pos, n_pos


def load_case(symbol: str, n_segments: int | None = None) -> BiosignalDataset:
    """Generate one of the six test cases deterministically.

    Args:
        symbol: Paper symbol, e.g. ``"C1"`` (case-insensitive).
        n_segments: Optionally override the segment count (for fast tests);
            the segment *length* always matches Table 1.

    Returns:
        A :class:`BiosignalDataset` with balanced binary labels.
    """
    key = symbol.upper()
    if key not in TABLE1_CASES:
        raise ConfigurationError(
            f"unknown case {symbol!r}; available: {sorted(TABLE1_CASES)}"
        )
    spec = TABLE1_CASES[key]
    count = spec.segment_number if n_segments is None else int(n_segments)
    if count <= 0:
        raise ConfigurationError("n_segments must be positive")
    rng = np.random.default_rng(spec.seed)
    generator = spec.make_generator()
    segments, labels = generator.generate_batch(rng, count)
    return BiosignalDataset(spec=spec, segments=segments, labels=labels)


def load_all_cases(n_segments: int | None = None) -> Dict[str, BiosignalDataset]:
    """Load all six cases (optionally size-reduced), in paper order."""
    return {sym: load_case(sym, n_segments) for sym in CASE_ORDER}


def load_fall_detection(
    n_segments: int = 400,
    segment_length: int = 128,
    seed: int = 0xFA11,
) -> BiosignalDataset:
    """Wrist-accelerometer fall-detection dataset (walking vs fall).

    The paper's architecture generalises beyond biopotentials ("other
    wearable computing systems alike", §1); this case exercises the same
    pipeline on an IMU workload at a 50 Hz event rate.
    """
    from repro.signals.waveforms import AccelerometerGenerator

    if n_segments <= 0:
        raise ConfigurationError("n_segments must be positive")
    spec = DatasetSpec(
        symbol="A1",
        source_name="WristFallDetect",
        modality="acc",
        segment_length=segment_length,
        segment_number=n_segments,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    generator = AccelerometerGenerator(segment_length)
    segments, labels = generator.generate_batch(rng, n_segments)
    return BiosignalDataset(spec=spec, segments=segments, labels=labels)


def load_multiclass_emg(
    n_classes: int = 4,
    n_segments: int = 400,
    segment_length: int = 132,
    seed: int = 0x3C,
) -> BiosignalDataset:
    """Multi-class EMG hand-movement dataset (for the §5.7 extension).

    Six movement archetypes stand in for the full UCI hand-movement
    dataset; labels run 0..n_classes-1 and are balanced.

    Args:
        n_classes: Movement classes (2-6).
        n_segments: Total labelled segments.
        segment_length: Samples per segment (Table 1 EMG default: 132).
        seed: Deterministic generator seed.
    """
    from repro.signals.waveforms import MultiClassEMGGenerator

    if n_segments <= 0:
        raise ConfigurationError("n_segments must be positive")
    spec = DatasetSpec(
        symbol=f"M{n_classes}c",
        source_name="EMGHandMulti",
        modality="emg",
        segment_length=segment_length,
        segment_number=n_segments,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    generator = MultiClassEMGGenerator(segment_length, n_classes=n_classes)
    segments, labels = generator.generate_batch(rng, n_segments)
    return BiosignalDataset(spec=spec, segments=segments, labels=labels)


def table1() -> List[Dict[str, object]]:
    """Table 1 of the paper as a list of row dictionaries.

    Each row has keys ``symbol``, ``dataset``, ``segment_length`` and
    ``segment_number`` — the exact attribute table the paper prints.
    """
    return [
        {
            "symbol": spec.symbol,
            "dataset": spec.source_name,
            "segment_length": spec.segment_length,
            "segment_number": spec.segment_number,
        }
        for spec in (TABLE1_CASES[sym] for sym in CASE_ORDER)
    ]
