"""Parametric synthetic biosignal generators (ECG, EEG, EMG).

Each generator produces fixed-length labelled segments for binary
classification, standing in for the archive datasets of Table 1 (see
DESIGN.md substitution #1).  The two classes of every generator differ by a
clinically motivated morphology shift, so the classification task is
separable but not trivial — mirroring the accuracy regime the paper reports
("some basic SVM classifiers have fewer supporting vectors due to the good
data separability of the dataset", Section 5.5).

Morphology models:

- **ECG** — sum-of-Gaussians PQRST complex (the classic McSharry-style
  synthetic ECG reduced to a single beat per segment).  Class 1 perturbs the
  ST segment and T-wave amplitude, the signature that distinguishes the two
  ECG leads / recording days in the UCR originals.
- **EEG** — pink background plus band-limited alpha/theta rhythms; class 1
  adds epileptiform spike-wave events (the neural-spike dataset's "difficult"
  discrimination).
- **EMG** — amplitude-modulated Gaussian noise bursts whose envelope shape
  and duty cycle differ per hand-movement class.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.signals import noise


class SignalGenerator(ABC):
    """Base class for labelled fixed-length biosignal segment generators.

    Attributes:
        segment_length: Number of samples per generated segment.
        sample_rate: Nominal sampling rate in Hz (used for the time axis of
            the physiological components).
    """

    def __init__(self, segment_length: int, sample_rate: float) -> None:
        if segment_length <= 0:
            raise ConfigurationError("segment_length must be positive")
        if sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        self.segment_length = int(segment_length)
        self.sample_rate = float(sample_rate)

    @abstractmethod
    def generate(self, rng: np.random.Generator, label: int) -> np.ndarray:
        """Generate one segment of the given class label (0 or 1)."""

    def generate_batch(
        self, rng: np.random.Generator, n_segments: int, class_balance: float = 0.5
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Generate a labelled batch.

        Args:
            rng: Random generator (owns all stochasticity).
            n_segments: Total number of segments.
            class_balance: Fraction of class-1 segments.

        Returns:
            ``(X, y)``: segment matrix of shape ``(n_segments,
            segment_length)`` and an int label vector.
        """
        if n_segments <= 0:
            raise ConfigurationError("n_segments must be positive")
        if not 0.0 < class_balance < 1.0:
            raise ConfigurationError("class_balance must be in (0, 1)")
        n_pos = int(round(n_segments * class_balance))
        labels = np.array([1] * n_pos + [0] * (n_segments - n_pos))
        rng.shuffle(labels)
        segments = np.stack([self.generate(rng, int(lbl)) for lbl in labels])
        return segments, labels

    def _check_label(self, label: int) -> int:
        if label not in (0, 1):
            raise ConfigurationError(f"binary label expected, got {label!r}")
        return int(label)


@dataclass(frozen=True)
class _GaussianWave:
    """One Gaussian component of the PQRST complex."""

    center: float  # position as a fraction of the segment
    width: float  # standard deviation as a fraction of the segment
    amplitude: float

    def render(self, t: np.ndarray) -> np.ndarray:
        return self.amplitude * np.exp(-0.5 * ((t - self.center) / self.width) ** 2)


class ECGGenerator(SignalGenerator):
    """Single-beat synthetic ECG segments (PQRST sum of Gaussians).

    Class 0 is a textbook-normal beat.  Class 1 applies an ST-elevation-like
    morphology change: depressed T-wave, widened QRS and an ST offset, with
    per-segment jitter on every wave parameter.

    Args:
        segment_length: Samples per segment (82 for C1, 136 for C2).
        sample_rate: Nominal Hz; defaults to a wearable-typical 250 Hz.
        st_shift: Magnitude of the class-1 ST morphology change.
        noise_level: Standard deviation of measurement white noise.
    """

    _PQRST = (
        _GaussianWave(center=0.18, width=0.030, amplitude=0.15),  # P
        _GaussianWave(center=0.38, width=0.012, amplitude=-0.20),  # Q
        _GaussianWave(center=0.42, width=0.016, amplitude=1.00),  # R
        _GaussianWave(center=0.46, width=0.012, amplitude=-0.25),  # S
        _GaussianWave(center=0.70, width=0.055, amplitude=0.30),  # T
    )

    def __init__(
        self,
        segment_length: int,
        sample_rate: float = 250.0,
        st_shift: float = 0.35,
        noise_level: float = 0.04,
    ) -> None:
        super().__init__(segment_length, sample_rate)
        self.st_shift = float(st_shift)
        self.noise_level = float(noise_level)

    def generate(self, rng: np.random.Generator, label: int) -> np.ndarray:
        label = self._check_label(label)
        t = np.linspace(0.0, 1.0, self.segment_length, endpoint=False)
        beat = np.zeros_like(t)
        for wave in self._PQRST:
            center = wave.center + rng.normal(0, 0.008)
            width = wave.width * rng.uniform(0.9, 1.1)
            amplitude = wave.amplitude * rng.uniform(0.92, 1.08)
            if label == 1:
                if wave is self._PQRST[4]:  # T wave depression
                    amplitude *= 1.0 - self.st_shift
                if wave in (self._PQRST[1], self._PQRST[3]):  # wider Q/S
                    width *= 1.0 + self.st_shift
            beat += _GaussianWave(center, width, amplitude).render(t)
        if label == 1:
            # ST-segment offset between S (0.46) and T (0.70).
            st_mask = (t > 0.50) & (t < 0.64)
            beat += self.st_shift * 0.3 * st_mask
        beat += noise.baseline_wander(
            rng, self.segment_length, self.sample_rate, amplitude=0.05
        )
        beat += noise.powerline_hum(
            rng, self.segment_length, self.sample_rate, amplitude=0.01
        )
        beat += noise.white_noise(rng, self.segment_length, self.noise_level)
        return beat


class EEGGenerator(SignalGenerator):
    """Synthetic EEG segments: pink background + rhythms (+ spikes in class 1).

    Class 0 carries alpha-band (8-12 Hz) rhythm on pink background; class 1
    shifts power toward theta (4-7 Hz) and superimposes epileptiform
    spike-and-wave transients.  ``difficulty`` scales how subtle the class-1
    changes are — EEGDifficult01 and EEGDifficult02 use different values.

    Args:
        segment_length: Samples per segment (128 in the paper).
        sample_rate: Nominal Hz; EEG-typical 256 Hz.
        difficulty: In (0, 1]; larger means more subtle class differences.
    """

    def __init__(
        self,
        segment_length: int,
        sample_rate: float = 256.0,
        difficulty: float = 0.5,
    ) -> None:
        super().__init__(segment_length, sample_rate)
        if not 0.0 < difficulty <= 1.0:
            raise ConfigurationError("difficulty must be in (0, 1]")
        self.difficulty = float(difficulty)

    def _rhythm(
        self, rng: np.random.Generator, band: Tuple[float, float], amplitude: float
    ) -> np.ndarray:
        t = np.arange(self.segment_length) / self.sample_rate
        freq = rng.uniform(*band)
        phase = rng.uniform(0, 2 * np.pi)
        envelope = 1.0 + 0.3 * np.sin(2 * np.pi * rng.uniform(0.5, 1.5) * t)
        return amplitude * envelope * np.sin(2 * np.pi * freq * t + phase)

    def _spike_wave(self, rng: np.random.Generator) -> np.ndarray:
        out = np.zeros(self.segment_length)
        n_events = rng.integers(1, 3)
        for _ in range(n_events):
            pos = rng.integers(10, self.segment_length - 10)
            width = rng.integers(2, 5)
            idx = np.arange(self.segment_length)
            spike = np.exp(-0.5 * ((idx - pos) / width) ** 2)
            slow = -0.5 * np.exp(-0.5 * ((idx - pos - 4 * width) / (3 * width)) ** 2)
            out += rng.uniform(1.5, 2.5) * (spike + slow)
        return out

    def generate(self, rng: np.random.Generator, label: int) -> np.ndarray:
        label = self._check_label(label)
        subtlety = self.difficulty
        signal = noise.pink_noise(rng, self.segment_length, amplitude=0.6)
        if label == 0:
            signal += self._rhythm(rng, (8.0, 12.0), amplitude=0.8)
            signal += self._rhythm(rng, (4.0, 7.0), amplitude=0.2)
        else:
            signal += self._rhythm(rng, (8.0, 12.0), amplitude=0.8 * subtlety)
            signal += self._rhythm(rng, (4.0, 7.0), amplitude=0.2 + 0.6 * (1 - subtlety / 2))
            signal += (1.2 - 0.7 * subtlety) * self._spike_wave(rng)
        signal += noise.white_noise(rng, self.segment_length, 0.1)
        return signal


class EMGGenerator(SignalGenerator):
    """Synthetic surface-EMG segments: amplitude-modulated noise bursts.

    Surface EMG is well modelled as Gaussian noise whose envelope follows
    muscle activation.  The two classes differ by envelope shape (ramped
    sustained grip vs short double burst) and burst intensity, mimicking the
    lateral/spherical vs tip/hook movement pairs of the UCI hand-movement
    dataset.

    Args:
        segment_length: Samples per segment (132 in the paper).
        sample_rate: Nominal Hz; EMG-typical 500 Hz.
        burst_contrast: How strongly the class-1 envelope differs.
    """

    def __init__(
        self,
        segment_length: int,
        sample_rate: float = 500.0,
        burst_contrast: float = 0.6,
    ) -> None:
        super().__init__(segment_length, sample_rate)
        self.burst_contrast = float(burst_contrast)

    def _envelope(self, rng: np.random.Generator, label: int) -> np.ndarray:
        t = np.linspace(0.0, 1.0, self.segment_length, endpoint=False)
        if label == 0:
            onset = rng.uniform(0.1, 0.25)
            plateau = rng.uniform(0.55, 0.8)
            env = np.clip((t - onset) / 0.15, 0, 1) * np.clip((plateau - t) / 0.1 + 1, 0, 1)
        else:
            c1 = rng.uniform(0.2, 0.3)
            c2 = rng.uniform(0.6, 0.75)
            width = 0.07 * (1 + self.burst_contrast)
            env = np.exp(-0.5 * ((t - c1) / width) ** 2) + (
                1.0 + self.burst_contrast
            ) * np.exp(-0.5 * ((t - c2) / width) ** 2)
        return 0.15 + env

    def generate(self, rng: np.random.Generator, label: int) -> np.ndarray:
        label = self._check_label(label)
        carrier = noise.white_noise(rng, self.segment_length, 1.0)
        signal = self._envelope(rng, label) * carrier
        signal += noise.powerline_hum(
            rng, self.segment_length, self.sample_rate, amplitude=0.03
        )
        return signal


class AccelerometerGenerator(SignalGenerator):
    """Wrist-accelerometer magnitude segments for activity monitoring.

    The paper scopes XPro to "other wearable computing systems alike"
    (§1); activity recognition from a wrist IMU is the canonical non-
    biopotential example.  The generated signal is the Euclidean magnitude
    of a 3-axis accelerometer (gravity + motion + sensor noise):

    - class 0 (**walking**): periodic gait impacts at ~2 Hz with harmonic
      content and step-to-step variability;
    - class 1 (**fall event**): a pre-impact free-fall dip (magnitude
      drops toward 0 g), a sharp impact spike, then a still period — the
      signature fall-detection systems trigger on.

    Args:
        segment_length: Samples per segment.
        sample_rate: IMU rate; 50 Hz is typical for wearables.
        impact_strength: Peak fall-impact acceleration in g.
    """

    def __init__(
        self,
        segment_length: int,
        sample_rate: float = 50.0,
        impact_strength: float = 3.0,
    ) -> None:
        super().__init__(segment_length, sample_rate)
        if impact_strength <= 0:
            raise ConfigurationError("impact_strength must be positive")
        self.impact_strength = float(impact_strength)

    def _walking(self, rng: np.random.Generator) -> np.ndarray:
        t = np.arange(self.segment_length) / self.sample_rate
        cadence = rng.uniform(1.6, 2.2)  # steps per second
        phase = rng.uniform(0, 2 * np.pi)
        gait = (
            0.35 * np.sin(2 * np.pi * cadence * t + phase)
            + 0.15 * np.sin(2 * np.pi * 2 * cadence * t + 2 * phase)
        )
        wobble = noise.baseline_wander(
            rng, self.segment_length, self.sample_rate, amplitude=0.05, frequency=0.4
        )
        return 1.0 + gait + wobble  # magnitude rides on 1 g gravity

    def _fall(self, rng: np.random.Generator) -> np.ndarray:
        n = self.segment_length
        t = np.arange(n, dtype=np.float64)
        impact_at = int(rng.uniform(0.35, 0.6) * n)
        freefall_len = max(2, int(rng.uniform(0.08, 0.15) * n))
        signal = np.full(n, 1.0)
        # Pre-impact walking context.
        signal[: impact_at - freefall_len] += 0.2 * np.sin(
            2 * np.pi * 2.0 * t[: impact_at - freefall_len] / self.sample_rate
        )
        # Free fall: magnitude collapses toward 0 g.
        signal[impact_at - freefall_len : impact_at] = rng.uniform(0.05, 0.3)
        # Impact spike with ringing decay.
        ring = np.exp(-0.4 * np.arange(n - impact_at))
        signal[impact_at:] = 1.0 + self.impact_strength * ring * np.cos(
            0.9 * np.arange(n - impact_at)
        )
        # Post-impact stillness toward the tail.
        tail = int(0.85 * n)
        signal[tail:] = 1.0 + rng.normal(0, 0.01, size=n - tail)
        return signal

    def generate(self, rng: np.random.Generator, label: int) -> np.ndarray:
        label = self._check_label(label)
        signal = self._fall(rng) if label == 1 else self._walking(rng)
        signal += noise.white_noise(rng, self.segment_length, 0.03)
        return signal


class MultiClassEMGGenerator(SignalGenerator):
    """Multi-class surface-EMG segments: one envelope archetype per class.

    Stands in for the full six-movement UCI hand-movement dataset (the
    paper's binary M1/M2 cases are pairs drawn from it, §4.1; the §5.7
    multi-classification extension needs all of it).  Archetypes, in class
    order: sustained grip, double burst, ramp-up, ramp-down, tremor
    (amplitude-modulated), short tap.

    Args:
        segment_length: Samples per segment.
        n_classes: Number of movement classes (2-6).
        sample_rate: Nominal Hz.
        contrast: How distinct the archetype envelopes are (lower = harder).
    """

    _MAX_CLASSES = 6

    def __init__(
        self,
        segment_length: int,
        n_classes: int = 4,
        sample_rate: float = 500.0,
        contrast: float = 0.6,
    ) -> None:
        super().__init__(segment_length, sample_rate)
        if not 2 <= n_classes <= self._MAX_CLASSES:
            raise ConfigurationError(
                f"n_classes must be in [2, {self._MAX_CLASSES}]"
            )
        self.n_classes = int(n_classes)
        self.contrast = float(contrast)

    def _archetype(self, rng: np.random.Generator, label: int) -> np.ndarray:
        t = np.linspace(0.0, 1.0, self.segment_length, endpoint=False)
        c = self.contrast
        jitter = rng.uniform(-0.05, 0.05)
        if label == 0:  # sustained grip
            onset = 0.15 + jitter
            return np.clip((t - onset) / 0.1, 0, 1) * np.clip((0.85 - t) / 0.1 + 1, 0, 1)
        if label == 1:  # double burst
            c1, c2 = 0.25 + jitter, 0.65 + jitter
            width = 0.06 + 0.04 * c
            return np.exp(-0.5 * ((t - c1) / width) ** 2) + np.exp(
                -0.5 * ((t - c2) / width) ** 2
            )
        if label == 2:  # ramp-up
            return np.clip(t + jitter, 0, 1) ** (1 + c)
        if label == 3:  # ramp-down
            return np.clip(1 - t + jitter, 0, 1) ** (1 + c)
        if label == 4:  # tremor: amplitude-modulated activation
            freq = 6 + 4 * c
            return 0.5 + 0.45 * np.sin(2 * np.pi * freq * (t + jitter))
        # label == 5: short tap
        center = 0.4 + jitter
        return (1 + c) * np.exp(-0.5 * ((t - center) / 0.05) ** 2)

    def generate(self, rng: np.random.Generator, label: int) -> np.ndarray:
        if not 0 <= label < self.n_classes:
            raise ConfigurationError(
                f"label must be in [0, {self.n_classes}), got {label!r}"
            )
        carrier = noise.white_noise(rng, self.segment_length, 1.0)
        envelope = 0.15 + self._archetype(rng, int(label))
        signal = envelope * carrier
        signal += noise.powerline_hum(
            rng, self.segment_length, self.sample_rate, amplitude=0.03
        )
        return signal

    def generate_batch(
        self, rng: np.random.Generator, n_segments: int, class_balance: float = 0.5
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Balanced batch across all ``n_classes`` (``class_balance`` unused)."""
        if n_segments <= 0:
            raise ConfigurationError("n_segments must be positive")
        labels = np.arange(n_segments) % self.n_classes
        rng.shuffle(labels)
        segments = np.stack([self.generate(rng, int(lbl)) for lbl in labels])
        return segments, labels
