"""Data augmentation for biosignal training sets.

Wearable training data is scarce and jittery; classical signal
augmentations make the trained classifiers robust to exactly the
distortions deployment brings (electrode drift, timing skew, gain error).
All transforms preserve the segment length and the label, take an explicit
rng, and are composable via :class:`Augmenter`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def time_shift(max_fraction: float = 0.1) -> Transform:
    """Circularly shift the segment by up to ±``max_fraction`` of its length.

    Models trigger-timing skew in the acquisition windowing.
    """
    if not 0.0 < max_fraction <= 0.5:
        raise ConfigurationError("max_fraction must be in (0, 0.5]")

    def apply(segment: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        limit = max(1, int(len(segment) * max_fraction))
        shift = int(rng.integers(-limit, limit + 1))
        return np.roll(segment, shift)

    return apply


def amplitude_scale(max_gain_error: float = 0.15) -> Transform:
    """Scale by a random gain in ``[1-e, 1+e]`` (AFE gain tolerance)."""
    if not 0.0 < max_gain_error < 1.0:
        raise ConfigurationError("max_gain_error must be in (0, 1)")

    def apply(segment: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return segment * rng.uniform(1.0 - max_gain_error, 1.0 + max_gain_error)

    return apply


def baseline_shift(max_offset: float = 0.1) -> Transform:
    """Add a random DC offset (electrode half-cell drift)."""
    if max_offset <= 0:
        raise ConfigurationError("max_offset must be positive")

    def apply(segment: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return segment + rng.uniform(-max_offset, max_offset)

    return apply


def additive_noise(sigma: float = 0.05) -> Transform:
    """Add white Gaussian measurement noise."""
    if sigma <= 0:
        raise ConfigurationError("sigma must be positive")

    def apply(segment: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return segment + rng.normal(0.0, sigma, size=len(segment))

    return apply


def time_mask(max_fraction: float = 0.1) -> Transform:
    """Zero a random contiguous span (transient electrode dropout)."""
    if not 0.0 < max_fraction <= 0.5:
        raise ConfigurationError("max_fraction must be in (0, 0.5]")

    def apply(segment: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = segment.copy()
        span = max(1, int(len(segment) * max_fraction * rng.random()))
        start = int(rng.integers(0, len(segment) - span + 1))
        out[start : start + span] = 0.0
        return out

    return apply


class Augmenter:
    """Composes transforms and expands labelled batches.

    Args:
        transforms: Applied in order to every augmented copy.
        copies: Augmented copies generated per original segment.
        seed: Generator seed.

    >>> aug = Augmenter([amplitude_scale(0.1)], copies=2, seed=0)
    >>> X2, y2 = aug.expand(X, y)   # len(X2) == 3 * len(X)
    """

    def __init__(
        self,
        transforms: Sequence[Transform],
        copies: int = 1,
        seed: int = 0,
    ) -> None:
        if not transforms:
            raise ConfigurationError("need at least one transform")
        if copies < 1:
            raise ConfigurationError("copies must be >= 1")
        self.transforms = list(transforms)
        self.copies = int(copies)
        self.seed = int(seed)

    def apply(self, segment: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One augmented copy of one segment."""
        out = np.asarray(segment, dtype=np.float64)
        for transform in self.transforms:
            out = transform(out, rng)
        if out.shape != np.asarray(segment).shape:
            raise ConfigurationError("transform changed the segment shape")
        return out

    def expand(
        self, segments: np.ndarray, labels: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Originals plus ``copies`` augmented variants of each segment."""
        X = np.asarray(segments, dtype=np.float64)
        y = np.asarray(labels)
        if X.ndim != 2 or len(X) != len(y):
            raise ConfigurationError("need a 2-D batch with matching labels")
        rng = np.random.default_rng(self.seed)
        out_x: List[np.ndarray] = [X]
        out_y: List[np.ndarray] = [y]
        for _ in range(self.copies):
            out_x.append(np.stack([self.apply(row, rng) for row in X]))
            out_y.append(y.copy())
        return np.concatenate(out_x), np.concatenate(out_y)
