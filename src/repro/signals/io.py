"""Dataset file I/O: the UCR archive format and NPZ interchange.

The synthetic generators stand in for the paper's datasets, but a user who
holds the real archives can run the evaluation on them directly:

- :func:`load_ucr_file` parses the UCR Time Series Classification archive
  format (one segment per line: ``label, v1, v2, ...`` — comma- or
  tab-separated, as distributed), which covers the paper's ECGTwoLead and
  ECGFiveDays cases verbatim;
- :func:`save_npz` / :func:`load_npz` provide a compact binary
  interchange for any :class:`~repro.signals.datasets.BiosignalDataset`
  (e.g. to freeze a synthetic dataset for exact cross-machine
  reproducibility).

Both loaders validate their input: non-finite samples (NaN/Inf), empty
datasets and label/series length mismatches raise
:class:`~repro.errors.DataValidationError` instead of propagating garbage
into feature extraction and training.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.errors import ConfigurationError, DataValidationError
from repro.signals.datasets import BiosignalDataset, DatasetSpec

PathLike = Union[str, pathlib.Path]


def _validate_segments(segments: np.ndarray, source: str) -> None:
    """Reject datasets the downstream pipeline would silently mangle.

    Raises :class:`~repro.errors.DataValidationError` (a
    :class:`~repro.errors.ConfigurationError` subclass) on empty data or
    non-finite samples — a NaN or ``inf`` would otherwise propagate
    through feature extraction and training as garbage, not as an error.
    """
    if segments.size == 0:
        raise DataValidationError(f"{source}: dataset contains no samples")
    if not np.isfinite(segments).all():
        n_bad = int(np.size(segments) - np.count_nonzero(np.isfinite(segments)))
        raise DataValidationError(
            f"{source}: {n_bad} non-finite sample(s) (NaN/Inf); "
            "clean or impute the data before loading"
        )


def load_ucr_file(
    path: PathLike,
    symbol: str = "UCR",
    modality: str = "ecg",
    label_map: dict | None = None,
) -> BiosignalDataset:
    """Load a UCR-archive-format file as a labelled dataset.

    Args:
        path: Text file, one segment per line: label first, then samples,
            separated by commas and/or whitespace.
        symbol: Symbol recorded in the resulting spec.
        modality: Recorded modality (drives default event rates downstream).
        label_map: Optional raw-label -> {0, 1} mapping.  By default the
            two distinct labels found are mapped to 0/1 in sorted order
            (UCR binary sets use 1/2 or -1/1).

    Returns:
        A :class:`BiosignalDataset` with binary labels.
    """
    target = pathlib.Path(path)
    try:
        text = target.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read UCR file {path}: {exc}") from exc

    rows = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            raise ConfigurationError(
                f"{target}:{lineno}: need a label and at least one sample"
            )
        try:
            rows.append([float(p) for p in parts])
        except ValueError as exc:
            raise ConfigurationError(f"{target}:{lineno}: {exc}") from exc
    if not rows:
        raise ConfigurationError(f"UCR file {path} contains no segments")
    lengths = {len(r) for r in rows}
    if len(lengths) != 1:
        raise ConfigurationError(
            f"UCR file {path} has inconsistent segment lengths: {sorted(lengths)}"
        )

    data = np.asarray(rows)
    _validate_segments(data, f"UCR file {target}")
    raw_labels = data[:, 0]
    segments = data[:, 1:]
    distinct = sorted(set(raw_labels.tolist()))
    if label_map is None:
        if len(distinct) != 2:
            raise ConfigurationError(
                f"expected a binary dataset, found labels {distinct}; "
                "pass label_map to select/merge classes"
            )
        label_map = {distinct[0]: 0, distinct[1]: 1}
    try:
        labels = np.asarray([label_map[v] for v in raw_labels.tolist()])
    except KeyError as exc:
        raise ConfigurationError(f"label {exc} missing from label_map") from exc

    spec = DatasetSpec(
        symbol=symbol,
        source_name=target.stem,
        modality=modality,
        segment_length=segments.shape[1],
        segment_number=len(segments),
        seed=0,
    )
    return BiosignalDataset(spec=spec, segments=segments, labels=labels)


def save_npz(path: PathLike, dataset: BiosignalDataset) -> None:
    """Freeze a dataset (segments, labels, spec) into one .npz file."""
    np.savez_compressed(
        pathlib.Path(path),
        segments=dataset.segments,
        labels=dataset.labels,
        symbol=dataset.spec.symbol,
        source_name=dataset.spec.source_name,
        modality=dataset.spec.modality,
        seed=dataset.spec.seed,
    )


def load_npz(path: PathLike) -> BiosignalDataset:
    """Load a dataset frozen by :func:`save_npz`."""
    try:
        with np.load(pathlib.Path(path), allow_pickle=False) as bundle:
            segments = bundle["segments"]
            labels = bundle["labels"]
            if segments.ndim != 2:
                raise DataValidationError(
                    f"{path}: segments must be 2-D, got shape {segments.shape}"
                )
            if len(labels) != len(segments):
                raise DataValidationError(
                    f"{path}: {len(labels)} labels for {len(segments)} "
                    "segments (label/series length mismatch)"
                )
            _validate_segments(segments, str(path))
            spec = DatasetSpec(
                symbol=str(bundle["symbol"]),
                source_name=str(bundle["source_name"]),
                modality=str(bundle["modality"]),
                segment_length=segments.shape[1],
                segment_number=len(segments),
                seed=int(bundle["seed"]),
            )
    except (OSError, KeyError, ValueError) as exc:
        raise ConfigurationError(f"cannot load dataset {path}: {exc}") from exc
    return BiosignalDataset(spec=spec, segments=segments, labels=labels)
