"""Biosignal substrate: synthetic ECG / EEG / EMG workload generation.

The paper evaluates on six test cases drawn from the UCR time-series
archive, a neural-spike dataset and the UCI repository (Table 1).  Those
archives are not redistributable here, so this package synthesises
morphology-faithful replacements with the exact segment lengths and counts
of Table 1 (see DESIGN.md, substitution #1):

- :mod:`repro.signals.waveforms` -- parametric ECG (PQRST sum-of-Gaussians),
  EEG (coloured background + rhythms + epileptiform spikes) and EMG
  (amplitude-modulated burst) generators.
- :mod:`repro.signals.noise` -- reproducible noise sources (white, pink,
  baseline wander, powerline hum).
- :mod:`repro.signals.datasets` -- the six labelled test cases C1, C2, E1,
  E2, M1, M2 and the Table 1 attribute table.
- :mod:`repro.signals.segmentation` -- windowing utilities for streaming
  use.
"""

from repro.signals.datasets import (
    TABLE1_CASES,
    load_fall_detection,
    load_multiclass_emg,
    BiosignalDataset,
    DatasetSpec,
    load_case,
    table1,
)
from repro.signals.augment import Augmenter
from repro.signals.io import load_npz, load_ucr_file, save_npz
from repro.signals.quality import QualityGate, QualityReport, SignalQualityIndex
from repro.signals.segmentation import segment_stream, sliding_windows
from repro.signals.waveforms import (
    AccelerometerGenerator,
    ECGGenerator,
    MultiClassEMGGenerator,
    EEGGenerator,
    EMGGenerator,
    SignalGenerator,
)

__all__ = [
    "Augmenter",
    "QualityGate",
    "QualityReport",
    "SignalQualityIndex",
    "TABLE1_CASES",
    "BiosignalDataset",
    "DatasetSpec",
    "AccelerometerGenerator",
    "ECGGenerator",
    "EEGGenerator",
    "EMGGenerator",
    "MultiClassEMGGenerator",
    "SignalGenerator",
    "load_case",
    "load_fall_detection",
    "load_multiclass_emg",
    "load_npz",
    "load_ucr_file",
    "save_npz",
    "segment_stream",
    "sliding_windows",
    "table1",
]
