"""Reproducible noise sources for synthetic biosignals.

Real biosignal recordings are never clean: ECG carries baseline wander and
powerline hum, EEG rides on 1/f ("pink") background activity, EMG is itself
a stochastic process.  These helpers generate those components from an
explicit :class:`numpy.random.Generator` so every dataset in the benchmark
suite is bit-reproducible from its seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def white_noise(rng: np.random.Generator, n: int, amplitude: float = 1.0) -> np.ndarray:
    """Zero-mean Gaussian white noise with the given standard deviation."""
    if n <= 0:
        raise ConfigurationError("sample count must be positive")
    return rng.normal(0.0, amplitude, size=n)


def pink_noise(rng: np.random.Generator, n: int, amplitude: float = 1.0) -> np.ndarray:
    """Approximate 1/f noise via spectral shaping of white noise.

    White Gaussian noise is transformed to the frequency domain, scaled by
    ``1/sqrt(f)`` and transformed back; the result is normalised to the
    requested standard deviation.  Accurate enough for classifier workloads
    (we need plausible spectra, not metrologically exact ones).
    """
    if n <= 0:
        raise ConfigurationError("sample count must be positive")
    if n == 1:
        return rng.normal(0.0, amplitude, size=1)
    spectrum = np.fft.rfft(rng.normal(0.0, 1.0, size=n))
    freqs = np.fft.rfftfreq(n)
    freqs[0] = freqs[1]  # avoid division by zero at DC
    shaped = spectrum / np.sqrt(freqs)
    out = np.fft.irfft(shaped, n=n)
    std = out.std()
    if std > 0:
        out = out / std * amplitude
    return out


def baseline_wander(
    rng: np.random.Generator,
    n: int,
    sample_rate: float,
    amplitude: float = 0.1,
    frequency: float = 0.3,
) -> np.ndarray:
    """Slow sinusoidal drift modelling respiration-induced baseline wander."""
    if sample_rate <= 0:
        raise ConfigurationError("sample_rate must be positive")
    t = np.arange(n) / sample_rate
    phase = rng.uniform(0, 2 * np.pi)
    freq = frequency * rng.uniform(0.8, 1.2)
    return amplitude * np.sin(2 * np.pi * freq * t + phase)


def powerline_hum(
    rng: np.random.Generator,
    n: int,
    sample_rate: float,
    amplitude: float = 0.05,
    mains_hz: float = 60.0,
) -> np.ndarray:
    """Mains interference at 50/60 Hz with random phase."""
    if sample_rate <= 0:
        raise ConfigurationError("sample_rate must be positive")
    t = np.arange(n) / sample_rate
    phase = rng.uniform(0, 2 * np.pi)
    return amplitude * np.sin(2 * np.pi * mains_hz * t + phase)
