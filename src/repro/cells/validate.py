"""Topology linter: structural diagnostics beyond hard validation.

:class:`~repro.cells.topology.CellTopology` rejects malformed graphs
(cycles, dangling references) outright.  This linter reports the *legal
but suspicious* patterns a hand-built pipeline can exhibit — useful when
users construct custom topologies (see ``examples/custom_pipeline.py``):

- **dead cells**: produce ports nobody consumes and are not the result
  (silicon and energy spent on unread values);
- **unreachable cells**: not reachable from the source — they can never
  fire in a data-driven execution;
- **redundant modules**: two cells of the same module reading exactly the
  same inputs (duplicate computation the Var->Std reuse rule exists to
  avoid);
- **wide ports**: ports whose payload exceeds the raw segment itself —
  any cut through them is dominated by simply shipping the raw data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.cells.cell import SOURCE_CELL, PortRef
from repro.cells.topology import CellTopology


@dataclass(frozen=True)
class LintFinding:
    """One diagnostic.

    Attributes:
        kind: ``"dead_cell" | "unreachable_cell" | "redundant_pair" |
            "wide_port"``.
        subject: The cell (or ``cell.port``) the finding is about.
        detail: Human-readable explanation.
    """

    kind: str
    subject: str
    detail: str


def lint_topology(topology: CellTopology) -> List[LintFinding]:
    """Run all structural checks; returns an empty list for a clean graph."""
    findings: List[LintFinding] = []
    findings.extend(_dead_cells(topology))
    findings.extend(_unreachable_cells(topology))
    findings.extend(_redundant_pairs(topology))
    findings.extend(_wide_ports(topology))
    return findings


def _dead_cells(topology: CellTopology) -> List[LintFinding]:
    consumed: Set[str] = set()
    for cell in topology.cells.values():
        consumed.update(ref.cell for ref in cell.inputs)
    out: List[LintFinding] = []
    for name in topology.cells:
        if name == topology.result.cell:
            continue
        if name not in consumed:
            out.append(
                LintFinding(
                    kind="dead_cell",
                    subject=name,
                    detail="no consumer reads any of this cell's outputs",
                )
            )
    return out


def _unreachable_cells(topology: CellTopology) -> List[LintFinding]:
    reachable: Set[str] = set()
    frontier = [SOURCE_CELL]
    consumers = topology.consumers_by_port()
    while frontier:
        producer = frontier.pop()
        for ref, users in consumers.items():
            if ref.cell == producer:
                for user in users:
                    if user not in reachable:
                        reachable.add(user)
                        frontier.append(user)
    return [
        LintFinding(
            kind="unreachable_cell",
            subject=name,
            detail="no dataflow path from the source reaches this cell",
        )
        for name in topology.cells
        if name not in reachable
    ]


def _redundant_pairs(topology: CellTopology) -> List[LintFinding]:
    seen: Dict[Tuple[str, Tuple[PortRef, ...]], str] = {}
    out: List[LintFinding] = []
    for name in topology.cell_names:
        cell = topology.cell(name)
        key = (cell.module, cell.inputs)
        if key in seen:
            out.append(
                LintFinding(
                    kind="redundant_pair",
                    subject=name,
                    detail=f"duplicates {seen[key]!r}: same module "
                    f"({cell.module}) over identical inputs",
                )
            )
        else:
            seen[key] = name
    return out


def _wide_ports(topology: CellTopology) -> List[LintFinding]:
    raw_bits = topology.source_port.bits
    out: List[LintFinding] = []
    for ref, port in topology.producer_ports():
        if ref.cell == SOURCE_CELL:
            continue
        if port.bits > raw_bits:
            out.append(
                LintFinding(
                    kind="wide_port",
                    subject=f"{ref.cell}.{ref.port}",
                    detail=f"payload {port.bits} bits exceeds the raw segment "
                    f"({raw_bits} bits); cuts through it are never optimal",
                )
            )
    return out
