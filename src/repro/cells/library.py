"""Cell constructors for every module family + ALU-mode selection (Fig. 4).

The generic classification decomposes into four module families:

- **statistical feature cells** (8 kinds) operating on a segment port;
- **DWT level cells**, each consuming an approximation band and producing
  the next approximation + detail bands;
- **SVM member cells**, consuming the feature values of their random
  subspace (normalisation folded in) and producing one decision score;
- **the score-fusion cell**, consuming all member scores and producing the
  final classification score.

Two of the paper's three heuristic design rules live here:

- *ALU mode selection* (rule 2): every constructor asks
  :func:`choose_alu_mode` for the module's energy-optimal monotonic mode
  under the target :class:`~repro.hw.energy.EnergyLibrary`.  For the DWT the
  realisation itself is mode-dependent — serial/parallel are matrix
  multiplications, pipeline is a filter bank — which is what makes its
  parallel mode two orders of magnitude more expensive (Fig. 4).
- *cell-level reuse* (rule 3): the Std cell consumes the Var cell's output
  and adds only a square root (Fig. 5); the pipeline builder instantiates
  the Var predecessor automatically.

Feature cells emit raw (unnormalised) feature values; the [0, 1] min-max
normalisation of Section 4.4 is folded into the consuming SVM member cells
as a per-input affine (1 sub, 1 mul, 2 clip-compares), the way a hardware
implementation would fuse a constant affine into the kernel datapath.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cells.cell import (
    FEATURE_BITS,
    RESULT_BITS,
    VALUE_BITS,
    FunctionalCell,
    OutputPort,
    PortRef,
)
from repro.dsp import features as feat
from repro.dsp.wavelet import WaveletFilter, dwt_single_level
from repro.errors import ConfigurationError
from repro.hw.energy import ALUMode, EnergyLibrary
from repro.ml.fusion import WeightedVotingFusion
from repro.ml.svm import SVMClassifier


def _merge_counts(*counts: Mapping[str, int]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for mapping in counts:
        for op, count in mapping.items():
            out[op] = out.get(op, 0) + count
    return out


def choose_alu_mode(
    op_counts_by_mode: Mapping[ALUMode, Mapping[str, int]],
    energy_lib: EnergyLibrary,
    parallel_width: Optional[int] = None,
) -> Tuple[ALUMode, Dict[str, int]]:
    """Pick the energy-optimal ALU mode for one module (design rule 2).

    Args:
        op_counts_by_mode: Op counts of the module's realisation per mode
            (identical mappings for algorithms that do not change with the
            mode).
        energy_lib: Energy model deciding the optimum.
        parallel_width: Unit replication width for PARALLEL mode.

    Returns:
        ``(mode, op_counts)`` of the cheapest mode.
    """
    best_mode: Optional[ALUMode] = None
    best_energy = float("inf")
    for mode in ALUMode:
        counts = op_counts_by_mode.get(mode)
        if counts is None:
            continue
        energy = energy_lib.cell_cost(counts, mode, parallel_width).energy_j
        if energy < best_energy:
            best_energy = energy
            best_mode = mode
    if best_mode is None:
        raise ConfigurationError("no ALU mode candidates supplied")
    return best_mode, dict(op_counts_by_mode[best_mode])


def _uniform_modes(counts: Mapping[str, int]) -> Dict[ALUMode, Mapping[str, int]]:
    """The common case: the algorithm is the same in every mode."""
    return {mode: counts for mode in ALUMode}


# -- statistical feature cells --------------------------------------------------


def make_feature_cell(
    feature_name: str,
    segment_ref: PortRef,
    segment_length: int,
    energy_lib: EnergyLibrary,
    name: Optional[str] = None,
) -> FunctionalCell:
    """Build one statistical feature cell reading a segment port.

    For ``"std"`` the returned cell expects the *Var cell's output* as its
    input (cell-level reuse, Fig. 5) — pass the Var cell's port as
    ``segment_ref`` and the original segment length for the op model.
    """
    if feature_name not in feat.FEATURE_NAMES:
        raise ConfigurationError(f"unknown feature {feature_name!r}")
    counts = feat.operation_counts(feature_name, segment_length)
    mode, chosen = choose_alu_mode(
        _uniform_modes(counts), energy_lib, parallel_width=min(64, segment_length)
    )
    cell_name = name or f"{feature_name}@{segment_ref.cell}.{segment_ref.port}"

    if feature_name == "std":

        def compute(inputs: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
            variance = float(np.atleast_1d(inputs[0])[0])
            return {"out": np.array([np.sqrt(max(variance, 0.0))])}

    else:
        func = {
            "max": feat.maximum,
            "min": feat.minimum,
            "mean": feat.mean,
            "var": feat.variance,
            "czero": feat.zero_crossings,
            "skew": feat.skewness,
            "kurt": feat.kurtosis,
        }[feature_name]

        def compute(inputs: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
            return {"out": np.array([func(inputs[0])])}

    return FunctionalCell(
        name=cell_name,
        module=feature_name,
        op_counts=chosen,
        mode=mode,
        inputs=(segment_ref,),
        outputs=(OutputPort("out", 1, FEATURE_BITS),),
        compute=compute,
        parallel_width=min(64, segment_length),
    )


# -- DWT cells -------------------------------------------------------------------


def dwt_op_counts(input_length: int, taps: int, mode: ALUMode) -> Dict[str, int]:
    """Op counts of one DWT level in the given mode's realisation.

    Pipeline realises the level as a polyphase filter bank (``taps``
    multiplies per output sample); serial and parallel realise it as the
    dense transform-matrix multiplication the paper describes ("the DWT is a
    matrix multiplication"), which is what makes those modes so expensive.
    """
    m = int(input_length)
    if m < 2 or m % 2:
        raise ConfigurationError("DWT input length must be even and >= 2")
    if mode is ALUMode.PIPELINE:
        return {"mul": m * taps, "add": m * max(taps - 1, 1)}
    return {"mul": m * m, "add": m * (m - 1)}


def make_dwt_cell(
    level: int,
    input_ref: PortRef,
    input_length: int,
    energy_lib: EnergyLibrary,
    wavelet: WaveletFilter | str = "haar",
    align_to: Optional[int] = None,
) -> FunctionalCell:
    """Build the DWT cell for one decomposition level.

    Outputs two ports, ``approx`` and ``detail``, each of half the input
    length — they are distinct data items for the partitioner, because a
    cross-end cut may need to transmit one band but not the other.

    Args:
        level: Decomposition level (1-based; used in the cell name).
        input_ref: Producer port of the band to decompose.
        input_length: Length of the band *as processed* (i.e. after
            alignment for level 1).
        energy_lib: Energy model for mode selection.
        wavelet: Filter family.
        align_to: If given (level 1 only), the compute function first
            truncates/zero-pads its input to this length — the fixed
            128-sample alignment of Section 4.4.
    """
    if isinstance(wavelet, str):
        wavelet = WaveletFilter.by_name(wavelet)
    if align_to is not None and align_to != input_length:
        raise ConfigurationError("align_to must equal input_length when set")
    by_mode = {
        mode: dwt_op_counts(input_length, wavelet.length, mode) for mode in ALUMode
    }
    width = min(64, input_length)
    mode, chosen = choose_alu_mode(by_mode, energy_lib, parallel_width=width)
    half = input_length // 2

    def compute(inputs: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
        data = np.asarray(inputs[0], dtype=np.float64)
        if align_to is not None:
            from repro.core.layout import align_segment

            data = align_segment(data, align_to)
        approx, detail = dwt_single_level(data, wavelet)
        return {"approx": approx, "detail": detail}

    return FunctionalCell(
        name=f"dwt_l{level}",
        module="dwt",
        op_counts=chosen,
        mode=mode,
        inputs=(input_ref,),
        outputs=(
            OutputPort("approx", half, VALUE_BITS),
            OutputPort("detail", half, VALUE_BITS),
        ),
        compute=compute,
        parallel_width=width,
    )


# -- SVM member cells --------------------------------------------------------------


def svm_cell_op_counts(classifier: SVMClassifier) -> Dict[str, int]:
    """Op counts of one SVM member cell, normalisation affine included."""
    d = classifier.dimension
    norm_ops = {"sub": d, "mul": d, "cmp": 2 * d}
    return _merge_counts(classifier.operation_counts(), norm_ops)


def make_svm_cell(
    member_index: int,
    classifier: SVMClassifier,
    feature_refs: Sequence[PortRef],
    feature_mins: np.ndarray,
    feature_ranges: np.ndarray,
    energy_lib: EnergyLibrary,
    name: Optional[str] = None,
) -> FunctionalCell:
    """Build one SVM member cell over its subspace's feature ports.

    Args:
        member_index: Position of this member in the ensemble.
        classifier: The trained base SVM (defines op counts and semantics).
        feature_refs: Producer ports of the subspace features, in the order
            the classifier was trained on.
        feature_mins: Per-input normalisation minima (training-set fit).
        feature_ranges: Per-input normalisation ranges (zeros not allowed).
        energy_lib: Energy model for mode selection.
        name: Cell name override (default ``svm_m<member_index>``).
    """
    if len(feature_refs) != classifier.dimension:
        raise ConfigurationError(
            f"member {member_index} expects {classifier.dimension} features, "
            f"got {len(feature_refs)} refs"
        )
    mins = np.asarray(feature_mins, dtype=np.float64)
    ranges = np.asarray(feature_ranges, dtype=np.float64)
    if mins.shape != (classifier.dimension,) or ranges.shape != mins.shape:
        raise ConfigurationError("normalisation parameter shape mismatch")
    if np.any(ranges <= 0):
        raise ConfigurationError("feature ranges must be positive")
    counts = svm_cell_op_counts(classifier)
    mode, chosen = choose_alu_mode(
        _uniform_modes(counts), energy_lib, parallel_width=min(64, classifier.dimension)
    )

    def compute(inputs: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
        raw = np.array([float(np.atleast_1d(v)[0]) for v in inputs])
        normalised = np.clip((raw - mins) / ranges, 0.0, 1.0)
        score = float(np.atleast_1d(classifier.decision_function(normalised))[0])
        return {"out": np.array([score])}

    return FunctionalCell(
        name=name or f"svm_m{member_index}",
        module="svm",
        op_counts=chosen,
        mode=mode,
        inputs=tuple(feature_refs),
        outputs=(OutputPort("out", 1, FEATURE_BITS),),
        compute=compute,
        parallel_width=min(64, classifier.dimension),
    )


# -- score fusion cell ----------------------------------------------------------------


def make_fusion_cell(
    fusion: WeightedVotingFusion,
    member_refs: Sequence[PortRef],
    energy_lib: EnergyLibrary,
) -> FunctionalCell:
    """Build the final weighted-voting score-fusion cell."""
    if len(member_refs) != len(fusion.weights):
        raise ConfigurationError(
            f"fusion fitted for {len(fusion.weights)} members, "
            f"got {len(member_refs)} refs"
        )
    counts = fusion.operation_counts()
    mode, chosen = choose_alu_mode(
        _uniform_modes(counts), energy_lib, parallel_width=min(64, len(member_refs))
    )
    weights = fusion.weights
    intercept = fusion.intercept

    def compute(inputs: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
        scores = np.array([float(np.atleast_1d(v)[0]) for v in inputs])
        return {"out": np.array([float(scores @ weights + intercept)])}

    return FunctionalCell(
        name="fusion",
        module="fusion",
        op_counts=chosen,
        mode=mode,
        inputs=tuple(member_refs),
        outputs=(OutputPort("out", 1, RESULT_BITS),),
        compute=compute,
        parallel_width=min(64, len(member_refs)),
    )


# -- Figure 4 characterisation ----------------------------------------------------------


def _representative_svm_counts(n_sv: int = 100, dim: int = 12) -> Dict[str, int]:
    """Op counts of a representative RBF SVM member (for Fig. 4 only)."""
    return _merge_counts(
        {
            "sub": dim * n_sv + dim,
            "mul": (dim + 1) * n_sv + n_sv + dim,
            "add": (dim - 1) * n_sv + n_sv,
            "super": n_sv,
            "cmp": 1 + 2 * dim,
        }
    )


#: Fig. 4 module set: op counts per mode at representative sizes
#: (128-sample segment, Haar DWT level, 100-SV 12-dim RBF SVM, 10-member
#: fusion), plus the parallel replication width.
FIG4_MODULES: Dict[str, Tuple[Dict[ALUMode, Mapping[str, int]], int]] = {
    **{
        name: (_uniform_modes(feat.operation_counts(name, 128)), 64)
        for name in feat.FEATURE_NAMES
    },
    "dwt": ({mode: dwt_op_counts(128, 2, mode) for mode in ALUMode}, 64),
    "svm": (_uniform_modes(_representative_svm_counts()), 12),
    "fusion": (_uniform_modes({"mul": 10, "add": 10, "cmp": 1}), 10),
}


def characterize_all_modules(energy_lib: EnergyLibrary):
    """Per-mode energy characterisation of all Fig. 4 modules.

    Returns:
        List of :class:`~repro.hw.energy.ModeCharacterization`, one per
        module, in a stable order.
    """
    rows = []
    for module, (by_mode, width) in FIG4_MODULES.items():
        rows.append(energy_lib.characterize_module(module, by_mode, width))
    return rows
