"""Plain-text rendering of cell topologies and partitions.

Produces a readable picture of an XPro instance: cells grouped by dataflow
level, with module, ALU mode, op totals and (optionally) which end of the
cut each cell landed on — the terminal counterpart of the paper's Fig. 2
block diagram.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.cells.cell import SOURCE_CELL
from repro.cells.topology import CellTopology


def _dataflow_levels(topology: CellTopology) -> Dict[str, int]:
    """Level = 1 + max(level of predecessors); source consumers are level 0."""
    levels: Dict[str, int] = {}
    for name in topology.cell_names:
        preds = topology.predecessors(name)
        levels[name] = 1 + max((levels[p] for p in preds), default=-1)
    return levels


def render_topology(
    topology: CellTopology,
    in_sensor: Optional[FrozenSet[str]] = None,
    show_ops: bool = True,
) -> str:
    """Render a topology (optionally with a partition overlay).

    Args:
        topology: The cell dataflow graph.
        in_sensor: If given, each cell is tagged ``[S]`` (sensor) or
            ``[A]`` (aggregator) according to the partition.
        show_ops: Whether to append each cell's total op count.

    Returns:
        A multi-line string, one dataflow level per block.
    """
    levels = _dataflow_levels(topology)
    by_level: Dict[int, List[str]] = {}
    for name, level in levels.items():
        by_level.setdefault(level, []).append(name)

    lines: List[str] = [
        f"topology: {len(topology)} cells over a "
        f"{topology.segment_length}-sample segment"
    ]
    if in_sensor is not None:
        n_s = len(in_sensor)
        lines[0] += f"  (cut: {n_s} in-sensor / {len(topology) - n_s} in-aggregator)"
    lines.append(f"  source: {SOURCE_CELL} ({topology.segment_length} samples)")

    for level in sorted(by_level):
        lines.append(f"  level {level}:")
        for name in sorted(by_level[level]):
            cell = topology.cell(name)
            tag = ""
            if in_sensor is not None:
                tag = "[S] " if name in in_sensor else "[A] "
            detail = f"{cell.module}/{cell.mode.value}"
            if show_ops:
                detail += f", {sum(cell.op_counts.values())} ops"
            inputs = ", ".join(str(ref) for ref in cell.inputs)
            marker = " -> RESULT" if topology.result.cell == name else ""
            lines.append(f"    {tag}{name}  ({detail})  <- {inputs}{marker}")
    return "\n".join(lines)


def render_cut_summary(
    topology: CellTopology, in_sensor: FrozenSet[str]
) -> str:
    """One-line-per-module summary of a partition."""
    by_module: Dict[str, List[int]] = {}
    for name, cell in topology.cells.items():
        counts = by_module.setdefault(cell.module, [0, 0])
        counts[0 if name in in_sensor else 1] += 1
    lines = ["module     sensor  aggregator"]
    for module in sorted(by_module):
        s, a = by_module[module]
        lines.append(f"{module:10s} {s:6d}  {a:10d}")
    return "\n".join(lines)
