"""The functional-cell topology graph (paper Fig. 6b).

A :class:`CellTopology` is the dataflow DAG of one generic-classification
instance: a virtual source (the sensed segment) plus functional cells wired
producer-port -> consumer.  It provides the structural queries every later
stage needs — topological order for execution, consumer maps for the s-t
graph construction, and the result port whose value must always reach the
aggregator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.cells.cell import (
    SOURCE_BITS,
    SOURCE_CELL,
    FunctionalCell,
    OutputPort,
    PortRef,
)
from repro.errors import ConfigurationError, TopologyError


class CellTopology:
    """The dataflow graph of functional cells for one XPro instance.

    Args:
        segment_length: Number of raw samples in the sensed segment (the
            virtual source's output dimension).
        cells: The functional cells; producers must be added before (or
            together with) their consumers — order inside the iterable does
            not matter, validation is global.
        result: Port reference carrying the final classification output; its
            value must reach the aggregator in any partition.
        source_bits: On-air bits per raw sample (default
            :data:`~repro.cells.cell.SOURCE_BITS`).
    """

    def __init__(
        self,
        segment_length: int,
        cells: Iterable[FunctionalCell],
        result: PortRef,
        source_bits: int = SOURCE_BITS,
    ) -> None:
        if segment_length <= 0:
            raise ConfigurationError("segment_length must be positive")
        self.segment_length = int(segment_length)
        self.source_port = OutputPort("out", self.segment_length, source_bits)
        self._cells: Dict[str, FunctionalCell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise TopologyError(f"duplicate cell name {cell.name!r}")
            self._cells[cell.name] = cell
        self.result = result
        self._validate()
        self._order = self._topological_order()

    # -- validation / structure ----------------------------------------------

    def _validate(self) -> None:
        for cell in self._cells.values():
            for ref in cell.inputs:
                port = self.port_of(ref)  # raises if dangling
                del port
        if self.result.cell not in self._cells:
            raise TopologyError(f"result cell {self.result.cell!r} not in topology")
        self._cells[self.result.cell].port(self.result.port)

    def _topological_order(self) -> List[str]:
        indegree: Dict[str, int] = {name: 0 for name in self._cells}
        dependents: Dict[str, List[str]] = {name: [] for name in self._cells}
        for cell in self._cells.values():
            for ref in cell.inputs:
                if ref.cell == SOURCE_CELL:
                    continue
                indegree[cell.name] += 1
                dependents[ref.cell].append(cell.name)
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for dep in dependents[name]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
            ready.sort()
        if len(order) != len(self._cells):
            cyclic = sorted(set(self._cells) - set(order))
            raise TopologyError(f"cell topology contains a cycle through {cyclic}")
        return order

    # -- queries ---------------------------------------------------------------

    @property
    def cells(self) -> Mapping[str, FunctionalCell]:
        """All cells keyed by name."""
        return dict(self._cells)

    @property
    def cell_names(self) -> Tuple[str, ...]:
        """Cell names in topological (execution) order."""
        return tuple(self._order)

    def cell(self, name: str) -> FunctionalCell:
        """Look up a cell by name."""
        if name not in self._cells:
            raise TopologyError(f"no cell named {name!r}")
        return self._cells[name]

    def port_of(self, ref: PortRef) -> OutputPort:
        """Resolve a port reference (including the virtual source)."""
        if ref.cell == SOURCE_CELL:
            if ref.port != "out":
                raise TopologyError(f"source has a single port 'out', not {ref.port!r}")
            return self.source_port
        return self.cell(ref.cell).port(ref.port)

    def producer_ports(self) -> List[Tuple[PortRef, OutputPort]]:
        """All (ref, port) pairs in the graph, source first."""
        pairs: List[Tuple[PortRef, OutputPort]] = [
            (PortRef(SOURCE_CELL, "out"), self.source_port)
        ]
        for name in self._order:
            cell = self._cells[name]
            pairs.extend((PortRef(name, p.name), p) for p in cell.outputs)
        return pairs

    def consumers(self, ref: PortRef) -> List[str]:
        """Names of cells that read the given producer port."""
        return [
            cell.name
            for cell in self._cells.values()
            if any(inp == ref for inp in cell.inputs)
        ]

    def consumers_by_port(self) -> Dict[PortRef, List[str]]:
        """Map every produced port to the list of its consumer cells."""
        out: Dict[PortRef, List[str]] = {ref: [] for ref, _ in self.producer_ports()}
        for name in self._order:
            for inp in self._cells[name].inputs:
                out.setdefault(inp, []).append(name)
        return out

    def predecessors(self, name: str) -> Set[str]:
        """Direct predecessor cell names of a cell (excluding the source)."""
        return {
            ref.cell for ref in self.cell(name).inputs if ref.cell != SOURCE_CELL
        }

    def reads_source(self, name: str) -> bool:
        """Whether a cell consumes the raw sensed segment directly."""
        return any(ref.cell == SOURCE_CELL for ref in self.cell(name).inputs)

    def __len__(self) -> int:
        return len(self._cells)

    # -- execution ---------------------------------------------------------------

    def execute(self, segment: Sequence[float]) -> Dict[PortRef, np.ndarray]:
        """Run the whole pipeline monolithically on one segment.

        Returns the value of every produced port (including the source),
        keyed by :class:`PortRef`.  Used as the ground truth the cross-end
        engine is verified against.
        """
        arr = np.asarray(segment, dtype=np.float64)
        if arr.ndim != 1 or len(arr) != self.segment_length:
            raise ConfigurationError(
                f"segment must be 1-D of length {self.segment_length}"
            )
        values: Dict[PortRef, np.ndarray] = {PortRef(SOURCE_CELL, "out"): arr}
        for name in self._order:
            cell = self._cells[name]
            inputs = [values[ref] for ref in cell.inputs]
            outputs = cell.execute(inputs)
            for port_name, value in outputs.items():
                values[PortRef(name, port_name)] = value
        return values

    def classify(self, segment: Sequence[float]) -> int:
        """Monolithic end-to-end classification of one segment."""
        values = self.execute(segment)
        score = float(np.atleast_1d(values[self.result])[0])
        return int(score > 0)
