"""Functional cells: the fine-grained computing primitives of XPro.

Section 2.2/3.1 decomposes the generic classification into *functional
cells* — independent asynchronous micro-computing units, each with a private
specialised ALU (S-ALU), buffer and clock, woken by data arrival and
power-gated when idle.  This package models them:

- :mod:`repro.cells.cell` -- the cell dataclass: op counts, ALU mode,
  input/output ports, and an executable compute function.
- :mod:`repro.cells.topology` -- the dataflow DAG of cells (the paper's
  "functional cell topology graph", Fig. 6b).
- :mod:`repro.cells.library` -- constructors for every module family (the 8
  statistical features, DWT levels, SVM members, score fusion), the
  Var-cell-reuse rule (Fig. 5) and the per-module ALU-mode characterisation
  (Fig. 4).
"""

from repro.cells.cell import FunctionalCell, OutputPort, PortRef, SOURCE_CELL
from repro.cells.library import (
    FIG4_MODULES,
    characterize_all_modules,
    choose_alu_mode,
    dwt_op_counts,
    make_dwt_cell,
    make_feature_cell,
    make_fusion_cell,
    make_svm_cell,
)
from repro.cells.render import render_cut_summary, render_topology
from repro.cells.validate import LintFinding, lint_topology
from repro.cells.topology import CellTopology

__all__ = [
    "CellTopology",
    "LintFinding",
    "lint_topology",
    "render_cut_summary",
    "render_topology",
    "FIG4_MODULES",
    "FunctionalCell",
    "OutputPort",
    "PortRef",
    "SOURCE_CELL",
    "characterize_all_modules",
    "choose_alu_mode",
    "dwt_op_counts",
    "make_dwt_cell",
    "make_feature_cell",
    "make_fusion_cell",
    "make_svm_cell",
]
