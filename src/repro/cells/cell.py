"""The functional-cell model.

A cell is the smallest data-driven unit of XPro (Section 3.1.1): it wakes
when all its inputs are available, executes its task on a private S-ALU, and
emits its outputs.  In this reproduction a cell carries:

- the **op counts** its S-ALU executes per event (for the in-sensor energy
  and delay models, and — reweighted — for the aggregator CPU model);
- its chosen **ALU mode** (serial/parallel/pipeline, Section 3.1.2);
- typed **output ports** with data dimensions and on-air bit widths (for the
  wireless energy model when an edge crosses ends); and
- an executable ``compute`` function, so a partitioned engine can actually
  run the pipeline and be checked against the monolithic implementation.

Bit-width conventions (Section 4.4 + DESIGN.md): raw ADC samples travel at
16 bits, intermediate values (DWT samples, normalised features, SVM scores)
at 16 bits, and the final classification result as a single 8-bit value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.hw.energy import ALUMode

#: Reserved name of the virtual source producer (the sensed data segment).
SOURCE_CELL = "__source__"

#: On-air bits of one raw ADC sample.
SOURCE_BITS = 16
#: On-air bits of one full-scale intermediate sample (DWT band values).
VALUE_BITS = 16
#: On-air bits of one normalised scalar (feature values, member scores):
#: values confined to [0, 1] (or a trained score range) need only 8 bits of
#: quantisation on the air, even though the datapath computes them in Q16.16.
FEATURE_BITS = 8
#: On-air bits of the final classification result.
RESULT_BITS = 8


@dataclass(frozen=True)
class PortRef:
    """Reference to one output port of one cell: ``(cell, port)``.

    The virtual source segment is addressed as
    ``PortRef(SOURCE_CELL, "out")``.
    """

    cell: str
    port: str = "out"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.cell}.{self.port}"


@dataclass(frozen=True)
class OutputPort:
    """One typed output of a cell.

    Attributes:
        name: Port name, unique within the cell.
        n_values: Number of values produced per event.
        bits_per_value: On-air width if this port crosses ends.
    """

    name: str
    n_values: int
    bits_per_value: int = VALUE_BITS

    def __post_init__(self) -> None:
        if self.n_values <= 0:
            raise ConfigurationError("port n_values must be positive")
        if self.bits_per_value <= 0:
            raise ConfigurationError("port bits_per_value must be positive")

    @property
    def bits(self) -> int:
        """Payload bits of this port's data (headers added by the link)."""
        return self.n_values * self.bits_per_value


ComputeFn = Callable[[Sequence[np.ndarray]], Dict[str, np.ndarray]]


@dataclass(frozen=True)
class FunctionalCell:
    """One functional cell of the analytic engine.

    Attributes:
        name: Globally unique cell name (e.g. ``"skew@seg0"``, ``"svm_m3"``).
        module: Module family name (``"skew"``, ``"dwt"``, ``"svm"``,
            ``"fusion"``...) — cells of one module share an ALU mode
            (the paper's monotonic-mode rule).
        op_counts: S-ALU op name -> count per event, for the *chosen* mode's
            realisation of the algorithm.
        mode: The ALU working mode the cell is implemented in.
        inputs: Ordered references to the producer ports this cell consumes.
        outputs: The cell's output ports.
        compute: Executable semantics: takes input arrays (same order as
            ``inputs``) and returns ``{port_name: array}``.
        parallel_width: Replication width if ``mode`` is PARALLEL.
    """

    name: str
    module: str
    op_counts: Mapping[str, int]
    mode: ALUMode
    inputs: Tuple[PortRef, ...]
    outputs: Tuple[OutputPort, ...]
    compute: ComputeFn = field(compare=False, repr=False)
    parallel_width: int | None = None

    def __post_init__(self) -> None:
        if not self.name or self.name == SOURCE_CELL:
            raise ConfigurationError(f"invalid cell name {self.name!r}")
        if not self.outputs:
            raise ConfigurationError(f"cell {self.name!r} has no outputs")
        port_names = [p.name for p in self.outputs]
        if len(set(port_names)) != len(port_names):
            raise ConfigurationError(f"duplicate port names in cell {self.name!r}")

    def port(self, name: str) -> OutputPort:
        """Look up one of this cell's output ports by name."""
        for p in self.outputs:
            if p.name == name:
                return p
        raise TopologyError(f"cell {self.name!r} has no port {name!r}")

    def execute(self, input_arrays: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
        """Run the cell's semantics, validating output shape against ports."""
        if len(input_arrays) != len(self.inputs):
            raise TopologyError(
                f"cell {self.name!r} expects {len(self.inputs)} inputs, "
                f"got {len(input_arrays)}"
            )
        result = self.compute(input_arrays)
        for port in self.outputs:
            if port.name not in result:
                raise TopologyError(
                    f"cell {self.name!r} did not produce port {port.name!r}"
                )
            arr = np.atleast_1d(np.asarray(result[port.name], dtype=np.float64))
            if arr.size != port.n_values:
                raise TopologyError(
                    f"cell {self.name!r} port {port.name!r} produced "
                    f"{arr.size} values, declared {port.n_values}"
                )
            result[port.name] = arr
        return result
