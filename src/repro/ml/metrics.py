"""Classification quality metrics."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ConfigurationError


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of matching labels."""
    t = np.asarray(y_true)
    p = np.asarray(y_pred)
    if t.shape != p.shape:
        raise ConfigurationError("y_true/y_pred shape mismatch")
    if t.size == 0:
        raise ConfigurationError("cannot compute accuracy of empty arrays")
    return float(np.mean(t == p))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> Dict[str, int]:
    """Binary confusion counts with keys tp/tn/fp/fn (positive class = 1)."""
    t = np.asarray(y_true)
    p = np.asarray(y_pred)
    if t.shape != p.shape:
        raise ConfigurationError("y_true/y_pred shape mismatch")
    return {
        "tp": int(np.sum((t == 1) & (p == 1))),
        "tn": int(np.sum((t == 0) & (p == 0))),
        "fp": int(np.sum((t == 0) & (p == 1))),
        "fn": int(np.sum((t == 1) & (p == 0))),
    }


def sensitivity(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """True-positive rate (recall); 0.0 when there are no positives."""
    cm = confusion_matrix(y_true, y_pred)
    denom = cm["tp"] + cm["fn"]
    return cm["tp"] / denom if denom else 0.0


def specificity(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """True-negative rate; 0.0 when there are no negatives."""
    cm = confusion_matrix(y_true, y_pred)
    denom = cm["tn"] + cm["fp"]
    return cm["tn"] / denom if denom else 0.0
