"""Batched ensemble inference: one Gram-matrix call per base classifier.

The scalar evaluation path scores events one at a time: every call to
:meth:`~repro.ml.subspace.RandomSubspaceClassifier.predict` on a single
event computes one tiny ``(n_sv, 1)`` Gram matrix per member, so sweeping a
campaign of N events costs ``N * n_members`` kernel calls plus all the
per-call Python overhead.

:class:`EnsembleBatchScorer` restructures the same computation for a whole
``(n_events, n_features)`` matrix: per member it projects the batch onto
the member's feature subspace once and evaluates a single ``(n_sv,
n_events)`` Gram matrix, then fuses all member score columns with one
matrix-vector product.  The arithmetic is identical to the scalar path —
the same kernel, the same dual coefficients, the same fusion weights — so
decisions are bit-for-bit the same; only the batching changes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.subspace import RandomSubspaceClassifier


class EnsembleBatchScorer:
    """Precompiled batch scorer for a fitted random-subspace ensemble.

    Construction snapshots everything inference needs — per-member feature
    index arrays, support vectors, dual coefficients, biases, kernels and
    the fusion weights — so scoring a batch touches no ensemble internals
    and performs exactly one Gram-matrix evaluation per member.

    Args:
        ensemble: A fitted :class:`RandomSubspaceClassifier`.
    """

    def __init__(self, ensemble: RandomSubspaceClassifier) -> None:
        if not ensemble.is_fitted:
            raise ConfigurationError("ensemble must be fitted before batch scoring")
        self.n_features = ensemble.n_features
        self._members: List[Tuple[np.ndarray, object]] = [
            (np.asarray(member.feature_indices, dtype=np.intp), member.classifier)
            for member in ensemble.members
        ]
        fusion = ensemble.fusion
        self._weights = np.asarray(fusion.weights, dtype=np.float64)
        self._intercept = float(fusion.intercept)

    @property
    def n_members(self) -> int:
        """Number of base classifiers in the compiled ensemble."""
        return len(self._members)

    def _validate(self, features: np.ndarray) -> np.ndarray:
        X = np.asarray(features, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ConfigurationError(
                f"features must be (n_events, {self.n_features}), got {X.shape}"
            )
        return X

    def member_scores(self, features: np.ndarray) -> np.ndarray:
        """Per-member decision scores, shape ``(n_events, n_members)``.

        One Gram-matrix call per member over the whole batch.
        """
        X = self._validate(features)
        return np.column_stack(
            [
                classifier.decision_function(X[:, indices])
                for indices, classifier in self._members
            ]
        )

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Fused real-valued ensemble scores for the batch."""
        return self.member_scores(features) @ self._weights + self._intercept

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Binary {0, 1} decisions for the batch."""
        return (self.decision_function(features) > 0).astype(int)
