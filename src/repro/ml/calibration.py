"""Probability calibration of classifier scores (Platt scaling).

The fused ensemble emits raw margins; clinical consumers of the paper's
motivating application (cardiac-arrest alerts, §1) need *probabilities* —
an alert policy triggers on "P(abnormal) > threshold", not on an opaque
margin.  Platt scaling fits a sigmoid ``p = 1 / (1 + exp(a*s + b))`` to
held-out (score, label) pairs by regularised maximum likelihood, solved
with Newton iterations — implemented from scratch like everything else.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, TrainingError


class PlattScaler:
    """Sigmoid score-to-probability calibration.

    Uses Platt's target smoothing (``(n+ + 1) / (n+ + 2)`` for positives,
    ``1 / (n- + 2)`` for negatives) so perfectly separated scores do not
    drive the parameters to infinity.

    Args:
        max_iter: Newton iteration cap.
        tol: Convergence threshold on the parameter step.
    """

    def __init__(self, max_iter: int = 100, tol: float = 1e-10) -> None:
        if max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self._a: Optional[float] = None
        self._b: Optional[float] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._a is not None

    @property
    def parameters(self) -> tuple:
        """The fitted ``(a, b)`` sigmoid parameters."""
        self._require_fitted()
        return (self._a, self._b)

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "PlattScaler":
        """Fit the sigmoid on held-out scores and binary {0,1} labels."""
        s = np.asarray(scores, dtype=np.float64).ravel()
        y = np.asarray(labels).ravel()
        if len(s) != len(y) or len(s) == 0:
            raise ConfigurationError("scores/labels must be equal-length, non-empty")
        classes = set(np.unique(y).tolist())
        if not classes <= {0, 1} or len(classes) < 2:
            raise TrainingError("calibration needs both binary classes present")

        n_pos = float((y == 1).sum())
        n_neg = float(len(y) - n_pos)
        t_pos = (n_pos + 1.0) / (n_pos + 2.0)
        t_neg = 1.0 / (n_neg + 2.0)
        target = np.where(y == 1, t_pos, t_neg)

        a, b = 0.0, float(np.log((n_neg + 1.0) / (n_pos + 1.0)))
        for _ in range(self.max_iter):
            z = a * s + b
            # p = 1 / (1 + exp(z)) in Platt's parameterisation.
            p = 1.0 / (1.0 + np.exp(np.clip(z, -500, 500)))
            # Gradient of the negative log-likelihood wrt (a, b).
            d = p - target  # dNLL/dz, noting dp/dz = -p(1-p)
            g_a = float(np.dot(d, -s))
            g_b = float(-d.sum())
            w = p * (1.0 - p)
            h_aa = float(np.dot(w, s * s)) + 1e-12
            h_ab = float(np.dot(w, s))
            h_bb = float(w.sum()) + 1e-12
            det = h_aa * h_bb - h_ab * h_ab
            if abs(det) < 1e-18:
                break
            step_a = (h_bb * g_a - h_ab * g_b) / det
            step_b = (h_aa * g_b - h_ab * g_a) / det
            a -= step_a
            b -= step_b
            if abs(step_a) + abs(step_b) < self.tol:
                break
        self._a, self._b = float(a), float(b)
        return self

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        """P(class 1) for raw scores."""
        self._require_fitted()
        s = np.asarray(scores, dtype=np.float64)
        z = np.clip(self._a * s + self._b, -500, 500)
        return 1.0 / (1.0 + np.exp(z))

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("scaler used before fit()")


def brier_score(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean squared error of probabilities against {0,1} outcomes."""
    p = np.asarray(probabilities, dtype=np.float64).ravel()
    y = np.asarray(labels).ravel()
    if len(p) != len(y) or len(p) == 0:
        raise ConfigurationError("probabilities/labels must match and be non-empty")
    return float(np.mean((p - y) ** 2))
