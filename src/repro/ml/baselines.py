"""Baseline ensemble methods: bagging and AdaBoost over SVM bases.

Section 2.1 argues the random-subspace method suits the *generic*
classification better than *"other popular ensemble methods, such as
bagging and Adaboost"*: because each subspace member reads only a few
features, the union of features that must exist as functional cells stays
small, whereas bagging/boosting members each consume the **entire**
feature set — every feature cell must be instantiated, and an in-sensor
classifier placement must receive every feature.

These from-scratch implementations exist to make that comparison
measurable (see ``benchmarks/test_bench_ensemble_ablation.py``): both
expose the same ``fit`` / ``predict`` / ``used_feature_indices`` interface
as :class:`~repro.ml.subspace.RandomSubspaceClassifier`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.ml.kernels import RBFKernel
from repro.ml.svm import SVMClassifier


@dataclass
class _Member:
    classifier: SVMClassifier
    weight: float


class _SVMEnsembleBase:
    """Shared machinery of the full-feature ensemble baselines."""

    def __init__(
        self,
        n_features: int,
        n_members: int,
        kernel_factory: Optional[Callable] = None,
        C: float = 1.0,
        seed: int = 42,
    ) -> None:
        if n_features <= 0:
            raise ConfigurationError("n_features must be positive")
        if n_members < 1:
            raise ConfigurationError("n_members must be >= 1")
        self.n_features = int(n_features)
        self.n_members = int(n_members)
        self.kernel_factory = kernel_factory or (lambda: RBFKernel(gamma=0.5))
        self.C = float(C)
        self.seed = int(seed)
        self.members: List[_Member] = []

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return bool(self.members)

    def _check_training_input(self, X: np.ndarray, y: np.ndarray) -> None:
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ConfigurationError(
                f"features must be (n, {self.n_features}), got {X.shape}"
            )
        if len(X) != len(y):
            raise ConfigurationError("features/labels length mismatch")
        if len(np.unique(y)) < 2:
            raise TrainingError("training data contains a single class")

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Weight-averaged member scores."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(features, dtype=np.float64))
        total_weight = sum(m.weight for m in self.members)
        combined = np.zeros(len(X))
        for member in self.members:
            scores = np.sign(
                np.atleast_1d(member.classifier.decision_function(X))
            )
            combined += member.weight * scores
        out = combined / total_weight
        return out if np.asarray(features).ndim == 2 else out[0]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Binary {0,1} predictions from the combined vote."""
        scores = np.atleast_1d(self.decision_function(features))
        out = (scores > 0).astype(int)
        return out if np.asarray(features).ndim == 2 else int(out[0])

    def used_feature_indices(self) -> Tuple[int, ...]:
        """Every member reads the full feature vector — all indices."""
        self._require_fitted()
        return tuple(range(self.n_features))

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("ensemble used before fit()")


class BaggingSVMClassifier(_SVMEnsembleBase):
    """Bootstrap-aggregated SVMs over the full feature set.

    Each member trains on a bootstrap resample of the training rows; votes
    are uniform (classic bagging).
    """

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "BaggingSVMClassifier":
        """Train ``n_members`` SVMs on bootstrap resamples of the rows."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels)
        self._check_training_input(X, y)
        rng = np.random.default_rng(self.seed)
        self.members = []
        attempts = 0
        while len(self.members) < self.n_members:
            attempts += 1
            if attempts > 10 * self.n_members:
                raise TrainingError("could not draw two-class bootstrap samples")
            idx = rng.integers(0, len(X), size=len(X))
            if len(np.unique(y[idx])) < 2:
                continue
            svm = SVMClassifier(
                kernel=self.kernel_factory(), C=self.C, seed=self.seed + attempts
            )
            svm.fit(X[idx], y[idx])
            self.members.append(_Member(svm, weight=1.0))
        return self


class AdaBoostSVMClassifier(_SVMEnsembleBase):
    """AdaBoost (weight-resampling variant) over SVM bases.

    Sample weights are realised by weighted bootstrap resampling (the
    standard approach for base learners without native sample weights).
    Member votes carry the usual ``log((1 - err) / err)`` confidence.
    Boosting stops early if a member is perfect or no better than chance.
    """

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "AdaBoostSVMClassifier":
        """Boost up to ``n_members`` rounds with weighted-bootstrap SVMs."""
        X = np.asarray(features, dtype=np.float64)
        y01 = np.asarray(labels)
        self._check_training_input(X, y01)
        y = np.where(y01 == 1, 1.0, -1.0)
        rng = np.random.default_rng(self.seed)
        weights = np.full(len(X), 1.0 / len(X))
        self.members = []
        for round_index in range(self.n_members):
            idx = rng.choice(len(X), size=len(X), replace=True, p=weights)
            if len(np.unique(y01[idx])) < 2:
                continue
            svm = SVMClassifier(
                kernel=self.kernel_factory(), C=self.C, seed=self.seed + round_index
            )
            svm.fit(X[idx], y01[idx])
            pred = np.sign(np.atleast_1d(svm.decision_function(X)))
            pred[pred == 0] = 1.0
            err = float(weights[pred != y].sum())
            if err <= 1e-12:
                # Perfect member dominates; keep it and stop boosting.
                self.members.append(_Member(svm, weight=10.0))
                break
            if err >= 0.5:
                if not self.members:
                    # Keep a chance-level member rather than fail outright.
                    self.members.append(_Member(svm, weight=1e-3))
                break
            alpha = 0.5 * np.log((1.0 - err) / err)
            self.members.append(_Member(svm, weight=float(alpha)))
            weights = weights * np.exp(-alpha * y * pred)
            weights = np.clip(weights, 1e-12, None)
            weights /= weights.sum()
        if not self.members:
            raise TrainingError("boosting produced no usable member")
        return self
