"""Kernel functions for the SVM base classifiers.

The paper uses an RBF-kernel binary SVM as the random-subspace base
classifier (Section 4.4) and cites linear-kernel SVM as the limit of what a
pure in-sensor design affords (Section 1).  Both kernels are provided, with
an operation-count model so the SVM functional cell's energy cost can be
derived from its support-vector count and input dimensionality.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError


class Kernel(ABC):
    """A positive-definite kernel ``k(x, z)`` with a hardware cost model."""

    @abstractmethod
    def __call__(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Gram matrix between row-sample matrices ``lhs`` and ``rhs``.

        Both arguments may also be single vectors; the result broadcasts to
        ``(len(lhs), len(rhs))`` for matrices and a scalar for two vectors.
        """

    @abstractmethod
    def operation_counts(self, dimension: int) -> Dict[str, int]:
        """S-ALU operations for one kernel evaluation on d-dim inputs."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short kernel name for reports ("linear", "rbf")."""


class LinearKernel(Kernel):
    """The inner-product kernel ``k(x, z) = x . z``."""

    @property
    def name(self) -> str:
        return "linear"

    def __call__(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        lhs_m = np.atleast_2d(np.asarray(lhs, dtype=np.float64))
        rhs_m = np.atleast_2d(np.asarray(rhs, dtype=np.float64))
        gram = lhs_m @ rhs_m.T
        if np.asarray(lhs).ndim == 1 and np.asarray(rhs).ndim == 1:
            return gram[0, 0]
        return gram

    def operation_counts(self, dimension: int) -> Dict[str, int]:
        if dimension <= 0:
            raise ConfigurationError("dimension must be positive")
        return {"mul": dimension, "add": dimension - 1}


class RBFKernel(Kernel):
    """Gaussian kernel ``k(x, z) = exp(-gamma * ||x - z||^2)``.

    Args:
        gamma: Width parameter; must be positive.
    """

    def __init__(self, gamma: float = 0.5) -> None:
        if gamma <= 0:
            raise ConfigurationError("gamma must be positive")
        self.gamma = float(gamma)

    @property
    def name(self) -> str:
        return "rbf"

    def __call__(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        lhs_m = np.atleast_2d(np.asarray(lhs, dtype=np.float64))
        rhs_m = np.atleast_2d(np.asarray(rhs, dtype=np.float64))
        if lhs_m.shape[1] != rhs_m.shape[1]:
            raise ConfigurationError(
                f"dimension mismatch: {lhs_m.shape[1]} vs {rhs_m.shape[1]}"
            )
        sq = (
            (lhs_m**2).sum(axis=1)[:, None]
            + (rhs_m**2).sum(axis=1)[None, :]
            - 2.0 * lhs_m @ rhs_m.T
        )
        gram = np.exp(-self.gamma * np.maximum(sq, 0.0))
        if np.asarray(lhs).ndim == 1 and np.asarray(rhs).ndim == 1:
            return gram[0, 0]
        return gram

    def operation_counts(self, dimension: int) -> Dict[str, int]:
        if dimension <= 0:
            raise ConfigurationError("dimension must be positive")
        # d subtractions, d squarings, d-1 adds, one gamma multiply, one exp.
        return {"sub": dimension, "mul": dimension + 1, "add": dimension - 1, "super": 1}
