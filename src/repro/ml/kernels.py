"""Kernel functions for the SVM base classifiers.

The paper uses an RBF-kernel binary SVM as the random-subspace base
classifier (Section 4.4) and cites linear-kernel SVM as the limit of what a
pure in-sensor design affords (Section 1).  Both kernels are provided, with
an operation-count model so the SVM functional cell's energy cost can be
derived from its support-vector count and input dimensionality.

Slice stability
---------------

Gram matrices are *slice-stable*: every entry is a fixed-order reduction
over the two input rows alone, never a function of which other rows share
the call.  Concretely, for any row subset ``f``::

    kernel(X, X)[np.ix_(f, f)]  ==  kernel(X[f], X[f])     # bitwise

This is what lets the training fast path build **one** full-row Gram per
subspace draw and slice it across all CV folds and the final refit with
bit-identical entries (see :meth:`Kernel.subspace_gram`).  A plain BLAS
``lhs @ rhs.T`` does *not* guarantee this — its blocking (and therefore
its summation order) varies with the matrix shape — so the cross-product
term is accumulated one rank-1 feature column at a time instead.

Memory layout matters too: NumPy's axis reductions pick their summation
order from the operand's strides (pairwise for a contiguous inner axis,
sequential otherwise), and mixed basic/advanced indexing like
``X[:, subset]`` yields an F-ordered array while ``X[np.ix_(rows,
subset)]`` yields a C-ordered one.  Every kernel entry point therefore
normalises its operands to C order before reducing, so the same row
contents always produce the same bits regardless of how the caller
sliced them out.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError


def _cross_dot(lhs_m: np.ndarray, rhs_m: np.ndarray) -> np.ndarray:
    """Slice-stable ``lhs_m @ rhs_m.T`` over 2-D float64 inputs.

    Accumulates one rank-1 term per feature column, so entry ``(i, j)`` is
    the fixed-order sum ``sum_f lhs_m[i, f] * rhs_m[j, f]`` — a function of
    the two rows only, independent of the matrix shapes.
    """
    out = np.zeros((lhs_m.shape[0], rhs_m.shape[0]))
    for f in range(lhs_m.shape[1]):
        out += lhs_m[:, f, None] * rhs_m[None, :, f]
    return out


class Kernel(ABC):
    """A positive-definite kernel ``k(x, z)`` with a hardware cost model."""

    @abstractmethod
    def __call__(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Gram matrix between row-sample matrices ``lhs`` and ``rhs``.

        Both arguments may also be single vectors; the result broadcasts to
        ``(len(lhs), len(rhs))`` for matrices and a scalar for two vectors.
        """

    @abstractmethod
    def operation_counts(self, dimension: int) -> Dict[str, int]:
        """S-ALU operations for one kernel evaluation on d-dim inputs."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short kernel name for reports ("linear", "rbf")."""

    # -- shared-precompute Gram protocol (training fast path) ---------------

    def gram_precompute(self, features: np.ndarray) -> Optional[np.ndarray]:
        """Per-column precomputation reusable across subspace draws.

        Returns ``None`` when the kernel has nothing to share; the RBF
        kernel returns the squared feature columns so per-draw row norms
        reduce to a column-slice sum.
        """
        return None

    def subspace_gram(
        self,
        features: np.ndarray,
        subset,
        pre: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Full-row Gram over a feature subset, bitwise equal to
        ``self(features[:, subset], features[:, subset])``.

        Args:
            features: Full ``(n, d)`` feature matrix.
            subset: Feature indices of the subspace draw.
            pre: Optional result of :meth:`gram_precompute` on the same
                matrix, shared across draws.
        """
        X = np.asarray(features, dtype=np.float64)
        sub = np.asarray(subset, dtype=np.intp)
        return self(X[:, sub], X[:, sub])


class LinearKernel(Kernel):
    """The inner-product kernel ``k(x, z) = x . z``."""

    @property
    def name(self) -> str:
        return "linear"

    def __call__(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        lhs_m = np.ascontiguousarray(np.atleast_2d(np.asarray(lhs, dtype=np.float64)))
        rhs_m = np.ascontiguousarray(np.atleast_2d(np.asarray(rhs, dtype=np.float64)))
        if lhs_m.shape[1] != rhs_m.shape[1]:
            raise ConfigurationError(
                f"dimension mismatch: {lhs_m.shape[1]} vs {rhs_m.shape[1]}"
            )
        gram = _cross_dot(lhs_m, rhs_m)
        if np.asarray(lhs).ndim == 1 and np.asarray(rhs).ndim == 1:
            return gram[0, 0]
        return gram

    def operation_counts(self, dimension: int) -> Dict[str, int]:
        if dimension <= 0:
            raise ConfigurationError("dimension must be positive")
        return {"mul": dimension, "add": dimension - 1}


class RBFKernel(Kernel):
    """Gaussian kernel ``k(x, z) = exp(-gamma * ||x - z||^2)``.

    Args:
        gamma: Width parameter; must be positive.
    """

    def __init__(self, gamma: float = 0.5) -> None:
        if gamma <= 0:
            raise ConfigurationError("gamma must be positive")
        self.gamma = float(gamma)

    @property
    def name(self) -> str:
        return "rbf"

    def __call__(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        lhs_m = np.ascontiguousarray(np.atleast_2d(np.asarray(lhs, dtype=np.float64)))
        rhs_m = np.ascontiguousarray(np.atleast_2d(np.asarray(rhs, dtype=np.float64)))
        if lhs_m.shape[1] != rhs_m.shape[1]:
            raise ConfigurationError(
                f"dimension mismatch: {lhs_m.shape[1]} vs {rhs_m.shape[1]}"
            )
        gram = self._assemble(
            (lhs_m**2).sum(axis=1),
            (rhs_m**2).sum(axis=1),
            _cross_dot(lhs_m, rhs_m),
        )
        if np.asarray(lhs).ndim == 1 and np.asarray(rhs).ndim == 1:
            return gram[0, 0]
        return gram

    def _assemble(
        self, lhs_sq: np.ndarray, rhs_sq: np.ndarray, cross: np.ndarray
    ) -> np.ndarray:
        sq = lhs_sq[:, None] + rhs_sq[None, :] - 2.0 * cross
        return np.exp(-self.gamma * np.maximum(sq, 0.0))

    def gram_precompute(self, features: np.ndarray) -> np.ndarray:
        """Squared feature columns; ``pre[:, subset].sum(axis=1)`` is
        bitwise equal to ``(features[:, subset]**2).sum(axis=1)``."""
        X = np.asarray(features, dtype=np.float64)
        if X.ndim != 2:
            raise ConfigurationError("features must be 2-D")
        return X**2

    def subspace_gram(
        self,
        features: np.ndarray,
        subset,
        pre: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        X = np.asarray(features, dtype=np.float64)
        if X.ndim != 2:
            raise ConfigurationError("features must be 2-D")
        sub = np.asarray(subset, dtype=np.intp)
        col_sq = self.gram_precompute(X) if pre is None else np.asarray(pre)
        if col_sq.shape != X.shape:
            raise ConfigurationError(
                f"precompute shape {col_sq.shape} != features {X.shape}"
            )
        # C-order before reducing/accumulating: column-subset indexing
        # yields F-ordered arrays, whose axis reductions sum in a
        # different order (see the module docstring).
        Xs = np.ascontiguousarray(X[:, sub])
        norms = np.ascontiguousarray(col_sq[:, sub]).sum(axis=1)
        return self._assemble(norms, norms, _cross_dot(Xs, Xs))

    def operation_counts(self, dimension: int) -> Dict[str, int]:
        if dimension <= 0:
            raise ConfigurationError("dimension must be positive")
        # d subtractions, d squarings, d-1 adds, one gamma multiply, one exp.
        return {"sub": dimension, "mul": dimension + 1, "add": dimension - 1, "super": 1}
