"""Machine-learning substrate: the generic classification back half.

The paper's classifier (Sections 2.1, 4.4) is a **random subspace ensemble
of binary SVMs**: each base SVM is trained on 12 features drawn at random
from the complete statistical feature set, 100 draws are made, the top 10%
by accuracy are kept, and their decisions are combined by a weighted-voting
score fusion whose weights are fit by least squares.

Everything is implemented from scratch on numpy:

- :mod:`repro.ml.kernels` -- linear and RBF kernel functions.
- :mod:`repro.ml.svm` -- an SMO-trained binary SVM.
- :mod:`repro.ml.subspace` -- the random-subspace ensemble protocol.
- :mod:`repro.ml.fusion` -- least-squares weighted-voting score fusion.
- :mod:`repro.ml.validation` -- 75/25 splits, k-fold CV, repeated training.
- :mod:`repro.ml.metrics` -- accuracy and confusion statistics.
"""

from repro.ml.baselines import AdaBoostSVMClassifier, BaggingSVMClassifier
from repro.ml.calibration import PlattScaler, brier_score
from repro.ml.fusion import WeightedVotingFusion
from repro.ml.inference import EnsembleBatchScorer
from repro.ml.kernels import Kernel, LinearKernel, RBFKernel
from repro.ml.metrics import accuracy, confusion_matrix
from repro.ml.multiclass import OneVsRestSubspaceClassifier
from repro.ml.subspace import (
    RandomSubspaceClassifier,
    SubspaceMember,
    build_subspace_classifier,
    fit_subspace_draw,
)
from repro.ml.svm import SVMClassifier
from repro.ml.tuning import TuningResult, grid_search
from repro.ml.validation import (
    RepeatedProtocolResult,
    kfold_indices,
    repeated_protocol,
    train_test_split,
)

__all__ = [
    "AdaBoostSVMClassifier",
    "BaggingSVMClassifier",
    "EnsembleBatchScorer",
    "Kernel",
    "OneVsRestSubspaceClassifier",
    "LinearKernel",
    "RBFKernel",
    "RandomSubspaceClassifier",
    "RepeatedProtocolResult",
    "SVMClassifier",
    "SubspaceMember",
    "WeightedVotingFusion",
    "PlattScaler",
    "TuningResult",
    "brier_score",
    "accuracy",
    "build_subspace_classifier",
    "fit_subspace_draw",
    "grid_search",
    "confusion_matrix",
    "kfold_indices",
    "repeated_protocol",
    "train_test_split",
]
