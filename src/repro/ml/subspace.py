"""Random-subspace SVM ensemble — the paper's generic classifier.

Protocol (Sections 2.1 and 4.4):

1. Draw ``subspace_dim`` (=12) feature indices uniformly at random from the
   complete statistical feature set (time domain + all DWT sub-bands).
2. Train a binary RBF-SVM on that subspace.  Repeat for ``n_draws`` (=100)
   independent draws.
3. Keep the top ``keep_fraction`` (=10%) of draws by validation accuracy.
4. Fit a weighted-voting score fusion over the survivors by least squares.

The trained ensemble exposes :meth:`used_feature_indices` — the union of
features any surviving member consumes.  This is what shapes the functional
cell topology: *"the number of functional cells is decided by the feature set
and random subspace training"* (Section 2.2), i.e. features nobody uses
never become cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.ml.fusion import WeightedVotingFusion
from repro.ml.kernels import RBFKernel
from repro.ml.metrics import accuracy
from repro.ml.svm import SVMClassifier
from repro.ml.validation import stratified_train_test_split


@dataclass
class SubspaceMember:
    """One retained base classifier and the features it reads.

    Attributes:
        feature_indices: Sorted indices into the full feature vector.
        classifier: The trained base SVM.
        validation_accuracy: Accuracy on the member-selection validation
            split (used for the top-10% filter).
    """

    feature_indices: Tuple[int, ...]
    classifier: SVMClassifier
    validation_accuracy: float

    def scores(self, features: np.ndarray) -> np.ndarray:
        """Decision scores on full feature rows (subspace projection inside)."""
        X = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.atleast_1d(self.classifier.decision_function(X[:, self.feature_indices]))


class RandomSubspaceClassifier:
    """The random-subspace ensemble with least-squares weighted voting.

    Args:
        n_features: Dimensionality of the full feature vector.
        subspace_dim: Features per draw (paper: 12).
        n_draws: Number of random draws (paper: 100).
        keep_fraction: Fraction of draws retained (paper: 0.10).
        kernel_factory: Zero-argument callable building a fresh kernel per
            member; defaults to RBF with gamma 0.5.
        C: SVM soft-margin penalty.
        seed: Master seed; all subspace draws and member training derive
            from it deterministically.
        cv_folds: When set (the paper uses 10), each draw is scored by
            k-fold cross-validation over the training rows instead of a
            single held-out split — the exact §4.4 protocol, at k times
            the training cost.  The retained member is then refit on all
            training rows.
    """

    def __init__(
        self,
        n_features: int,
        subspace_dim: int = 12,
        n_draws: int = 100,
        keep_fraction: float = 0.10,
        kernel_factory=None,
        C: float = 1.0,
        seed: int = 42,
        cv_folds: Optional[int] = None,
    ) -> None:
        if n_features <= 0:
            raise ConfigurationError("n_features must be positive")
        if not 1 <= subspace_dim <= n_features:
            raise ConfigurationError(
                f"subspace_dim must be in [1, {n_features}], got {subspace_dim}"
            )
        if n_draws < 1:
            raise ConfigurationError("n_draws must be >= 1")
        if not 0.0 < keep_fraction <= 1.0:
            raise ConfigurationError("keep_fraction must be in (0, 1]")
        self.n_features = int(n_features)
        self.subspace_dim = int(subspace_dim)
        self.n_draws = int(n_draws)
        self.keep_fraction = float(keep_fraction)
        if cv_folds is not None and cv_folds < 2:
            raise ConfigurationError("cv_folds must be >= 2 when given")
        self.kernel_factory = kernel_factory or (lambda: RBFKernel(gamma=0.5))
        self.C = float(C)
        self.seed = int(seed)
        self.cv_folds = cv_folds
        self.members: List[SubspaceMember] = []
        self.fusion: Optional[WeightedVotingFusion] = None

    # -- training -----------------------------------------------------------

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomSubspaceClassifier":
        """Run the full subspace protocol on normalised feature rows."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ConfigurationError(
                f"features must be (n, {self.n_features}), got {X.shape}"
            )
        if len(X) != len(y):
            raise ConfigurationError("features/labels length mismatch")
        if len(np.unique(y)) < 2:
            raise TrainingError("training data contains a single class")

        rng = np.random.default_rng(self.seed)
        fit_idx, val_idx = stratified_train_test_split(y, rng, test_fraction=0.25)

        candidates: List[SubspaceMember] = []
        for draw in range(self.n_draws):
            subset = tuple(
                sorted(
                    rng.choice(self.n_features, size=self.subspace_dim, replace=False)
                )
            )
            if self.cv_folds is not None:
                member = self._fit_member_cv(X, y, subset, draw, rng)
            else:
                member = self._fit_member_holdout(X, y, subset, draw, fit_idx, val_idx)
            if member is not None:
                candidates.append(member)

        if not candidates:
            raise TrainingError("no subspace draw produced a trainable SVM")
        candidates.sort(key=lambda m: m.validation_accuracy, reverse=True)
        n_keep = max(1, int(round(len(candidates) * self.keep_fraction)))
        self.members = candidates[:n_keep]

        base_scores = np.column_stack([m.scores(X) for m in self.members])
        self.fusion = WeightedVotingFusion().fit(base_scores, y)
        return self

    def _fit_member_holdout(
        self, X, y, subset, draw, fit_idx, val_idx
    ) -> Optional[SubspaceMember]:
        """Score one draw on a single stratified validation split (fast)."""
        svm = SVMClassifier(
            kernel=self.kernel_factory(), C=self.C, seed=self.seed + draw
        )
        try:
            svm.fit(X[np.ix_(fit_idx, subset)], y[fit_idx])
        except TrainingError:
            return None  # a degenerate fold; skip this draw
        preds = (
            np.atleast_1d(svm.decision_function(X[np.ix_(val_idx, subset)])) > 0
        ).astype(int)
        return SubspaceMember(subset, svm, accuracy(y[val_idx], preds))

    def _fit_member_cv(self, X, y, subset, draw, rng) -> Optional[SubspaceMember]:
        """Score one draw by k-fold CV (the paper's §4.4 protocol), then
        refit the retained classifier on all rows."""
        from repro.ml.validation import kfold_indices

        fold_accuracies = []
        fold_rng = np.random.default_rng(self.seed + 31 * draw)
        for train_f, val_f in kfold_indices(len(X), self.cv_folds, fold_rng):
            if len(np.unique(y[train_f])) < 2:
                continue
            svm = SVMClassifier(
                kernel=self.kernel_factory(), C=self.C, seed=self.seed + draw
            )
            try:
                svm.fit(X[np.ix_(train_f, subset)], y[train_f])
            except TrainingError:
                continue
            preds = (
                np.atleast_1d(svm.decision_function(X[np.ix_(val_f, subset)])) > 0
            ).astype(int)
            fold_accuracies.append(accuracy(y[val_f], preds))
        if not fold_accuracies:
            return None
        final = SVMClassifier(
            kernel=self.kernel_factory(), C=self.C, seed=self.seed + draw
        )
        try:
            final.fit(X[:, subset], y)
        except TrainingError:
            return None
        return SubspaceMember(subset, final, float(np.mean(fold_accuracies)))

    # -- inference ----------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.fusion is not None

    def base_scores(self, features: np.ndarray) -> np.ndarray:
        """Per-member decision scores, shape ``(n_samples, n_members)``."""
        self._require_fitted()
        return np.column_stack([m.scores(features) for m in self.members])

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Fused real-valued ensemble scores."""
        self._require_fitted()
        fused = self.fusion.fuse(self.base_scores(features))
        return fused if np.asarray(features).ndim == 2 else np.atleast_1d(fused)[0]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Binary {0,1} predictions."""
        scores = np.atleast_1d(self.decision_function(features))
        out = (scores > 0).astype(int)
        return out if np.asarray(features).ndim == 2 else int(out[0])

    # -- topology interface ---------------------------------------------------

    def used_feature_indices(self) -> Tuple[int, ...]:
        """Union of feature indices consumed by any surviving member."""
        self._require_fitted()
        used = sorted({i for m in self.members for i in m.feature_indices})
        return tuple(used)

    def member_summary(self) -> List[Dict[str, object]]:
        """Per-member report rows: feature indices, n_sv, accuracy, weight."""
        self._require_fitted()
        weights = self.fusion.weights
        return [
            {
                "features": list(m.feature_indices),
                "n_support_vectors": m.classifier.n_support_vectors,
                "validation_accuracy": m.validation_accuracy,
                "fusion_weight": float(weights[k]),
            }
            for k, m in enumerate(self.members)
        ]

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("ensemble used before fit()")
