"""Random-subspace SVM ensemble — the paper's generic classifier.

Protocol (Sections 2.1 and 4.4):

1. Draw ``subspace_dim`` (=12) feature indices uniformly at random from the
   complete statistical feature set (time domain + all DWT sub-bands).
2. Train a binary RBF-SVM on that subspace.  Repeat for ``n_draws`` (=100)
   independent draws.
3. Keep the top ``keep_fraction`` (=10%) of draws by validation accuracy.
4. Fit a weighted-voting score fusion over the survivors by least squares.

The trained ensemble exposes :meth:`used_feature_indices` — the union of
features any surviving member consumes.  This is what shapes the functional
cell topology: *"the number of functional cells is decided by the feature set
and random subspace training"* (Section 2.2), i.e. features nobody uses
never become cells.

Training fast path
------------------

:meth:`RandomSubspaceClassifier.fit` defaults to the fold-sliced protocol:
one full-row Gram per draw (:meth:`~repro.ml.kernels.Kernel.subspace_gram`,
with the RBF squared-column precompute shared across draws), sliced with
``np.ix_`` across all CV folds, the final refit and the validation scoring
— 11 Gram builds collapse to 1, and every fold SVM runs the fast SMO on
its injected slice.  ``fit(fast=False)`` is the pinned reference twin
(per-fold Gram rebuilds, :meth:`~repro.ml.svm.SVMClassifier.fit_reference`);
both produce bitwise-identical ensembles.  ``fit(parallel=...)`` fans the
draws across worker processes (:func:`repro.sim.parallel.subspace_draws`)
with serial == parallel bit-identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.ml.fusion import WeightedVotingFusion
from repro.ml.kernels import Kernel, LinearKernel, RBFKernel
from repro.ml.metrics import accuracy
from repro.ml.svm import SVMClassifier
from repro.ml.validation import kfold_indices, stratified_train_test_split

#: Supported seed-derivation modes (see :class:`RandomSubspaceClassifier`).
SEED_MODES = ("legacy", "spawn")


def _sliced_scores(
    svm: SVMClassifier,
    full_gram: np.ndarray,
    train_rows: np.ndarray,
    val_rows: np.ndarray,
) -> np.ndarray:
    """Validation decision scores from a shared full-row Gram.

    Bitwise equal to ``svm.decision_function(X[np.ix_(val_rows, subset)])``
    for an SVM trained on ``X[np.ix_(train_rows, subset)]``: the kernel's
    slice stability makes the cross-Gram block between the support rows and
    the validation rows identical to a fresh kernel evaluation, so only the
    same ``dual_coef @ cross + bias`` contraction remains.
    """
    rows = np.asarray(train_rows, dtype=np.intp)[svm.support_indices]
    cross = full_gram[np.ix_(rows, np.asarray(val_rows, dtype=np.intp))]
    return svm.dual_coef @ cross + svm.bias


def fit_subspace_draw(
    X: np.ndarray,
    y: np.ndarray,
    subset: Tuple[int, ...],
    kernel: Kernel,
    C: float,
    member_seed: int,
    fold_seed: int,
    cv_folds: Optional[int],
    fit_idx: np.ndarray,
    val_idx: np.ndarray,
    pre: Optional[np.ndarray] = None,
) -> Optional["SubspaceMember"]:
    """Train and score one subspace draw on a shared full-row Gram.

    The fast-path worker (module-level so process pools can pickle it by
    name): builds **one** Gram over all rows of the subspace and slices it
    across every CV fold, the final refit and the validation scoring.

    Args:
        X: Full ``(n, d)`` normalised feature matrix.
        y: Binary {0, 1} labels.
        subset: Sorted feature indices of this draw.
        kernel: Kernel instance for every SVM of this draw.
        C: Soft-margin penalty.
        member_seed: Seed of every SVM trained for this draw.
        fold_seed: Seed of the fold-shuffling rng (CV protocol only).
        cv_folds: ``None`` for the single holdout split, else the fold
            count of the §4.4 CV protocol.
        fit_idx: Holdout training rows (ignored under CV).
        val_idx: Holdout validation rows (ignored under CV).
        pre: Optional :meth:`~repro.ml.kernels.Kernel.gram_precompute`
            output shared across draws.

    Returns:
        The scored member, or ``None`` when no fold was trainable.
    """
    sub = np.asarray(subset, dtype=np.intp)
    full_gram = kernel.subspace_gram(X, sub, pre)
    if cv_folds is not None:
        fold_accuracies = []
        fold_rng = np.random.default_rng(fold_seed)
        for train_f, val_f in kfold_indices(len(X), cv_folds, fold_rng):
            if len(np.unique(y[train_f])) < 2:
                continue
            svm = SVMClassifier(kernel=kernel, C=C, seed=member_seed)
            try:
                svm.fit(
                    X[np.ix_(train_f, sub)],
                    y[train_f],
                    gram=full_gram[np.ix_(train_f, train_f)],
                )
            except TrainingError:
                continue
            preds = (_sliced_scores(svm, full_gram, train_f, val_f) > 0).astype(int)
            fold_accuracies.append(accuracy(y[val_f], preds))
        if not fold_accuracies:
            return None
        final = SVMClassifier(kernel=kernel, C=C, seed=member_seed)
        try:
            final.fit(X[:, sub], y, gram=full_gram)
        except TrainingError:
            return None
        return SubspaceMember(tuple(subset), final, float(np.mean(fold_accuracies)))
    svm = SVMClassifier(kernel=kernel, C=C, seed=member_seed)
    try:
        svm.fit(
            X[np.ix_(fit_idx, sub)],
            y[fit_idx],
            gram=full_gram[np.ix_(fit_idx, fit_idx)],
        )
    except TrainingError:
        return None
    preds = (_sliced_scores(svm, full_gram, fit_idx, val_idx) > 0).astype(int)
    return SubspaceMember(tuple(subset), svm, accuracy(y[val_idx], preds))


@dataclass
class SubspaceMember:
    """One retained base classifier and the features it reads.

    Attributes:
        feature_indices: Sorted indices into the full feature vector.
        classifier: The trained base SVM.
        validation_accuracy: Accuracy on the member-selection validation
            split (used for the top-10% filter).
    """

    feature_indices: Tuple[int, ...]
    classifier: SVMClassifier
    validation_accuracy: float

    def scores(self, features: np.ndarray) -> np.ndarray:
        """Decision scores on full feature rows (subspace projection inside)."""
        X = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.atleast_1d(self.classifier.decision_function(X[:, self.feature_indices]))


class RandomSubspaceClassifier:
    """The random-subspace ensemble with least-squares weighted voting.

    Args:
        n_features: Dimensionality of the full feature vector.
        subspace_dim: Features per draw (paper: 12).
        n_draws: Number of random draws (paper: 100).
        keep_fraction: Fraction of draws retained (paper: 0.10).
        kernel_factory: Zero-argument callable building a fresh kernel per
            member; defaults to RBF with gamma 0.5.
        C: SVM soft-margin penalty.
        seed: Master seed; all subspace draws and member training derive
            from it deterministically.
        cv_folds: When set (the paper uses 10), each draw is scored by
            k-fold cross-validation over the training rows instead of a
            single held-out split — the exact §4.4 protocol, at k times
            the training cost.  The retained member is then refit on all
            training rows.
        seed_mode: How per-draw SVM and fold-rng seeds derive from the
            master seed.  ``"legacy"`` (default) keeps the historical
            streams — member seed ``seed + draw``, fold seed ``seed +
            31 * draw`` — which can collide across draws (draw 31's
            member seed equals draw 1's fold seed).  ``"spawn"`` derives
            both from independent ``np.random.SeedSequence(seed)``
            children, making collisions statistically impossible at the
            cost of changing every pinned stream.
    """

    def __init__(
        self,
        n_features: int,
        subspace_dim: int = 12,
        n_draws: int = 100,
        keep_fraction: float = 0.10,
        kernel_factory=None,
        C: float = 1.0,
        seed: int = 42,
        cv_folds: Optional[int] = None,
        seed_mode: str = "legacy",
    ) -> None:
        if n_features <= 0:
            raise ConfigurationError("n_features must be positive")
        if not 1 <= subspace_dim <= n_features:
            raise ConfigurationError(
                f"subspace_dim must be in [1, {n_features}], got {subspace_dim}"
            )
        if n_draws < 1:
            raise ConfigurationError("n_draws must be >= 1")
        if not 0.0 < keep_fraction <= 1.0:
            raise ConfigurationError("keep_fraction must be in (0, 1]")
        self.n_features = int(n_features)
        self.subspace_dim = int(subspace_dim)
        self.n_draws = int(n_draws)
        self.keep_fraction = float(keep_fraction)
        if cv_folds is not None and cv_folds < 2:
            raise ConfigurationError("cv_folds must be >= 2 when given")
        if seed_mode not in SEED_MODES:
            raise ConfigurationError(
                f"unknown seed_mode {seed_mode!r}; available: {SEED_MODES}"
            )
        self.kernel_factory = kernel_factory or (lambda: RBFKernel(gamma=0.5))
        self.C = float(C)
        self.seed = int(seed)
        self.cv_folds = cv_folds
        self.seed_mode = seed_mode
        self.members: List[SubspaceMember] = []
        self.fusion: Optional[WeightedVotingFusion] = None

    # -- training -----------------------------------------------------------

    def _draw_seeds(self) -> List[Tuple[int, int]]:
        """Per-draw ``(member_seed, fold_seed)`` pairs (see ``seed_mode``)."""
        if self.seed_mode == "legacy":
            return [
                (self.seed + draw, self.seed + 31 * draw)
                for draw in range(self.n_draws)
            ]
        children = np.random.SeedSequence(self.seed).spawn(self.n_draws)
        return [
            tuple(int(w) for w in child.generate_state(2, np.uint64))
            for child in children
        ]

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        parallel=None,
        fast: bool = True,
    ) -> "RandomSubspaceClassifier":
        """Run the full subspace protocol on normalised feature rows.

        Args:
            features: ``(n, n_features)`` normalised feature matrix.
            labels: Binary {0, 1} labels.
            parallel: Optional :class:`~repro.sim.parallel.ParallelConfig`;
                fans the draws across worker processes with bit-identical
                results (requires the fast path).
            fast: ``True`` (default) trains every draw on one shared
                full-row Gram sliced across folds; ``False`` runs the
                pinned reference protocol (per-fold Gram rebuilds through
                :meth:`~repro.ml.svm.SVMClassifier.fit_reference`).  Both
                produce bitwise-identical ensembles.
        """
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ConfigurationError(
                f"features must be (n, {self.n_features}), got {X.shape}"
            )
        if len(X) != len(y):
            raise ConfigurationError("features/labels length mismatch")
        if len(np.unique(y)) < 2:
            raise TrainingError("training data contains a single class")
        if parallel is not None and not fast:
            raise ConfigurationError("parallel draws require the fast path")

        rng = np.random.default_rng(self.seed)
        fit_idx, val_idx = stratified_train_test_split(y, rng, test_fraction=0.25)
        # Pre-draw every subset up front: the per-member training below
        # never consumes the master rng, so the draw stream is identical
        # to drawing inside the training loop.
        subsets = [
            tuple(
                sorted(
                    rng.choice(self.n_features, size=self.subspace_dim, replace=False)
                )
            )
            for _ in range(self.n_draws)
        ]
        seeds = self._draw_seeds()

        if not fast:
            results = [
                self._fit_member_reference(
                    X, y, subsets[d], seeds[d], fit_idx, val_idx
                )
                for d in range(self.n_draws)
            ]
        elif parallel is None:
            pre = self.kernel_factory().gram_precompute(X)
            results = [
                fit_subspace_draw(
                    X,
                    y,
                    subsets[d],
                    self.kernel_factory(),
                    self.C,
                    seeds[d][0],
                    seeds[d][1],
                    self.cv_folds,
                    fit_idx,
                    val_idx,
                    pre,
                )
                for d in range(self.n_draws)
            ]
        else:
            from repro.sim.parallel import subspace_draws

            results = subspace_draws(
                X,
                y,
                subsets,
                seeds,
                kernel=self.kernel_factory(),
                C=self.C,
                cv_folds=self.cv_folds,
                fit_idx=fit_idx,
                val_idx=val_idx,
                config=parallel,
            )

        candidates = [member for member in results if member is not None]
        if not candidates:
            raise TrainingError("no subspace draw produced a trainable SVM")
        candidates.sort(key=lambda m: m.validation_accuracy, reverse=True)
        n_keep = max(1, int(round(len(candidates) * self.keep_fraction)))
        self.members = candidates[:n_keep]

        base_scores = np.column_stack([m.scores(X) for m in self.members])
        self.fusion = WeightedVotingFusion().fit(base_scores, y)
        return self

    def _fit_member_reference(
        self, X, y, subset, seeds, fit_idx, val_idx
    ) -> Optional[SubspaceMember]:
        """Reference twin of :func:`fit_subspace_draw`: fresh Gram per
        fold, pinned SMO loop — bitwise the same member."""
        member_seed, fold_seed = seeds
        if self.cv_folds is None:
            svm = SVMClassifier(
                kernel=self.kernel_factory(), C=self.C, seed=member_seed
            )
            try:
                svm.fit_reference(X[np.ix_(fit_idx, subset)], y[fit_idx])
            except TrainingError:
                return None  # a degenerate fold; skip this draw
            preds = (
                np.atleast_1d(svm.decision_function(X[np.ix_(val_idx, subset)])) > 0
            ).astype(int)
            return SubspaceMember(subset, svm, accuracy(y[val_idx], preds))
        fold_accuracies = []
        fold_rng = np.random.default_rng(fold_seed)
        for train_f, val_f in kfold_indices(len(X), self.cv_folds, fold_rng):
            if len(np.unique(y[train_f])) < 2:
                continue
            svm = SVMClassifier(
                kernel=self.kernel_factory(), C=self.C, seed=member_seed
            )
            try:
                svm.fit_reference(X[np.ix_(train_f, subset)], y[train_f])
            except TrainingError:
                continue
            preds = (
                np.atleast_1d(svm.decision_function(X[np.ix_(val_f, subset)])) > 0
            ).astype(int)
            fold_accuracies.append(accuracy(y[val_f], preds))
        if not fold_accuracies:
            return None
        final = SVMClassifier(
            kernel=self.kernel_factory(), C=self.C, seed=member_seed
        )
        try:
            final.fit_reference(X[:, subset], y)
        except TrainingError:
            return None
        return SubspaceMember(subset, final, float(np.mean(fold_accuracies)))

    # -- inference ----------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.fusion is not None

    def base_scores(self, features: np.ndarray) -> np.ndarray:
        """Per-member decision scores, shape ``(n_samples, n_members)``."""
        self._require_fitted()
        return np.column_stack([m.scores(features) for m in self.members])

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Fused real-valued ensemble scores."""
        self._require_fitted()
        fused = self.fusion.fuse(self.base_scores(features))
        return fused if np.asarray(features).ndim == 2 else np.atleast_1d(fused)[0]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Binary {0,1} predictions."""
        scores = np.atleast_1d(self.decision_function(features))
        out = (scores > 0).astype(int)
        return out if np.asarray(features).ndim == 2 else int(out[0])

    # -- topology interface ---------------------------------------------------

    def used_feature_indices(self) -> Tuple[int, ...]:
        """Union of feature indices consumed by any surviving member."""
        self._require_fitted()
        used = sorted({i for m in self.members for i in m.feature_indices})
        return tuple(used)

    def member_summary(self) -> List[Dict[str, object]]:
        """Per-member report rows: feature indices, n_sv, accuracy, weight."""
        self._require_fitted()
        weights = self.fusion.weights
        return [
            {
                "features": list(m.feature_indices),
                "n_support_vectors": m.classifier.n_support_vectors,
                "validation_accuracy": m.validation_accuracy,
                "fusion_weight": float(weights[k]),
            }
            for k, m in enumerate(self.members)
        ]

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("ensemble used before fit()")


def build_subspace_classifier(
    n_features: int,
    params: Optional[Dict[str, object]] = None,
    seed: int = 0,
    seed_mode: str = "legacy",
) -> RandomSubspaceClassifier:
    """Construct an ensemble from a plain parameter dictionary.

    The shared constructor behind :func:`repro.ml.tuning.grid_search` and
    :func:`repro.ml.validation.repeated_protocol`.  Recognised keys:
    ``subspace_dim`` (12), ``n_draws`` (20), ``keep_fraction`` (0.2),
    ``C`` (1.0), ``kernel`` ("rbf"/"linear"), ``gamma`` (0.5) and
    ``cv_folds`` (None); defaults in parentheses.

    Args:
        n_features: Dimensionality of the full feature vector.
        params: Parameter overrides (plain values, e.g. one grid point).
        seed: Master ensemble seed.
        seed_mode: Seed-derivation mode (see
            :class:`RandomSubspaceClassifier`).
    """
    params = dict(params or {})
    unknown = set(params) - {
        "subspace_dim", "n_draws", "keep_fraction", "C", "kernel", "gamma",
        "cv_folds",
    }
    if unknown:
        raise ConfigurationError(f"unknown classifier parameters: {sorted(unknown)}")
    kernel = params.get("kernel", "rbf")
    gamma = float(params.get("gamma", 0.5))
    if kernel == "rbf":
        factory = lambda: RBFKernel(gamma=gamma)  # noqa: E731
    elif kernel == "linear":
        factory = lambda: LinearKernel()  # noqa: E731
    else:
        raise ConfigurationError(f"unknown kernel {kernel!r}")
    cv_folds = params.get("cv_folds")
    return RandomSubspaceClassifier(
        n_features=n_features,
        subspace_dim=int(params.get("subspace_dim", 12)),
        n_draws=int(params.get("n_draws", 20)),
        keep_fraction=float(params.get("keep_fraction", 0.2)),
        kernel_factory=factory,
        C=float(params.get("C", 1.0)),
        seed=seed,
        cv_folds=None if cv_folds is None else int(cv_folds),
        seed_mode=seed_mode,
    )
