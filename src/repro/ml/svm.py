"""Binary soft-margin SVM trained by Sequential Minimal Optimization (SMO).

This is the base classifier of the random-subspace ensemble (Section 4.4:
*"We choose a binary SVM classifier with radial basis function (RBF) as its
kernel"*).  Implemented from scratch:

- dual soft-margin formulation, simplified-SMO working-set selection with
  KKT-violation scanning and epoch limits;
- decision function ``f(x) = sum_i alpha_i y_i k(sv_i, x) + b``;
- a support-vector-count-driven hardware cost model, because the in-sensor
  SVM functional cell's energy is dominated by ``n_sv`` kernel evaluations
  (the paper: *"some basic SVM classifiers have fewer supporting vectors due
  to the good data separability of the dataset"*, Section 5.5).

Two training entry points exist, bitwise-identical in outcome:

- :meth:`SVMClassifier.fit_reference` — the pinned per-index loop that
  recomputes an O(n) decision dot product at every KKT check;
- :meth:`SVMClassifier.fit` — the fast path: accepts an injected
  precomputed Gram (``fit(gram=...)``), keeps a rank-2 incrementally
  updated error cache, and replaces the per-index scan with a vectorized
  KKT-violation screen.  The cache is used only to *screen* (with a slack
  wider than its worst-case drift); every surviving candidate re-derives
  its error through the reference expression before branching, so the
  branch sequence — and the RNG stream — match the reference exactly.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.ml.kernels import Kernel, RBFKernel

#: Half-width of the ambiguity band around ``+-tol`` inside which the fast
#: SMO falls back to the exact per-index dot product to settle a KKT
#: decision.  The incrementally-updated error cache drifts from the exact
#: value by at most ~n * C * eps_machine per sweep (it is refreshed every
#: sweep, ~1e-13 at benchmark scale), four orders of magnitude below this
#: band — so outside the band the cached comparison provably matches the
#: exact one, and inside it the exact recompute decides.
_CACHE_DRIFT_BAND = 1e-9


class SVMClassifier:
    """Soft-margin binary SVM with pluggable kernel.

    Labels are accepted as ``{0, 1}`` (the library convention) and mapped
    internally to ``{-1, +1}``.

    Args:
        kernel: Kernel instance; defaults to :class:`RBFKernel`.
        C: Soft-margin penalty; must be positive.
        tol: KKT violation tolerance.
        max_passes: Consecutive full passes without any alpha update before
            declaring convergence.
        max_iter: Hard cap on optimisation sweeps (guards degenerate data).
        seed: Seed for SMO's random second-index choice.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        C: float = 1.0,
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 200,
        seed: int = 7,
    ) -> None:
        if C <= 0:
            raise ConfigurationError("C must be positive")
        if tol <= 0:
            raise ConfigurationError("tol must be positive")
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.C = float(C)
        self.tol = float(tol)
        self.max_passes = int(max_passes)
        self.max_iter = int(max_iter)
        self.seed = int(seed)
        # Fitted state
        self._support_vectors: Optional[np.ndarray] = None
        self._dual_coef: Optional[np.ndarray] = None  # alpha_i * y_i
        self._bias: float = 0.0
        self._dimension: int = 0
        self._support_index: Optional[np.ndarray] = None  # rows of X retained

    # -- training -----------------------------------------------------------

    def _prepare_training(self, features, labels):
        """Shared input validation; returns ``(X, y)`` with y in {-1,+1}."""
        X = np.asarray(features, dtype=np.float64)
        y01 = np.asarray(labels)
        if X.ndim != 2:
            raise ConfigurationError("features must be 2-D")
        if len(X) != len(y01):
            raise ConfigurationError("features/labels length mismatch")
        classes = set(np.unique(y01).tolist())
        if not classes <= {0, 1}:
            raise ConfigurationError(f"labels must be binary 0/1, got {classes}")
        if len(classes) < 2:
            raise TrainingError("training data contains a single class")
        return X, np.where(y01 == 1, 1.0, -1.0)

    def _store_solution(self, X, y, alphas, bias) -> None:
        """Retain support vectors (or the degenerate bias-only fallback)."""
        mask = alphas > 1e-8
        if not mask.any():
            # Degenerate but legal outcome: fall back to the majority-margin
            # constant classifier (bias only).
            self._support_vectors = X[:1]
            self._dual_coef = np.zeros(1)
            self._bias = float(y.mean())
            self._support_index = np.zeros(1, dtype=np.intp)
        else:
            self._support_vectors = X[mask]
            self._dual_coef = (alphas * y)[mask]
            self._bias = bias
            self._support_index = np.flatnonzero(mask)
        self._dimension = X.shape[1]

    def fit_reference(
        self, features: np.ndarray, labels: np.ndarray
    ) -> "SVMClassifier":
        """Train on a (rows, dims) matrix with binary {0,1} labels.

        The pinned reference SMO loop: one O(n) decision dot product per
        KKT check.  :meth:`fit` is the drop-in fast path; both produce
        bitwise-identical models.
        """
        X, y = self._prepare_training(features, labels)
        n = len(X)
        gram = self.kernel(X, X)
        alphas = np.zeros(n)
        bias = 0.0
        rng = np.random.default_rng(self.seed)

        def decision(i: int) -> float:
            return float((alphas * y) @ gram[:, i] + bias)

        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            for i in range(n):
                err_i = decision(i) - y[i]
                if (y[i] * err_i < -self.tol and alphas[i] < self.C) or (
                    y[i] * err_i > self.tol and alphas[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    err_j = decision(j) - y[j]
                    ai_old, aj_old = alphas[i], alphas[j]
                    if y[i] != y[j]:
                        low = max(0.0, aj_old - ai_old)
                        high = min(self.C, self.C + aj_old - ai_old)
                    else:
                        low = max(0.0, ai_old + aj_old - self.C)
                        high = min(self.C, ai_old + aj_old)
                    if high - low < 1e-12:
                        continue
                    eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                    if eta >= 0:
                        continue
                    aj_new = np.clip(aj_old - y[j] * (err_i - err_j) / eta, low, high)
                    if abs(aj_new - aj_old) < 1e-6:
                        continue
                    ai_new = ai_old + y[i] * y[j] * (aj_old - aj_new)
                    alphas[i], alphas[j] = ai_new, aj_new
                    b1 = (
                        bias
                        - err_i
                        - y[i] * (ai_new - ai_old) * gram[i, i]
                        - y[j] * (aj_new - aj_old) * gram[i, j]
                    )
                    b2 = (
                        bias
                        - err_j
                        - y[i] * (ai_new - ai_old) * gram[i, j]
                        - y[j] * (aj_new - aj_old) * gram[j, j]
                    )
                    if 0 < ai_new < self.C:
                        bias = b1
                    elif 0 < aj_new < self.C:
                        bias = b2
                    else:
                        bias = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
            iters += 1

        self._store_solution(X, y, alphas, bias)
        return self

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        gram: Optional[np.ndarray] = None,
    ) -> "SVMClassifier":
        """Train on a (rows, dims) matrix with binary {0,1} labels.

        Bitwise-identical to :meth:`fit_reference` — same support vectors,
        dual coefficients, bias and RNG stream — but sweeps are driven by
        a vectorized KKT-violation screen over a rank-2 incrementally
        updated error cache instead of n exact dot products per sweep.
        KKT decisions are made on the cached errors whenever the cached
        value sits clearly outside the ambiguity band around ``+-tol``
        (where cache drift provably cannot flip the comparison); inside
        the band the exact reference dot product decides.  Every *update*
        re-derives both working errors through the exact reference
        expression before touching the alphas, so the update arithmetic —
        and the RNG stream, consumed once per violating index — matches
        the reference exactly.

        Args:
            features: ``(n, d)`` training rows.
            labels: Binary {0, 1} labels.
            gram: Optional precomputed ``kernel(features, features)``
                matrix — e.g. an ``np.ix_`` fold slice of a shared
                full-row Gram (see :meth:`Kernel.subspace_gram`).
        """
        X, y = self._prepare_training(features, labels)
        n = len(X)
        if gram is None:
            gram = self.kernel(X, X)
        else:
            gram = np.asarray(gram, dtype=np.float64)
            if gram.shape != (n, n):
                raise ConfigurationError(
                    f"gram must have shape ({n}, {n}), got {gram.shape}"
                )
        alphas = np.zeros(n)
        coef = alphas * y  # alpha_i * y_i, maintained exactly per update
        bias = 0.0
        rng = np.random.default_rng(self.seed)
        tol, C = self.tol, self.C
        delta = _CACHE_DRIFT_BAND
        band = tol - delta  # admit anything that might violate exactly
        # Scalar working copies: the candidate loop runs in plain-float
        # arithmetic (IEEE-754 double, bitwise equal to the reference's
        # NumPy-scalar arithmetic) to shed per-operation dispatch cost.
        yl = y.tolist()
        al = [0.0] * n  # mirrors `alphas`
        gl = gram.tolist()  # row lists for O(1) scalar Gram reads
        gd = [gl[i][i] for i in range(n)]
        # Per-index screen thresholds folding in the box constraints:
        # index k can violate downward only while alpha_k < C and upward
        # only while alpha_k > 0, so the threshold pair collapses the
        # four-way KKT test to two comparisons.  Only the two alphas an
        # update touches ever move, so the arrays are patched in place.
        neg_thr = np.full(n, -band)  # alpha starts at 0 < C everywhere
        pos_thr = np.full(n, np.inf)  # ... and nowhere > 0
        err_tmp = np.empty(n)  # rank-2 update scratch
        # The reference draws one second index per violating candidate.
        # Batched `Generator.integers` draws are stream-identical to
        # sequential ones, so a refillable buffer delivers the exact same
        # j sequence at a fraction of the per-call cost.
        jbuf: list = []
        jpos = 0
        jlen = 0

        def screen(lo: int):
            """Indices >= lo whose *cached* error is within drift of a KKT
            violation (a superset of the true violators at this state),
            plus their cached ``y_k * err_k`` values.  The cache only moves
            on an alpha update, which discards the candidate list — so the
            returned values stay exact for the list's whole lifetime."""
            ye = y[lo:] * errors[lo:]
            hit = ((ye < neg_thr[lo:]) | (ye > pos_thr[lo:])).nonzero()[0]
            return (hit + lo).tolist(), ye[hit].tolist()

        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            # Sweep-start refresh bounds cache drift to one sweep's updates.
            errors = coef @ gram + bias - y
            cand, cye = screen(0)
            ncand = len(cand)
            ci = 0
            while ci < ncand:
                i = cand[ci]
                ye = cye[ci]
                ci += 1
                yi = yl[i]
                ai_old = al[i]
                c_ei = ye * yi  # y_i in {-1,+1}: exact inverse of ye = y_i*e_i
                err_i = None  # exact error, derived lazily
                # KKT decision on the cached error: screen membership
                # already certifies |ye| > tol - delta with the matching
                # box constraint, so the decision is certain outside the
                # drift band around +-tol and settled exactly inside it.
                if ye < -tol - delta or ye > tol + delta:
                    violates = True
                else:
                    err_i = float(coef @ gram[:, i] + bias) - yi
                    yx = yi * err_i
                    violates = (yx < -tol and ai_old < C) or (
                        yx > tol and ai_old > 0
                    )
                if violates:
                    if jpos >= jlen:
                        jbuf = rng.integers(0, n - 1, size=256).tolist()
                        jlen = len(jbuf)
                        jpos = 0
                    j = jbuf[jpos]
                    jpos += 1
                    if j >= i:
                        j += 1
                    yj = yl[j]
                    aj_old = al[j]
                    if yi != yj:
                        low = max(0.0, aj_old - ai_old)
                        high = min(C, C + aj_old - ai_old)
                    else:
                        low = max(0.0, ai_old + aj_old - C)
                        high = min(C, ai_old + aj_old)
                    if high - low < 1e-12:
                        continue
                    gli = gl[i]
                    eta = 2.0 * gli[j] - gd[i] - gd[j]
                    if eta >= 0:
                        continue
                    # Cheap rejection: project the step from the cached
                    # errors.  Cache drift is amplified by 1/|eta|, so the
                    # step-too-small test is only *certain* outside that
                    # widened band; inside it the exact errors decide.
                    if err_i is None:
                        step_c = aj_old - yj * (c_ei - errors.item(j)) / eta
                        if step_c < low:
                            step_c = low
                        elif step_c > high:
                            step_c = high
                        if abs(step_c - aj_old) < 1e-6 + 2.0 * delta / eta:
                            # certainly below the reference's 1e-6 cutoff
                            continue
                        err_i = float(coef @ gram[:, i] + bias) - yi
                    err_j = float(coef @ gram[:, j] + bias) - yj
                    aj_new = aj_old - yj * (err_i - err_j) / eta
                    if aj_new < low:
                        aj_new = low
                    elif aj_new > high:
                        aj_new = high
                    if abs(aj_new - aj_old) < 1e-6:
                        continue
                    ai_new = ai_old + yi * yj * (aj_old - aj_new)
                    b1 = (
                        bias
                        - err_i
                        - yi * (ai_new - ai_old) * gd[i]
                        - yj * (aj_new - aj_old) * gli[j]
                    )
                    b2 = (
                        bias
                        - err_j
                        - yi * (ai_new - ai_old) * gli[j]
                        - yj * (aj_new - aj_old) * gd[j]
                    )
                    if 0 < ai_new < C:
                        new_bias = b1
                    elif 0 < aj_new < C:
                        new_bias = b2
                    else:
                        new_bias = (b1 + b2) / 2.0
                    al[i] = ai_new
                    al[j] = aj_new
                    alphas[i] = ai_new
                    alphas[j] = aj_new
                    neg_thr[i] = -band if ai_new < C else -np.inf
                    pos_thr[i] = band if ai_new > 0 else np.inf
                    neg_thr[j] = -band if aj_new < C else -np.inf
                    pos_thr[j] = band if aj_new > 0 else np.inf
                    # Rank-2 error-cache update: the two changed dual
                    # coefficients touch every cached error linearly.
                    np.multiply(gram[i], (ai_new - ai_old) * yi, out=err_tmp)
                    errors += err_tmp
                    np.multiply(gram[j], (aj_new - aj_old) * yj, out=err_tmp)
                    errors += err_tmp
                    errors += new_bias - bias
                    bias = new_bias
                    coef[i] = ai_new * yi
                    coef[j] = aj_new * yj
                    changed += 1
                    # The update moved every error, so the remaining
                    # candidate list is stale: re-screen the tail of the
                    # sweep (positions after i, as the reference scans).
                    cand, cye = screen(i + 1)
                    ncand = len(cand)
                    ci = 0
            passes = passes + 1 if changed == 0 else 0
            iters += 1

        self._store_solution(X, y, alphas, bias)
        return self

    # -- inference ----------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._support_vectors is not None

    @property
    def n_support_vectors(self) -> int:
        """Number of retained support vectors (drives hardware cost)."""
        self._require_fitted()
        return len(self._support_vectors)

    @property
    def dimension(self) -> int:
        """Input feature dimensionality the model was trained on."""
        self._require_fitted()
        return self._dimension

    @property
    def support_indices(self) -> np.ndarray:
        """Training-row indices of the retained support vectors.

        The fold-sliced subspace protocol uses these to score validation
        rows from a shared full-row Gram (``dual_coef @ gram[np.ix_(rows,
        val)]``) without re-evaluating the kernel.  For the degenerate
        bias-only fallback this is ``[0]`` (matching the stored row).
        """
        self._require_fitted()
        return self._support_index

    @property
    def dual_coef(self) -> np.ndarray:
        """``alpha_i * y_i`` of each retained support vector."""
        self._require_fitted()
        return self._dual_coef

    @property
    def bias(self) -> float:
        """The decision function's intercept."""
        self._require_fitted()
        return self._bias

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margin scores; positive means class 1."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if X.shape[1] != self._dimension:
            raise ConfigurationError(
                f"feature dimension {X.shape[1]} != trained {self._dimension}"
            )
        gram = self.kernel(self._support_vectors, X)
        scores = self._dual_coef @ np.atleast_2d(gram) + self._bias
        return scores if np.asarray(features).ndim == 2 else scores[0]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Binary {0,1} predictions."""
        scores = np.atleast_1d(self.decision_function(features))
        out = (scores > 0).astype(int)
        return out if np.asarray(features).ndim == 2 else int(out[0])

    # -- hardware cost model --------------------------------------------------

    def operation_counts(self) -> Dict[str, int]:
        """S-ALU operations for one in-sensor inference of this SVM.

        ``n_sv`` kernel evaluations, each followed by a multiply-accumulate,
        plus the bias add and the sign comparison.
        """
        self._require_fitted()
        per_kernel = self.kernel.operation_counts(self._dimension)
        n_sv = self.n_support_vectors
        totals: Dict[str, int] = {}
        for op, count in per_kernel.items():
            totals[op] = totals.get(op, 0) + count * n_sv
        totals["mul"] = totals.get("mul", 0) + n_sv  # coef * k
        totals["add"] = totals.get("add", 0) + n_sv  # accumulate + bias
        totals["cmp"] = totals.get("cmp", 0) + 1
        return totals

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("SVM used before fit()")
