"""Binary soft-margin SVM trained by Sequential Minimal Optimization (SMO).

This is the base classifier of the random-subspace ensemble (Section 4.4:
*"We choose a binary SVM classifier with radial basis function (RBF) as its
kernel"*).  Implemented from scratch:

- dual soft-margin formulation, simplified-SMO working-set selection with
  KKT-violation scanning and epoch limits;
- decision function ``f(x) = sum_i alpha_i y_i k(sv_i, x) + b``;
- a support-vector-count-driven hardware cost model, because the in-sensor
  SVM functional cell's energy is dominated by ``n_sv`` kernel evaluations
  (the paper: *"some basic SVM classifiers have fewer supporting vectors due
  to the good data separability of the dataset"*, Section 5.5).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.ml.kernels import Kernel, RBFKernel


class SVMClassifier:
    """Soft-margin binary SVM with pluggable kernel.

    Labels are accepted as ``{0, 1}`` (the library convention) and mapped
    internally to ``{-1, +1}``.

    Args:
        kernel: Kernel instance; defaults to :class:`RBFKernel`.
        C: Soft-margin penalty; must be positive.
        tol: KKT violation tolerance.
        max_passes: Consecutive full passes without any alpha update before
            declaring convergence.
        max_iter: Hard cap on optimisation sweeps (guards degenerate data).
        seed: Seed for SMO's random second-index choice.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        C: float = 1.0,
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 200,
        seed: int = 7,
    ) -> None:
        if C <= 0:
            raise ConfigurationError("C must be positive")
        if tol <= 0:
            raise ConfigurationError("tol must be positive")
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.C = float(C)
        self.tol = float(tol)
        self.max_passes = int(max_passes)
        self.max_iter = int(max_iter)
        self.seed = int(seed)
        # Fitted state
        self._support_vectors: Optional[np.ndarray] = None
        self._dual_coef: Optional[np.ndarray] = None  # alpha_i * y_i
        self._bias: float = 0.0
        self._dimension: int = 0

    # -- training -----------------------------------------------------------

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SVMClassifier":
        """Train on a (rows, dims) matrix with binary {0,1} labels."""
        X = np.asarray(features, dtype=np.float64)
        y01 = np.asarray(labels)
        if X.ndim != 2:
            raise ConfigurationError("features must be 2-D")
        if len(X) != len(y01):
            raise ConfigurationError("features/labels length mismatch")
        classes = set(np.unique(y01).tolist())
        if not classes <= {0, 1}:
            raise ConfigurationError(f"labels must be binary 0/1, got {classes}")
        if len(classes) < 2:
            raise TrainingError("training data contains a single class")

        y = np.where(y01 == 1, 1.0, -1.0)
        n = len(X)
        gram = self.kernel(X, X)
        alphas = np.zeros(n)
        bias = 0.0
        rng = np.random.default_rng(self.seed)

        def decision(i: int) -> float:
            return float((alphas * y) @ gram[:, i] + bias)

        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            for i in range(n):
                err_i = decision(i) - y[i]
                if (y[i] * err_i < -self.tol and alphas[i] < self.C) or (
                    y[i] * err_i > self.tol and alphas[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    err_j = decision(j) - y[j]
                    ai_old, aj_old = alphas[i], alphas[j]
                    if y[i] != y[j]:
                        low = max(0.0, aj_old - ai_old)
                        high = min(self.C, self.C + aj_old - ai_old)
                    else:
                        low = max(0.0, ai_old + aj_old - self.C)
                        high = min(self.C, ai_old + aj_old)
                    if high - low < 1e-12:
                        continue
                    eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                    if eta >= 0:
                        continue
                    aj_new = np.clip(aj_old - y[j] * (err_i - err_j) / eta, low, high)
                    if abs(aj_new - aj_old) < 1e-6:
                        continue
                    ai_new = ai_old + y[i] * y[j] * (aj_old - aj_new)
                    alphas[i], alphas[j] = ai_new, aj_new
                    b1 = (
                        bias
                        - err_i
                        - y[i] * (ai_new - ai_old) * gram[i, i]
                        - y[j] * (aj_new - aj_old) * gram[i, j]
                    )
                    b2 = (
                        bias
                        - err_j
                        - y[i] * (ai_new - ai_old) * gram[i, j]
                        - y[j] * (aj_new - aj_old) * gram[j, j]
                    )
                    if 0 < ai_new < self.C:
                        bias = b1
                    elif 0 < aj_new < self.C:
                        bias = b2
                    else:
                        bias = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
            iters += 1

        mask = alphas > 1e-8
        if not mask.any():
            # Degenerate but legal outcome: fall back to the majority-margin
            # constant classifier (bias only).
            self._support_vectors = X[:1]
            self._dual_coef = np.zeros(1)
            self._bias = float(y.mean())
        else:
            self._support_vectors = X[mask]
            self._dual_coef = (alphas * y)[mask]
            self._bias = bias
        self._dimension = X.shape[1]
        return self

    # -- inference ----------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._support_vectors is not None

    @property
    def n_support_vectors(self) -> int:
        """Number of retained support vectors (drives hardware cost)."""
        self._require_fitted()
        return len(self._support_vectors)

    @property
    def dimension(self) -> int:
        """Input feature dimensionality the model was trained on."""
        self._require_fitted()
        return self._dimension

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margin scores; positive means class 1."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if X.shape[1] != self._dimension:
            raise ConfigurationError(
                f"feature dimension {X.shape[1]} != trained {self._dimension}"
            )
        gram = self.kernel(self._support_vectors, X)
        scores = self._dual_coef @ np.atleast_2d(gram) + self._bias
        return scores if np.asarray(features).ndim == 2 else scores[:1][0]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Binary {0,1} predictions."""
        scores = np.atleast_1d(self.decision_function(features))
        out = (scores > 0).astype(int)
        return out if np.asarray(features).ndim == 2 else int(out[0])

    # -- hardware cost model --------------------------------------------------

    def operation_counts(self) -> Dict[str, int]:
        """S-ALU operations for one in-sensor inference of this SVM.

        ``n_sv`` kernel evaluations, each followed by a multiply-accumulate,
        plus the bias add and the sign comparison.
        """
        self._require_fitted()
        per_kernel = self.kernel.operation_counts(self._dimension)
        n_sv = self.n_support_vectors
        totals: Dict[str, int] = {}
        for op, count in per_kernel.items():
            totals[op] = totals.get(op, 0) + count * n_sv
        totals["mul"] = totals.get("mul", 0) + n_sv  # coef * k
        totals["add"] = totals.get("add", 0) + n_sv  # accumulate + bias
        totals["cmp"] = totals.get("cmp", 0) + 1
        return totals

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("SVM used before fit()")
