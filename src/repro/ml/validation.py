"""Training/validation protocol helpers.

Section 4.4 fixes the protocol: 75% / 25% random train/test split, 10-fold
cross-validation on the training set, the split repeated 50 times with the
best classifier kept.  These helpers implement the index bookkeeping from
scratch (no scikit-learn offline), deterministically from explicit rngs.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigurationError


def train_test_split(
    n_samples: int,
    rng: np.random.Generator,
    test_fraction: float = 0.25,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random index split into train/test sets.

    Args:
        n_samples: Total sample count.
        rng: Random generator (owns the shuffle).
        test_fraction: Fraction reserved for testing (paper: 0.25).

    Returns:
        ``(train_idx, test_idx)`` integer index arrays.
    """
    if n_samples < 2:
        raise ConfigurationError("need at least 2 samples to split")
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError("test_fraction must be in (0, 1)")
    order = rng.permutation(n_samples)
    n_test = max(1, int(round(n_samples * test_fraction)))
    if n_test >= n_samples:
        n_test = n_samples - 1
    return order[n_test:], order[:n_test]


def stratified_train_test_split(
    labels: np.ndarray,
    rng: np.random.Generator,
    test_fraction: float = 0.25,
) -> Tuple[np.ndarray, np.ndarray]:
    """Class-stratified split so both partitions keep both classes.

    The paper's random split occasionally produces one-class folds on small
    subsamples; stratification removes that failure mode without changing
    expected proportions, which matters when tests run on reduced datasets.
    """
    y = np.asarray(labels)
    if len(y) < 2:
        raise ConfigurationError("need at least 2 samples to split")
    train_parts: List[np.ndarray] = []
    test_parts: List[np.ndarray] = []
    for value in np.unique(y):
        idx = np.flatnonzero(y == value)
        rng.shuffle(idx)
        n_test = max(1, int(round(len(idx) * test_fraction)))
        if n_test >= len(idx):
            n_test = len(idx) - 1
        test_parts.append(idx[:n_test])
        train_parts.append(idx[n_test:])
    train = np.concatenate(train_parts)
    test = np.concatenate(test_parts)
    rng.shuffle(train)
    rng.shuffle(test)
    return train, test


def kfold_indices(
    n_samples: int, n_folds: int, rng: np.random.Generator
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, val_idx) pairs for k-fold cross-validation.

    Folds are as equal as possible; every sample appears in exactly one
    validation fold.

    Args:
        n_samples: Total sample count.
        n_folds: Number of folds (paper: 10).
        rng: Random generator for the initial shuffle.
    """
    if n_folds < 2:
        raise ConfigurationError("n_folds must be >= 2")
    if n_samples < n_folds:
        raise ConfigurationError(
            f"cannot make {n_folds} folds from {n_samples} samples"
        )
    order = rng.permutation(n_samples)
    fold_sizes = np.full(n_folds, n_samples // n_folds)
    fold_sizes[: n_samples % n_folds] += 1
    start = 0
    for size in fold_sizes:
        val = order[start : start + size]
        train = np.concatenate([order[:start], order[start + size :]])
        yield train, val
        start += size
