"""Training/validation protocol helpers.

Section 4.4 fixes the protocol: 75% / 25% random train/test split, 10-fold
cross-validation on the training set, the split repeated 50 times with the
best classifier kept.  These helpers implement the index bookkeeping from
scratch (no scikit-learn offline), deterministically from explicit rngs.
:func:`repeated_protocol` runs the full repeated-selection loop end to end
on the training fast path (see :mod:`repro.ml.subspace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, TrainingError


def train_test_split(
    n_samples: int,
    rng: np.random.Generator,
    test_fraction: float = 0.25,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random index split into train/test sets.

    Args:
        n_samples: Total sample count.
        rng: Random generator (owns the shuffle).
        test_fraction: Fraction reserved for testing (paper: 0.25).

    Returns:
        ``(train_idx, test_idx)`` integer index arrays.
    """
    if n_samples < 2:
        raise ConfigurationError("need at least 2 samples to split")
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError("test_fraction must be in (0, 1)")
    order = rng.permutation(n_samples)
    n_test = max(1, int(round(n_samples * test_fraction)))
    if n_test >= n_samples:
        n_test = n_samples - 1
    return order[n_test:], order[:n_test]


def stratified_train_test_split(
    labels: np.ndarray,
    rng: np.random.Generator,
    test_fraction: float = 0.25,
) -> Tuple[np.ndarray, np.ndarray]:
    """Class-stratified split so both partitions keep both classes.

    The paper's random split occasionally produces one-class folds on small
    subsamples; stratification removes that failure mode without changing
    expected proportions, which matters when tests run on reduced datasets.
    """
    y = np.asarray(labels)
    if len(y) < 2:
        raise ConfigurationError("need at least 2 samples to split")
    train_parts: List[np.ndarray] = []
    test_parts: List[np.ndarray] = []
    for value in np.unique(y):
        idx = np.flatnonzero(y == value)
        rng.shuffle(idx)
        n_test = max(1, int(round(len(idx) * test_fraction)))
        if n_test >= len(idx):
            n_test = len(idx) - 1
        test_parts.append(idx[:n_test])
        train_parts.append(idx[n_test:])
    train = np.concatenate(train_parts)
    test = np.concatenate(test_parts)
    rng.shuffle(train)
    rng.shuffle(test)
    return train, test


def kfold_indices(
    n_samples: int, n_folds: int, rng: np.random.Generator
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, val_idx) pairs for k-fold cross-validation.

    Folds are as equal as possible; every sample appears in exactly one
    validation fold.

    Args:
        n_samples: Total sample count.
        n_folds: Number of folds (paper: 10).
        rng: Random generator for the initial shuffle.
    """
    if n_folds < 2:
        raise ConfigurationError("n_folds must be >= 2")
    if n_samples < n_folds:
        raise ConfigurationError(
            f"cannot make {n_folds} folds from {n_samples} samples"
        )
    order = rng.permutation(n_samples)
    fold_sizes = np.full(n_folds, n_samples // n_folds)
    fold_sizes[: n_samples % n_folds] += 1
    start = 0
    for size in fold_sizes:
        val = order[start : start + size]
        train = np.concatenate([order[:start], order[start + size :]])
        yield train, val
        start += size


@dataclass
class RepeatedProtocolResult:
    """Outcome of the §4.4 repeated train/test selection loop.

    Attributes:
        best_classifier: The winning trained ensemble (highest held-out
            test accuracy; earliest repeat wins ties).
        best_accuracy: Its test accuracy.
        best_repeat: Zero-based index of the winning repeat.
        test_accuracies: Per-repeat held-out accuracies, in repeat order
            (``nan`` for repeats whose training degenerated).
        failed_repeats: Indices of repeats aborted by a
            :class:`~repro.errors.TrainingError`.
    """

    best_classifier: Any
    best_accuracy: float
    best_repeat: int
    test_accuracies: List[float] = field(default_factory=list)
    failed_repeats: List[int] = field(default_factory=list)


def repeated_protocol(
    features: np.ndarray,
    labels: np.ndarray,
    n_repeats: int = 50,
    params: Optional[Dict[str, object]] = None,
    seed: int = 0,
    test_fraction: float = 0.25,
    parallel=None,
    fast: bool = True,
) -> RepeatedProtocolResult:
    """The paper's repeated-selection loop: split, train, keep the best.

    Each repeat draws a fresh stratified 75/25 split, trains a
    :class:`~repro.ml.subspace.RandomSubspaceClassifier` on the training
    rows (10-fold CV inside each draw when ``params['cv_folds']`` is set,
    as §4.4 prescribes) and scores it on the held-out rows; the classifier
    with the highest held-out accuracy is returned.  Per-repeat split rngs
    and ensemble seeds derive from independent
    ``np.random.SeedSequence(seed)`` children, so repeats are decoupled
    and the loop is reproducible for any ``n_repeats``.

    Args:
        features: Normalised feature matrix ``(n_samples, n_features)``.
        labels: Binary {0, 1} labels.
        n_repeats: Number of split/train/score repeats (paper: 50).
        params: Classifier parameters for
            :func:`~repro.ml.subspace.build_subspace_classifier`.
        seed: Master seed for all repeats.
        test_fraction: Held-out fraction per repeat (paper: 0.25).
        parallel: Optional :class:`~repro.sim.parallel.ParallelConfig`
            forwarded to each ensemble fit (fans subspace draws across
            worker processes, bit-identical to serial).
        fast: Forwarded to each ensemble fit; ``False`` runs the pinned
            reference twin.

    Returns:
        A :class:`RepeatedProtocolResult`; raises
        :class:`~repro.errors.TrainingError` when every repeat fails.
    """
    from repro.ml.metrics import accuracy
    from repro.ml.subspace import build_subspace_classifier

    X = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels)
    if X.ndim != 2 or len(X) != len(y):
        raise ConfigurationError("need a 2-D feature matrix with matching labels")
    if n_repeats < 1:
        raise ConfigurationError("n_repeats must be >= 1")

    children = np.random.SeedSequence(seed).spawn(n_repeats)
    result = RepeatedProtocolResult(
        best_classifier=None, best_accuracy=-1.0, best_repeat=-1
    )
    for repeat, child in enumerate(children):
        split_word, clf_word = (int(w) for w in child.generate_state(2, np.uint64))
        split_rng = np.random.default_rng(split_word)
        train_idx, test_idx = stratified_train_test_split(
            y, split_rng, test_fraction=test_fraction
        )
        clf = build_subspace_classifier(X.shape[1], params, seed=clf_word)
        try:
            clf.fit(X[train_idx], y[train_idx], parallel=parallel, fast=fast)
        except TrainingError:
            result.test_accuracies.append(float("nan"))
            result.failed_repeats.append(repeat)
            continue
        score = accuracy(y[test_idx], clf.predict(X[test_idx]))
        result.test_accuracies.append(score)
        if score > result.best_accuracy:
            result.best_classifier = clf
            result.best_accuracy = score
            result.best_repeat = repeat
    if result.best_classifier is None:
        raise TrainingError("every repeat of the protocol failed to train")
    return result
