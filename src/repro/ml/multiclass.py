"""Multi-class extension of the generic classification (paper §5.7).

*"If multi-classification is needed, we can simply add more base
classifiers that extend only the topology of generic classification.  The
rest of the proposed methodology can be applied directly."*

Realised as one-vs-rest: one random-subspace ensemble per class, each
scoring "this class vs everything else"; the final decision is the argmax
of the fused per-class scores.  The functional-cell topology grows by the
extra members and per-class fusion cells plus a single argmax cell — and
the partitioning machinery is applied unchanged, exactly as the paper
claims.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.ml.subspace import RandomSubspaceClassifier


class OneVsRestSubspaceClassifier:
    """One-vs-rest stack of random-subspace ensembles.

    Args:
        n_features: Full feature-vector dimensionality.
        n_classes: Number of classes (>= 2; 2 degenerates to a pair of
            mirrored binary ensembles and is allowed for testing).
        subspace_dim, n_draws, keep_fraction, kernel_factory, C, seed:
            Forwarded to every per-class
            :class:`~repro.ml.subspace.RandomSubspaceClassifier`.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        subspace_dim: int = 12,
        n_draws: int = 100,
        keep_fraction: float = 0.10,
        kernel_factory: Optional[Callable] = None,
        C: float = 1.0,
        seed: int = 42,
    ) -> None:
        if n_classes < 2:
            raise ConfigurationError("n_classes must be >= 2")
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.per_class: List[RandomSubspaceClassifier] = [
            RandomSubspaceClassifier(
                n_features=n_features,
                subspace_dim=subspace_dim,
                n_draws=n_draws,
                keep_fraction=keep_fraction,
                kernel_factory=kernel_factory,
                C=C,
                seed=seed + 7919 * k,
            )
            for k in range(n_classes)
        ]

    # -- training -------------------------------------------------------------

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "OneVsRestSubspaceClassifier":
        """Train one binary ensemble per class on class-vs-rest labels."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels)
        present = set(np.unique(y).tolist())
        if not present <= set(range(self.n_classes)):
            raise ConfigurationError(
                f"labels must be in [0, {self.n_classes}), got {sorted(present)}"
            )
        if len(present) < 2:
            raise TrainingError("training data contains a single class")
        for k, ensemble in enumerate(self.per_class):
            binary = (y == k).astype(int)
            if binary.sum() == 0 or binary.sum() == len(binary):
                raise TrainingError(f"class {k} absent from the training data")
            ensemble.fit(X, binary)
        return self

    # -- inference -------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether every per-class ensemble has been fitted."""
        return all(e.is_fitted for e in self.per_class)

    def class_scores(self, features: np.ndarray) -> np.ndarray:
        """Per-class fused scores, shape ``(n_samples, n_classes)``."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.column_stack(
            [np.atleast_1d(e.decision_function(X)) for e in self.per_class]
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Argmax class decisions."""
        scores = self.class_scores(features)
        out = scores.argmax(axis=1)
        return out if np.asarray(features).ndim == 2 else int(out[0])

    def used_feature_indices(self) -> Tuple[int, ...]:
        """Union of features any per-class member consumes."""
        self._require_fitted()
        used = sorted(
            {i for e in self.per_class for i in e.used_feature_indices()}
        )
        return tuple(used)

    @property
    def total_members(self) -> int:
        """Total SVM member count across all per-class ensembles."""
        self._require_fitted()
        return sum(len(e.members) for e in self.per_class)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("classifier used before fit()")
