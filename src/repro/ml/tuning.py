"""Hyper-parameter grid search for the generic classifier.

The paper fixes the protocol's hyper-parameters (12-feature subspaces,
C = 1, RBF); a deployment on new data wants them tuned.  This module
provides a small, honest grid search with cross-validated scoring —
no third-party dependency, explicit rng, and results as plain rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.ml.metrics import accuracy
from repro.ml.subspace import build_subspace_classifier
from repro.ml.validation import kfold_indices

#: Row keys added by the search itself; everything else in a row is a
#: grid parameter (what ``best_params`` strips down to).
_SCORE_KEYS = ("mean_accuracy", "std_accuracy", "failed_folds")


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one grid search.

    Attributes:
        best_params: The winning parameter assignment.
        best_score: Its mean cross-validated accuracy.
        rows: One dict per grid point (params + mean/std accuracy +
            ``failed_folds``), sorted best-first.
    """

    best_params: Dict[str, object]
    best_score: float
    rows: List[Dict[str, object]]


def grid_search(
    features: np.ndarray,
    labels: np.ndarray,
    grid: Dict[str, Sequence[object]],
    cv_folds: int = 3,
    seed: int = 0,
    parallel=None,
) -> TuningResult:
    """Exhaustive grid search with k-fold cross-validated accuracy.

    Fold indices depend only on ``(n_samples, cv_folds, seed)``, so they
    are computed once and shared by every grid point.  A fold whose
    training degenerates (:class:`~repro.errors.TrainingError`) is counted
    in the row's ``failed_folds`` instead of being scored as chance — any
    other exception propagates, since it signals a bug rather than a
    degenerate fold.

    Args:
        features: Normalised feature matrix ``(n_samples, n_features)``.
        labels: Binary {0, 1} labels.
        grid: Parameter name -> candidate values.  Recognised names:
            ``subspace_dim``, ``n_draws``, ``keep_fraction``, ``C``,
            ``kernel`` ("rbf"/"linear"), ``gamma``.
        cv_folds: Folds for scoring each grid point.
        seed: Seed for fold shuffling and classifier training.
        parallel: Optional :class:`~repro.sim.parallel.ParallelConfig`
            forwarded to each ensemble fit (fans subspace draws across
            worker processes, bit-identical to serial).

    Returns:
        A :class:`TuningResult` with every grid point scored.
    """
    X = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels)
    if X.ndim != 2 or len(X) != len(y):
        raise ConfigurationError("need a 2-D feature matrix with matching labels")
    if not grid:
        raise ConfigurationError("grid must contain at least one parameter")
    unknown = set(grid) - {
        "subspace_dim", "n_draws", "keep_fraction", "C", "kernel", "gamma",
    }
    if unknown:
        raise ConfigurationError(f"unknown grid parameters: {sorted(unknown)}")

    # Identical for every grid point: hoist out of the product loop.
    fold_rng = np.random.default_rng(seed)
    folds = [
        (train_idx, val_idx)
        for train_idx, val_idx in kfold_indices(len(X), cv_folds, fold_rng)
        if len(np.unique(y[train_idx])) >= 2
    ]

    names = sorted(grid)
    rows: List[Dict[str, object]] = []
    for values in product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        fold_scores: List[float] = []
        failed = 0
        for train_idx, val_idx in folds:
            clf = build_subspace_classifier(X.shape[1], params, seed=seed)
            try:
                clf.fit(X[train_idx], y[train_idx], parallel=parallel)
            except TrainingError:  # degenerate fold/parameters
                failed += 1
                continue
            fold_scores.append(accuracy(y[val_idx], clf.predict(X[val_idx])))
        mean = float(np.mean(fold_scores)) if fold_scores else 0.0
        std = float(np.std(fold_scores)) if fold_scores else 0.0
        rows.append(
            {
                **params,
                "mean_accuracy": mean,
                "std_accuracy": std,
                "failed_folds": failed,
            }
        )

    rows.sort(key=lambda r: r["mean_accuracy"], reverse=True)
    best = rows[0]
    best_params = {k: v for k, v in best.items() if k not in _SCORE_KEYS}
    return TuningResult(
        best_params=best_params,
        best_score=float(best["mean_accuracy"]),
        rows=rows,
    )
