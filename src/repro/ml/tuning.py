"""Hyper-parameter grid search for the generic classifier.

The paper fixes the protocol's hyper-parameters (12-feature subspaces,
C = 1, RBF); a deployment on new data wants them tuned.  This module
provides a small, honest grid search with cross-validated scoring —
no third-party dependency, explicit rng, and results as plain rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.kernels import LinearKernel, RBFKernel
from repro.ml.metrics import accuracy
from repro.ml.subspace import RandomSubspaceClassifier
from repro.ml.validation import kfold_indices


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one grid search.

    Attributes:
        best_params: The winning parameter assignment.
        best_score: Its mean cross-validated accuracy.
        rows: One dict per grid point (params + mean/std accuracy),
            sorted best-first.
    """

    best_params: Dict[str, object]
    best_score: float
    rows: List[Dict[str, object]]


def _make_classifier(
    n_features: int, params: Dict[str, object], seed: int
) -> RandomSubspaceClassifier:
    kernel = params.get("kernel", "rbf")
    gamma = float(params.get("gamma", 0.5))
    if kernel == "rbf":
        factory = lambda: RBFKernel(gamma=gamma)  # noqa: E731
    elif kernel == "linear":
        factory = lambda: LinearKernel()  # noqa: E731
    else:
        raise ConfigurationError(f"unknown kernel {kernel!r}")
    return RandomSubspaceClassifier(
        n_features=n_features,
        subspace_dim=int(params.get("subspace_dim", 12)),
        n_draws=int(params.get("n_draws", 20)),
        keep_fraction=float(params.get("keep_fraction", 0.2)),
        kernel_factory=factory,
        C=float(params.get("C", 1.0)),
        seed=seed,
    )


def grid_search(
    features: np.ndarray,
    labels: np.ndarray,
    grid: Dict[str, Sequence[object]],
    cv_folds: int = 3,
    seed: int = 0,
) -> TuningResult:
    """Exhaustive grid search with k-fold cross-validated accuracy.

    Args:
        features: Normalised feature matrix ``(n_samples, n_features)``.
        labels: Binary {0, 1} labels.
        grid: Parameter name -> candidate values.  Recognised names:
            ``subspace_dim``, ``n_draws``, ``keep_fraction``, ``C``,
            ``kernel`` ("rbf"/"linear"), ``gamma``.
        cv_folds: Folds for scoring each grid point.
        seed: Seed for fold shuffling and classifier training.

    Returns:
        A :class:`TuningResult` with every grid point scored.
    """
    X = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels)
    if X.ndim != 2 or len(X) != len(y):
        raise ConfigurationError("need a 2-D feature matrix with matching labels")
    if not grid:
        raise ConfigurationError("grid must contain at least one parameter")
    unknown = set(grid) - {
        "subspace_dim", "n_draws", "keep_fraction", "C", "kernel", "gamma",
    }
    if unknown:
        raise ConfigurationError(f"unknown grid parameters: {sorted(unknown)}")

    names = sorted(grid)
    rows: List[Dict[str, object]] = []
    for values in product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        fold_scores: List[float] = []
        fold_rng = np.random.default_rng(seed)
        for train_idx, val_idx in kfold_indices(len(X), cv_folds, fold_rng):
            if len(np.unique(y[train_idx])) < 2:
                continue
            clf = _make_classifier(X.shape[1], params, seed)
            try:
                clf.fit(X[train_idx], y[train_idx])
            except Exception:  # degenerate fold/parameters: score as chance
                fold_scores.append(0.5)
                continue
            fold_scores.append(accuracy(y[val_idx], clf.predict(X[val_idx])))
        mean = float(np.mean(fold_scores)) if fold_scores else 0.0
        std = float(np.std(fold_scores)) if fold_scores else 0.0
        rows.append({**params, "mean_accuracy": mean, "std_accuracy": std})

    rows.sort(key=lambda r: r["mean_accuracy"], reverse=True)
    best = rows[0]
    best_params = {k: v for k, v in best.items() if k not in ("mean_accuracy", "std_accuracy")}
    return TuningResult(
        best_params=best_params,
        best_score=float(best["mean_accuracy"]),
        rows=rows,
    )
