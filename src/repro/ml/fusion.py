"""Least-squares weighted-voting score fusion.

Section 4.4: *"The random subspace takes weighted voting scheme which is
trained by the least square method."*  Each retained base classifier emits a
signed decision score; the fusion layer combines them linearly with weights
``w`` (plus intercept) chosen to minimise ``||S w - y||^2`` over the training
set, where ``S`` is the matrix of base scores and ``y`` the ±1 labels.

The fused score's sign is the final classification.  In the functional-cell
topology this is the "Score Fusion" cell: a small dot product, so it is cheap
wherever it lands in the partition.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError


class WeightedVotingFusion:
    """Linear score fusion fit by (ridge-stabilised) least squares.

    Args:
        ridge: Small L2 regulariser added to the normal equations so the fit
            is well-posed even when base scores are collinear (which happens
            when two subspaces select overlapping feature sets).
    """

    def __init__(self, ridge: float = 1e-6) -> None:
        if ridge < 0:
            raise ConfigurationError("ridge must be non-negative")
        self.ridge = float(ridge)
        self._weights: Optional[np.ndarray] = None
        self._intercept: float = 0.0

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    @property
    def weights(self) -> np.ndarray:
        """Fitted per-classifier voting weights."""
        self._require_fitted()
        return self._weights.copy()

    @property
    def intercept(self) -> float:
        """Fitted intercept term."""
        self._require_fitted()
        return self._intercept

    def fit(self, base_scores: np.ndarray, labels: np.ndarray) -> "WeightedVotingFusion":
        """Fit weights from base-classifier scores.

        Args:
            base_scores: Matrix of shape ``(n_samples, n_classifiers)``.
            labels: Binary {0,1} labels (mapped internally to ±1 targets).
        """
        S = np.asarray(base_scores, dtype=np.float64)
        y01 = np.asarray(labels)
        if S.ndim != 2 or S.shape[0] == 0:
            raise ConfigurationError("base_scores must be a non-empty 2-D matrix")
        if len(S) != len(y01):
            raise ConfigurationError("scores/labels length mismatch")
        y = np.where(y01 == 1, 1.0, -1.0)
        design = np.hstack([S, np.ones((len(S), 1))])
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        solution = np.linalg.solve(gram, design.T @ y)
        self._weights = solution[:-1]
        self._intercept = float(solution[-1])
        return self

    def fuse(self, base_scores: np.ndarray) -> np.ndarray:
        """Fused real-valued scores for a (n_samples, n_classifiers) matrix."""
        self._require_fitted()
        S = np.atleast_2d(np.asarray(base_scores, dtype=np.float64))
        if S.shape[1] != len(self._weights):
            raise ConfigurationError(
                f"got {S.shape[1]} base scores, fitted for {len(self._weights)}"
            )
        fused = S @ self._weights + self._intercept
        return fused if np.asarray(base_scores).ndim == 2 else fused[0]

    def predict(self, base_scores: np.ndarray) -> np.ndarray:
        """Binary {0,1} decision from fused scores."""
        fused = np.atleast_1d(self.fuse(base_scores))
        out = (fused > 0).astype(int)
        return out if np.asarray(base_scores).ndim == 2 else int(out[0])

    def operation_counts(self) -> Dict[str, int]:
        """S-ALU operations for one fusion evaluation (a k-term dot product)."""
        self._require_fitted()
        k = len(self._weights)
        return {"mul": k, "add": k, "cmp": 1}

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("fusion used before fit()")
