"""Training the generic classifier and packaging the analytic engine.

Implements the protocol of Section 4.4: extract the full statistical
feature set (time + DWT domains), normalise to [0, 1] on the training
split, train the random-subspace SVM ensemble (12-feature draws, keep the
top 10%, least-squares weighted voting), optionally repeating the random
75/25 split and keeping the most accurate classifier.

The result, a :class:`TrainedAnalyticEngine`, bundles everything needed
downstream: the layout, the fitted normaliser and ensemble, accuracy
figures, and :meth:`~TrainedAnalyticEngine.build_topology` to produce the
functional-cell graph for a given hardware energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cells.topology import CellTopology
from repro.core.builder import build_topology
from repro.core.layout import FeatureLayout
from repro.dsp.normalize import MinMaxNormalizer
from repro.errors import ConfigurationError
from repro.hw.energy import EnergyLibrary
from repro.ml.kernels import LinearKernel, RBFKernel
from repro.ml.metrics import accuracy
from repro.ml.subspace import RandomSubspaceClassifier
from repro.ml.validation import stratified_train_test_split
from repro.signals.datasets import BiosignalDataset


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the paper's training protocol.

    Defaults follow Section 4.4, with ``n_draws`` and ``split_repeats``
    scaled down from (100, 50) to keep a full six-case evaluation tractable
    in pure Python; both are honest knobs — raise them to run the exact
    paper protocol.

    Attributes:
        subspace_dim: Features per random draw (paper: 12).
        n_draws: Random subspace draws per split (paper: 100).
        keep_fraction: Fraction of draws kept (paper: 0.10).
        split_repeats: Number of random 75/25 splits tried (paper: 50).
        test_fraction: Held-out fraction per split (paper: 0.25).
        svm_c: Soft-margin penalty of the base SVMs.
        kernel: Base-SVM kernel family: ``"rbf"`` (the paper, Section 4.4)
            or ``"linear"`` (the only kernel pure in-sensor designs afford,
            Section 1).
        cv_folds: When set (paper: 10), member selection scores each draw
            by k-fold cross-validation instead of a single held-out split
            — exact protocol, k times the cost.
        rbf_gamma: RBF kernel width of the base SVMs.
        seed: Master seed for the whole protocol.
    """

    subspace_dim: int = 12
    n_draws: int = 40
    keep_fraction: float = 0.10
    split_repeats: int = 1
    test_fraction: float = 0.25
    svm_c: float = 1.0
    kernel: str = "rbf"
    rbf_gamma: float = 0.5
    seed: int = 42
    cv_folds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.split_repeats < 1:
            raise ConfigurationError("split_repeats must be >= 1")
        if self.kernel not in ("rbf", "linear"):
            raise ConfigurationError(
                f"kernel must be 'rbf' or 'linear', got {self.kernel!r}"
            )


@dataclass
class TrainedAnalyticEngine:
    """A trained generic classifier ready to become an XPro instance.

    Attributes:
        dataset_symbol: Table 1 symbol the engine was trained for.
        layout: Feature layout used during training.
        normalizer: Min-max scaler fitted on the training features.
        ensemble: The trained random-subspace classifier.
        train_accuracy: Accuracy on the training split.
        test_accuracy: Accuracy on the held-out split.
        config: The training configuration used.
    """

    dataset_symbol: str
    layout: FeatureLayout
    normalizer: MinMaxNormalizer
    ensemble: RandomSubspaceClassifier
    train_accuracy: float
    test_accuracy: float
    config: TrainingConfig

    def build_topology(self, energy_lib: EnergyLibrary) -> CellTopology:
        """Materialise the functional-cell topology under an energy model."""
        return build_topology(self.layout, self.ensemble, self.normalizer, energy_lib)

    def predict_segment(self, segment: np.ndarray) -> int:
        """Classify one raw segment through the software reference path."""
        raw = self.layout.extract(segment)
        normalised = self.normalizer.transform(raw)
        return int(self.ensemble.predict(normalised[None, :])[0])

    def predict_batch(self, segments: np.ndarray) -> np.ndarray:
        """Classify a ``(n_events, segment_length)`` batch in one pass.

        Decision-identical to calling :meth:`predict_segment` per row, but
        the whole front end is vectorised: batched feature extraction,
        one normaliser transform, and one Gram-matrix call per base
        classifier (see :class:`repro.ml.inference.EnsembleBatchScorer`)
        instead of per-event kernel evaluations.
        """
        from repro.dsp.batch import batch_extract_matrix
        from repro.ml.inference import EnsembleBatchScorer

        raw = batch_extract_matrix(segments, self.layout)
        normalised = self.normalizer.transform(raw)
        return EnsembleBatchScorer(self.ensemble).predict(normalised)


def _train_once(
    features: np.ndarray,
    labels: np.ndarray,
    layout: FeatureLayout,
    config: TrainingConfig,
    seed: int,
) -> tuple[MinMaxNormalizer, RandomSubspaceClassifier, float, float]:
    rng = np.random.default_rng(seed)
    train_idx, test_idx = stratified_train_test_split(
        labels, rng, test_fraction=config.test_fraction
    )
    normalizer = MinMaxNormalizer().fit(features[train_idx])
    X_train = normalizer.transform(features[train_idx])
    X_test = normalizer.transform(features[test_idx])
    ensemble = RandomSubspaceClassifier(
        n_features=layout.n_features,
        subspace_dim=config.subspace_dim,
        n_draws=config.n_draws,
        keep_fraction=config.keep_fraction,
        kernel_factory=(
            (lambda: LinearKernel())
            if config.kernel == "linear"
            else (lambda: RBFKernel(gamma=config.rbf_gamma))
        ),
        C=config.svm_c,
        seed=seed,
        cv_folds=config.cv_folds,
    )
    ensemble.fit(X_train, labels[train_idx])
    train_acc = accuracy(labels[train_idx], ensemble.predict(X_train))
    test_acc = accuracy(labels[test_idx], ensemble.predict(X_test))
    return normalizer, ensemble, train_acc, test_acc


def train_analytic_engine(
    dataset: BiosignalDataset,
    config: Optional[TrainingConfig] = None,
    layout: Optional[FeatureLayout] = None,
) -> TrainedAnalyticEngine:
    """Train the generic classifier for one test case (Section 4.4 protocol).

    Args:
        dataset: A labelled biosignal dataset (e.g. from
            :func:`repro.signals.datasets.load_case`).
        config: Protocol hyper-parameters; defaults to
            :class:`TrainingConfig`.
        layout: Feature layout; defaults to the paper's 5-level/128-aligned
            layout at the dataset's segment length.

    Returns:
        The best :class:`TrainedAnalyticEngine` across ``split_repeats``
        random splits (selected by test accuracy, as the paper does).
    """
    config = config or TrainingConfig()
    layout = layout or FeatureLayout(segment_length=dataset.segment_length)
    # Vectorised extraction (verified exactly equivalent to the reference
    # per-row path in tests/test_batch_extraction.py); imported lazily to
    # keep the dsp <-> core layering acyclic.
    from repro.dsp.batch import batch_extract_matrix

    features = batch_extract_matrix(dataset.segments, layout)

    best: Optional[TrainedAnalyticEngine] = None
    for repeat in range(config.split_repeats):
        normalizer, ensemble, train_acc, test_acc = _train_once(
            features, dataset.labels, layout, config, seed=config.seed + 1000 * repeat
        )
        candidate = TrainedAnalyticEngine(
            dataset_symbol=dataset.spec.symbol,
            layout=layout,
            normalizer=normalizer,
            ensemble=ensemble,
            train_accuracy=train_acc,
            test_accuracy=test_acc,
            config=config,
        )
        if best is None or candidate.test_accuracy > best.test_accuracy:
            best = candidate
    assert best is not None  # split_repeats >= 1
    return best
