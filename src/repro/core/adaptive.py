"""Runtime-adaptive partitioning: re-cut when the channel changes.

The Automatic XPro Generator produces a static partition for a static
channel model — but a body-area link is anything but static (posture,
distance, interference).  The loss-sensitivity study
(``benchmarks/test_bench_heuristics.py``) shows the *optimal* cut migrates
into the sensor as losses grow; this controller closes the loop at
runtime:

1. an EWMA estimator tracks the observed payload-loss rate;
2. when the estimate leaves the band the current partition was generated
   for, the generator is re-run against the new channel model;
3. hysteresis (a minimum improvement threshold) prevents flapping between
   adjacent cuts on noisy estimates.

Switching partitions on a deployed system is not free — both ends must
swap cell assignments — so the controller also charges a configurable
switch-energy penalty and refuses switches that would not amortise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.degrade import GracefulDegradationPolicy
from repro.core.generator import AutomaticXProGenerator
from repro.core.partition import Partition
from repro.errors import ConfigurationError
from repro.graph.cuts import sensor_cut
from repro.hw.wireless import WirelessLink
from repro.sim.evaluate import PartitionMetrics, evaluate_partition


@dataclass
class LossRateEstimator:
    """Exponentially weighted moving average of payload loss.

    Attributes:
        alpha: EWMA weight of each new observation.
        estimate: Current loss-rate estimate in [0, 1).
    """

    alpha: float = 0.05
    estimate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if not 0.0 <= self.estimate < 1.0:
            raise ConfigurationError("estimate must be in [0, 1)")

    def observe(self, lost: bool) -> float:
        """Fold one payload outcome into the estimate; returns it.

        The estimate is *not* clamped: with ``alpha = 1`` a single loss
        drives it to 1 exactly, and even with ``alpha < 1`` float rounding
        can reach 1.0 on a long all-loss streak.  At the boundary,
        rebuilding a link fails deterministically under the unbounded
        retransmission model (and saturates at the truncated-geometric
        bound under a bounded :class:`~repro.hw.arq.ARQConfig`).
        """
        self.estimate += self.alpha * (float(lost) - self.estimate)
        return self.estimate


@dataclass(frozen=True)
class AdaptationEvent:
    """Record of one controller decision.

    Attributes:
        event_index: When (in processed events) the decision happened.
        loss_estimate: Channel estimate at decision time.
        switched: Whether a new partition was adopted.
        energy_before_j: Per-event energy of the old partition at the new
            loss rate.
        energy_after_j: Per-event energy of the adopted (or kept) partition.
    """

    event_index: int
    loss_estimate: float
    switched: bool
    energy_before_j: float
    energy_after_j: float


class AdaptivePartitionController:
    """Re-partitions an XPro instance as the channel quality drifts.

    Args:
        generator: A generator configured with the *nominal* link; the
            controller rebuilds links with the live loss estimate.
        recheck_interval: Events between controller evaluations.
        min_improvement: Fractional per-event energy improvement required
            to switch (hysteresis).
        switch_cost_j: One-off energy cost of redeploying a partition;
            a switch must amortise within ``recheck_interval`` events.
        degradation: Optional graceful-degradation policy.  When set, the
            controller feeds it every payload outcome; while it declares a
            persistent outage, :attr:`active_partition` serves the
            in-sensor extreme cut (decisions stay locally available even
            with the link down) instead of the optimised cut, and the
            optimal cut is re-entered only after the policy's recovery
            hysteresis.
    """

    def __init__(
        self,
        generator: AutomaticXProGenerator,
        recheck_interval: int = 200,
        min_improvement: float = 0.05,
        switch_cost_j: float = 50e-6,
        degradation: Optional[GracefulDegradationPolicy] = None,
    ) -> None:
        if recheck_interval < 1:
            raise ConfigurationError("recheck_interval must be >= 1")
        if min_improvement < 0:
            raise ConfigurationError("min_improvement must be >= 0")
        if switch_cost_j < 0:
            raise ConfigurationError("switch_cost_j must be >= 0")
        self.generator = generator
        self.recheck_interval = int(recheck_interval)
        self.min_improvement = float(min_improvement)
        self.switch_cost_j = float(switch_cost_j)
        self.degradation = degradation
        self.estimator = LossRateEstimator()
        self.current: Partition = generator.generate().partition
        self.history: List[AdaptationEvent] = []
        self._events_seen = 0
        self._fallback: Optional[Partition] = None

    @property
    def fallback_partition(self) -> Partition:
        """The in-sensor extreme cut used while degraded (lazily built)."""
        if self._fallback is None:
            self._fallback = Partition(
                in_sensor=sensor_cut(self.generator.topology),
                label="sensor-fallback",
            )
        return self._fallback

    @property
    def active_partition(self) -> Partition:
        """The partition to deploy right now.

        The optimised cut normally; the in-sensor fallback while the
        degradation policy (if any) declares a persistent outage.
        """
        if self.degradation is not None and self.degradation.in_fallback:
            return self.fallback_partition
        return self.current

    def _link_at(self, loss: float) -> WirelessLink:
        return WirelessLink(
            self.generator.link.model, loss_rate=loss, arq=self.generator.link.arq
        )

    def _metrics_at(self, partition: Partition, loss: float) -> PartitionMetrics:
        return evaluate_partition(
            self.generator.topology,
            partition.in_sensor,
            self.generator.energy_lib,
            self._link_at(loss),
            self.generator.cpu,
        )

    def observe_event(self, payload_lost: bool) -> Optional[AdaptationEvent]:
        """Feed one event's channel outcome; maybe re-partition.

        Returns the :class:`AdaptationEvent` when a controller evaluation
        ran (every ``recheck_interval`` events), else None.
        """
        self.estimator.observe(payload_lost)
        if self.degradation is not None:
            self.degradation.observe(not payload_lost)
        self._events_seen += 1
        if self._events_seen % self.recheck_interval:
            return None

        loss = self.estimator.estimate
        before = self._metrics_at(self.current, loss)
        candidate_gen = AutomaticXProGenerator(
            self.generator.topology,
            self.generator.energy_lib,
            self._link_at(loss),
            self.generator.cpu,
        )
        candidate = candidate_gen.generate().partition
        after = self._metrics_at(candidate, loss)

        saving_per_event = before.sensor_total_j - after.sensor_total_j
        relative = (
            saving_per_event / before.sensor_total_j
            if before.sensor_total_j > 0
            else 0.0
        )
        amortises = (
            saving_per_event * self.recheck_interval > self.switch_cost_j
        )
        switched = (
            candidate.in_sensor != self.current.in_sensor
            and relative >= self.min_improvement
            and amortises
        )
        if switched:
            self.current = candidate
        event = AdaptationEvent(
            event_index=self._events_seen,
            loss_estimate=loss,
            switched=switched,
            energy_before_j=before.sensor_total_j,
            energy_after_j=(after if switched else before).sensor_total_j,
        )
        self.history.append(event)
        return event
