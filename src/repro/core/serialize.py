"""Serialisation of partitions and evaluation results.

A deployed XPro flow separates *generation* (run the trainer + generator
once, on a workstation) from *use* (load the partition onto the device
build system).  This module provides the interchange format: plain JSON
for partitions and metrics (human-diffable, VCS-friendly).

Trained models themselves are process artifacts (they embed support-vector
matrices); persist those with numpy if needed — the partition JSON is what
downstream tooling consumes.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Union

from repro.cells.topology import CellTopology
from repro.core.partition import Partition
from repro.errors import ConfigurationError
from repro.sim.evaluate import PartitionMetrics

PathLike = Union[str, pathlib.Path]

#: Format version written into every file (bump on breaking changes).
FORMAT_VERSION = 1


def partition_to_dict(
    partition: Partition, metrics: PartitionMetrics | None = None
) -> Dict[str, object]:
    """JSON-ready dictionary for a partition (and optional metrics)."""
    payload: Dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "label": partition.label,
        "in_sensor": sorted(partition.in_sensor),
    }
    if metrics is not None:
        payload["metrics"] = {
            "sensor_compute_j": metrics.sensor_compute_j,
            "sensor_tx_j": metrics.sensor_tx_j,
            "sensor_rx_j": metrics.sensor_rx_j,
            "sensor_total_j": metrics.sensor_total_j,
            "delay_front_s": metrics.delay_front_s,
            "delay_link_s": metrics.delay_link_s,
            "delay_back_s": metrics.delay_back_s,
            "delay_total_s": metrics.delay_total_s,
            "aggregator_cpu_j": metrics.aggregator_cpu_j,
            "aggregator_radio_j": metrics.aggregator_radio_j,
            "crossing_bits_up": metrics.crossing_bits_up,
            "crossing_bits_down": metrics.crossing_bits_down,
        }
    return payload


def save_partition(
    path: PathLike,
    partition: Partition,
    metrics: PartitionMetrics | None = None,
) -> None:
    """Write a partition (and optional metrics) to a JSON file."""
    payload = partition_to_dict(partition, metrics)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_partition(
    path: PathLike, topology: CellTopology | None = None
) -> Partition:
    """Read a partition from JSON, optionally validating against a topology.

    Args:
        path: The JSON file written by :func:`save_partition`.
        topology: If given, every named cell must exist in it.

    Raises:
        ConfigurationError: On malformed files, wrong versions, or cells
            unknown to the given topology.
    """
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read partition file {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigurationError(f"partition file {path} is not a JSON object")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported partition format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    cells = payload.get("in_sensor")
    if not isinstance(cells, list) or not all(isinstance(c, str) for c in cells):
        raise ConfigurationError("'in_sensor' must be a list of cell names")
    partition = Partition(
        in_sensor=frozenset(cells), label=str(payload.get("label", "loaded"))
    )
    if topology is not None:
        partition.validate(topology)
    return partition
