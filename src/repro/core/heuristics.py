"""Heuristic partitioners — the strawmen the Automatic Generator replaces.

Section 5.5: *"Such cuts are difficult to search through conventional
heuristic algorithms, but can be obtained in the proposed generator that
cleverly formulates the search into a graph theory problem."*  To make
that comparison measurable, this module implements the conventional
alternatives:

- :func:`greedy_descent` — local search: start from a seed partition and
  keep applying the single cell move that most reduces sensor energy;
- :func:`simulated_annealing` — the classic metaheuristic over the same
  move set.

Both are *exact-evaluation* heuristics (each candidate is scored by the
true evaluator), so any quality gap against the min-cut is due purely to
the search, not the model — see ``benchmarks/test_bench_heuristics.py``.
"""

from __future__ import annotations

import math
from typing import Callable, FrozenSet, Optional

import numpy as np

from repro.cells.topology import CellTopology
from repro.errors import ConfigurationError
from repro.hw.aggregator import AggregatorCPU
from repro.hw.energy import EnergyLibrary
from repro.hw.wireless import WirelessLink
from repro.sim.evaluate import PartitionEvaluationCache, evaluate_partition

Objective = Callable[[FrozenSet[str]], float]


def _sensor_energy_objective(
    topology: CellTopology,
    lib: EnergyLibrary,
    link: WirelessLink,
    cpu: AggregatorCPU,
    cache_size: int = 0,
) -> Objective:
    def compute(in_sensor: FrozenSet[str]):
        return evaluate_partition(topology, in_sensor, lib, link, cpu)

    if cache_size == 0:
        def objective(in_sensor: FrozenSet[str]) -> float:
            return compute(in_sensor).sensor_total_j

        return objective

    cache = PartitionEvaluationCache(maxsize=cache_size)

    def cached_objective(in_sensor: FrozenSet[str]) -> float:
        return cache.get_or_compute(frozenset(in_sensor), compute).sensor_total_j

    return cached_objective


def greedy_descent(
    topology: CellTopology,
    lib: EnergyLibrary,
    link: WirelessLink,
    cpu: AggregatorCPU,
    seed_partition: Optional[FrozenSet[str]] = None,
    max_rounds: int = 200,
    cache_size: int = 1024,
) -> FrozenSet[str]:
    """Steepest-descent local search over single-cell moves.

    Args:
        topology: The cell dataflow graph.
        lib, link, cpu: Hardware models for the objective.
        seed_partition: Starting point; defaults to the all-in-sensor
            engine (a deployed system migrating cells off the node).
        max_rounds: Safety cap on improvement rounds.
        cache_size: Bound of the partition-evaluation memo (successive
            rounds re-score mostly unchanged neighbourhoods; 0 disables).

    Returns:
        A locally optimal in-sensor set: no single cell move improves it.
    """
    objective = _sensor_energy_objective(topology, lib, link, cpu, cache_size)
    current = (
        frozenset(topology.cells) if seed_partition is None else frozenset(seed_partition)
    )
    current_cost = objective(current)
    names = sorted(topology.cells)
    for _ in range(max_rounds):
        best_move: Optional[FrozenSet[str]] = None
        best_cost = current_cost
        for name in names:
            candidate = (
                current - {name} if name in current else current | {name}
            )
            cost = objective(candidate)
            if cost < best_cost - 1e-18:
                best_cost = cost
                best_move = candidate
        if best_move is None:
            break
        current, current_cost = best_move, best_cost
    return current


def simulated_annealing(
    topology: CellTopology,
    lib: EnergyLibrary,
    link: WirelessLink,
    cpu: AggregatorCPU,
    n_steps: int = 2000,
    initial_temperature: float = 1.0,
    seed: int = 0,
    cache_size: int = 1024,
) -> FrozenSet[str]:
    """Simulated annealing over single-cell flips.

    Temperature is expressed relative to the all-in-sensor energy so the
    schedule is topology-scale-free; it decays geometrically to ~1e-3 of
    the initial value over ``n_steps``.  ``cache_size`` bounds the
    partition-evaluation memo (the walk re-proposes earlier states
    constantly; 0 disables).
    """
    if n_steps < 1:
        raise ConfigurationError("n_steps must be >= 1")
    objective = _sensor_energy_objective(topology, lib, link, cpu, cache_size)
    names = sorted(topology.cells)
    rng = np.random.default_rng(seed)
    current = frozenset(topology.cells)
    current_cost = objective(current)
    scale = current_cost if current_cost > 0 else 1.0
    best, best_cost = current, current_cost
    decay = (1e-3) ** (1.0 / n_steps)
    temperature = initial_temperature
    for _ in range(n_steps):
        name = names[int(rng.integers(len(names)))]
        candidate = current - {name} if name in current else current | {name}
        cost = objective(candidate)
        delta = (cost - current_cost) / scale
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
            current, current_cost = candidate, cost
            if cost < best_cost:
                best, best_cost = candidate, cost
        temperature *= decay
    return best
