"""Graceful cross-end degradation under channel and energy faults.

Bounded-retry ARQ (:mod:`repro.hw.arq`) keeps per-payload delay finite by
*dropping* payloads that exhaust their retry budget — so somebody upstream
must decide what a dropped payload means for the application.  This module
provides the two policies the resilience layer composes:

- :class:`LastKnownGoodCache` — serve the most recent successfully
  delivered decision when a payload drops (a stale-but-available answer
  beats no answer for monitoring workloads), with an optional staleness
  bound after which degraded service is refused;
- :class:`GracefulDegradationPolicy` — detect a *persistent* outage
  (``outage_threshold`` consecutive drops) and fall back to the in-sensor
  extreme cut, where the whole pipeline runs locally and only the 8-bit
  result needs the link; re-enter the optimal cross-end cut only after
  ``recovery_hysteresis`` consecutive deliveries, so a flapping channel
  cannot thrash the deployment.

Both are plain deterministic state machines: the fault campaigns in
:mod:`repro.sim.faults` replay bit-for-bit under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DegradedDecision:
    """A decision served from the last-known-good cache.

    Attributes:
        value: The cached decision payload (opaque to the policy layer).
        staleness: Events elapsed since the decision was refreshed.
    """

    value: object
    staleness: int


@dataclass
class LastKnownGoodCache:
    """Serves the most recent delivered decision when a payload drops.

    Args:
        max_staleness: Refuse service once the cached decision is older
            than this many events (None = serve regardless of age).
    """

    max_staleness: Optional[int] = None
    _value: object = field(default=None, repr=False)
    _has_value: bool = field(default=False, repr=False)
    _age: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.max_staleness is not None and self.max_staleness < 1:
            raise ConfigurationError("max_staleness must be None or >= 1")

    def update(self, decision: object) -> None:
        """Record a freshly delivered decision (resets the staleness age)."""
        self._value = decision
        self._has_value = True
        self._age = 0

    def serve(self) -> Optional[DegradedDecision]:
        """Serve the cached decision for one dropped payload, or None.

        Each serve ages the cache by one event; service is refused (None)
        when nothing was ever cached or the staleness bound is exceeded.
        """
        if not self._has_value:
            return None
        self._age += 1
        if self.max_staleness is not None and self._age > self.max_staleness:
            return None
        return DegradedDecision(value=self._value, staleness=self._age)

    def reset(self) -> None:
        """Forget the cached decision (campaign re-run support)."""
        self._value = None
        self._has_value = False
        self._age = 0

    def state_dict(self) -> dict:
        """Snapshot the mutable cache state as a JSON-safe dict.

        Only meaningful when the cached value itself is JSON-safe (the
        fault campaigns cache small integers); the configuration field
        ``max_staleness`` is *not* included — checkpoints pin it
        separately so a resume cannot silently change the bound.
        """
        return {
            "value": self._value,
            "has_value": self._has_value,
            "age": self._age,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self._value = state["value"]
        self._has_value = bool(state["has_value"])
        self._age = int(state["age"])


@dataclass
class GracefulDegradationPolicy:
    """Outage detector with recovery hysteresis.

    Tracks consecutive payload drops/deliveries and decides when the
    deployment should abandon the optimal cross-end cut for the in-sensor
    extreme cut (decisions stay locally available during the outage) and
    when it is safe to come back.

    Args:
        outage_threshold: Consecutive drops that declare a persistent
            outage and enter fallback.
        recovery_hysteresis: Consecutive deliveries required to leave
            fallback and re-enter the optimal cut.
    """

    outage_threshold: int = 3
    recovery_hysteresis: int = 8
    _consecutive_drops: int = field(default=0, repr=False)
    _consecutive_deliveries: int = field(default=0, repr=False)
    _in_fallback: bool = field(default=False, repr=False)
    _transitions: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.outage_threshold < 1:
            raise ConfigurationError("outage_threshold must be >= 1")
        if self.recovery_hysteresis < 1:
            raise ConfigurationError("recovery_hysteresis must be >= 1")

    @property
    def in_fallback(self) -> bool:
        """Whether the policy currently mandates the in-sensor fallback."""
        return self._in_fallback

    @property
    def transitions(self) -> int:
        """Mode changes so far (fallback entries + recoveries)."""
        return self._transitions

    def observe(self, delivered: bool) -> bool:
        """Fold one payload outcome in; returns the (new) fallback flag."""
        if delivered:
            self._consecutive_drops = 0
            self._consecutive_deliveries += 1
            if (
                self._in_fallback
                and self._consecutive_deliveries >= self.recovery_hysteresis
            ):
                self._in_fallback = False
                self._transitions += 1
        else:
            self._consecutive_deliveries = 0
            self._consecutive_drops += 1
            if (
                not self._in_fallback
                and self._consecutive_drops >= self.outage_threshold
            ):
                self._in_fallback = True
                self._transitions += 1
        return self._in_fallback

    def reset(self) -> None:
        """Return to the initial (normal-mode) state."""
        self._consecutive_drops = 0
        self._consecutive_deliveries = 0
        self._in_fallback = False
        self._transitions = 0

    def state_dict(self) -> dict:
        """Snapshot the mutable policy state as a JSON-safe dict.

        The thresholds are configuration, not state — checkpoints pin
        them in the config key instead (see :mod:`repro.sim.supervise`).
        """
        return {
            "consecutive_drops": self._consecutive_drops,
            "consecutive_deliveries": self._consecutive_deliveries,
            "in_fallback": self._in_fallback,
            "transitions": self._transitions,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self._consecutive_drops = int(state["consecutive_drops"])
        self._consecutive_deliveries = int(state["consecutive_deliveries"])
        self._in_fallback = bool(state["in_fallback"])
        self._transitions = int(state["transitions"])
