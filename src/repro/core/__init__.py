"""XPro core: the cross-end analytic engine and its automatic generator.

- :mod:`repro.core.layout` -- the feature layout of the generic
  classification (time domain + DWT sub-bands x 8 statistical features).
- :mod:`repro.core.pipeline` -- training the generic classifier per the
  paper's protocol and packaging it as a :class:`TrainedAnalyticEngine`.
- :mod:`repro.core.builder` -- turning a trained engine into a functional-
  cell topology (DWT chain, feature cells with Var->Std reuse, SVM member
  cells, score fusion).
- :mod:`repro.core.generator` -- the Automatic XPro Generator: min-cut
  partitioning with the delay-constrained extension (Section 3.2).
- :mod:`repro.core.engine` -- the executable cross-end engine, verified
  bit-for-bit against the monolithic pipeline.
- :mod:`repro.core.degrade` -- graceful-degradation policies (in-sensor
  fallback on persistent outage, last-known-good service on drops).
"""

from repro.core.adaptive import AdaptivePartitionController, LossRateEstimator
from repro.core.builder import build_topology
from repro.core.degrade import (
    DegradedDecision,
    GracefulDegradationPolicy,
    LastKnownGoodCache,
)
from repro.core.heuristics import greedy_descent, simulated_annealing
from repro.core.multiclass import build_multiclass_topology, classify_multiclass
from repro.core.quantized import classify_quantized, execute_quantized, quantization_agreement
from repro.core.serialize import load_partition, save_partition
from repro.core.engine import CrossEndEngine, CrossEndResult, argmax_decode, sign_decode
from repro.core.generator import AutomaticXProGenerator, GeneratorResult
from repro.core.layout import FeatureLayout, align_segment
from repro.core.partition import Partition
from repro.core.pipeline import (
    TrainedAnalyticEngine,
    TrainingConfig,
    train_analytic_engine,
)

__all__ = [
    "AdaptivePartitionController",
    "AutomaticXProGenerator",
    "DegradedDecision",
    "GracefulDegradationPolicy",
    "LastKnownGoodCache",
    "LossRateEstimator",
    "argmax_decode",
    "build_multiclass_topology",
    "classify_multiclass",
    "classify_quantized",
    "execute_quantized",
    "greedy_descent",
    "load_partition",
    "quantization_agreement",
    "save_partition",
    "sign_decode",
    "simulated_annealing",
    "CrossEndEngine",
    "CrossEndResult",
    "FeatureLayout",
    "GeneratorResult",
    "Partition",
    "TrainedAnalyticEngine",
    "TrainingConfig",
    "align_segment",
    "build_topology",
    "train_analytic_engine",
]
