"""Partition value type: which cells live on the sensor node."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.cells.topology import CellTopology
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Partition:
    """An assignment of functional cells to the sensor node.

    Attributes:
        in_sensor: Names of cells placed on the front-end sensor; every
            other cell runs in the aggregator.
        label: Human-readable origin of the partition (``"cross"``,
            ``"sensor"``, ``"aggregator"``, ``"trivial"``...).
    """

    in_sensor: FrozenSet[str]
    label: str = "cross"

    @classmethod
    def of(cls, cells: Iterable[str], label: str = "cross") -> "Partition":
        """Build a partition from any iterable of cell names."""
        return cls(in_sensor=frozenset(cells), label=label)

    def validate(self, topology: CellTopology) -> "Partition":
        """Check every named cell exists in the topology; return self."""
        unknown = self.in_sensor - set(topology.cells)
        if unknown:
            raise ConfigurationError(
                f"partition names unknown cells: {sorted(unknown)}"
            )
        return self

    def in_aggregator(self, topology: CellTopology) -> FrozenSet[str]:
        """The complementary in-aggregator cell set."""
        return frozenset(set(topology.cells) - self.in_sensor)

    def __contains__(self, cell_name: str) -> bool:
        return cell_name in self.in_sensor

    def __len__(self) -> int:
        return len(self.in_sensor)
