"""Fixed-point-faithful execution of a cell topology.

Section 4.4: *"We adopt 32-bit fixed-number with 16-bit integer and 16-bit
decimals for functional cells."*  The default engine computes in float64
(the paper's partitioning results do not depend on the datapath width),
but this module executes the same topology with every port value snapped
onto the Q16.16 grid after each cell — modelling a hardware datapath whose
buffers hold 32-bit fixed-point words — so the numerical claim can be
validated: classification decisions survive the quantisation.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cells.cell import SOURCE_CELL, PortRef
from repro.cells.topology import CellTopology
from repro.dsp.fixedpoint import FixedPointFormat, Q16_16, quantize_array
from repro.errors import ConfigurationError


def execute_quantized(
    topology: CellTopology,
    segment: np.ndarray,
    fmt: FixedPointFormat = Q16_16,
) -> Dict[PortRef, np.ndarray]:
    """Run the pipeline with every port value quantised to ``fmt``.

    The input segment itself is quantised first (it arrives from a
    fixed-width ADC), and every cell's outputs are quantised before any
    consumer reads them — exactly the precision boundary a hardware buffer
    imposes.

    Returns:
        Port values keyed by :class:`~repro.cells.cell.PortRef`, all lying
        exactly on the ``fmt`` grid.
    """
    arr = np.asarray(segment, dtype=np.float64)
    if arr.ndim != 1 or len(arr) != topology.segment_length:
        raise ConfigurationError(
            f"segment must be 1-D of length {topology.segment_length}"
        )
    values: Dict[PortRef, np.ndarray] = {
        PortRef(SOURCE_CELL, "out"): quantize_array(arr, fmt)
    }
    for name in topology.cell_names:
        cell = topology.cell(name)
        inputs = [values[ref] for ref in cell.inputs]
        outputs = cell.execute(inputs)
        for port_name, value in outputs.items():
            values[PortRef(name, port_name)] = quantize_array(value, fmt)
    return values


def classify_quantized(
    topology: CellTopology,
    segment: np.ndarray,
    fmt: FixedPointFormat = Q16_16,
) -> int:
    """Binary decision of the fixed-point execution."""
    values = execute_quantized(topology, segment, fmt)
    score = float(np.atleast_1d(values[topology.result])[0])
    return int(score > 0)


def quantization_agreement(
    topology: CellTopology,
    segments: np.ndarray,
    fmt: FixedPointFormat = Q16_16,
) -> float:
    """Fraction of segments where fixed-point and float decisions agree."""
    mat = np.asarray(segments, dtype=np.float64)
    if mat.ndim != 2:
        raise ConfigurationError("segments must be a 2-D batch")
    matches = sum(
        int(classify_quantized(topology, row, fmt) == topology.classify(row))
        for row in mat
    )
    return matches / len(mat)
