"""Multi-class XPro topologies (paper §5.7).

Builds the functional-cell topology for a one-vs-rest multi-class
classifier: the shared DWT chain and feature cells, every per-class SVM
member cell, one score-fusion cell per class, and a final argmax cell
whose output (the winning class index) is the result the aggregator
receives.  The Automatic XPro Generator and the cross-end engine apply
unchanged — this module only *extends the topology*, exactly as the paper
describes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.cells.cell import (
    RESULT_BITS,
    SOURCE_CELL,
    FunctionalCell,
    OutputPort,
    PortRef,
)
from repro.cells.library import (
    choose_alu_mode,
    make_dwt_cell,
    make_feature_cell,
    make_svm_cell,
)
from repro.cells.topology import CellTopology
from repro.core.layout import FeatureLayout
from repro.dsp.normalize import MinMaxNormalizer
from repro.errors import ConfigurationError
from repro.hw.energy import ALUMode, EnergyLibrary
from repro.ml.fusion import WeightedVotingFusion
from repro.ml.multiclass import OneVsRestSubspaceClassifier


def _make_class_fusion_cell(
    class_index: int,
    fusion: WeightedVotingFusion,
    member_refs: Sequence[PortRef],
    energy_lib: EnergyLibrary,
) -> FunctionalCell:
    """Score-fusion cell for one one-vs-rest class (8-bit score port)."""
    counts = fusion.operation_counts()
    mode, chosen = choose_alu_mode(
        {m: counts for m in ALUMode}, energy_lib, parallel_width=len(member_refs)
    )
    weights = fusion.weights
    intercept = fusion.intercept

    def compute(inputs: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
        scores = np.array([float(np.atleast_1d(v)[0]) for v in inputs])
        return {"out": np.array([float(scores @ weights + intercept)])}

    return FunctionalCell(
        name=f"fusion_c{class_index}",
        module="fusion",
        op_counts=chosen,
        mode=mode,
        inputs=tuple(member_refs),
        outputs=(OutputPort("out", 1, 8),),
        compute=compute,
        parallel_width=len(member_refs),
    )


def _make_argmax_cell(
    class_refs: Sequence[PortRef], energy_lib: EnergyLibrary
) -> FunctionalCell:
    """Final winner-take-all cell emitting the class index."""
    k = len(class_refs)
    counts = {"cmp": max(k - 1, 1)}
    mode, chosen = choose_alu_mode(
        {m: counts for m in ALUMode}, energy_lib, parallel_width=k
    )

    def compute(inputs: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
        scores = np.array([float(np.atleast_1d(v)[0]) for v in inputs])
        return {"out": np.array([float(int(scores.argmax()))])}

    return FunctionalCell(
        name="argmax",
        module="argmax",
        op_counts=chosen,
        mode=mode,
        inputs=tuple(class_refs),
        outputs=(OutputPort("out", 1, RESULT_BITS),),
        compute=compute,
        parallel_width=k,
    )


def build_multiclass_topology(
    layout: FeatureLayout,
    classifier: OneVsRestSubspaceClassifier,
    normalizer: MinMaxNormalizer,
    energy_lib: EnergyLibrary,
) -> CellTopology:
    """Construct the cell topology for a trained one-vs-rest classifier.

    Mirrors :func:`repro.core.builder.build_topology` with the per-class
    extension: feature cells are shared across classes (the union of every
    member's subspace), member cells are named ``svm_c<k>_m<i>``, and the
    result is the ``argmax`` cell's class-index output.
    """
    if not classifier.is_fitted:
        raise ConfigurationError("classifier must be fitted before building cells")
    if not normalizer.is_fitted:
        raise ConfigurationError("normalizer must be fitted before building cells")
    if classifier.n_features != layout.n_features:
        raise ConfigurationError(
            f"classifier dimension {classifier.n_features} != layout "
            f"{layout.n_features}"
        )

    used = classifier.used_feature_indices()
    used_by_domain: Dict[int, set] = {}
    for index in used:
        domain, fname = layout.feature_of(index)
        used_by_domain.setdefault(domain, set()).add(fname)

    cells: List[FunctionalCell] = []

    # Shared DWT chain.
    deepest = max((layout.dwt_level_of_domain(d) for d in used_by_domain), default=0)
    dwt_ports: Dict[int, PortRef] = {}
    prev_ref = PortRef(SOURCE_CELL, "out")
    length = layout.dwt_aligned_length
    for level in range(1, deepest + 1):
        cell = make_dwt_cell(
            level,
            prev_ref,
            length,
            energy_lib,
            wavelet=layout.wavelet,
            align_to=layout.dwt_aligned_length if level == 1 else None,
        )
        cells.append(cell)
        if level < layout.dwt_levels:
            dwt_ports[level] = PortRef(cell.name, "detail")
        else:
            dwt_ports[layout.dwt_levels] = PortRef(cell.name, "approx")
            dwt_ports[layout.dwt_levels + 1] = PortRef(cell.name, "detail")
        prev_ref = PortRef(cell.name, "approx")
        length //= 2

    def segment_port(domain: int) -> PortRef:
        if domain == 0:
            return PortRef(SOURCE_CELL, "out")
        if domain < layout.dwt_levels:
            return dwt_ports[domain]
        key = layout.dwt_levels if domain == layout.dwt_levels else layout.dwt_levels + 1
        return dwt_ports[key]

    # Shared feature cells (with Var->Std reuse).
    domain_lengths = layout.domain_lengths()
    per_domain = len(layout.feature_names)
    feature_ports: Dict[int, PortRef] = {}
    for domain in sorted(used_by_domain):
        names = used_by_domain[domain]
        seg_ref = segment_port(domain)
        seg_len = domain_lengths[domain]
        domain_cells: Dict[str, FunctionalCell] = {}
        if "var" in names or "std" in names:
            var_cell = make_feature_cell(
                "var", seg_ref, seg_len, energy_lib, name=f"var@seg{domain}"
            )
            cells.append(var_cell)
            domain_cells["var"] = var_cell
        for fname in sorted(names):
            if fname == "var":
                continue
            if fname == "std":
                cell = make_feature_cell(
                    "std",
                    PortRef(domain_cells["var"].name, "out"),
                    seg_len,
                    energy_lib,
                    name=f"std@seg{domain}",
                )
            else:
                cell = make_feature_cell(
                    fname, seg_ref, seg_len, energy_lib, name=f"{fname}@seg{domain}"
                )
            cells.append(cell)
            domain_cells[fname] = cell
        for fname, cell in domain_cells.items():
            idx = domain * per_domain + layout.feature_names.index(fname)
            if idx in used:
                feature_ports[idx] = PortRef(cell.name, "out")

    # Per-class member + fusion cells.
    mins = normalizer.mins
    ranges = normalizer.ranges
    class_refs: List[PortRef] = []
    for k, ensemble in enumerate(classifier.per_class):
        member_refs: List[PortRef] = []
        for i, member in enumerate(ensemble.members):
            refs = [feature_ports[idx] for idx in member.feature_indices]
            sub = list(member.feature_indices)
            cell = make_svm_cell(
                i,
                member.classifier,
                refs,
                mins[sub],
                ranges[sub],
                energy_lib,
                name=f"svm_c{k}_m{i}",
            )
            cells.append(cell)
            member_refs.append(PortRef(cell.name, "out"))
        fusion_cell = _make_class_fusion_cell(
            k, ensemble.fusion, member_refs, energy_lib
        )
        cells.append(fusion_cell)
        class_refs.append(PortRef(fusion_cell.name, "out"))

    argmax_cell = _make_argmax_cell(class_refs, energy_lib)
    cells.append(argmax_cell)

    return CellTopology(
        segment_length=layout.segment_length,
        cells=cells,
        result=PortRef("argmax", "out"),
    )


def classify_multiclass(topology: CellTopology, segment: np.ndarray) -> int:
    """Monolithic multi-class decision: the argmax cell's emitted index."""
    values = topology.execute(segment)
    return int(round(float(np.atleast_1d(values[topology.result])[0])))
