"""Build a functional-cell topology from a trained generic classifier.

This is the front half of the Automatic XPro Generator: it turns the trained
random-subspace ensemble into the dataflow graph of functional cells the
partitioner operates on.  Key rules (Section 2.2/3.1):

- only features actually consumed by a surviving ensemble member become
  cells ("the number of functional cells is decided by the feature set and
  random subspace training");
- the DWT chain is instantiated only as deep as the deepest used sub-band,
  and level 1 performs the 128-sample alignment;
- the Std cell reuses the Var cell (design rule 3, Fig. 5) — a Var cell is
  inserted automatically when Std is used, and shared if Var is also used
  directly;
- min-max normalisation is folded into the SVM member cells.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cells.cell import SOURCE_CELL, FunctionalCell, PortRef
from repro.cells.library import (
    make_dwt_cell,
    make_feature_cell,
    make_fusion_cell,
    make_svm_cell,
)
from repro.cells.topology import CellTopology
from repro.core.layout import FeatureLayout
from repro.dsp.normalize import MinMaxNormalizer
from repro.errors import ConfigurationError
from repro.hw.energy import EnergyLibrary
from repro.ml.subspace import RandomSubspaceClassifier


def build_topology(
    layout: FeatureLayout,
    ensemble: RandomSubspaceClassifier,
    normalizer: MinMaxNormalizer,
    energy_lib: EnergyLibrary,
) -> CellTopology:
    """Construct the cell topology realising a trained generic classifier.

    Args:
        layout: Feature layout (must match what the ensemble was trained on).
        ensemble: Trained random-subspace classifier.
        normalizer: Min-max normalizer fitted on the training features.
        energy_lib: Energy model used for per-module ALU-mode selection.

    Returns:
        A validated :class:`~repro.cells.topology.CellTopology` whose
        monolithic execution reproduces ``ensemble.predict`` exactly.
    """
    if not ensemble.is_fitted:
        raise ConfigurationError("ensemble must be fitted before building cells")
    if not normalizer.is_fitted:
        raise ConfigurationError("normalizer must be fitted before building cells")
    if ensemble.n_features != layout.n_features:
        raise ConfigurationError(
            f"ensemble dimension {ensemble.n_features} != layout {layout.n_features}"
        )

    used = ensemble.used_feature_indices()
    used_by_domain: Dict[int, List[str]] = {}
    for index in used:
        domain, fname = layout.feature_of(index)
        used_by_domain.setdefault(domain, []).append(fname)

    cells: List[FunctionalCell] = []

    # -- DWT chain (only as deep as needed) -----------------------------------
    deepest = max(
        (layout.dwt_level_of_domain(d) for d in used_by_domain), default=0
    )
    dwt_ports: Dict[int, PortRef] = {}  # domain -> producing port
    prev_ref = PortRef(SOURCE_CELL, "out")
    length = layout.dwt_aligned_length
    for level in range(1, deepest + 1):
        cell = make_dwt_cell(
            level,
            prev_ref,
            length,
            energy_lib,
            wavelet=layout.wavelet,
            align_to=layout.dwt_aligned_length if level == 1 else None,
        )
        cells.append(cell)
        if level < layout.dwt_levels:
            dwt_ports[level] = PortRef(cell.name, "detail")
        else:
            dwt_ports[layout.dwt_levels] = PortRef(cell.name, "approx")
            dwt_ports[layout.dwt_levels + 1] = PortRef(cell.name, "detail")
        prev_ref = PortRef(cell.name, "approx")
        length //= 2

    def segment_port(domain: int) -> PortRef:
        if domain == 0:
            return PortRef(SOURCE_CELL, "out")
        if domain < layout.dwt_levels:
            return dwt_ports[domain]
        # A_L is stored under key dwt_levels, D_L under dwt_levels + 1.
        key = layout.dwt_levels if domain == layout.dwt_levels else layout.dwt_levels + 1
        return dwt_ports[key]

    # -- feature cells (with Var->Std reuse) -----------------------------------
    domain_lengths = layout.domain_lengths()
    feature_ports: Dict[int, PortRef] = {}
    per_domain = len(layout.feature_names)

    def flat_index(domain: int, fname: str) -> int:
        return domain * per_domain + layout.feature_names.index(fname)

    for domain in sorted(used_by_domain):
        names = set(used_by_domain[domain])
        seg_ref = segment_port(domain)
        seg_len = domain_lengths[domain]
        domain_cells: Dict[str, FunctionalCell] = {}
        needs_var = "var" in names or "std" in names
        if needs_var:
            var_cell = make_feature_cell(
                "var", seg_ref, seg_len, energy_lib, name=f"var@seg{domain}"
            )
            cells.append(var_cell)
            domain_cells["var"] = var_cell
        for fname in sorted(names):
            if fname == "var":
                continue  # already built (possibly for std's sake)
            if fname == "std":
                cell = make_feature_cell(
                    "std",
                    PortRef(domain_cells["var"].name, "out"),
                    seg_len,
                    energy_lib,
                    name=f"std@seg{domain}",
                )
            else:
                cell = make_feature_cell(
                    fname, seg_ref, seg_len, energy_lib, name=f"{fname}@seg{domain}"
                )
            cells.append(cell)
            domain_cells[fname] = cell
        for fname, cell in domain_cells.items():
            idx = flat_index(domain, fname)
            if idx in used:
                feature_ports[idx] = PortRef(cell.name, "out")

    # -- SVM member cells --------------------------------------------------------
    mins = normalizer.mins
    ranges = normalizer.ranges
    member_refs: List[PortRef] = []
    for i, member in enumerate(ensemble.members):
        refs = [feature_ports[idx] for idx in member.feature_indices]
        sub = list(member.feature_indices)
        cell = make_svm_cell(
            i,
            member.classifier,
            refs,
            mins[sub],
            ranges[sub],
            energy_lib,
        )
        cells.append(cell)
        member_refs.append(PortRef(cell.name, "out"))

    # -- fusion --------------------------------------------------------------------
    fusion_cell = make_fusion_cell(ensemble.fusion, member_refs, energy_lib)
    cells.append(fusion_cell)

    return CellTopology(
        segment_length=layout.segment_length,
        cells=cells,
        result=PortRef(fusion_cell.name, "out"),
    )
