"""The Automatic XPro Generator (Section 3.2).

Given a functional-cell topology and the hardware models, the generator
finds the in-sensor/in-aggregator partition minimising sensor-node energy:

- **without a delay constraint** (Section 3.2.2): exact s-t min cut on the
  graph of :mod:`repro.graph.stgraph` via Dinic's algorithm;
- **with a delay constraint** (Section 3.2.3): the paper folds delay into
  the same graph as a second edge attribute.  We realise that as a
  Lagrangian relaxation — each candidate multiplier ``lambda`` prices delay
  into the edge capacities (``energy + lambda * delay``) and yields one
  min-cut candidate; candidates are screened against the *true* delay model
  (front critical path + link serialisation + back CPU time) and the
  cheapest feasible one wins.  The two single-end extremes are always
  included as candidates, so with the paper's Eq. 4 limit
  ``T = min(T_sensor, T_aggregator)`` a feasible solution always exists and
  the result is never worse than either single-end engine.

For small topologies :meth:`AutomaticXProGenerator.generate_exhaustive`
certifies optimality by brute force (used by the test suite).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cells.cell import SOURCE_CELL
from repro.cells.topology import CellTopology
from repro.core.partition import Partition
from repro.errors import ConfigurationError, InfeasibleConstraintError
from repro.graph.cuts import aggregator_cut, enumerate_partitions, sensor_cut
from repro.graph.stgraph import (
    STGraphTemplate,
    build_st_graph,
    build_st_graph_template,
)
from repro.hw.aggregator import AggregatorCPU
from repro.hw.energy import EnergyLibrary
from repro.hw.wireless import WirelessLink
from repro.sim.evaluate import (
    PartitionEvaluationCache,
    PartitionMetrics,
    evaluate_partition,
)

logger = logging.getLogger("repro.generator")


@dataclass(frozen=True)
class GeneratorResult:
    """Outcome of one generator run.

    Attributes:
        partition: The chosen in-sensor cell assignment.
        metrics: Full per-event metrics of that partition.
        delay_limit_s: The delay constraint that was enforced (None if
            unconstrained).
        candidates_evaluated: Unique partitions priced through the
            energy/delay model during the call — bisection feasibility
            probes included, repeats served by the memo not
            double-counted.
    """

    partition: Partition
    metrics: PartitionMetrics
    delay_limit_s: Optional[float]
    candidates_evaluated: int


class AutomaticXProGenerator:
    """Finds energy-optimal cross-end partitions for one topology.

    The generator keeps two per-instance fast-path structures, both tied to
    its ``(topology, energy_lib, link, cpu)`` context:

    - a parametric :class:`~repro.graph.stgraph.STGraphTemplate` so the
      Lagrangian bisection re-prices one prebuilt s-t graph and warm-starts
      each solve from the previous residual flow (``warm_start=True``);
    - a bounded :class:`~repro.sim.evaluate.PartitionEvaluationCache` so
      repeated probes of the same cut hit the energy/delay model once
      (``cache_size`` entries; 0 disables).

    Both are invalidated automatically when any of the four model
    attributes is rebound; call :meth:`invalidate_caches` after mutating a
    model *in place*.

    Args:
        topology: The functional-cell dataflow graph.
        energy_lib: In-sensor energy model (process node, ALU modes).
        link: Wireless transceiver model.
        cpu: Aggregator CPU model (for the delay model and Fig. 13).
        warm_start: Reuse the s-t graph template and residual flows across
            solves (``False`` forces the legacy cold rebuild per solve).
        cache_size: Bound of the partition-evaluation memo (0 disables).
    """

    def __init__(
        self,
        topology: CellTopology,
        energy_lib: EnergyLibrary,
        link: WirelessLink,
        cpu: AggregatorCPU,
        *,
        warm_start: bool = True,
        cache_size: int = 256,
    ) -> None:
        self.topology = topology
        self.energy_lib = energy_lib
        self.link = link
        self.cpu = cpu
        self.warm_start = warm_start
        self._eval_cache = PartitionEvaluationCache(maxsize=cache_size)
        self._template: Optional[STGraphTemplate] = None
        self._context_key: Optional[Tuple[int, int, int, int]] = None

    # -- fast-path cache management ---------------------------------------------

    def invalidate_caches(self) -> None:
        """Drop the s-t graph template and the evaluation memo.

        Needed only after mutating one of the model objects *in place*;
        rebinding ``self.topology``/``self.energy_lib``/``self.link``/
        ``self.cpu`` to a different object is detected automatically.
        """
        self._template = None
        self._context_key = None
        self._eval_cache.clear()

    def _check_context(self) -> None:
        key = (id(self.topology), id(self.energy_lib), id(self.link), id(self.cpu))
        if self._context_key != key:
            self._template = None
            self._eval_cache.clear()
            self._context_key = key

    @property
    def evaluation_cache(self) -> PartitionEvaluationCache:
        """The partition-evaluation memo (hit/miss counters for tests)."""
        return self._eval_cache

    @property
    def template(self) -> Optional[STGraphTemplate]:
        """The current s-t graph template, if one has been built."""
        self._check_context()
        return self._template

    def _ensure_template(self) -> STGraphTemplate:
        self._check_context()
        if self._template is None:
            self._template = build_st_graph_template(
                self.topology,
                self.energy_lib,
                self.link,
                self._delay_weights(1.0),
            )
        return self._template

    # -- evaluation helpers ------------------------------------------------------

    def evaluate(self, in_sensor: FrozenSet[str]) -> PartitionMetrics:
        """Metrics of an arbitrary partition under this generator's models."""
        self._check_context()
        return self._eval_cache.get_or_compute(
            frozenset(in_sensor), self._evaluate_uncached
        )

    def _evaluate_uncached(self, in_sensor: FrozenSet[str]) -> PartitionMetrics:
        return evaluate_partition(
            self.topology, in_sensor, self.energy_lib, self.link, self.cpu
        )

    def reference_metrics(self) -> Dict[str, PartitionMetrics]:
        """Metrics of the single-end engines (keys: "sensor", "aggregator")."""
        return {
            "sensor": self.evaluate(sensor_cut(self.topology)),
            "aggregator": self.evaluate(aggregator_cut(self.topology)),
        }

    def paper_delay_limit(self) -> float:
        """Eq. 4: ``T_XPro = min(T_F, T_B)`` over the single-end engines."""
        refs = self.reference_metrics()
        return min(refs["sensor"].delay_total_s, refs["aggregator"].delay_total_s)

    # -- unconstrained min cut ------------------------------------------------------

    def min_cut_partition(self) -> Partition:
        """Exact energy-minimal partition, ignoring delay (Section 3.2.2)."""
        if self.warm_start:
            in_sensor, capacity = self._ensure_template().solve_lagrangian(0.0)
        else:
            graph = build_st_graph(self.topology, self.energy_lib, self.link)
            in_sensor, capacity = graph.solve()
        logger.debug(
            "min-cut: %d/%d cells in-sensor, capacity %.4g J",
            len(in_sensor), len(self.topology), capacity,
        )
        return Partition(in_sensor=in_sensor, label="cross")

    # -- delay-constrained generation --------------------------------------------------

    def _delay_weights(self, lam: float) -> Dict[str, float]:
        """Lagrangian edge surcharges pricing delay at ``lam`` J/s."""
        weights: Dict[str, float] = {}
        for name, cell in self.topology.cells.items():
            cost = self.energy_lib.cell_cost(
                cell.op_counts, cell.mode, cell.parallel_width
            )
            weights[f"cell:{name}"] = lam * self.energy_lib.seconds(cost.cycles)
            weights[f"back:{name}"] = lam * self.cpu.compute_time(cell.op_counts)
        for ref, port in self.topology.producer_ports():
            transfer = self.link.transfer_delay(port.n_values, port.bits_per_value)
            weights[f"tx:{ref.cell}.{ref.port}"] = lam * transfer
            for consumer in self.topology.consumers(ref):
                if ref.cell != SOURCE_CELL:
                    weights[f"rx:{ref.cell}.{ref.port}:{consumer}"] = lam * transfer
        return weights

    def _lagrangian_cut(self, lam: float) -> FrozenSet[str]:
        if self.warm_start:
            in_sensor, _ = self._ensure_template().solve_lagrangian(lam)
            return in_sensor
        graph = build_st_graph(
            self.topology, self.energy_lib, self.link, self._delay_weights(lam)
        )
        in_sensor, _ = graph.solve()
        return in_sensor

    def generate(
        self,
        delay_limit_s: Optional[float] = None,
        use_paper_limit: bool = True,
        lagrangian_steps: int = 24,
    ) -> GeneratorResult:
        """Produce the XPro partition (the generator's main entry point).

        Args:
            delay_limit_s: Explicit delay constraint in seconds.  If None
                and ``use_paper_limit``, the Eq. 4 limit
                ``min(T_sensor, T_aggregator)`` is applied; if None and
                ``use_paper_limit`` is False, the cut is unconstrained.
            use_paper_limit: Whether a None limit means "paper limit"
                rather than "no limit".
            lagrangian_steps: Bisection steps over the delay price.

        Returns:
            The cheapest feasible partition found.

        Raises:
            InfeasibleConstraintError: If an explicit ``delay_limit_s`` is
                tighter than every candidate (cannot happen with the paper
                limit).
        """
        limit = delay_limit_s
        if limit is None and use_paper_limit:
            limit = self.paper_delay_limit()
        if limit is not None and limit <= 0:
            raise ConfigurationError("delay limit must be positive")

        # Every evaluation in this call goes through `ev` so that
        # `candidates_evaluated` counts *unique model evaluations* — each
        # distinct partition is priced once (the memo serves repeats), and
        # bisection feasibility probes are not double-counted against the
        # final screening pass.
        tracked: set = set()

        def ev(in_sensor: FrozenSet[str]) -> PartitionMetrics:
            key = frozenset(in_sensor)
            tracked.add(key)
            return self.evaluate(key)

        candidates: List[Tuple[FrozenSet[str], str]] = [
            (sensor_cut(self.topology), "sensor"),
            (aggregator_cut(self.topology), "aggregator"),
            (self.min_cut_partition().in_sensor, "cross"),
        ]

        if limit is not None:
            # Only bother with Lagrangian pricing if the unconstrained
            # optimum violates the limit.
            unconstrained_metrics = ev(candidates[2][0])
            if unconstrained_metrics.delay_total_s > limit:
                logger.debug(
                    "unconstrained cut violates delay limit "
                    "(%.4g s > %.4g s); starting Lagrangian search",
                    unconstrained_metrics.delay_total_s, limit,
                )
                lo, hi = 0.0, self._initial_lambda()
                # Grow hi until its cut is delay-feasible (or give up and
                # rely on the single-end candidates).
                for _ in range(20):
                    cut = self._lagrangian_cut(hi)
                    if ev(cut).delay_total_s <= limit:
                        break
                    hi *= 4.0
                for _ in range(lagrangian_steps):
                    mid = (lo + hi) / 2.0
                    cut = self._lagrangian_cut(mid)
                    candidates.append((cut, "cross"))
                    if ev(cut).delay_total_s <= limit:
                        hi = mid
                    else:
                        lo = mid

        best: Optional[Tuple[PartitionMetrics, str]] = None
        seen = set()
        for in_sensor, label in candidates:
            if in_sensor in seen:
                continue
            seen.add(in_sensor)
            metrics = ev(in_sensor)
            if limit is not None and metrics.delay_total_s > limit * (1 + 1e-9):
                continue
            if best is None or metrics.sensor_total_j < best[0].sensor_total_j:
                best = (metrics, label)
        evaluated = len(tracked)
        if best is None:
            raise InfeasibleConstraintError(
                f"no partition satisfies delay limit {limit!r} s"
            )
        metrics, label = best
        logger.debug(
            "generate: chose %s cut, %d cells in-sensor, %.4g J/event, "
            "%.4g s delay (%d candidates screened)",
            label, len(metrics.in_sensor), metrics.sensor_total_j,
            metrics.delay_total_s, evaluated,
        )
        return GeneratorResult(
            partition=Partition(in_sensor=metrics.in_sensor, label=label),
            metrics=metrics,
            delay_limit_s=limit,
            candidates_evaluated=evaluated,
        )

    def _initial_lambda(self) -> float:
        """A delay price scale: total sensor energy per unit total delay."""
        refs = self.reference_metrics()
        energy_scale = max(m.sensor_total_j for m in refs.values())
        delay_scale = max(m.delay_total_s for m in refs.values())
        if delay_scale <= 0:
            return 1.0
        return energy_scale / delay_scale

    # -- exhaustive certification ---------------------------------------------------

    def generate_exhaustive(
        self, delay_limit_s: Optional[float] = None, max_cells: int = 16
    ) -> GeneratorResult:
        """Brute-force optimal partition (small topologies only).

        Used by the test suite to certify that :meth:`generate` returns the
        true optimum.
        """
        best: Optional[PartitionMetrics] = None
        evaluated = 0
        for in_sensor in enumerate_partitions(self.topology, max_cells=max_cells):
            metrics = self.evaluate(in_sensor)
            evaluated += 1
            if delay_limit_s is not None and metrics.delay_total_s > delay_limit_s:
                continue
            if best is None or metrics.sensor_total_j < best.sensor_total_j:
                best = metrics
        if best is None:
            raise InfeasibleConstraintError(
                f"no partition satisfies delay limit {delay_limit_s!r} s"
            )
        return GeneratorResult(
            partition=Partition(in_sensor=best.in_sensor, label="exhaustive"),
            metrics=best,
            delay_limit_s=delay_limit_s,
            candidates_evaluated=evaluated,
        )
