"""Feature layout of the generic classification framework.

The complete statistical feature set spans several *domains*: the raw
time-domain segment plus the sub-bands of a multi-level DWT (Section 2.1).
With the paper's 5-level transform on 128-sample-aligned segments the
domains are::

    seg0: time         (raw segment, native length)
    seg1: DWT D1       (64 samples)     seg4: DWT D4 (8 samples)
    seg2: DWT D2       (32 samples)     seg5: DWT A5 (4 samples)
    seg3: DWT D3       (16 samples)     seg6: DWT D5 (4 samples)

Within each domain the eight statistical features are laid out in the
canonical :data:`~repro.dsp.features.FEATURE_NAMES` order, so feature index
``f`` maps to domain ``f // 8`` and feature ``FEATURE_NAMES[f % 8]``.

Segments whose native length is not 128 are aligned for the DWT path
(truncated or zero-padded; Section 4.4 fixes the per-level lengths to
64/32/16/8/4 for *all* six cases, implying exactly this alignment), while
time-domain features always see the native segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.dsp.features import FEATURE_NAMES, compute_feature
from repro.dsp.wavelet import dwt_band_lengths, dwt_multilevel
from repro.errors import ConfigurationError


def align_segment(segment: Sequence[float], target_length: int) -> np.ndarray:
    """Align a segment to ``target_length``: truncate or zero-pad at the end."""
    arr = np.asarray(segment, dtype=np.float64)
    if arr.ndim != 1:
        raise ConfigurationError("segment must be one-dimensional")
    if target_length <= 0:
        raise ConfigurationError("target_length must be positive")
    if len(arr) >= target_length:
        return arr[:target_length].copy()
    out = np.zeros(target_length)
    out[: len(arr)] = arr
    return out


@dataclass(frozen=True)
class FeatureLayout:
    """Static description of the full feature vector for one segment shape.

    Attributes:
        segment_length: Native segment length (Table 1 value).
        dwt_aligned_length: Length the segment is aligned to before the DWT.
        dwt_levels: Number of DWT decomposition levels.
        wavelet: Wavelet family used for the DWT domains.
        feature_names: Per-domain statistical feature order.
    """

    segment_length: int
    dwt_aligned_length: int = 128
    dwt_levels: int = 5
    wavelet: str = "haar"
    feature_names: Tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self) -> None:
        if self.segment_length <= 0:
            raise ConfigurationError("segment_length must be positive")
        # Raises if the alignment/levels combination is invalid:
        dwt_band_lengths(self.dwt_aligned_length, self.dwt_levels)
        unknown = [n for n in self.feature_names if n not in FEATURE_NAMES]
        if unknown:
            raise ConfigurationError(f"unknown features: {unknown}")

    # -- structure ------------------------------------------------------------

    def domain_labels(self) -> List[str]:
        """Human-readable labels of the domains, in index order."""
        labels = ["time"]
        labels.extend(f"D{k}" for k in range(1, self.dwt_levels))
        labels.extend([f"A{self.dwt_levels}", f"D{self.dwt_levels}"])
        return labels

    def domain_lengths(self) -> List[int]:
        """Sample counts of every domain, in index order."""
        return [self.segment_length] + dwt_band_lengths(
            self.dwt_aligned_length, self.dwt_levels
        )

    @property
    def n_domains(self) -> int:
        """Number of domains (time + DWT sub-bands)."""
        return self.dwt_levels + 2

    @property
    def n_features(self) -> int:
        """Total feature-vector length."""
        return self.n_domains * len(self.feature_names)

    def feature_of(self, index: int) -> Tuple[int, str]:
        """Map a flat feature index to ``(domain_index, feature_name)``."""
        if not 0 <= index < self.n_features:
            raise ConfigurationError(
                f"feature index {index} out of range [0, {self.n_features})"
            )
        per_domain = len(self.feature_names)
        return index // per_domain, self.feature_names[index % per_domain]

    def feature_label(self, index: int) -> str:
        """Readable label of one flat feature index, e.g. ``"skew@D2"``."""
        domain, name = self.feature_of(index)
        return f"{name}@{self.domain_labels()[domain]}"

    def dwt_level_of_domain(self, domain: int) -> int:
        """Deepest DWT level required to produce a given domain (0 = none)."""
        if not 0 <= domain < self.n_domains:
            raise ConfigurationError(f"domain {domain} out of range")
        if domain == 0:
            return 0
        if domain < self.dwt_levels:
            return domain  # detail band of level `domain`
        return self.dwt_levels  # A_L or D_L

    # -- reference extraction ---------------------------------------------------

    def domain_segments(self, segment: Sequence[float]) -> List[np.ndarray]:
        """The actual per-domain sample arrays for one input segment."""
        arr = np.asarray(segment, dtype=np.float64)
        if len(arr) != self.segment_length:
            raise ConfigurationError(
                f"expected segment of length {self.segment_length}, got {len(arr)}"
            )
        aligned = align_segment(arr, self.dwt_aligned_length)
        bands = dwt_multilevel(aligned, self.dwt_levels, self.wavelet)
        return [arr] + bands

    def extract(self, segment: Sequence[float]) -> np.ndarray:
        """Raw (unnormalised) full feature vector of one segment.

        This is the software reference the functional-cell topology must
        reproduce value-for-value.
        """
        parts = []
        for domain_arr in self.domain_segments(segment):
            parts.extend(compute_feature(n, domain_arr) for n in self.feature_names)
        return np.asarray(parts)

    def extract_matrix(self, segments: np.ndarray) -> np.ndarray:
        """Feature matrix for a (n_segments, segment_length) batch."""
        mat = np.asarray(segments, dtype=np.float64)
        if mat.ndim != 2:
            raise ConfigurationError("segments must be a 2-D batch")
        return np.stack([self.extract(row) for row in mat])
