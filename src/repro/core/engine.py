"""The executable cross-end engine.

A :class:`CrossEndEngine` runs a partitioned analytic pipeline the way the
deployed system would: in-sensor cells execute on (a software model of) the
sensor, every port value crossing the cut is marshalled over the link, and
in-aggregator cells execute on the aggregator.  Functionally the partition
must be invisible — the engine's predictions are verified against the
monolithic :meth:`~repro.cells.topology.CellTopology.classify` in the test
suite — while the traffic accounting reports exactly what crossed the air.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.cells.cell import SOURCE_CELL, PortRef
from repro.cells.topology import CellTopology
from repro.core.partition import Partition
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CrossEndResult:
    """Outcome of classifying one segment across the two ends.

    Attributes:
        prediction: Binary class decision.
        score: The fused classifier score behind the decision.
        uplink_ports: Port refs transmitted sensor -> aggregator.
        downlink_ports: (port, consumer) pairs received by in-sensor cells.
        uplink_values: Total scalar values sent up.
        downlink_values: Total scalar values sent down.
    """

    prediction: int
    score: float
    uplink_ports: Tuple[PortRef, ...]
    downlink_ports: Tuple[Tuple[PortRef, str], ...]
    uplink_values: int
    downlink_values: int


def sign_decode(score: float) -> int:
    """Default result decoding: binary decision from a signed score."""
    return int(score > 0)


def argmax_decode(score: float) -> int:
    """Result decoding for multi-class topologies whose result cell emits
    the winning class index directly (see :mod:`repro.core.multiclass`)."""
    return int(round(score))


class CrossEndEngine:
    """Executes a topology under a given partition.

    Args:
        topology: The functional-cell dataflow graph.
        partition: Cell-to-end assignment (validated on construction).
        decode: Maps the result port's scalar to the class decision;
            defaults to :func:`sign_decode` (binary), use
            :func:`argmax_decode` for multi-class topologies.
    """

    def __init__(
        self,
        topology: CellTopology,
        partition: Partition,
        decode: Callable[[float], int] = sign_decode,
    ) -> None:
        self.topology = topology
        self.partition = partition.validate(topology)
        self.decode = decode

    def classify(self, segment: np.ndarray) -> CrossEndResult:
        """Classify one raw segment through the partitioned pipeline."""
        arr = np.asarray(segment, dtype=np.float64)
        if arr.ndim != 1 or len(arr) != self.topology.segment_length:
            raise ConfigurationError(
                f"segment must be 1-D of length {self.topology.segment_length}"
            )
        in_sensor = self.partition.in_sensor
        # Per-end value stores; the source segment exists only on the sensor.
        sensor_values: Dict[PortRef, np.ndarray] = {PortRef(SOURCE_CELL, "out"): arr}
        aggregator_values: Dict[PortRef, np.ndarray] = {}
        uplinked: List[PortRef] = []
        downlinked: List[Tuple[PortRef, str]] = []

        def fetch(ref: PortRef, consumer: str, consumer_in_sensor: bool) -> np.ndarray:
            """Resolve an input value at the consumer's end, marshalling if needed.

            Uplink transfers happen once per port (the "grouped" rule: one
            broadcast serves every back-end consumer), while downlink
            receives are paid per in-sensor consumer — mirroring the Tx/Rx
            edge construction of the s-t graph, so the engine's traffic
            accounting matches the evaluator exactly.
            """
            producer_in_sensor = ref.cell == SOURCE_CELL or ref.cell in in_sensor
            if consumer_in_sensor:
                if producer_in_sensor:
                    return sensor_values[ref]
                downlinked.append((ref, consumer))
                value = aggregator_values[ref]
                sensor_values[ref] = value
                return value
            if producer_in_sensor and ref not in aggregator_values:
                aggregator_values[ref] = sensor_values[ref]
                uplinked.append(ref)
            return aggregator_values[ref]

        for name in self.topology.cell_names:  # topological order
            cell = self.topology.cell(name)
            here = name in in_sensor
            inputs = [fetch(ref, name, here) for ref in cell.inputs]
            outputs = cell.execute(inputs)
            store = sensor_values if here else aggregator_values
            for port_name, value in outputs.items():
                store[PortRef(name, port_name)] = value

        # The classification result must reach the aggregator.
        result_ref = self.topology.result
        if result_ref not in aggregator_values:
            aggregator_values[result_ref] = sensor_values[result_ref]
            uplinked.append(result_ref)

        score = float(np.atleast_1d(aggregator_values[result_ref])[0])
        up_values = sum(
            self.topology.port_of(ref).n_values for ref in uplinked
        )
        down_values = sum(
            self.topology.port_of(ref).n_values for ref, _ in downlinked
        )
        return CrossEndResult(
            prediction=self.decode(score),
            score=score,
            uplink_ports=tuple(uplinked),
            downlink_ports=tuple(downlinked),
            uplink_values=up_values,
            downlink_values=down_values,
        )

    def classify_batch(self, segments: np.ndarray) -> np.ndarray:
        """Predictions for a (n_segments, segment_length) batch."""
        mat = np.asarray(segments, dtype=np.float64)
        if mat.ndim != 2:
            raise ConfigurationError("segments must be a 2-D batch")
        return np.asarray([self.classify(row).prediction for row in mat])
