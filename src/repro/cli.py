"""Command-line interface: regenerate paper artefacts from a shell.

Usage (after ``pip install -e .``)::

    python -m repro table1
    python -m repro figure 8 --segments 240 --draws 40
    python -m repro partition --case E1 --node 90nm --wireless model2
    python -m repro headline --segments 240 --draws 40
    python -m repro resilience --case C1 --events 2000
    python -m repro integrity --case C1 --events 2000
    python -m repro chaos --events 600 --bundle-dir bundles/
    python -m repro chaos --replay bundles/chaos-<id>.json
    python -m repro chaos --checkpoint chaos.ckpt.json --resume
    python -m repro supervision --events 800 --json BENCH_supervision.json
    python -m repro perf --fast --baseline benchmarks/results/BENCH_perf.json

The figure/headline commands accept ``--segments`` / ``--draws`` to trade
harness scale for runtime (the full-scale defaults match the benchmark
suite and train for a couple of minutes).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.pipeline import TrainingConfig
from repro.errors import ConfigurationError, XProError
from repro.eval.context import DEFAULT_EVAL_SEGMENTS, ExperimentContext
from repro.eval import experiments
from repro.eval.tables import format_table

#: figure number -> (harness function, title)
_FIGURES = {
    4: (experiments.fig4_rows, "Figure 4: ALU-mode energy per event (pJ)"),
    8: (experiments.fig8_rows, "Figure 8: battery life vs process node"),
    9: (experiments.fig9_rows, "Figure 9: battery life vs wireless model"),
    10: (experiments.fig10_rows, "Figure 10: delay breakdown (ms)"),
    11: (experiments.fig11_rows, "Figure 11: sensor energy breakdown (uJ)"),
    12: (experiments.fig12_rows, "Figure 12: lifetime of four cuts (hours)"),
    13: (experiments.fig13_rows, "Figure 13: aggregator overhead (uJ)"),
}


class _Parser(argparse.ArgumentParser):
    """Argument parser with one-line error reporting.

    Unknown subcommands, unknown arguments and malformed option values
    exit with code 2 and a single ``error: ...`` line on stderr — never a
    usage dump spanning half a screen, and never a traceback.
    """

    def error(self, message: str) -> None:  # type: ignore[override]
        """Report one parse error on stderr and exit with code 2."""
        print(f"error: {message}", file=sys.stderr)
        raise SystemExit(2)


def _build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro",
        description="XPro (ISCA'17) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (dataset attributes)")

    fig = sub.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("number", type=int, choices=sorted(_FIGURES))
    _add_scale_args(fig)

    head = sub.add_parser("headline", help="print the Section 5 headline numbers")
    _add_scale_args(head)

    part = sub.add_parser("partition", help="generate one XPro partition")
    part.add_argument("--case", default="C1", help="Table 1 case symbol")
    part.add_argument("--node", default="90nm", choices=["130nm", "90nm", "45nm"])
    part.add_argument(
        "--wireless", default="model2", choices=["model1", "model2", "model3"]
    )
    part.add_argument(
        "--render", action="store_true", help="render the cell topology with the cut"
    )
    part.add_argument(
        "--save", metavar="FILE", default=None,
        help="write the partition (+ metrics) to a JSON file",
    )
    _add_scale_args(part)

    rep = sub.add_parser(
        "report", help="write the full evaluation report (markdown)"
    )
    rep.add_argument(
        "--output", metavar="FILE", default="xpro_report.md",
        help="target markdown file (default: %(default)s)",
    )
    _add_scale_args(rep)

    val = sub.add_parser(
        "validate",
        help="check the paper's qualitative claims hold at this configuration",
    )
    _add_scale_args(val)

    res = sub.add_parser(
        "resilience",
        help="run the seeded fault campaign and print the resilience report",
    )
    res.add_argument("--case", default="C1", help="Table 1 case symbol")
    res.add_argument("--node", default="90nm", choices=["130nm", "90nm", "45nm"])
    res.add_argument(
        "--wireless", default="model2", choices=["model1", "model2", "model3"]
    )
    res.add_argument(
        "--events", type=int, default=2000,
        help="events to stream through the campaign (default: %(default)s)",
    )
    res.add_argument(
        "--seed", type=int, default=11,
        help="campaign seed (default: %(default)s)",
    )
    res.add_argument(
        "--scalar-wire", action="store_true",
        help=(
            "force the scalar event-by-event campaign runner instead of "
            "the vectorized fast path (bit-identical, only slower)"
        ),
    )
    _add_scale_args(res)

    integ = sub.add_parser(
        "integrity",
        help="compare wire formats (no-CRC / CRC-16 / CRC+seq) under bit flips",
    )
    integ.add_argument("--case", default="C1", help="Table 1 case symbol")
    integ.add_argument("--node", default="90nm", choices=["130nm", "90nm", "45nm"])
    integ.add_argument(
        "--wireless", default="model2", choices=["model1", "model2", "model3"]
    )
    integ.add_argument(
        "--events", type=int, default=2000,
        help="events to stream through the campaign (default: %(default)s)",
    )
    integ.add_argument(
        "--seed", type=int, default=11,
        help="campaign seed (default: %(default)s)",
    )
    integ.add_argument(
        "--corruption-rate", type=float, default=0.05,
        help="per-frame bit-flip probability (default: %(default)s)",
    )
    integ.add_argument(
        "--scalar-wire", action="store_true",
        help=(
            "force the scalar event-by-event campaign runner instead of "
            "the vectorized fast path (bit-identical, only slower)"
        ),
    )
    _add_scale_args(integ)

    perf = sub.add_parser(
        "perf",
        help="benchmark scalar vs vectorized hot paths, optionally gate vs a baseline",
    )
    perf.add_argument(
        "--repeats", type=int, default=3,
        help="best-of repeats per timed path (default: %(default)s)",
    )
    perf.add_argument(
        "--fast", action="store_true",
        help="CI smoke scale: single repeat, smaller fleet and stream pool",
    )
    perf.add_argument(
        "--no-fleet", action="store_true",
        help="skip the (slower) parallel-fleet comparison",
    )
    perf.add_argument(
        "--no-streaming", action="store_true",
        help="skip the (scalar-twin-bound) multi-stream ingestion comparison",
    )
    perf.add_argument(
        "--no-training", action="store_true",
        help="skip the (reference-SMO-bound, slowest) subspace training comparison",
    )
    perf.add_argument(
        "--stage", action="append", metavar="NAME", default=None,
        help=(
            "run only this stage (repeatable; e.g. --stage generator); "
            "default runs all stages"
        ),
    )
    perf.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the machine-readable report (BENCH_perf.json schema)",
    )
    perf.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="run the regression gate against this committed baseline",
    )
    perf.add_argument(
        "--threshold", type=float, default=None,
        help="allowed fractional regression for the gate (default: 0.25)",
    )

    chaos = sub.add_parser(
        "chaos",
        help=(
            "adversarial search over fault-mix space (strategist/judge) "
            "or bit-exact replay of a chaos bundle"
        ),
    )
    chaos.add_argument("--case", default="C1", help="Table 1 case symbol")
    chaos.add_argument("--node", default="90nm", choices=["130nm", "90nm", "45nm"])
    chaos.add_argument(
        "--wireless", default="model2", choices=["model1", "model2", "model3"]
    )
    chaos.add_argument(
        "--events", type=int, default=600,
        help="events per campaign run (default: %(default)s)",
    )
    chaos.add_argument(
        "--seed", type=int, default=11,
        help="strategist + fixed-mix seed (default: %(default)s)",
    )
    chaos.add_argument(
        "--population", type=int, default=8,
        help="scenarios per generation (default: %(default)s)",
    )
    chaos.add_argument(
        "--generations", type=int, default=4,
        help="search generations (default: %(default)s)",
    )
    chaos.add_argument(
        "--smoke", action="store_true",
        help=(
            "PR-CI scale: tiny training context, 160 events, 4x2 search "
            "(overrides --events/--population/--generations/--segments/--draws)"
        ),
    )
    chaos.add_argument(
        "--bundle-dir", metavar="DIR", default=None,
        help="write a replay bundle per Pareto-worst scenario into DIR",
    )
    chaos.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the machine-readable chaos summary (BENCH_chaos schema)",
    )
    chaos.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="gate the summary against this committed worst-case baseline",
    )
    chaos.add_argument(
        "--threshold", type=float, default=None,
        help="allowed fractional worsening per axis for the gate (default: 0.15)",
    )
    chaos.add_argument(
        "--scalar-wire", action="store_true",
        help=(
            "force the scalar event-by-event campaign runner instead of "
            "the vectorized fast path (bit-identical, only slower)"
        ),
    )
    chaos.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help=(
            "snapshot the search into FILE periodically, making long "
            "runs resumable after a crash (see --resume)"
        ),
    )
    chaos.add_argument(
        "--checkpoint-every", type=int, default=8, metavar="K",
        help="evaluations between checkpoint snapshots (default: %(default)s)",
    )
    chaos.add_argument(
        "--resume", action="store_true",
        help=(
            "continue an interrupted search from --checkpoint's last "
            "snapshot (bit-identical to an uninterrupted run)"
        ),
    )
    chaos.add_argument(
        "--replay", metavar="BUNDLE", default=None,
        help=(
            "replay this bundle instead of searching; asserts the report "
            "digest matches bit-for-bit (needs no trained context)"
        ),
    )
    chaos.add_argument(
        "--runner", choices=["fast", "scalar", "both"], default="both",
        help="campaign runner(s) used by --replay (default: %(default)s)",
    )
    _add_scale_args(chaos)

    sup = sub.add_parser(
        "supervision",
        help=(
            "fleet supervision stage: circuit breaker vs flapping link, "
            "device quarantine/recovery, checkpoint-resume self-check"
        ),
    )
    sup.add_argument("--case", default="C1", help="Table 1 case symbol")
    sup.add_argument("--node", default="90nm", choices=["130nm", "90nm", "45nm"])
    sup.add_argument(
        "--wireless", default="model2", choices=["model1", "model2", "model3"]
    )
    sup.add_argument(
        "--events", type=int, default=800,
        help="events per flapping-link campaign (default: %(default)s)",
    )
    sup.add_argument(
        "--seed", type=int, default=11,
        help="campaign + fleet master seed (default: %(default)s)",
    )
    sup.add_argument(
        "--devices", type=int, default=4,
        help="fleet size of the quarantine demo (default: %(default)s)",
    )
    sup.add_argument(
        "--rounds", type=int, default=6,
        help="supervision rounds of the fleet demo (default: %(default)s)",
    )
    sup.add_argument(
        "--round-events", type=int, default=150,
        help="events per device per fleet round (default: %(default)s)",
    )
    sup.add_argument(
        "--smoke", action="store_true",
        help=(
            "PR-CI scale: tiny training context, 240 events, 3-device "
            "fleet (overrides --events/--devices/--round-events/"
            "--segments/--draws)"
        ),
    )
    sup.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the machine-readable summary (BENCH_supervision schema)",
    )
    sup.add_argument(
        "--scalar-wire", action="store_true",
        help=(
            "force the scalar event-by-event campaign runner instead of "
            "the vectorized fast path (bit-identical, only slower)"
        ),
    )
    _add_scale_args(sup)

    insp = sub.add_parser(
        "inspect",
        help="synthesis-style inspection of one case: lint, area, SRAM, gating",
    )
    insp.add_argument("--case", default="C1", help="Table 1 case symbol")
    insp.add_argument("--node", default="90nm", choices=["130nm", "90nm", "45nm"])
    _add_scale_args(insp)

    return parser


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--segments",
        type=int,
        default=DEFAULT_EVAL_SEGMENTS,
        help="per-case dataset subsample (default: %(default)s)",
    )
    parser.add_argument(
        "--draws",
        type=int,
        default=100,
        help="random-subspace draws (default: %(default)s, the paper protocol)",
    )


def _context(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        n_segments=args.segments,
        training=TrainingConfig(n_draws=args.draws),
    )


def _cmd_table1(_args: argparse.Namespace) -> str:
    return format_table(experiments.table1_rows(), title="Table 1: dataset attributes")


def _cmd_figure(args: argparse.Namespace) -> str:
    func, title = _FIGURES[args.number]
    rows = func(_context(args))
    return format_table(rows, title=title, float_format="{:.4g}")


def _cmd_headline(args: argparse.Namespace) -> str:
    summary = experiments.headline_summary(_context(args))
    rows = [{"metric": key, "value": value} for key, value in summary.items()]
    return format_table(rows, title="Section 5 headline numbers")


def _cmd_partition(args: argparse.Namespace) -> str:
    ctx = _context(args)
    symbol = args.case.upper()
    generator = ctx.generator(symbol, args.node, args.wireless)
    result = generator.generate()
    topology = ctx.topology(symbol, args.node)
    lines = [
        f"XPro partition for {symbol} at {args.node} / {args.wireless}",
        f"  cells total      : {len(topology)}",
        f"  in-sensor        : {len(result.partition.in_sensor)}",
        f"  sensor energy    : {result.metrics.sensor_total_j * 1e6:.3f} uJ/event",
        f"  end-to-end delay : {result.metrics.delay_total_s * 1e3:.3f} ms",
        f"  delay limit (Eq.4): {result.delay_limit_s * 1e3:.3f} ms",
        "  in-sensor cells  :",
    ]
    lines.extend(f"    {name}" for name in sorted(result.partition.in_sensor))
    if args.render:
        from repro.cells.render import render_topology

        lines.append("")
        lines.append(render_topology(topology, in_sensor=result.partition.in_sensor))
    if args.save:
        from repro.core.serialize import save_partition

        save_partition(args.save, result.partition, result.metrics)
        lines.append(f"\npartition written to {args.save}")
    return "\n".join(lines)


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.eval.report import write_report

    target = write_report(_context(args), args.output)
    return f"evaluation report written to {target}"


def _cmd_validate(args: argparse.Namespace) -> str:
    from repro.eval.validation_suite import summarize, validate_reproduction

    results = validate_reproduction(_context(args))
    return summarize(results)


def _cmd_resilience(args: argparse.Namespace) -> str:
    from repro.eval.resilience import arq_model_rows, resilience_rows

    ctx = _context(args)
    symbol = args.case.upper()
    scenario_table = format_table(
        resilience_rows(
            ctx, symbol, args.node, args.wireless,
            n_events=args.events, seed=args.seed,
            fast=False if args.scalar_wire else None,
        ),
        title=(
            f"Resilience under the seeded fault campaign ({symbol} at "
            f"{args.node} / {args.wireless}, {args.events} events, "
            f"seed {args.seed})"
        ),
        float_format="{:.4g}",
    )
    model_table = format_table(
        arq_model_rows(),
        title="Closed-form ARQ model: legacy 1/(1-p) vs truncated geometric",
        float_format="{:.4g}",
    )
    return scenario_table + "\n\n" + model_table


def _cmd_integrity(args: argparse.Namespace) -> str:
    from repro.eval.resilience import integrity_rows

    ctx = _context(args)
    symbol = args.case.upper()
    return format_table(
        integrity_rows(
            ctx, symbol, args.node, args.wireless,
            n_events=args.events, seed=args.seed,
            corruption_rate=args.corruption_rate,
            fast=False if args.scalar_wire else None,
        ),
        title=(
            f"Wire integrity under bit-flip injection ({symbol} at "
            f"{args.node} / {args.wireless}, {args.events} events, "
            f"corruption rate {args.corruption_rate:g}, seed {args.seed})"
        ),
        float_format="{:.4g}",
    )


def _cmd_chaos(args: argparse.Namespace) -> str:
    from repro.sim.chaos import assert_replay, load_bundle

    if args.replay:
        bundle = load_bundle(args.replay)
        runners = {"fast": (True,), "scalar": (False,), "both": (True, False)}
        lines = []
        for fast in runners[args.runner]:
            result = assert_replay(bundle, fast=fast)
            lines.append(
                f"bundle {result.bundle_id}: {result.runner} runner replayed "
                f"bit-identically (report digest {result.digest[:16]}…)"
            )
        return "\n".join(lines)

    from repro.core.pipeline import TrainingConfig
    from repro.eval.chaos import (
        DEFAULT_CHAOS_THRESHOLD,
        chaos_from_context,
        chaos_rows,
        check_chaos_regression,
        load_chaos_summary,
        write_chaos_summary,
    )

    if args.smoke:
        ctx = ExperimentContext(
            n_segments=40, training=TrainingConfig(n_draws=8)
        )
        events, population, generations = 160, 4, 2
    else:
        ctx = _context(args)
        events, population, generations = (
            args.events, args.population, args.generations
        )
    summary = chaos_from_context(
        ctx,
        symbol=args.case.upper(),
        node=args.node,
        wireless=args.wireless,
        n_events=events,
        seed=args.seed,
        population=population,
        generations=generations,
        bundle_dir=args.bundle_dir,
        fast=False if args.scalar_wire else None,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    lines = [
        format_table(
            chaos_rows(summary),
            title=(
                f"Adversarial chaos search ({args.case.upper()} at "
                f"{args.node} / {args.wireless}, {events} events, "
                f"{population}x{generations} search, seed {args.seed})"
            ),
            float_format="{:.4g}",
        ),
        "",
        f"strictly worse than every fixed mix: "
        f"{summary['strictly_worse_than_fixed']}",
    ]
    replay = summary.get("replay")
    if replay is not None:
        lines.append(
            f"worst bundle {replay['bundle_id']} replayed bit-identically on "
            f"fast and scalar runners: {replay['bit_identical']}"
        )
    if args.bundle_dir:
        lines.append(
            f"{len(summary['bundle_paths'])} replay bundle(s) written to "
            f"{args.bundle_dir}"
        )
    if args.json:
        target = write_chaos_summary(summary, args.json)
        lines.append(f"chaos summary written to {target}")
    if args.baseline:
        baseline = load_chaos_summary(args.baseline)
        threshold = (
            args.threshold if args.threshold is not None
            else DEFAULT_CHAOS_THRESHOLD
        )
        check_chaos_regression(summary, baseline, threshold)
        lines.append(f"chaos regression gate OK vs {args.baseline}")
    return "\n".join(lines)


def _cmd_supervision(args: argparse.Namespace) -> str:
    from repro.core.pipeline import TrainingConfig
    from repro.eval.supervision import (
        check_supervision_gate,
        fleet_rows,
        supervision_eval,
        supervision_rows,
        write_supervision_summary,
    )

    if args.smoke:
        ctx = ExperimentContext(
            n_segments=40, training=TrainingConfig(n_draws=8)
        )
        events, devices, round_events = 240, 3, 80
    else:
        ctx = _context(args)
        events, devices, round_events = (
            args.events, args.devices, args.round_events
        )
    summary = supervision_eval(
        ctx,
        symbol=args.case.upper(),
        node=args.node,
        wireless=args.wireless,
        n_events=events,
        seed=args.seed,
        devices=devices,
        rounds=args.rounds,
        round_events=round_events,
        fast=False if args.scalar_wire else None,
    )
    fleet = summary["fleet"]
    resume = summary["resume"]
    lines = [
        format_table(
            supervision_rows(summary),
            title=(
                f"Circuit breaker under the flapping-link mix "
                f"({args.case.upper()} at {args.node} / {args.wireless}, "
                f"{events} events, seed {args.seed})"
            ),
            float_format="{:.4g}",
        ),
        "",
        format_table(
            fleet_rows(summary),
            title=(
                f"Fleet supervision ({devices} devices, "
                f"{args.rounds} rounds of {round_events} events)"
            ),
        ),
        "",
        f"wasted retry radio energy saved by the breaker: "
        f"{summary['wasted_radio_saved_uj']:.4g} uJ",
        f"sick device {fleet['sick_device']} quarantined "
        f"{fleet['sick_quarantines']}x, final state {fleet['sick_final_state']}",
        f"interrupt + resume bit-identical on both runners: "
        f"{resume['bit_identical'] if resume else 'not checked'}",
    ]
    if args.json:
        target = write_supervision_summary(summary, args.json)
        lines.append(f"supervision summary written to {target}")
    check_supervision_gate(summary)
    lines.append("supervision gate OK")
    return "\n".join(lines)


def _cmd_perf(args: argparse.Namespace) -> str:
    from repro.eval.perf import (
        DEFAULT_THRESHOLD,
        check_regression,
        collect_perf_report,
        load_perf_report,
        perf_rows,
        write_perf_report,
    )

    if args.no_fleet and args.stage and "fleet" in args.stage:
        raise ConfigurationError(
            "--no-fleet conflicts with --stage fleet: the fleet stage is "
            "both requested and excluded"
        )
    if args.no_streaming and args.stage and "streaming" in args.stage:
        raise ConfigurationError(
            "--no-streaming conflicts with --stage streaming: the streaming "
            "stage is both requested and excluded"
        )
    if args.no_training and args.stage and "training" in args.stage:
        raise ConfigurationError(
            "--no-training conflicts with --stage training: the training "
            "stage is both requested and excluded"
        )
    report = collect_perf_report(
        fast=args.fast,
        repeats=args.repeats,
        include_fleet=not args.no_fleet,
        include_streaming=not args.no_streaming,
        include_training=not args.no_training,
        stages=args.stage,
    )
    lines = [
        format_table(
            perf_rows(report),
            title="Scalar vs vectorized hot paths",
            float_format="{:.4g}",
        )
    ]
    if args.json:
        target = write_perf_report(report, args.json)
        lines.append(f"perf report written to {target}")
    if args.baseline:
        baseline = load_perf_report(args.baseline)
        threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        check_regression(report, baseline, threshold)
        lines.append(f"regression gate OK vs {args.baseline}")
    return "\n".join(lines)


def _cmd_inspect(args: argparse.Namespace) -> str:
    from repro.cells.validate import lint_topology
    from repro.hw.area import area_report
    from repro.hw.memory import memory_report
    from repro.hw.power_gating import gating_overhead_report

    ctx = _context(args)
    symbol = args.case.upper()
    topology = ctx.topology(symbol, args.node)
    lib = ctx.energy_library(args.node)
    area = area_report(topology, args.node)
    sram = memory_report(topology)
    gating = gating_overhead_report(topology, lib)
    findings = lint_topology(topology)
    lines = [
        f"Synthesis-style inspection: case {symbol} at {args.node}",
        f"  functional cells : {len(topology)}",
        f"  silicon area     : {area.area_mm2:.3f} mm^2 "
        f"({area.gate_equivalents} gate equivalents)",
        f"  sensor SRAM      : {sram.total_kib:.1f} KiB "
        f"(acquisition {sram.acquisition_bytes} B + "
        f"buffers {sram.cell_buffer_bytes} B)",
        f"  gating overhead  : {gating['energy_overhead_pct']:.2f}% of "
        "computation energy",
        f"  lint findings    : {len(findings)}",
    ]
    lines.extend(f"    {f.kind}: {f.subject} — {f.detail}" for f in findings)
    return "\n".join(lines)


_COMMANDS = {
    "chaos": _cmd_chaos,
    "table1": _cmd_table1,
    "figure": _cmd_figure,
    "headline": _cmd_headline,
    "partition": _cmd_partition,
    "perf": _cmd_perf,
    "report": _cmd_report,
    "inspect": _cmd_inspect,
    "integrity": _cmd_integrity,
    "resilience": _cmd_resilience,
    "supervision": _cmd_supervision,
    "validate": _cmd_validate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code (0 ok, 2 on library errors)."""
    args = _build_parser().parse_args(argv)
    try:
        print(_COMMANDS[args.command](args))
    except XProError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
