"""Composable fault models and seeded fault-injection campaigns.

The discrete-event simulator (:mod:`repro.sim.simulator`) streams events
through an ideal system; this module stresses the same system with the
failure modes a deployed wearable actually sees:

- :class:`LinkOutage` — a hard no-delivery window (the wearer walks behind
  an RF obstacle, the aggregator reboots);
- :class:`BurstLoss` — clustered payload loss from a Gilbert-Elliott chain
  (:mod:`repro.sim.channel`), advanced once per *transmission attempt* so
  retries inside a burst keep failing;
- :class:`PayloadCorruption` — corruption of delivered bits, in two modes:
  abstract *erasure* (a coin flip indistinguishable from loss to the ARQ
  layer, the PR 1 behaviour) and byte-level *bitflip* (real bits of real
  encoded frames are mutated, so a CRC has to earn its detections);
- :class:`SensorBrownout` — battery-sag windows in which the sensor cannot
  acquire or compute at all;
- :class:`AggregatorStall` — back-end service-time inflation (GC pause,
  thermal throttling, a co-scheduled workload).

A :class:`FaultCampaign` composes any number of these under one seed and
replays them bit-for-bit: :meth:`FaultCampaign.run` re-arms every fault
model, the degradation policy and the last-known-good cache before each
run, so two runs of the same campaign produce identical
:class:`ResilienceReport` objects.

Campaigns built purely from the fault models above also have a *fast
path* (``run(..., fast=...)``): loss outcomes and retry decisions are
pre-sampled in blocks (one :meth:`~repro.sim.channel.GilbertElliottChannel.
outcome_block` / ``Generator.random`` block per stochastic fault, served
through a cursor in exactly the scalar consumption order), jitter factors
and payload words are drawn as matrices, and byte-level payloads run
through the batch frame codec of :mod:`repro.hw.framing`.  The report is
bit-identical to the scalar path under the same seed; only the
post-run internal RNG positions of the fault models differ (harmless,
because every ``run()`` starts with :meth:`FaultCampaign.reset`).

The runner injects the faults into a :class:`~repro.sim.simulator.
CrossEndSimulator` configuration (its partition metrics, event period and
jitter model), simulates the bounded-retry ARQ of :mod:`repro.hw.arq`
per transmission attempt, and applies the graceful-degradation policies of
:mod:`repro.core.degrade` when payloads drop.  Pass it metrics evaluated
at ``loss_rate = 0``: retries are simulated here try-by-try, so feeding
expectation-inflated figures would double-count them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.degrade import GracefulDegradationPolicy, LastKnownGoodCache
from repro.dsp.fixedpoint import Q16_16, quantize_array
from repro.errors import ConfigurationError, IntegrityError, SimulationError
from repro.hw.arq import DEFAULT_MAX_SIMULATED_TRIES, ARQConfig, UNBOUNDED_ARQ
from repro.hw.framing import (
    SEQ_MODULUS,
    FramingConfig,
    decode_frame,
    encode_frames,
    encode_values,
    fragment_payload,
    pack_byte_rows,
)
from repro.sim.channel import GilbertElliottChannel, GilbertElliottParams
from repro.sim.evaluate import PartitionMetrics
from repro.sim.simulator import CrossEndSimulator

#: Per-event decision outcomes a campaign can record.
DELIVERED = "delivered"
DEGRADED = "degraded"
DROPPED = "dropped"


class FaultModel:
    """Base class of one composable fault source.

    Subclasses override the hooks they need; the defaults are no-ops, so a
    fault model only has to express the dimension it perturbs.
    """

    def reset(self, rng: np.random.Generator) -> None:
        """Re-arm internal state for a fresh, reproducible campaign run."""

    def try_lost(self, event_index: int, attempt: int) -> bool:
        """Whether transmission ``attempt`` (1-based) of event ``event_index`` is lost."""
        return False

    def sensor_brownout(self, event_index: int) -> bool:
        """Whether the sensor is browned out for this event."""
        return False

    def stall_s(self, event_index: int) -> float:
        """Extra aggregator service time (s) injected into this event."""
        return 0.0

    def corrupt_frame(
        self, event_index: int, attempt: int, frame_index: int, data: bytes
    ) -> bytes:
        """Mutate the on-air bytes of one frame (identity by default)."""
        return data


def _check_window(start_event: int, n_events: int) -> None:
    if start_event < 0:
        raise ConfigurationError("start_event must be >= 0")
    if n_events < 1:
        raise ConfigurationError("n_events must be >= 1")


@dataclass
class LinkOutage(FaultModel):
    """Hard link outage: every transmission in the window is lost.

    Attributes:
        start_event: First affected event index.
        n_events: Number of consecutive affected events.
    """

    start_event: int
    n_events: int

    def __post_init__(self) -> None:
        _check_window(self.start_event, self.n_events)

    def try_lost(self, event_index: int, attempt: int) -> bool:
        """Lose every attempt of every event inside the outage window."""
        return self.start_event <= event_index < self.start_event + self.n_events


@dataclass
class BurstLoss(FaultModel):
    """Bursty loss episodes from a Gilbert-Elliott chain, per attempt.

    The chain advances once per transmission attempt (not per event), so a
    retry fired into an ongoing bad-state episode is likely to fail again —
    the behaviour that makes bounded retries matter.

    Attributes:
        params: Gilbert-Elliott chain parameters.
    """

    params: GilbertElliottParams = field(default_factory=GilbertElliottParams)
    _channel: Optional[GilbertElliottChannel] = field(
        default=None, repr=False, compare=False
    )

    def reset(self, rng: np.random.Generator) -> None:
        """Rebuild the chain from the campaign seed stream."""
        self._channel = GilbertElliottChannel(
            self.params, seed=int(rng.integers(2**31))
        )

    def try_lost(self, event_index: int, attempt: int) -> bool:
        """Advance the chain one attempt; True when that attempt is lost."""
        if self._channel is None:
            raise ConfigurationError(
                "BurstLoss used outside a campaign: call reset() first"
            )
        return self._channel.next_outcome()


@dataclass
class PayloadCorruption(FaultModel):
    """Corruption of delivered bits, abstract or byte-level.

    Two modes:

    - ``"erasure"`` (default, the PR 1 behaviour): an abstract coin flip —
      the payload arrives but is declared unusable, indistinguishable from
      loss to the ARQ layer.  The CRC is *assumed* perfect.
    - ``"bitflip"``: no abstract loss; instead :meth:`corrupt_frame`
      mutates 1..``max_bit_flips`` random bits of the real encoded frame
      bytes with probability ``rate`` per frame.  Detection is then up to
      the receiver's actual integrity checks (:mod:`repro.hw.framing`) —
      without a CRC the corruption is silent by construction.

    A fully-corrupting channel (``rate = 1.0``) is legal in both modes: in
    erasure mode every attempt fails, so an *unbounded* ARQ policy raises
    :class:`~repro.errors.SimulationError` once it hits its simulated-try
    cap, while a bounded policy saturates at ``max_retries + 1`` tries and
    drops the payload — exactly the ``loss_rate = 1.0`` semantics of
    :class:`~repro.hw.arq.ARQConfig` (see
    ``ARQConfig.expected_transmissions``), never an infinite loop.

    Attributes:
        rate: Per-attempt (erasure) or per-frame (bitflip) corruption
            probability in [0, 1].
        mode: ``"erasure"`` or ``"bitflip"``.
        max_bit_flips: Upper bound on flipped bits per corrupted frame
            (bitflip mode); the actual count is uniform in
            ``[1, max_bit_flips]``.
    """

    rate: float = 0.01
    mode: str = "erasure"
    max_bit_flips: int = 4
    _rng: Optional[np.random.Generator] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError("rate must be in [0, 1]")
        if self.mode not in ("erasure", "bitflip"):
            raise ConfigurationError(
                f"mode must be 'erasure' or 'bitflip', got {self.mode!r}"
            )
        if self.max_bit_flips < 1:
            raise ConfigurationError("max_bit_flips must be >= 1")

    def reset(self, rng: np.random.Generator) -> None:
        """Derive a private RNG from the campaign seed stream."""
        self._rng = np.random.default_rng(int(rng.integers(2**31)))

    def _require_rng(self) -> np.random.Generator:
        if self._rng is None:
            raise ConfigurationError(
                "PayloadCorruption used outside a campaign: call reset() first"
            )
        return self._rng

    def try_lost(self, event_index: int, attempt: int) -> bool:
        """Erasure mode: corrupt this attempt with probability ``rate``."""
        if self.mode != "erasure":
            return False
        return bool(self._require_rng().random() < self.rate)

    def corrupt_frame(
        self, event_index: int, attempt: int, frame_index: int, data: bytes
    ) -> bytes:
        """Bitflip mode: flip random bits of the frame with prob ``rate``."""
        if self.mode != "bitflip" or not data:
            return data
        rng = self._require_rng()
        if rng.random() >= self.rate:
            return data
        n_flips = int(rng.integers(1, self.max_bit_flips + 1))
        n_flips = min(n_flips, len(data) * 8)
        positions = rng.choice(len(data) * 8, size=n_flips, replace=False)
        mutated = bytearray(data)
        for pos in positions:
            mutated[int(pos) // 8] ^= 1 << (int(pos) % 8)
        return bytes(mutated)

    def corrupt_frames(
        self,
        event_index: int,
        attempt: int,
        frames: Union[np.ndarray, Sequence[bytes]],
        lengths: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch twin of :meth:`corrupt_frame` over many frames at once.

        The private RNG is consumed in exactly the scalar per-frame order
        (one trigger uniform per non-empty frame, then the flip-count and
        position draws of triggered frames), so row ``i`` of the result is
        byte-identical to ``corrupt_frame(event_index, attempt, i,
        frames[i])``; the flips themselves are applied in one vectorized
        ``bitwise_xor`` scatter instead of a per-bit Python loop.

        Args:
            frames: Padded ``(n, max_len)`` uint8 matrix (with per-frame
                ``lengths``; rows assumed full-width when omitted) or a
                sequence of byte strings.

        Returns:
            ``(matrix, lengths, corrupted)``: the mutated copy of the
            padded frame matrix, per-frame lengths, and the per-frame
            corruption mask (True where any bit was flipped).
        """
        if isinstance(frames, np.ndarray):
            if frames.ndim != 2:
                raise ConfigurationError(
                    f"frames must be a 2-D byte matrix, got shape {frames.shape}"
                )
            matrix = np.array(frames, dtype=np.uint8, copy=True)
            if lengths is None:
                lens = np.full(len(matrix), matrix.shape[1], dtype=np.int64)
            else:
                lens = np.asarray(lengths, dtype=np.int64)
        else:
            matrix, lens = pack_byte_rows(list(frames))
        corrupted = np.zeros(len(matrix), dtype=bool)
        if self.mode != "bitflip":
            return matrix, lens, corrupted
        rng = self._require_rng()
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        flips: List[np.ndarray] = []
        for i in range(len(matrix)):
            n_bits = int(lens[i]) * 8
            if n_bits == 0:
                continue
            if rng.random() >= self.rate:
                continue
            n_flips = min(int(rng.integers(1, self.max_bit_flips + 1)), n_bits)
            positions = rng.choice(n_bits, size=n_flips, replace=False)
            corrupted[i] = True
            rows.append(np.full(n_flips, i, dtype=np.int64))
            cols.append(positions // 8)
            flips.append((1 << (positions % 8)).astype(np.uint8))
        if rows:
            np.bitwise_xor.at(
                matrix,
                (np.concatenate(rows), np.concatenate(cols)),
                np.concatenate(flips),
            )
        return matrix, lens, corrupted


@dataclass
class SensorBrownout(FaultModel):
    """Battery-sag window in which the sensor cannot operate at all.

    Attributes:
        start_event: First affected event index.
        n_events: Number of consecutive affected events.
    """

    start_event: int
    n_events: int

    def __post_init__(self) -> None:
        _check_window(self.start_event, self.n_events)

    def sensor_brownout(self, event_index: int) -> bool:
        """True inside the brownout window."""
        return self.start_event <= event_index < self.start_event + self.n_events


@dataclass
class AggregatorStall(FaultModel):
    """Aggregator-side stall inflating back-end service time.

    Attributes:
        start_event: First affected event index.
        n_events: Number of consecutive affected events.
        extra_delay_s: Service-time inflation per affected event.
    """

    start_event: int
    n_events: int
    extra_delay_s: float = 5e-3

    def __post_init__(self) -> None:
        _check_window(self.start_event, self.n_events)
        if self.extra_delay_s < 0:
            raise ConfigurationError("extra_delay_s must be >= 0")

    def stall_s(self, event_index: int) -> float:
        """The stall inflation inside the window, 0 outside."""
        in_window = (
            self.start_event <= event_index < self.start_event + self.n_events
        )
        return self.extra_delay_s if in_window else 0.0


@dataclass(frozen=True)
class DecisionRecord:
    """Outcome of one event under a fault campaign.

    Attributes:
        index: Event index.
        status: ``"delivered"``, ``"degraded"`` (served from the
            last-known-good cache) or ``"dropped"`` (no decision at all).
        tries: Link transmissions spent on the event (0 during brownout).
        latency_s: Release-to-decision latency; NaN when dropped.
        fallback: Whether the degradation policy had the deployment on the
            in-sensor fallback cut for this event.
        staleness: Age (events) of the served decision; 0 when fresh.
        corrupted: Whether the delivered payload differed from the sent
            one (silent corruption reached the decision layer); only ever
            True in byte-level integrity runs.
    """

    index: int
    status: str
    tries: int
    latency_s: float
    fallback: bool
    staleness: int
    corrupted: bool = False


@dataclass(frozen=True)
class ResilienceReport:
    """Aggregate outcome of one fault-campaign run.

    Attributes:
        records: Per-event decision records.
        sensor_energy_j: Total sensor energy, retries included.
        aggregator_energy_j: Total aggregator energy, retries included.
        retry_energy_j: Radio energy spent on retransmissions alone (the
            overhead the resilience layer pays for availability).
        retransmissions: Total retransmissions across the run.
        fallback_events: Events served while on the fallback cut.
        deadline_misses: Served events whose latency exceeded the period.
        frames_sent: Frames put on the air (byte-level integrity runs only;
            retransmitted frames count every time).
        frames_corrupted: Arrived frames whose bytes were mutated in flight.
        corruptions_detected: Arrived frames the receiver's integrity
            checks rejected (CRC/structural failures).
        corrupted_deliveries: Events delivered with a payload that differed
            from the transmitted one — silent corruption that reached the
            decision layer.
        integrity_discards: Events whose payload a detect-only receiver
            (CRC without retransmission) discarded after delivery.
    """

    records: List[DecisionRecord]
    sensor_energy_j: float
    aggregator_energy_j: float
    retry_energy_j: float
    retransmissions: int
    fallback_events: int
    deadline_misses: int
    frames_sent: int = 0
    frames_corrupted: int = 0
    corruptions_detected: int = 0
    corrupted_deliveries: int = 0
    integrity_discards: int = 0

    @cached_property
    def _status_counts(self) -> Dict[str, int]:
        """Status histogram, computed once per report instance."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    @cached_property
    def _served_latency_array(self) -> np.ndarray:
        """Latencies of served (non-dropped) events as one float64 array.

        Cached so the latency statistics below scan ``self.records`` once
        per report instead of once per property access.  Safe on a frozen
        dataclass: ``records`` is set at construction and never mutated.
        """
        return np.asarray(
            [r.latency_s for r in self.records if r.status != DROPPED],
            dtype=np.float64,
        )

    def _count(self, status: str) -> int:
        return self._status_counts.get(status, 0)

    @property
    def n_events(self) -> int:
        """Events simulated."""
        return len(self.records)

    @property
    def n_delivered(self) -> int:
        """Events whose decision arrived end-to-end."""
        return self._count(DELIVERED)

    @property
    def n_degraded(self) -> int:
        """Events served from the last-known-good cache."""
        return self._count(DEGRADED)

    @property
    def n_dropped(self) -> int:
        """Events that produced no decision at all."""
        return self._count(DROPPED)

    @property
    def availability(self) -> float:
        """Fraction of events that produced *some* decision."""
        if not self.records:
            return 1.0
        return (self.n_delivered + self.n_degraded) / self.n_events

    @property
    def dropped_decision_rate(self) -> float:
        """Fraction of events with no decision (1 - availability)."""
        return 1.0 - self.availability

    def _served_latencies(self) -> List[float]:
        return self._served_latency_array.tolist()

    @property
    def mean_latency_s(self) -> float:
        """Mean decision latency over served events.

        NaN when the campaign served nothing (every event dropped): an
        all-dropped run has no latency distribution, and NaN — rather
        than 0.0 or an exception — keeps the statistic honest, propagates
        through downstream arithmetic, and round-trips the canonical
        encoders (:func:`repro.sim.chaos._float_token`, checkpoint hex
        floats).  Check :attr:`availability` before aggregating.
        """
        served = self._served_latency_array
        return float(np.mean(served)) if served.size else math.nan

    @property
    def max_latency_s(self) -> float:
        """Worst decision latency over served events.

        NaN for an all-dropped campaign, with the same semantics as
        :attr:`mean_latency_s` (no served events means no distribution).
        """
        served = self._served_latency_array
        return float(served.max()) if served.size else math.nan

    @property
    def worst_tries(self) -> int:
        """Largest per-payload transmission count seen in the run."""
        return max((r.tries for r in self.records), default=0)

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile over served events.

        NaN for an all-dropped campaign (guarded before ``np.percentile``,
        which would raise on an empty array); see :attr:`mean_latency_s`
        for the NaN contract.
        """
        if not 0 <= percentile <= 100:
            raise ConfigurationError("percentile must be in [0, 100]")
        served = self._served_latency_array
        return float(np.percentile(served, percentile)) if served.size else math.nan

    # -- integrity (byte-level runs) ----------------------------------------------

    @property
    def corruptions_silent(self) -> int:
        """Mutated frames that slipped past the receiver's checks."""
        return self.frames_corrupted - self.corruptions_detected

    @property
    def corruption_detection_rate(self) -> float:
        """Fraction of mutated arrived frames the receiver rejected.

        NaN when the run saw no corrupted frames (nothing to detect).
        """
        if self.frames_corrupted == 0:
            return math.nan
        return self.corruptions_detected / self.frames_corrupted

    @property
    def corrupted_delivery_rate(self) -> float:
        """Fraction of events whose delivered decision was corrupted."""
        if not self.records:
            return 0.0
        return self.corrupted_deliveries / self.n_events


def reports_identical(a: ResilienceReport, b: ResilienceReport) -> bool:
    """Field-exact comparison of two reports, treating NaN == NaN.

    Dataclass equality calls NaN latencies (dropped events) unequal, so
    ``a == b`` is False for any run with a drop even when the replay is
    perfect.  This helper compares every record field and every counter
    with NaN allowed to match NaN — the right notion of "bit-identical
    replay" for scalar-vs-fast and serial-vs-parallel equivalence checks.
    """
    if len(a.records) != len(b.records):
        return False
    for x, y in zip(a.records, b.records):
        if (x.index, x.status, x.tries, x.fallback, x.staleness, x.corrupted) != (
            y.index, y.status, y.tries, y.fallback, y.staleness, y.corrupted
        ):
            return False
        if x.latency_s != y.latency_s and not (
            math.isnan(x.latency_s) and math.isnan(y.latency_s)
        ):
            return False
    counters = (
        "sensor_energy_j",
        "aggregator_energy_j",
        "retry_energy_j",
        "retransmissions",
        "fallback_events",
        "deadline_misses",
        "frames_sent",
        "frames_corrupted",
        "corruptions_detected",
        "corrupted_deliveries",
        "integrity_discards",
    )
    return all(getattr(a, name) == getattr(b, name) for name in counters)


@dataclass(frozen=True)
class IntegrityConfig:
    """Byte-level data-plane configuration of a campaign run.

    When passed to :meth:`FaultCampaign.run`, every non-browned-out event
    carries a *real* payload: ``values_per_payload`` Q16.16 words are
    serialised, fragmented into frames (:mod:`repro.hw.framing`) and
    pushed through every fault model's :meth:`~FaultModel.corrupt_frame`
    hook on every transmission attempt.  The receiver then has to detect
    the damage with the configured wire format:

    - ``framing.crc = False`` models the unprotected baseline — payload
      bit flips decode fine and reach the decision layer silently;
    - ``framing.crc = True, retransmit_on_corrupt = False`` is a
      detect-only receiver: corrupted payloads are discarded (converted
      from silent corruption into visible unavailability);
    - ``framing.crc = True, retransmit_on_corrupt = True`` additionally
      treats a detected corruption like a lost attempt, so the bounded
      ARQ budget is spent recovering the payload.

    Attributes:
        framing: Wire-format parameters shared by sender and receiver.
        retransmit_on_corrupt: Whether a CRC failure triggers an ARQ
            retransmission (sequence-aware NACK/timeout recovery) instead
            of discarding the payload.
        values_per_payload: Q16.16 words carried per event payload.
    """

    framing: FramingConfig = field(default_factory=FramingConfig)
    retransmit_on_corrupt: bool = True
    values_per_payload: int = 8

    def __post_init__(self) -> None:
        if self.values_per_payload < 1:
            raise ConfigurationError("values_per_payload must be >= 1")


class FaultCampaign:
    """A seeded, replayable composition of fault models.

    Args:
        faults: The fault models to inject (evaluated for every event and
            every transmission attempt; their effects compose by OR for
            loss/brownout and by sum for stalls).
        seed: Campaign seed; :meth:`run` re-arms every stochastic fault
            from it, so repeated runs are bit-for-bit identical.
    """

    def __init__(self, faults: Sequence[FaultModel], seed: int = 0) -> None:
        if not faults:
            raise ConfigurationError("a campaign needs at least one fault model")
        for fault in faults:
            if not isinstance(fault, FaultModel):
                raise ConfigurationError(
                    f"not a FaultModel: {fault!r}"
                )
        self.faults = list(faults)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self.reset()

    def reset(self) -> None:
        """Re-arm the campaign RNG and every fault model."""
        self._rng = np.random.default_rng(self.seed)
        for fault in self.faults:
            fault.reset(np.random.default_rng(int(self._rng.integers(2**31))))

    # -- composed per-event queries ---------------------------------------------

    def try_lost(self, event_index: int, attempt: int) -> bool:
        """Whether this transmission attempt is lost under any fault.

        Every fault model is consulted (no short-circuit) so stateful
        sources such as :class:`BurstLoss` advance exactly once per attempt.
        """
        outcomes = [f.try_lost(event_index, attempt) for f in self.faults]
        return any(outcomes)

    def sensor_brownout(self, event_index: int) -> bool:
        """Whether any fault browns out the sensor for this event."""
        outcomes = [f.sensor_brownout(event_index) for f in self.faults]
        return any(outcomes)

    def stall_s(self, event_index: int) -> float:
        """Total aggregator stall injected into this event."""
        return sum(f.stall_s(event_index) for f in self.faults)

    def corrupt_frame(
        self, event_index: int, attempt: int, frame_index: int, data: bytes
    ) -> bytes:
        """Pipe one frame's on-air bytes through every fault model."""
        for fault in self.faults:
            data = fault.corrupt_frame(event_index, attempt, frame_index, data)
        return data

    # -- the runner ---------------------------------------------------------------

    def supports_fast(self) -> bool:
        """Whether every fault model has an exact vectorized fast path.

        The fast path pre-samples each model's random stream in blocks,
        which is only provably bit-identical for the fault models this
        module ships.  Subclassed or third-party models fall back to the
        scalar runner.
        """
        return all(type(fault) in _FAST_PATH_TYPES for fault in self.faults)

    def run(
        self,
        simulator: CrossEndSimulator,
        n_events: int,
        arq: Optional[ARQConfig] = None,
        policy: Optional[GracefulDegradationPolicy] = None,
        fallback_metrics: Optional[PartitionMetrics] = None,
        cache: Optional[LastKnownGoodCache] = None,
        integrity: Optional[IntegrityConfig] = None,
        fast: Optional[bool] = None,
        breaker: Optional[object] = None,
        checkpoint: Optional[object] = None,
        resume: bool = False,
    ) -> ResilienceReport:
        """Stream ``n_events`` through the system with faults injected.

        Args:
            simulator: Supplies the partition metrics (evaluated at
                ``loss_rate = 0`` — retries are simulated here), the event
                period and the jitter model.
            n_events: Events to stream (must be positive).
            arq: Retransmission policy; None selects the legacy unbounded
                stop-and-wait, whose per-payload delay is unbounded — a
                hard outage window then raises
                :class:`~repro.errors.SimulationError` (the divergence
                bounded ARQ exists to fix).
            policy: Optional outage-fallback policy; requires
                ``fallback_metrics``.  While it declares a persistent
                outage, events run on the fallback (in-sensor) metrics.
            fallback_metrics: Clean-link metrics of the in-sensor extreme
                cut used during fallback.
            cache: Optional last-known-good cache; when given, dropped
                payloads are served from it (status ``"degraded"``)
                instead of being dropped outright.
            integrity: Optional byte-level data plane.  When given, every
                event's payload is really serialised, framed and exposed
                to the fault models' ``corrupt_frame`` hooks, and the
                report's integrity counters (frames sent/corrupted,
                detections, silent corrupted deliveries, discards) are
                populated.  Payload *content* is drawn deterministically
                from the campaign seed, so runs stay bit-for-bit
                reproducible.
            fast: Runner selection.  ``None`` (default) picks the
                vectorized fast path when :meth:`supports_fast` allows it;
                ``False`` forces the scalar reference runner; ``True``
                requires the fast path and raises
                :class:`~repro.errors.ConfigurationError` when a fault
                model lacks one.  Both runners produce bit-identical
                reports under the same seed.
            breaker: Optional link circuit breaker
                (:class:`~repro.sim.supervise.LinkCircuitBreaker`); gates
                every non-browned-out event before the ARQ layer.  Blocked
                events keep the radio off (zero attempts, zero retry
                energy) and are served from the cache or dropped; probe
                events run with the breaker's reduced retry budget.
                Requires a bounded ``arq``.
            checkpoint: Optional
                :class:`~repro.sim.supervise.CampaignCheckpointer`;
                snapshots the complete run state (fault RNGs, clocks,
                counters, records) every ``checkpoint.every`` events with
                crash-safe atomic writes.
            resume: Continue from ``checkpoint``'s last snapshot instead
                of starting at event 0.  The resumed run's report is
                bit-identical to an uninterrupted run on the same runner.

        Returns:
            The :class:`ResilienceReport`; bit-for-bit identical across
            repeated calls with the same arguments.
        """
        if n_events <= 0:
            raise ConfigurationError("n_events must be positive")
        if policy is not None and fallback_metrics is None:
            raise ConfigurationError(
                "a degradation policy requires fallback_metrics"
            )
        arq = UNBOUNDED_ARQ if arq is None else arq
        use_fast = self.supports_fast() if fast is None else bool(fast)
        if use_fast and not self.supports_fast():
            raise ConfigurationError(
                "fast=True needs fault models with an exact fast path "
                "(LinkOutage, BurstLoss, PayloadCorruption, SensorBrownout, "
                "AggregatorStall); pass fast=None or fast=False"
            )
        if breaker is not None and arq.max_retries is None:
            raise ConfigurationError(
                "a circuit breaker requires a bounded ARQConfig: its probe "
                "schedule counts whole events, which only terminate when "
                "the per-event retry budget is finite"
            )
        if resume and checkpoint is None:
            raise ConfigurationError("resume=True requires a checkpoint")
        resume_state = None
        if resume:
            resume_state = checkpoint.load(
                campaign=self,
                runner="fast" if use_fast else "scalar",
                simulator=simulator,
                n_events=n_events,
                arq=arq,
                policy=policy,
                fallback_metrics=fallback_metrics,
                cache=cache,
                integrity=integrity,
                breaker=breaker,
            )
        runner = self._run_fast if use_fast else self._run_scalar
        return runner(
            simulator, n_events, arq, policy, fallback_metrics, cache,
            integrity, breaker, checkpoint, resume_state
        )

    def _run_scalar(
        self,
        simulator: CrossEndSimulator,
        n_events: int,
        arq: ARQConfig,
        policy: Optional[GracefulDegradationPolicy],
        fallback_metrics: Optional[PartitionMetrics],
        cache: Optional[LastKnownGoodCache],
        integrity: Optional[IntegrityConfig],
        breaker: Optional[object] = None,
        checkpoint: Optional[object] = None,
        resume_state: Optional[object] = None,
    ) -> ResilienceReport:
        """Reference event-by-event runner (see :meth:`run`)."""
        if resume_state is None:
            # A resume skips the resets: checkpoint.load() already re-armed
            # the campaign and restored fault/policy/cache/breaker state.
            self.reset()
            if policy is not None:
                policy.reset()
            if cache is not None:
                cache.reset()
            if breaker is not None:
                breaker.reset()

        period = simulator.period_s
        jitter_rng = (
            np.random.default_rng(simulator.seed)
            if simulator.jitter_sigma > 0
            else None
        )

        front_free = link_free = back_free = 0.0
        records: List[DecisionRecord] = []
        sensor_j = aggregator_j = retry_j = 0.0
        retransmissions = 0
        fallback_events = 0
        misses = 0

        # Byte-level data-plane state (integrity runs only).  The payload
        # generator is seeded from the campaign seed, independently of the
        # fault models' RNG stream, so the same decisions cross the wire in
        # every replay.
        payload_rng = np.random.default_rng([self.seed, 0xF7A3])
        seq_base = 0
        wire = {
            "frames_sent": 0,
            "frames_corrupted": 0,
            "corruptions_detected": 0,
            "corrupted_deliveries": 0,
            "integrity_discards": 0,
        }

        start = 0
        if resume_state is not None:
            start = resume_state.cursor
            front_free, link_free, back_free = resume_state.clocks
            sensor_j, aggregator_j, retry_j = resume_state.energies
            retransmissions, fallback_events, misses = resume_state.counters
            records = list(resume_state.records)
            wire.update(resume_state.wire)
            payload_rng = _restore_rng(resume_state.extra["payload_rng"])
            if jitter_rng is not None:
                jitter_rng = _restore_rng(resume_state.extra["jitter_rng"])
            seq_base = int(resume_state.extra["seq_base"])

        probe_arq = None if breaker is None else breaker.probe_arq(arq)

        for k in range(start, n_events):
            release = k * period
            in_fallback = policy is not None and policy.in_fallback
            if in_fallback:
                fallback_events += 1
            active = (
                fallback_metrics
                if (in_fallback and fallback_metrics is not None)
                else simulator.metrics
            )

            if self.sensor_brownout(k):
                # The sensor is dark: nothing acquired, nothing computed,
                # nothing transmitted.  Only the cache can answer.
                served = cache.serve() if cache is not None else None
                if served is not None:
                    records.append(
                        DecisionRecord(k, DEGRADED, 0, 0.0, in_fallback,
                                       served.staleness)
                    )
                else:
                    records.append(
                        DecisionRecord(k, DROPPED, 0, math.nan, in_fallback, 0)
                    )
            else:
                t_front, t_link, t_back = _jittered(
                    active, simulator.jitter_sigma, jitter_rng
                )

                front_start = max(release, front_free)
                front_end = front_start + t_front
                front_free = front_end
                sensor_j += active.sensor_compute_j

                if integrity is None:
                    sent_payload = None
                    received = [None]
                    discarded = [False]
                    attempt_fn = lambda attempt: self.try_lost(k, attempt)  # noqa: E731
                else:
                    values = quantize_array(
                        payload_rng.uniform(
                            -1000.0, 1000.0, integrity.values_per_payload
                        )
                    )
                    sent_payload = encode_values(values)
                    frames = fragment_payload(
                        sent_payload, seq_base, integrity.framing
                    )
                    seq_base = (seq_base + len(frames)) % SEQ_MODULUS
                    received = [None]
                    discarded = [False]
                    attempt_fn = self._make_wire_attempt(
                        k, frames, integrity, wire, received, discarded
                    )

                decision = "allow" if breaker is None else breaker.decide(k)
                if decision == "block":
                    # Open breaker: the radio stays off.  The decision
                    # layer sees the same drop signal an exhausted ARQ
                    # would give, minus the retries' energy and latency.
                    if policy is not None:
                        policy.observe(False)
                    served = cache.serve() if cache is not None else None
                    if served is not None:
                        latency = front_end - release
                        records.append(
                            DecisionRecord(k, DEGRADED, 0, latency,
                                           in_fallback, served.staleness)
                        )
                    else:
                        latency = math.nan
                        records.append(
                            DecisionRecord(k, DROPPED, 0, math.nan,
                                           in_fallback, 0)
                        )
                else:
                    event_arq = probe_arq if decision == "probe" else arq
                    outcome = event_arq.simulate(attempt_fn, t_link)
                    if breaker is not None:
                        breaker.record(k, outcome.delivered)
                    link_start = max(front_end, link_free)
                    link_end = link_start + outcome.delay_s
                    link_free = link_end

                    per_try_radio = active.sensor_tx_j + active.sensor_rx_j
                    sensor_j += outcome.tries * per_try_radio
                    aggregator_j += outcome.tries * active.aggregator_radio_j
                    retransmissions += outcome.tries - 1
                    retry_j += (outcome.tries - 1) * (
                        per_try_radio + active.aggregator_radio_j
                    )

                    app_delivered = outcome.delivered
                    if app_delivered and discarded[0]:
                        # Detect-only CRC: the link delivered, the
                        # receiver's integrity check rejected the payload
                        # at the app layer.
                        wire["integrity_discards"] += 1
                        app_delivered = False

                    if app_delivered:
                        corrupted = (
                            integrity is not None and received[0] != sent_payload
                        )
                        if corrupted:
                            wire["corrupted_deliveries"] += 1
                        if policy is not None:
                            policy.observe(True)
                        if cache is not None:
                            cache.update(k)
                        back_start = max(link_end, back_free)
                        finish = back_start + t_back + self.stall_s(k)
                        back_free = finish
                        aggregator_j += active.aggregator_cpu_j
                        latency = finish - release
                        records.append(
                            DecisionRecord(k, DELIVERED, outcome.tries,
                                           latency, in_fallback, 0, corrupted)
                        )
                    else:
                        if policy is not None:
                            policy.observe(False)
                        served = cache.serve() if cache is not None else None
                        if served is not None:
                            latency = link_end - release
                            records.append(
                                DecisionRecord(k, DEGRADED, outcome.tries,
                                               latency, in_fallback,
                                               served.staleness)
                            )
                        else:
                            latency = math.nan
                            records.append(
                                DecisionRecord(k, DROPPED, outcome.tries,
                                               math.nan, in_fallback, 0)
                            )

                if not math.isnan(latency):
                    if latency > period:
                        misses += 1
                    if latency > 1000 * period:
                        raise SimulationError(
                            f"event backlog diverges under faults at event "
                            f"{k}: latency {latency:.4f}s >> period "
                            f"{period:.4f}s"
                        )

            if checkpoint is not None and checkpoint.due(k + 1):
                checkpoint.save(
                    campaign=self,
                    runner="scalar",
                    simulator=simulator,
                    n_events=n_events,
                    arq=arq,
                    policy=policy,
                    fallback_metrics=fallback_metrics,
                    cache=cache,
                    integrity=integrity,
                    breaker=breaker,
                    cursor=k + 1,
                    clocks=(front_free, link_free, back_free),
                    energies=(sensor_j, aggregator_j, retry_j),
                    counters=(retransmissions, fallback_events, misses),
                    records=records,
                    wire=wire,
                    extra={
                        "payload_rng": payload_rng.bit_generator.state,
                        "jitter_rng": (
                            None
                            if jitter_rng is None
                            else jitter_rng.bit_generator.state
                        ),
                        "seq_base": seq_base,
                    },
                )

        return ResilienceReport(
            records=records,
            sensor_energy_j=sensor_j,
            aggregator_energy_j=aggregator_j,
            retry_energy_j=retry_j,
            retransmissions=retransmissions,
            fallback_events=fallback_events,
            deadline_misses=misses,
            frames_sent=wire["frames_sent"],
            frames_corrupted=wire["frames_corrupted"],
            corruptions_detected=wire["corruptions_detected"],
            corrupted_deliveries=wire["corrupted_deliveries"],
            integrity_discards=wire["integrity_discards"],
        )

    def _make_wire_attempt(
        self,
        event_index: int,
        frames: List[bytes],
        integrity: IntegrityConfig,
        wire: Dict[str, int],
        received: List[Optional[bytes]],
        discarded: List[bool],
    ) -> Callable[[int], bool]:
        """Build the per-attempt callback of one byte-level transmission.

        Each attempt first consults the loss faults (the frames never
        arrive), then pushes every frame's real bytes through the
        ``corrupt_frame`` hooks and the receiver's frame decoder.  A
        detected corruption either triggers a retransmission (counts as a
        lost attempt) or marks the payload discarded, depending on
        ``integrity.retransmit_on_corrupt``.
        """

        def attempt_fn(attempt: int) -> bool:
            wire["frames_sent"] += len(frames)
            if self.try_lost(event_index, attempt):
                return True
            parts: List[bytes] = []
            detected = 0
            mutated = 0
            for i, raw in enumerate(frames):
                on_air = self.corrupt_frame(event_index, attempt, i, raw)
                if on_air != raw:
                    mutated += 1
                try:
                    parts.append(
                        decode_frame(on_air, integrity.framing).payload
                    )
                except IntegrityError:
                    detected += 1
            wire["frames_corrupted"] += mutated
            wire["corruptions_detected"] += detected
            if detected:
                if integrity.retransmit_on_corrupt:
                    return True
                discarded[0] = True
                received[0] = None
                return False
            discarded[0] = False
            received[0] = b"".join(parts)
            return False

        return attempt_fn

    def _run_fast(
        self,
        simulator: CrossEndSimulator,
        n_events: int,
        arq: ARQConfig,
        policy: Optional[GracefulDegradationPolicy],
        fallback_metrics: Optional[PartitionMetrics],
        cache: Optional[LastKnownGoodCache],
        integrity: Optional[IntegrityConfig],
        breaker: Optional[object] = None,
        checkpoint: Optional[object] = None,
        resume_state: Optional[object] = None,
    ) -> ResilienceReport:
        """Vectorized runner; bit-identical to :meth:`_run_scalar`.

        Loss outcomes are pre-drawn in blocks (one stream per stochastic
        fault, OR-composed, served by a cursor that advances exactly one
        slot per transmission attempt — the scalar consumption order),
        jitter factors and payload words are drawn as matrices, and
        byte-level payloads go through the batch frame codec.  Only the
        bit-flip corruption draws stay per-frame: their stream interleaves
        fixed- and variable-length draws, so block sampling cannot match
        the scalar order; the fast path instead skips the frame decode of
        every untouched frame (an encode/decode round trip it already
        knows succeeds).

        On resume, everything deterministic (masks, jitter factors,
        payload matrices) is recomputed from the seeds; only the
        *consumed-ahead* composed loss outcomes — pre-drawn before the
        snapshot from RNGs that have since advanced — travel through the
        checkpoint as an explicit remainder buffer.
        """
        if resume_state is None:
            # A resume skips the resets: checkpoint.load() already re-armed
            # the campaign and restored fault/policy/cache/breaker state.
            self.reset()
            if policy is not None:
                policy.reset()
            if cache is not None:
                cache.reset()
            if breaker is not None:
                breaker.reset()

        period = simulator.period_s
        sigma = simulator.jitter_sigma
        idx = np.arange(n_events)

        brownout = np.zeros(n_events, dtype=bool)
        outage = np.zeros(n_events, dtype=bool)
        stall = np.zeros(n_events, dtype=np.float64)
        loss_draws: List[Callable[[int], np.ndarray]] = []
        corruptors: List[PayloadCorruption] = []
        for fault in self.faults:
            window = None
            if isinstance(fault, (SensorBrownout, LinkOutage, AggregatorStall)):
                window = (fault.start_event <= idx) & (
                    idx < fault.start_event + fault.n_events
                )
            if isinstance(fault, SensorBrownout):
                brownout |= window
            elif isinstance(fault, LinkOutage):
                outage |= window
            elif isinstance(fault, AggregatorStall):
                stall += np.where(window, fault.extra_delay_s, 0.0)
            elif isinstance(fault, BurstLoss):
                channel = fault._channel
                assert channel is not None  # armed by reset() above
                loss_draws.append(channel.outcome_block)
            elif isinstance(fault, PayloadCorruption):
                if fault.mode == "erasure":
                    loss_draws.append(
                        lambda n, rng=fault._require_rng(), rate=fault.rate: (
                            rng.random(n) < rate
                        )
                    )
                else:
                    corruptors.append(fault)
        loss = _LossStream(loss_draws)

        n_active = int(n_events - brownout.sum())
        factors = None
        if sigma > 0:
            jitter_rng = np.random.default_rng(simulator.seed)
            factors = np.exp(
                jitter_rng.normal(-sigma**2 / 2.0, sigma, size=(n_active, 3))
            )

        # Byte-level data plane: payload words and frames for the whole
        # run in one batch.  Without bit-flip corruptors the frame bytes
        # can never differ from what was sent, so only the frame *count*
        # is observable and the codec work is skipped entirely.
        payload_rng = np.random.default_rng([self.seed, 0xF7A3])
        n_frames_per_event = 0
        sent_payloads: List[bytes] = []
        chunk_bytes: List[bytes] = []
        frame_bytes: List[bytes] = []
        if integrity is not None:
            framing = integrity.framing
            payload_len = integrity.values_per_payload * (Q16_16.total_bits // 8)
            n_frames_per_event = -(-payload_len // framing.max_payload_bytes)
            if corruptors and n_active:
                values = quantize_array(
                    payload_rng.uniform(
                        -1000.0, 1000.0,
                        (n_active, integrity.values_per_payload),
                    )
                )
                blob = encode_values(values)
                sent_payloads = [
                    blob[a * payload_len : (a + 1) * payload_len]
                    for a in range(n_active)
                ]
                for payload in sent_payloads:
                    chunk_bytes.extend(
                        payload[i : i + framing.max_payload_bytes]
                        for i in range(0, payload_len, framing.max_payload_bytes)
                    )
                total_frames = n_active * n_frames_per_event
                frame_matrix, frame_lens = encode_frames(
                    chunk_bytes,
                    np.arange(total_frames) % SEQ_MODULUS,
                    framing,
                    last=(np.arange(total_frames) % n_frames_per_event)
                    == n_frames_per_event - 1,
                )
                frame_bytes = [
                    frame_matrix[r, : int(frame_lens[r])].tobytes()
                    for r in range(total_frames)
                ]

        bounded_tries = None if arq.max_retries is None else arq.max_retries + 1
        backoffs = (
            None
            if arq.max_retries is None
            else [0.0] + [arq.backoff_s(r) for r in range(1, arq.max_retries + 1)]
        )

        front_free = link_free = back_free = 0.0
        records: List[DecisionRecord] = []
        sensor_j = aggregator_j = retry_j = 0.0
        retransmissions = 0
        fallback_events = 0
        misses = 0
        wire = {
            "frames_sent": 0,
            "frames_corrupted": 0,
            "corruptions_detected": 0,
            "corrupted_deliveries": 0,
            "integrity_discards": 0,
        }

        att = 0  # global attempt cursor into the loss streams
        a = 0  # active (non-browned-out) event counter
        start = 0
        if resume_state is not None:
            start = resume_state.cursor
            front_free, link_free, back_free = resume_state.clocks
            sensor_j, aggregator_j, retry_j = resume_state.energies
            retransmissions, fallback_events, misses = resume_state.counters
            records = list(resume_state.records)
            wire.update(resume_state.wire)
            a = int(resume_state.extra["a"])
            loss.buf = np.asarray(
                resume_state.extra["loss_remainder"], dtype=bool
            )
        probe_tries = (
            None
            if breaker is None
            else min(breaker.config.probe_retries + 1, bounded_tries)
        )
        for k in range(start, n_events):
            release = k * period
            in_fallback = policy is not None and policy.in_fallback
            if in_fallback:
                fallback_events += 1
            active = (
                fallback_metrics
                if (in_fallback and fallback_metrics is not None)
                else simulator.metrics
            )

            if brownout[k]:
                served = cache.serve() if cache is not None else None
                if served is not None:
                    records.append(
                        DecisionRecord(k, DEGRADED, 0, 0.0, in_fallback,
                                       served.staleness)
                    )
                else:
                    records.append(
                        DecisionRecord(k, DROPPED, 0, math.nan, in_fallback, 0)
                    )
            else:
                if factors is not None:
                    row = factors[a]
                    t_front = active.delay_front_s * row[0]
                    t_link = active.delay_link_s * row[1]
                    t_back = active.delay_back_s * row[2]
                else:
                    t_front = active.delay_front_s
                    t_link = active.delay_link_s
                    t_back = active.delay_back_s

                front_start = max(release, front_free)
                front_end = front_start + t_front
                front_free = front_end
                sensor_j += active.sensor_compute_j

                if integrity is not None and corruptors:
                    base_row = a * n_frames_per_event
                    ev_frames = frame_bytes[
                        base_row : base_row + n_frames_per_event
                    ]
                    ev_chunks = chunk_bytes[
                        base_row : base_row + n_frames_per_event
                    ]
                    sent_payload = sent_payloads[a]
                else:
                    ev_frames = ev_chunks = []
                    sent_payload = None

                decision = "allow" if breaker is None else breaker.decide(k)
                if decision == "block":
                    # Open breaker: no attempts, no loss-slot consumption
                    # (the scalar runner never calls try_lost either).
                    if policy is not None:
                        policy.observe(False)
                    served = cache.serve() if cache is not None else None
                    if served is not None:
                        latency = front_end - release
                        records.append(
                            DecisionRecord(k, DEGRADED, 0, latency,
                                           in_fallback, served.staleness)
                        )
                    else:
                        latency = math.nan
                        records.append(
                            DecisionRecord(k, DROPPED, 0, math.nan,
                                           in_fallback, 0)
                        )
                else:
                    event_cap = (
                        probe_tries if decision == "probe" else bounded_tries
                    )
                    event_out = bool(outage[k])
                    if event_cap is not None:
                        loss.ensure(att + event_cap)
                    tries = 0
                    delay = 0.0
                    delivered = False
                    discarded = False
                    received: Optional[bytes] = None
                    while True:
                        tries += 1
                        delay = delay + t_link
                        if integrity is not None:
                            wire["frames_sent"] += n_frames_per_event
                        if att >= loss.buf.size:
                            loss.ensure(att + 1)
                        lost = event_out or bool(loss.buf[att])
                        att += 1
                        if not lost and ev_frames:
                            mutated = detected = 0
                            parts: List[bytes] = []
                            for j, raw in enumerate(ev_frames):
                                on_air = raw
                                for corruptor in corruptors:
                                    on_air = corruptor.corrupt_frame(
                                        k, tries, j, on_air
                                    )
                                if on_air == raw:
                                    parts.append(ev_chunks[j])
                                    continue
                                mutated += 1
                                try:
                                    parts.append(
                                        decode_frame(
                                            on_air, integrity.framing
                                        ).payload
                                    )
                                except IntegrityError:
                                    detected += 1
                            wire["frames_corrupted"] += mutated
                            wire["corruptions_detected"] += detected
                            if detected:
                                if integrity.retransmit_on_corrupt:
                                    lost = True
                                else:
                                    discarded = True
                                    received = None
                            else:
                                discarded = False
                                received = b"".join(parts)
                        if not lost:
                            delivered = True
                            break
                        if event_cap is not None and tries >= event_cap:
                            break
                        if tries >= DEFAULT_MAX_SIMULATED_TRIES:
                            raise SimulationError(
                                f"unbounded ARQ exceeded "
                                f"{DEFAULT_MAX_SIMULATED_TRIES} "
                                "tries on one payload: the channel never "
                                "recovered (retry storm); use a bounded "
                                "ARQConfig to keep per-payload delay finite"
                            )
                        if backoffs is not None:
                            delay = delay + backoffs[tries]

                    if breaker is not None:
                        breaker.record(k, delivered)
                    link_start = max(front_end, link_free)
                    link_end = link_start + delay
                    link_free = link_end

                    per_try_radio = active.sensor_tx_j + active.sensor_rx_j
                    sensor_j += tries * per_try_radio
                    aggregator_j += tries * active.aggregator_radio_j
                    retransmissions += tries - 1
                    retry_j += (tries - 1) * (
                        per_try_radio + active.aggregator_radio_j
                    )

                    app_delivered = delivered
                    if app_delivered and discarded:
                        wire["integrity_discards"] += 1
                        app_delivered = False

                    if app_delivered:
                        corrupted = bool(ev_frames) and received != sent_payload
                        if corrupted:
                            wire["corrupted_deliveries"] += 1
                        if policy is not None:
                            policy.observe(True)
                        if cache is not None:
                            cache.update(k)
                        back_start = max(link_end, back_free)
                        finish = back_start + t_back + stall[k]
                        back_free = finish
                        aggregator_j += active.aggregator_cpu_j
                        latency = finish - release
                        records.append(
                            DecisionRecord(k, DELIVERED, tries, latency,
                                           in_fallback, 0, corrupted)
                        )
                    else:
                        if policy is not None:
                            policy.observe(False)
                        served = cache.serve() if cache is not None else None
                        if served is not None:
                            latency = link_end - release
                            records.append(
                                DecisionRecord(k, DEGRADED, tries, latency,
                                               in_fallback, served.staleness)
                            )
                        else:
                            latency = math.nan
                            records.append(
                                DecisionRecord(k, DROPPED, tries, math.nan,
                                               in_fallback, 0)
                            )

                if not math.isnan(latency):
                    if latency > period:
                        misses += 1
                    if latency > 1000 * period:
                        raise SimulationError(
                            f"event backlog diverges under faults at event "
                            f"{k}: latency {latency:.4f}s >> period "
                            f"{period:.4f}s"
                        )
                a += 1

            if checkpoint is not None and checkpoint.due(k + 1):
                checkpoint.save(
                    campaign=self,
                    runner="fast",
                    simulator=simulator,
                    n_events=n_events,
                    arq=arq,
                    policy=policy,
                    fallback_metrics=fallback_metrics,
                    cache=cache,
                    integrity=integrity,
                    breaker=breaker,
                    cursor=k + 1,
                    clocks=(front_free, link_free, back_free),
                    energies=(sensor_j, aggregator_j, retry_j),
                    counters=(retransmissions, fallback_events, misses),
                    records=records,
                    wire=wire,
                    extra={
                        "a": a,
                        "loss_remainder": loss.buf[att:].astype(int).tolist(),
                    },
                )

        return ResilienceReport(
            records=records,
            sensor_energy_j=sensor_j,
            aggregator_energy_j=aggregator_j,
            retry_energy_j=retry_j,
            retransmissions=retransmissions,
            fallback_events=fallback_events,
            deadline_misses=misses,
            frames_sent=wire["frames_sent"],
            frames_corrupted=wire["frames_corrupted"],
            corruptions_detected=wire["corruptions_detected"],
            corrupted_deliveries=wire["corrupted_deliveries"],
            integrity_discards=wire["integrity_discards"],
        )


#: Fault model types the campaign fast path can pre-sample exactly.
_FAST_PATH_TYPES = (
    LinkOutage,
    BurstLoss,
    PayloadCorruption,
    SensorBrownout,
    AggregatorStall,
)


class _LossStream:
    """OR-composed per-attempt loss outcomes, pre-drawn in blocks.

    Each stochastic fault contributes one draw callable; every slot of
    the composed buffer consumes exactly one outcome from each, which is
    the scalar campaign's consumption order (:meth:`FaultCampaign.
    try_lost` consults every fault per attempt, no short-circuit).
    """

    __slots__ = ("_draws", "buf")

    _GROW = 4096

    def __init__(self, draws: Sequence[Callable[[int], np.ndarray]]) -> None:
        self._draws = list(draws)
        self.buf = np.zeros(0, dtype=bool)

    def ensure(self, upto: int) -> None:
        """Extend the buffer to at least ``upto`` composed outcomes."""
        while self.buf.size < upto:
            grow = max(upto - self.buf.size, self._GROW)
            chunk = np.zeros(grow, dtype=bool)
            for draw in self._draws:
                chunk |= draw(grow)
            self.buf = np.concatenate([self.buf, chunk])


def _restore_rng(state: Dict[str, object]) -> np.random.Generator:
    """Rebuild a numpy Generator from a saved bit-generator state dict."""
    generator = np.random.default_rng(0)
    generator.bit_generator.state = dict(state)
    return generator


def _jittered(
    metrics: PartitionMetrics,
    sigma: float,
    rng: Optional[np.random.Generator],
):
    """Stage service times of ``metrics``, with unit-mean lognormal jitter."""
    base = (metrics.delay_front_s, metrics.delay_link_s, metrics.delay_back_s)
    if rng is None:
        return base
    factors = np.exp(rng.normal(-sigma**2 / 2.0, sigma, size=3))
    return tuple(b * f for b, f in zip(base, factors))
