"""Composable fault models and seeded fault-injection campaigns.

The discrete-event simulator (:mod:`repro.sim.simulator`) streams events
through an ideal system; this module stresses the same system with the
failure modes a deployed wearable actually sees:

- :class:`LinkOutage` — a hard no-delivery window (the wearer walks behind
  an RF obstacle, the aggregator reboots);
- :class:`BurstLoss` — clustered payload loss from a Gilbert-Elliott chain
  (:mod:`repro.sim.channel`), advanced once per *transmission attempt* so
  retries inside a burst keep failing;
- :class:`PayloadCorruption` — corruption of delivered bits, in two modes:
  abstract *erasure* (a coin flip indistinguishable from loss to the ARQ
  layer, the PR 1 behaviour) and byte-level *bitflip* (real bits of real
  encoded frames are mutated, so a CRC has to earn its detections);
- :class:`SensorBrownout` — battery-sag windows in which the sensor cannot
  acquire or compute at all;
- :class:`AggregatorStall` — back-end service-time inflation (GC pause,
  thermal throttling, a co-scheduled workload).

A :class:`FaultCampaign` composes any number of these under one seed and
replays them bit-for-bit: :meth:`FaultCampaign.run` re-arms every fault
model, the degradation policy and the last-known-good cache before each
run, so two runs of the same campaign produce identical
:class:`ResilienceReport` objects.

The runner injects the faults into a :class:`~repro.sim.simulator.
CrossEndSimulator` configuration (its partition metrics, event period and
jitter model), simulates the bounded-retry ARQ of :mod:`repro.hw.arq`
per transmission attempt, and applies the graceful-degradation policies of
:mod:`repro.core.degrade` when payloads drop.  Pass it metrics evaluated
at ``loss_rate = 0``: retries are simulated here try-by-try, so feeding
expectation-inflated figures would double-count them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.degrade import GracefulDegradationPolicy, LastKnownGoodCache
from repro.dsp.fixedpoint import quantize_array
from repro.errors import ConfigurationError, IntegrityError, SimulationError
from repro.hw.arq import ARQConfig, UNBOUNDED_ARQ
from repro.hw.framing import (
    SEQ_MODULUS,
    FramingConfig,
    decode_frame,
    encode_values,
    fragment_payload,
)
from repro.sim.channel import GilbertElliottChannel, GilbertElliottParams
from repro.sim.evaluate import PartitionMetrics
from repro.sim.simulator import CrossEndSimulator

#: Per-event decision outcomes a campaign can record.
DELIVERED = "delivered"
DEGRADED = "degraded"
DROPPED = "dropped"


class FaultModel:
    """Base class of one composable fault source.

    Subclasses override the hooks they need; the defaults are no-ops, so a
    fault model only has to express the dimension it perturbs.
    """

    def reset(self, rng: np.random.Generator) -> None:
        """Re-arm internal state for a fresh, reproducible campaign run."""

    def try_lost(self, event_index: int, attempt: int) -> bool:
        """Whether transmission ``attempt`` (1-based) of event ``event_index`` is lost."""
        return False

    def sensor_brownout(self, event_index: int) -> bool:
        """Whether the sensor is browned out for this event."""
        return False

    def stall_s(self, event_index: int) -> float:
        """Extra aggregator service time (s) injected into this event."""
        return 0.0

    def corrupt_frame(
        self, event_index: int, attempt: int, frame_index: int, data: bytes
    ) -> bytes:
        """Mutate the on-air bytes of one frame (identity by default)."""
        return data


def _check_window(start_event: int, n_events: int) -> None:
    if start_event < 0:
        raise ConfigurationError("start_event must be >= 0")
    if n_events < 1:
        raise ConfigurationError("n_events must be >= 1")


@dataclass
class LinkOutage(FaultModel):
    """Hard link outage: every transmission in the window is lost.

    Attributes:
        start_event: First affected event index.
        n_events: Number of consecutive affected events.
    """

    start_event: int
    n_events: int

    def __post_init__(self) -> None:
        _check_window(self.start_event, self.n_events)

    def try_lost(self, event_index: int, attempt: int) -> bool:
        """Lose every attempt of every event inside the outage window."""
        return self.start_event <= event_index < self.start_event + self.n_events


@dataclass
class BurstLoss(FaultModel):
    """Bursty loss episodes from a Gilbert-Elliott chain, per attempt.

    The chain advances once per transmission attempt (not per event), so a
    retry fired into an ongoing bad-state episode is likely to fail again —
    the behaviour that makes bounded retries matter.

    Attributes:
        params: Gilbert-Elliott chain parameters.
    """

    params: GilbertElliottParams = field(default_factory=GilbertElliottParams)
    _channel: Optional[GilbertElliottChannel] = field(
        default=None, repr=False, compare=False
    )

    def reset(self, rng: np.random.Generator) -> None:
        """Rebuild the chain from the campaign seed stream."""
        self._channel = GilbertElliottChannel(
            self.params, seed=int(rng.integers(2**31))
        )

    def try_lost(self, event_index: int, attempt: int) -> bool:
        """Advance the chain one attempt; True when that attempt is lost."""
        if self._channel is None:
            raise ConfigurationError(
                "BurstLoss used outside a campaign: call reset() first"
            )
        return self._channel.next_outcome()


@dataclass
class PayloadCorruption(FaultModel):
    """Corruption of delivered bits, abstract or byte-level.

    Two modes:

    - ``"erasure"`` (default, the PR 1 behaviour): an abstract coin flip —
      the payload arrives but is declared unusable, indistinguishable from
      loss to the ARQ layer.  The CRC is *assumed* perfect.
    - ``"bitflip"``: no abstract loss; instead :meth:`corrupt_frame`
      mutates 1..``max_bit_flips`` random bits of the real encoded frame
      bytes with probability ``rate`` per frame.  Detection is then up to
      the receiver's actual integrity checks (:mod:`repro.hw.framing`) —
      without a CRC the corruption is silent by construction.

    A fully-corrupting channel (``rate = 1.0``) is legal in both modes: in
    erasure mode every attempt fails, so an *unbounded* ARQ policy raises
    :class:`~repro.errors.SimulationError` once it hits its simulated-try
    cap, while a bounded policy saturates at ``max_retries + 1`` tries and
    drops the payload — exactly the ``loss_rate = 1.0`` semantics of
    :class:`~repro.hw.arq.ARQConfig` (see
    ``ARQConfig.expected_transmissions``), never an infinite loop.

    Attributes:
        rate: Per-attempt (erasure) or per-frame (bitflip) corruption
            probability in [0, 1].
        mode: ``"erasure"`` or ``"bitflip"``.
        max_bit_flips: Upper bound on flipped bits per corrupted frame
            (bitflip mode); the actual count is uniform in
            ``[1, max_bit_flips]``.
    """

    rate: float = 0.01
    mode: str = "erasure"
    max_bit_flips: int = 4
    _rng: Optional[np.random.Generator] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError("rate must be in [0, 1]")
        if self.mode not in ("erasure", "bitflip"):
            raise ConfigurationError(
                f"mode must be 'erasure' or 'bitflip', got {self.mode!r}"
            )
        if self.max_bit_flips < 1:
            raise ConfigurationError("max_bit_flips must be >= 1")

    def reset(self, rng: np.random.Generator) -> None:
        """Derive a private RNG from the campaign seed stream."""
        self._rng = np.random.default_rng(int(rng.integers(2**31)))

    def _require_rng(self) -> np.random.Generator:
        if self._rng is None:
            raise ConfigurationError(
                "PayloadCorruption used outside a campaign: call reset() first"
            )
        return self._rng

    def try_lost(self, event_index: int, attempt: int) -> bool:
        """Erasure mode: corrupt this attempt with probability ``rate``."""
        if self.mode != "erasure":
            return False
        return bool(self._require_rng().random() < self.rate)

    def corrupt_frame(
        self, event_index: int, attempt: int, frame_index: int, data: bytes
    ) -> bytes:
        """Bitflip mode: flip random bits of the frame with prob ``rate``."""
        if self.mode != "bitflip" or not data:
            return data
        rng = self._require_rng()
        if rng.random() >= self.rate:
            return data
        n_flips = int(rng.integers(1, self.max_bit_flips + 1))
        n_flips = min(n_flips, len(data) * 8)
        positions = rng.choice(len(data) * 8, size=n_flips, replace=False)
        mutated = bytearray(data)
        for pos in positions:
            mutated[int(pos) // 8] ^= 1 << (int(pos) % 8)
        return bytes(mutated)


@dataclass
class SensorBrownout(FaultModel):
    """Battery-sag window in which the sensor cannot operate at all.

    Attributes:
        start_event: First affected event index.
        n_events: Number of consecutive affected events.
    """

    start_event: int
    n_events: int

    def __post_init__(self) -> None:
        _check_window(self.start_event, self.n_events)

    def sensor_brownout(self, event_index: int) -> bool:
        """True inside the brownout window."""
        return self.start_event <= event_index < self.start_event + self.n_events


@dataclass
class AggregatorStall(FaultModel):
    """Aggregator-side stall inflating back-end service time.

    Attributes:
        start_event: First affected event index.
        n_events: Number of consecutive affected events.
        extra_delay_s: Service-time inflation per affected event.
    """

    start_event: int
    n_events: int
    extra_delay_s: float = 5e-3

    def __post_init__(self) -> None:
        _check_window(self.start_event, self.n_events)
        if self.extra_delay_s < 0:
            raise ConfigurationError("extra_delay_s must be >= 0")

    def stall_s(self, event_index: int) -> float:
        """The stall inflation inside the window, 0 outside."""
        in_window = (
            self.start_event <= event_index < self.start_event + self.n_events
        )
        return self.extra_delay_s if in_window else 0.0


@dataclass(frozen=True)
class DecisionRecord:
    """Outcome of one event under a fault campaign.

    Attributes:
        index: Event index.
        status: ``"delivered"``, ``"degraded"`` (served from the
            last-known-good cache) or ``"dropped"`` (no decision at all).
        tries: Link transmissions spent on the event (0 during brownout).
        latency_s: Release-to-decision latency; NaN when dropped.
        fallback: Whether the degradation policy had the deployment on the
            in-sensor fallback cut for this event.
        staleness: Age (events) of the served decision; 0 when fresh.
        corrupted: Whether the delivered payload differed from the sent
            one (silent corruption reached the decision layer); only ever
            True in byte-level integrity runs.
    """

    index: int
    status: str
    tries: int
    latency_s: float
    fallback: bool
    staleness: int
    corrupted: bool = False


@dataclass(frozen=True)
class ResilienceReport:
    """Aggregate outcome of one fault-campaign run.

    Attributes:
        records: Per-event decision records.
        sensor_energy_j: Total sensor energy, retries included.
        aggregator_energy_j: Total aggregator energy, retries included.
        retry_energy_j: Radio energy spent on retransmissions alone (the
            overhead the resilience layer pays for availability).
        retransmissions: Total retransmissions across the run.
        fallback_events: Events served while on the fallback cut.
        deadline_misses: Served events whose latency exceeded the period.
        frames_sent: Frames put on the air (byte-level integrity runs only;
            retransmitted frames count every time).
        frames_corrupted: Arrived frames whose bytes were mutated in flight.
        corruptions_detected: Arrived frames the receiver's integrity
            checks rejected (CRC/structural failures).
        corrupted_deliveries: Events delivered with a payload that differed
            from the transmitted one — silent corruption that reached the
            decision layer.
        integrity_discards: Events whose payload a detect-only receiver
            (CRC without retransmission) discarded after delivery.
    """

    records: List[DecisionRecord]
    sensor_energy_j: float
    aggregator_energy_j: float
    retry_energy_j: float
    retransmissions: int
    fallback_events: int
    deadline_misses: int
    frames_sent: int = 0
    frames_corrupted: int = 0
    corruptions_detected: int = 0
    corrupted_deliveries: int = 0
    integrity_discards: int = 0

    def _count(self, status: str) -> int:
        return sum(1 for r in self.records if r.status == status)

    @property
    def n_events(self) -> int:
        """Events simulated."""
        return len(self.records)

    @property
    def n_delivered(self) -> int:
        """Events whose decision arrived end-to-end."""
        return self._count(DELIVERED)

    @property
    def n_degraded(self) -> int:
        """Events served from the last-known-good cache."""
        return self._count(DEGRADED)

    @property
    def n_dropped(self) -> int:
        """Events that produced no decision at all."""
        return self._count(DROPPED)

    @property
    def availability(self) -> float:
        """Fraction of events that produced *some* decision."""
        if not self.records:
            return 1.0
        return (self.n_delivered + self.n_degraded) / self.n_events

    @property
    def dropped_decision_rate(self) -> float:
        """Fraction of events with no decision (1 - availability)."""
        return 1.0 - self.availability

    def _served_latencies(self) -> List[float]:
        return [r.latency_s for r in self.records if r.status != DROPPED]

    @property
    def mean_latency_s(self) -> float:
        """Mean decision latency over served events (NaN if none)."""
        served = self._served_latencies()
        return float(np.mean(served)) if served else math.nan

    @property
    def max_latency_s(self) -> float:
        """Worst decision latency over served events (NaN if none)."""
        served = self._served_latencies()
        return max(served) if served else math.nan

    @property
    def worst_tries(self) -> int:
        """Largest per-payload transmission count seen in the run."""
        return max((r.tries for r in self.records), default=0)

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile over served events (NaN if none served)."""
        if not 0 <= percentile <= 100:
            raise ConfigurationError("percentile must be in [0, 100]")
        served = self._served_latencies()
        return float(np.percentile(served, percentile)) if served else math.nan

    # -- integrity (byte-level runs) ----------------------------------------------

    @property
    def corruptions_silent(self) -> int:
        """Mutated frames that slipped past the receiver's checks."""
        return self.frames_corrupted - self.corruptions_detected

    @property
    def corruption_detection_rate(self) -> float:
        """Fraction of mutated arrived frames the receiver rejected.

        NaN when the run saw no corrupted frames (nothing to detect).
        """
        if self.frames_corrupted == 0:
            return math.nan
        return self.corruptions_detected / self.frames_corrupted

    @property
    def corrupted_delivery_rate(self) -> float:
        """Fraction of events whose delivered decision was corrupted."""
        if not self.records:
            return 0.0
        return self.corrupted_deliveries / self.n_events


@dataclass(frozen=True)
class IntegrityConfig:
    """Byte-level data-plane configuration of a campaign run.

    When passed to :meth:`FaultCampaign.run`, every non-browned-out event
    carries a *real* payload: ``values_per_payload`` Q16.16 words are
    serialised, fragmented into frames (:mod:`repro.hw.framing`) and
    pushed through every fault model's :meth:`~FaultModel.corrupt_frame`
    hook on every transmission attempt.  The receiver then has to detect
    the damage with the configured wire format:

    - ``framing.crc = False`` models the unprotected baseline — payload
      bit flips decode fine and reach the decision layer silently;
    - ``framing.crc = True, retransmit_on_corrupt = False`` is a
      detect-only receiver: corrupted payloads are discarded (converted
      from silent corruption into visible unavailability);
    - ``framing.crc = True, retransmit_on_corrupt = True`` additionally
      treats a detected corruption like a lost attempt, so the bounded
      ARQ budget is spent recovering the payload.

    Attributes:
        framing: Wire-format parameters shared by sender and receiver.
        retransmit_on_corrupt: Whether a CRC failure triggers an ARQ
            retransmission (sequence-aware NACK/timeout recovery) instead
            of discarding the payload.
        values_per_payload: Q16.16 words carried per event payload.
    """

    framing: FramingConfig = field(default_factory=FramingConfig)
    retransmit_on_corrupt: bool = True
    values_per_payload: int = 8

    def __post_init__(self) -> None:
        if self.values_per_payload < 1:
            raise ConfigurationError("values_per_payload must be >= 1")


class FaultCampaign:
    """A seeded, replayable composition of fault models.

    Args:
        faults: The fault models to inject (evaluated for every event and
            every transmission attempt; their effects compose by OR for
            loss/brownout and by sum for stalls).
        seed: Campaign seed; :meth:`run` re-arms every stochastic fault
            from it, so repeated runs are bit-for-bit identical.
    """

    def __init__(self, faults: Sequence[FaultModel], seed: int = 0) -> None:
        if not faults:
            raise ConfigurationError("a campaign needs at least one fault model")
        for fault in faults:
            if not isinstance(fault, FaultModel):
                raise ConfigurationError(
                    f"not a FaultModel: {fault!r}"
                )
        self.faults = list(faults)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self.reset()

    def reset(self) -> None:
        """Re-arm the campaign RNG and every fault model."""
        self._rng = np.random.default_rng(self.seed)
        for fault in self.faults:
            fault.reset(np.random.default_rng(int(self._rng.integers(2**31))))

    # -- composed per-event queries ---------------------------------------------

    def try_lost(self, event_index: int, attempt: int) -> bool:
        """Whether this transmission attempt is lost under any fault.

        Every fault model is consulted (no short-circuit) so stateful
        sources such as :class:`BurstLoss` advance exactly once per attempt.
        """
        outcomes = [f.try_lost(event_index, attempt) for f in self.faults]
        return any(outcomes)

    def sensor_brownout(self, event_index: int) -> bool:
        """Whether any fault browns out the sensor for this event."""
        outcomes = [f.sensor_brownout(event_index) for f in self.faults]
        return any(outcomes)

    def stall_s(self, event_index: int) -> float:
        """Total aggregator stall injected into this event."""
        return sum(f.stall_s(event_index) for f in self.faults)

    def corrupt_frame(
        self, event_index: int, attempt: int, frame_index: int, data: bytes
    ) -> bytes:
        """Pipe one frame's on-air bytes through every fault model."""
        for fault in self.faults:
            data = fault.corrupt_frame(event_index, attempt, frame_index, data)
        return data

    # -- the runner ---------------------------------------------------------------

    def run(
        self,
        simulator: CrossEndSimulator,
        n_events: int,
        arq: Optional[ARQConfig] = None,
        policy: Optional[GracefulDegradationPolicy] = None,
        fallback_metrics: Optional[PartitionMetrics] = None,
        cache: Optional[LastKnownGoodCache] = None,
        integrity: Optional[IntegrityConfig] = None,
    ) -> ResilienceReport:
        """Stream ``n_events`` through the system with faults injected.

        Args:
            simulator: Supplies the partition metrics (evaluated at
                ``loss_rate = 0`` — retries are simulated here), the event
                period and the jitter model.
            n_events: Events to stream (must be positive).
            arq: Retransmission policy; None selects the legacy unbounded
                stop-and-wait, whose per-payload delay is unbounded — a
                hard outage window then raises
                :class:`~repro.errors.SimulationError` (the divergence
                bounded ARQ exists to fix).
            policy: Optional outage-fallback policy; requires
                ``fallback_metrics``.  While it declares a persistent
                outage, events run on the fallback (in-sensor) metrics.
            fallback_metrics: Clean-link metrics of the in-sensor extreme
                cut used during fallback.
            cache: Optional last-known-good cache; when given, dropped
                payloads are served from it (status ``"degraded"``)
                instead of being dropped outright.
            integrity: Optional byte-level data plane.  When given, every
                event's payload is really serialised, framed and exposed
                to the fault models' ``corrupt_frame`` hooks, and the
                report's integrity counters (frames sent/corrupted,
                detections, silent corrupted deliveries, discards) are
                populated.  Payload *content* is drawn deterministically
                from the campaign seed, so runs stay bit-for-bit
                reproducible.

        Returns:
            The :class:`ResilienceReport`; bit-for-bit identical across
            repeated calls with the same arguments.
        """
        if n_events <= 0:
            raise ConfigurationError("n_events must be positive")
        if policy is not None and fallback_metrics is None:
            raise ConfigurationError(
                "a degradation policy requires fallback_metrics"
            )
        arq = UNBOUNDED_ARQ if arq is None else arq

        self.reset()
        if policy is not None:
            policy.reset()
        if cache is not None:
            cache.reset()

        period = simulator.period_s
        jitter_rng = (
            np.random.default_rng(simulator.seed)
            if simulator.jitter_sigma > 0
            else None
        )

        front_free = link_free = back_free = 0.0
        records: List[DecisionRecord] = []
        sensor_j = aggregator_j = retry_j = 0.0
        retransmissions = 0
        fallback_events = 0
        misses = 0

        # Byte-level data-plane state (integrity runs only).  The payload
        # generator is seeded from the campaign seed, independently of the
        # fault models' RNG stream, so the same decisions cross the wire in
        # every replay.
        payload_rng = np.random.default_rng([self.seed, 0xF7A3])
        seq_base = 0
        wire = {
            "frames_sent": 0,
            "frames_corrupted": 0,
            "corruptions_detected": 0,
            "corrupted_deliveries": 0,
            "integrity_discards": 0,
        }

        for k in range(n_events):
            release = k * period
            in_fallback = policy is not None and policy.in_fallback
            if in_fallback:
                fallback_events += 1
            active = (
                fallback_metrics
                if (in_fallback and fallback_metrics is not None)
                else simulator.metrics
            )

            if self.sensor_brownout(k):
                # The sensor is dark: nothing acquired, nothing computed,
                # nothing transmitted.  Only the cache can answer.
                served = cache.serve() if cache is not None else None
                if served is not None:
                    records.append(
                        DecisionRecord(k, DEGRADED, 0, 0.0, in_fallback,
                                       served.staleness)
                    )
                else:
                    records.append(
                        DecisionRecord(k, DROPPED, 0, math.nan, in_fallback, 0)
                    )
                continue

            t_front, t_link, t_back = _jittered(
                active, simulator.jitter_sigma, jitter_rng
            )

            front_start = max(release, front_free)
            front_end = front_start + t_front
            front_free = front_end
            sensor_j += active.sensor_compute_j

            if integrity is None:
                sent_payload = None
                received = [None]
                discarded = [False]
                attempt_fn = lambda attempt: self.try_lost(k, attempt)  # noqa: E731
            else:
                values = quantize_array(
                    payload_rng.uniform(
                        -1000.0, 1000.0, integrity.values_per_payload
                    )
                )
                sent_payload = encode_values(values)
                frames = fragment_payload(
                    sent_payload, seq_base, integrity.framing
                )
                seq_base = (seq_base + len(frames)) % SEQ_MODULUS
                received = [None]
                discarded = [False]
                attempt_fn = self._make_wire_attempt(
                    k, frames, integrity, wire, received, discarded
                )

            outcome = arq.simulate(attempt_fn, t_link)
            link_start = max(front_end, link_free)
            link_end = link_start + outcome.delay_s
            link_free = link_end

            per_try_radio = active.sensor_tx_j + active.sensor_rx_j
            sensor_j += outcome.tries * per_try_radio
            aggregator_j += outcome.tries * active.aggregator_radio_j
            retransmissions += outcome.tries - 1
            retry_j += (outcome.tries - 1) * (
                per_try_radio + active.aggregator_radio_j
            )

            app_delivered = outcome.delivered
            if app_delivered and discarded[0]:
                # Detect-only CRC: the link delivered, the receiver's
                # integrity check rejected the payload at the app layer.
                wire["integrity_discards"] += 1
                app_delivered = False

            if app_delivered:
                corrupted = (
                    integrity is not None and received[0] != sent_payload
                )
                if corrupted:
                    wire["corrupted_deliveries"] += 1
                if policy is not None:
                    policy.observe(True)
                if cache is not None:
                    cache.update(k)
                back_start = max(link_end, back_free)
                finish = back_start + t_back + self.stall_s(k)
                back_free = finish
                aggregator_j += active.aggregator_cpu_j
                latency = finish - release
                records.append(
                    DecisionRecord(k, DELIVERED, outcome.tries, latency,
                                   in_fallback, 0, corrupted)
                )
            else:
                if policy is not None:
                    policy.observe(False)
                served = cache.serve() if cache is not None else None
                if served is not None:
                    latency = link_end - release
                    records.append(
                        DecisionRecord(k, DEGRADED, outcome.tries, latency,
                                       in_fallback, served.staleness)
                    )
                else:
                    latency = math.nan
                    records.append(
                        DecisionRecord(k, DROPPED, outcome.tries, math.nan,
                                       in_fallback, 0)
                    )

            if not math.isnan(latency):
                if latency > period:
                    misses += 1
                if latency > 1000 * period:
                    raise SimulationError(
                        f"event backlog diverges under faults at event {k}: "
                        f"latency {latency:.4f}s >> period {period:.4f}s"
                    )

        return ResilienceReport(
            records=records,
            sensor_energy_j=sensor_j,
            aggregator_energy_j=aggregator_j,
            retry_energy_j=retry_j,
            retransmissions=retransmissions,
            fallback_events=fallback_events,
            deadline_misses=misses,
            frames_sent=wire["frames_sent"],
            frames_corrupted=wire["frames_corrupted"],
            corruptions_detected=wire["corruptions_detected"],
            corrupted_deliveries=wire["corrupted_deliveries"],
            integrity_discards=wire["integrity_discards"],
        )

    def _make_wire_attempt(
        self,
        event_index: int,
        frames: List[bytes],
        integrity: IntegrityConfig,
        wire: Dict[str, int],
        received: List[Optional[bytes]],
        discarded: List[bool],
    ) -> Callable[[int], bool]:
        """Build the per-attempt callback of one byte-level transmission.

        Each attempt first consults the loss faults (the frames never
        arrive), then pushes every frame's real bytes through the
        ``corrupt_frame`` hooks and the receiver's frame decoder.  A
        detected corruption either triggers a retransmission (counts as a
        lost attempt) or marks the payload discarded, depending on
        ``integrity.retransmit_on_corrupt``.
        """

        def attempt_fn(attempt: int) -> bool:
            wire["frames_sent"] += len(frames)
            if self.try_lost(event_index, attempt):
                return True
            parts: List[bytes] = []
            detected = 0
            mutated = 0
            for i, raw in enumerate(frames):
                on_air = self.corrupt_frame(event_index, attempt, i, raw)
                if on_air != raw:
                    mutated += 1
                try:
                    parts.append(
                        decode_frame(on_air, integrity.framing).payload
                    )
                except IntegrityError:
                    detected += 1
            wire["frames_corrupted"] += mutated
            wire["corruptions_detected"] += detected
            if detected:
                if integrity.retransmit_on_corrupt:
                    return True
                discarded[0] = True
                received[0] = None
                return False
            discarded[0] = False
            received[0] = b"".join(parts)
            return False

        return attempt_fn


def _jittered(
    metrics: PartitionMetrics,
    sigma: float,
    rng: Optional[np.random.Generator],
):
    """Stage service times of ``metrics``, with unit-mean lognormal jitter."""
    base = (metrics.delay_front_s, metrics.delay_link_s, metrics.delay_back_s)
    if rng is None:
        return base
    factors = np.exp(rng.normal(-sigma**2 / 2.0, sigma, size=3))
    return tuple(b * f for b, f in zip(base, factors))
