"""Bursty body-area channel model (Gilbert-Elliott).

The lossy-link extension (:class:`repro.hw.wireless.WirelessLink` with
``loss_rate``) assumes i.i.d. payload loss.  Real body-area channels are
*bursty*: posture changes and passing interferers produce clustered loss.
The classic two-state Gilbert-Elliott chain captures that:

- state **G** (good): low loss probability;
- state **B** (bad): high loss probability;
- geometric dwell times set by the transition probabilities.

The model produces per-payload outcomes for driving the adaptive
controller and the DES, and exposes the closed-form stationary loss rate
so a matched i.i.d. channel can be constructed for comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GilbertElliottParams:
    """Parameters of the two-state chain.

    Attributes:
        p_good_to_bad: Per-payload probability of entering the bad state.
        p_bad_to_good: Per-payload probability of recovering.
        loss_good: Payload-loss probability in the good state.
        loss_bad: Payload-loss probability in the bad state.
    """

    p_good_to_bad: float = 0.01
    p_bad_to_good: float = 0.10
    loss_good: float = 0.01
    loss_bad: float = 0.6

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1]")
        for name in ("loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1)")

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time spent in the bad state."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run mean payload-loss probability."""
        bad = self.stationary_bad_fraction
        return bad * self.loss_bad + (1.0 - bad) * self.loss_good

    @property
    def mean_burst_length(self) -> float:
        """Expected consecutive payloads spent in one bad-state visit."""
        return 1.0 / self.p_bad_to_good


class GilbertElliottChannel:
    """Stateful per-payload loss source.

    Args:
        params: Chain parameters.
        seed: Random seed; the channel owns its generator so simulations
            are reproducible.
    """

    def __init__(
        self,
        params: GilbertElliottParams = GilbertElliottParams(),
        seed: int = 0,
    ) -> None:
        self.params = params
        self._rng = np.random.default_rng(seed)
        self._bad = self._rng.random() < params.stationary_bad_fraction

    @property
    def in_bad_state(self) -> bool:
        """Whether the chain currently sits in the bad state."""
        return self._bad

    def next_outcome(self) -> bool:
        """Advance one payload; returns True if it was lost."""
        p = self.params
        if self._bad:
            if self._rng.random() < p.p_bad_to_good:
                self._bad = False
        else:
            if self._rng.random() < p.p_good_to_bad:
                self._bad = True
        loss_prob = p.loss_bad if self._bad else p.loss_good
        return bool(self._rng.random() < loss_prob)

    def outcomes(self, n: int) -> np.ndarray:
        """Boolean loss outcomes for ``n`` consecutive payloads."""
        if n <= 0:
            raise ConfigurationError("n must be positive")
        return np.array([self.next_outcome() for _ in range(n)])


def burst_lengths(outcomes: np.ndarray) -> np.ndarray:
    """Lengths of consecutive-loss runs in an outcome sequence."""
    arr = np.asarray(outcomes, dtype=bool)
    if arr.ndim != 1:
        raise ConfigurationError("outcomes must be one-dimensional")
    lengths = []
    run = 0
    for lost in arr:
        if lost:
            run += 1
        elif run:
            lengths.append(run)
            run = 0
    if run:
        lengths.append(run)
    return np.asarray(lengths, dtype=int)
