"""Bursty body-area channel model (Gilbert-Elliott).

The lossy-link extension (:class:`repro.hw.wireless.WirelessLink` with
``loss_rate``) assumes i.i.d. payload loss.  Real body-area channels are
*bursty*: posture changes and passing interferers produce clustered loss.
The classic two-state Gilbert-Elliott chain captures that:

- state **G** (good): low loss probability;
- state **B** (bad): high loss probability;
- geometric dwell times set by the transition probabilities.

The model produces per-payload outcomes for driving the adaptive
controller and the DES, and exposes the closed-form stationary loss rate
so a matched i.i.d. channel can be constructed for comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GilbertElliottParams:
    """Parameters of the two-state chain.

    Attributes:
        p_good_to_bad: Per-payload probability of entering the bad state.
        p_bad_to_good: Per-payload probability of recovering.
        loss_good: Payload-loss probability in the good state.
        loss_bad: Payload-loss probability in the bad state.
    """

    p_good_to_bad: float = 0.01
    p_bad_to_good: float = 0.10
    loss_good: float = 0.01
    loss_bad: float = 0.6

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1]")
        for name in ("loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1)")

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time spent in the bad state."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run mean payload-loss probability."""
        bad = self.stationary_bad_fraction
        return bad * self.loss_bad + (1.0 - bad) * self.loss_good

    @property
    def mean_burst_length(self) -> float:
        """Expected consecutive payloads spent in one bad-state visit."""
        return 1.0 / self.p_bad_to_good


class GilbertElliottChannel:
    """Stateful per-payload loss source.

    Args:
        params: Chain parameters.
        seed: Random seed; the channel owns its generator so simulations
            are reproducible.
    """

    def __init__(
        self,
        params: GilbertElliottParams = GilbertElliottParams(),
        seed: int = 0,
    ) -> None:
        self.params = params
        self._rng = np.random.default_rng(seed)
        self._bad = self._rng.random() < params.stationary_bad_fraction

    @property
    def in_bad_state(self) -> bool:
        """Whether the chain currently sits in the bad state."""
        return self._bad

    def next_outcome(self) -> bool:
        """Advance one payload; returns True if it was lost."""
        p = self.params
        if self._bad:
            if self._rng.random() < p.p_bad_to_good:
                self._bad = False
        else:
            if self._rng.random() < p.p_good_to_bad:
                self._bad = True
        loss_prob = p.loss_bad if self._bad else p.loss_good
        return bool(self._rng.random() < loss_prob)

    def outcome_block(self, n: int) -> np.ndarray:
        """Vectorized :meth:`next_outcome` for ``n`` consecutive payloads.

        Consumes the generator stream in exactly the scalar order (one
        transition uniform then one loss uniform per payload), so the
        outcomes — and the chain state left behind — are bit-identical
        to ``n`` sequential :meth:`next_outcome` calls on the same seed.

        The state recurrence is resolved without a Python loop: each
        step's transition uniform classifies it as a *setter* (pins the
        state regardless of history), a *flip* (both transition tests
        fire, so the state toggles), or an identity; the state at step
        ``t`` is then the last setter's value XOR the parity of flips
        since it, computed with ``maximum.accumulate`` and ``cumsum``.
        """
        if n <= 0:
            raise ConfigurationError("n must be positive")
        p = self.params
        draws = self._rng.random(2 * n)
        ut, ul = draws[0::2], draws[1::2]
        would_enter_bad = ut < p.p_good_to_bad
        would_recover = ut < p.p_bad_to_good
        flip = would_enter_bad & would_recover
        setter = would_enter_bad ^ would_recover
        idx = np.arange(n)
        last_set = np.maximum.accumulate(np.where(setter, idx, -1))
        flips = np.cumsum(flip)
        set_val = would_enter_bad.astype(np.int64)
        anchor = np.clip(last_set, 0, None)
        base = np.where(last_set >= 0, set_val[anchor], np.int64(self._bad))
        parity = np.where(last_set >= 0, flips - flips[anchor], flips) & 1
        state = base ^ parity
        self._bad = bool(state[-1])
        return ul < np.where(state, p.loss_bad, p.loss_good)

    def outcomes(self, n: int) -> np.ndarray:
        """Boolean loss outcomes for ``n`` consecutive payloads."""
        return self.outcome_block(n)


def burst_lengths(outcomes: np.ndarray) -> np.ndarray:
    """Lengths of consecutive-loss runs in an outcome sequence."""
    arr = np.asarray(outcomes, dtype=bool)
    if arr.ndim != 1:
        raise ConfigurationError("outcomes must be one-dimensional")
    lengths = []
    run = 0
    for lost in arr:
        if lost:
            run += 1
        elif run:
            lengths.append(run)
            run = 0
    if run:
        lengths.append(run)
    return np.asarray(lengths, dtype=int)
