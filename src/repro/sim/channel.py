"""Bursty body-area channel model (Gilbert-Elliott).

The lossy-link extension (:class:`repro.hw.wireless.WirelessLink` with
``loss_rate``) assumes i.i.d. payload loss.  Real body-area channels are
*bursty*: posture changes and passing interferers produce clustered loss.
The classic two-state Gilbert-Elliott chain captures that:

- state **G** (good): low loss probability;
- state **B** (bad): high loss probability;
- geometric dwell times set by the transition probabilities.

The model produces per-payload outcomes for driving the adaptive
controller and the DES, and exposes the closed-form stationary loss rate
so a matched i.i.d. channel can be constructed for comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GilbertElliottParams:
    """Parameters of the two-state chain.

    Attributes:
        p_good_to_bad: Per-payload probability of entering the bad state.
        p_bad_to_good: Per-payload probability of recovering.
        loss_good: Payload-loss probability in the good state.
        loss_bad: Payload-loss probability in the bad state.
    """

    p_good_to_bad: float = 0.01
    p_bad_to_good: float = 0.10
    loss_good: float = 0.01
    loss_bad: float = 0.6

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1]")
        for name in ("loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1)")

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time spent in the bad state."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run mean payload-loss probability."""
        bad = self.stationary_bad_fraction
        return bad * self.loss_bad + (1.0 - bad) * self.loss_good

    @property
    def mean_burst_length(self) -> float:
        """Expected consecutive payloads spent in one bad-state visit."""
        return 1.0 / self.p_bad_to_good


def ge_outcome_block(
    bad0: np.ndarray,
    ut: np.ndarray,
    ul: np.ndarray,
    params: GilbertElliottParams,
) -> tuple:
    """Resolve the Gilbert-Elliott recurrence for pre-drawn uniform blocks.

    The chain-scan core shared by :meth:`GilbertElliottChannel.outcome_block`
    (one chain) and the struct-of-arrays fleet engine
    (:mod:`repro.sim.fleetsoa`, one row per device): each step's transition
    uniform classifies it as a *setter* (pins the state regardless of
    history), a *flip* (both transition tests fire, so the state toggles),
    or an identity; the state at step ``t`` is then the last setter's value
    XOR the parity of flips since it, computed with ``maximum.accumulate``
    and ``cumsum`` along the step axis.

    Args:
        bad0: Initial chain state(s); shape ``ut.shape[:-1]`` (a scalar
            for one chain, ``(n_chains,)`` for a matrix of chains).
        ut: Transition uniforms, one per step, steps on the last axis.
        ul: Loss uniforms, same shape as ``ut``.
        params: Chain parameters.

    Returns:
        ``(loss, final_bad)`` — boolean loss outcomes shaped like ``ut``
        and the chain state(s) after the last step, shaped like ``bad0``.
        Outcomes are bit-identical to stepping each chain with
        :meth:`GilbertElliottChannel.next_outcome` over the same uniforms.
    """
    ut = np.asarray(ut, dtype=np.float64)
    ul = np.asarray(ul, dtype=np.float64)
    if ut.shape != ul.shape or ut.ndim < 1 or ut.shape[-1] < 1:
        raise ConfigurationError(
            "ut and ul must share a shape with at least one step"
        )
    bad_start = np.asarray(bad0, dtype=bool)
    if bad_start.shape != ut.shape[:-1]:
        raise ConfigurationError(
            f"bad0 shape {bad_start.shape} must equal ut.shape[:-1] "
            f"{ut.shape[:-1]}"
        )
    n = ut.shape[-1]
    would_enter_bad = ut < params.p_good_to_bad
    would_recover = ut < params.p_bad_to_good
    flip = would_enter_bad & would_recover
    setter = would_enter_bad ^ would_recover
    idx = np.arange(n)
    last_set = np.maximum.accumulate(np.where(setter, idx, -1), axis=-1)
    flips = np.cumsum(flip, axis=-1)
    set_val = would_enter_bad.astype(np.int64)
    anchor = np.clip(last_set, 0, None)
    set_at_anchor = np.take_along_axis(set_val, anchor, axis=-1)
    flips_at_anchor = np.take_along_axis(flips, anchor, axis=-1)
    start = np.expand_dims(bad_start.astype(np.int64), -1)
    base = np.where(last_set >= 0, set_at_anchor, start)
    parity = np.where(last_set >= 0, flips - flips_at_anchor, flips) & 1
    state = base ^ parity
    loss = ul < np.where(state, params.loss_bad, params.loss_good)
    return loss, state[..., -1].astype(bool).reshape(bad_start.shape)


class GilbertElliottChannel:
    """Stateful per-payload loss source.

    Args:
        params: Chain parameters.
        seed: Random seed; the channel owns its generator so simulations
            are reproducible.
        rng: Optional externally owned generator.  When given it is used
            *instead* of ``seed``; several channels constructed with the
            same generator share one stream in construction order, which
            is how the fleet scalar twin (:mod:`repro.sim.fleetsoa`)
            reproduces the per-network block draws of the SoA engine.
    """

    def __init__(
        self,
        params: GilbertElliottParams = GilbertElliottParams(),
        seed: int = 0,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        self.params = params
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._bad = self._rng.random() < params.stationary_bad_fraction

    @property
    def in_bad_state(self) -> bool:
        """Whether the chain currently sits in the bad state."""
        return self._bad

    def next_outcome(self) -> bool:
        """Advance one payload; returns True if it was lost."""
        p = self.params
        if self._bad:
            if self._rng.random() < p.p_bad_to_good:
                self._bad = False
        else:
            if self._rng.random() < p.p_good_to_bad:
                self._bad = True
        loss_prob = p.loss_bad if self._bad else p.loss_good
        return bool(self._rng.random() < loss_prob)

    def outcome_block(self, n: int) -> np.ndarray:
        """Vectorized :meth:`next_outcome` for ``n`` consecutive payloads.

        Consumes the generator stream in exactly the scalar order (one
        transition uniform then one loss uniform per payload), so the
        outcomes — and the chain state left behind — are bit-identical
        to ``n`` sequential :meth:`next_outcome` calls on the same seed.

        The state recurrence is resolved without a Python loop by
        :func:`ge_outcome_block` (setter/flip classification,
        ``maximum.accumulate`` + ``cumsum`` parity), shared with the
        struct-of-arrays fleet engine where it runs on one row per
        device.
        """
        if n <= 0:
            raise ConfigurationError("n must be positive")
        draws = self._rng.random(2 * n)
        loss, final_bad = ge_outcome_block(
            np.asarray(self._bad, dtype=bool),
            draws[0::2],
            draws[1::2],
            self.params,
        )
        self._bad = bool(final_bad)
        return loss

    def outcomes(self, n: int) -> np.ndarray:
        """Boolean loss outcomes for ``n`` consecutive payloads."""
        return self.outcome_block(n)


def burst_lengths(outcomes: np.ndarray) -> np.ndarray:
    """Lengths of consecutive-loss runs in an outcome sequence."""
    arr = np.asarray(outcomes, dtype=bool)
    if arr.ndim != 1:
        raise ConfigurationError("outcomes must be one-dimensional")
    lengths = []
    run = 0
    for lost in arr:
        if lost:
            run += 1
        elif run:
            lengths.append(run)
            run = 0
    if run:
        lengths.append(run)
    return np.asarray(lengths, dtype=int)
