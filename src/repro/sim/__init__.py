"""Cross-end system simulation.

- :mod:`repro.sim.evaluate` -- static per-event evaluation of a partition:
  sensor energy (Eq. 1-3), delay breakdown, aggregator-side overhead.
- :mod:`repro.sim.lifetime` -- battery lifetime from per-event energy and
  the event rate (Polymer Li-Ion model).
- :mod:`repro.sim.simulator` -- a discrete-event simulator streaming
  segments through sensor, link and aggregator resources, used to validate
  the static model and to detect real-time overruns.
- :mod:`repro.sim.parallel` -- fleet-scale parallel fan-out of independent
  simulations (BSN reports, fault campaigns, design-space sweeps) across
  worker processes, bit-identical to serial execution.
- :mod:`repro.sim.faults` -- composable fault models (outages, burst loss,
  corruption, brownouts, stalls) and seeded fault-injection campaigns with
  bounded-retry ARQ, graceful degradation and an optional byte-level data
  plane (real frames, real bit flips, CRC-verified delivery).
- :mod:`repro.sim.chaos` -- adversarial search over fault-mix space
  (strategist -> drivers -> judge -> orchestrator) with Pareto-worst
  tracking and bit-exact JSON replay bundles.
- :mod:`repro.sim.supervise` -- the fleet-supervision tier: per-device
  health state machines with quarantine/recovery, deterministic link
  circuit breakers, and crash-safe digest-pinned checkpoint/resume for
  campaigns, sweeps and chaos searches.
"""

from repro.sim.channel import (
    GilbertElliottChannel,
    GilbertElliottParams,
    burst_lengths,
    ge_outcome_block,
)
from repro.sim.chaos import (
    ChaosBounds,
    ChaosDriver,
    ChaosJudge,
    ChaosOutcome,
    ChaosRunConfig,
    ChaosScenario,
    ChaosScore,
    ChaosSearchConfig,
    ChaosSearchResult,
    ChaosStrategist,
    ChaosWeights,
    ReplayResult,
    assert_replay,
    build_bundle,
    canonical_json,
    chaos_search,
    load_bundle,
    pareto_worst,
    replay_bundle,
    report_digest,
    save_bundle,
    stable_digest,
)
from repro.sim.discharge import DischargeTrace, simulate_discharge
from repro.sim.evaluate import (
    PartitionEvaluationCache,
    PartitionMetrics,
    evaluate_partition,
    metrics_identical,
)
from repro.sim.faults import (
    AggregatorStall,
    BurstLoss,
    DecisionRecord,
    FaultCampaign,
    FaultModel,
    IntegrityConfig,
    LinkOutage,
    PayloadCorruption,
    ResilienceReport,
    SensorBrownout,
)
from repro.sim.fleetsoa import (
    FleetConfig,
    FleetResult,
    FleetSpec,
    concat_fleet_results,
    fleet_results_identical,
    simulate_fleet_scalar,
    simulate_fleet_soa,
)
from repro.sim.lifetime import battery_lifetime_hours, event_period_s
from repro.sim.multinode import BSNNode, BSNReport, MultiNodeBSN
from repro.sim.parallel import (
    CampaignTask,
    ParallelConfig,
    derive_seeds,
    fleet_reports,
    fleet_simulations,
    fleet_soa_rounds,
    parallel_map,
    run_campaigns,
    stream_soa_windows,
    sweep,
)
from repro.sim.simulator import CrossEndSimulator, SimulationReport
from repro.sim.supervise import (
    CHECKPOINT_SCHEMA,
    HEALTH_STATES,
    BreakerConfig,
    CampaignCheckpointer,
    CampaignResumeState,
    ChaosCheckpointer,
    ChaosResumeState,
    DeviceHealth,
    FleetSupervisor,
    HealthPolicy,
    LinkCircuitBreaker,
    SweepCheckpointer,
    fault_signature,
    load_checkpoint,
    save_checkpoint,
    wasted_radio_j,
)
from repro.sim.timeline import render_timeline

__all__ = [
    "AggregatorStall",
    "BSNNode",
    "BSNReport",
    "BreakerConfig",
    "BurstLoss",
    "CHECKPOINT_SCHEMA",
    "CampaignCheckpointer",
    "CampaignResumeState",
    "CampaignTask",
    "ChaosBounds",
    "ChaosCheckpointer",
    "ChaosDriver",
    "ChaosJudge",
    "ChaosOutcome",
    "ChaosResumeState",
    "ChaosRunConfig",
    "ChaosScenario",
    "ChaosScore",
    "ChaosSearchConfig",
    "ChaosSearchResult",
    "ChaosStrategist",
    "ChaosWeights",
    "CrossEndSimulator",
    "DecisionRecord",
    "DeviceHealth",
    "DischargeTrace",
    "FaultCampaign",
    "FaultModel",
    "FleetConfig",
    "FleetResult",
    "FleetSpec",
    "FleetSupervisor",
    "GilbertElliottChannel",
    "GilbertElliottParams",
    "HEALTH_STATES",
    "HealthPolicy",
    "IntegrityConfig",
    "LinkCircuitBreaker",
    "LinkOutage",
    "PayloadCorruption",
    "ReplayResult",
    "ResilienceReport",
    "SensorBrownout",
    "SweepCheckpointer",
    "assert_replay",
    "build_bundle",
    "burst_lengths",
    "concat_fleet_results",
    "canonical_json",
    "chaos_search",
    "fault_signature",
    "load_bundle",
    "load_checkpoint",
    "pareto_worst",
    "replay_bundle",
    "report_digest",
    "save_bundle",
    "save_checkpoint",
    "stable_digest",
    "wasted_radio_j",
    "MultiNodeBSN",
    "ParallelConfig",
    "PartitionEvaluationCache",
    "PartitionMetrics",
    "SimulationReport",
    "battery_lifetime_hours",
    "derive_seeds",
    "ge_outcome_block",
    "evaluate_partition",
    "fleet_reports",
    "fleet_results_identical",
    "fleet_simulations",
    "fleet_soa_rounds",
    "metrics_identical",
    "parallel_map",
    "render_timeline",
    "run_campaigns",
    "simulate_discharge",
    "simulate_fleet_scalar",
    "simulate_fleet_soa",
    "stream_soa_windows",
    "sweep",
    "event_period_s",
]
