"""Static per-event evaluation of a cross-end partition.

Given a functional-cell topology, a set of in-sensor cells and the hardware
models, compute exactly what the paper's energy and delay models prescribe:

- **sensor energy** (Eq. 1-3): in-sensor computation energy, transmission
  energy of every port whose data must leave the sensor (paid once per
  port — the "grouped" rule), and reception energy for every in-sensor
  consumer of aggregator-produced data;
- **delay** (Section 5.3): front-end critical path of the in-sensor
  dataflow (cells are asynchronous units running concurrently), link
  serialisation of all crossing payloads, and the aggregator CPU time of
  the in-aggregator cells (software executes sequentially);
- **aggregator overhead** (Section 5.6): CPU energy of the software cells,
  radio energy for its side of the link, and listen-window energy.

This evaluator is the single source of truth for partition quality.  The
integration tests assert that the s-t graph's cut capacity equals the
sensor energy computed here, which is the correctness condition for the
whole Automatic XPro Generator.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Set, Tuple

from repro.cells.cell import SOURCE_CELL, PortRef
from repro.cells.topology import CellTopology
from repro.errors import ConfigurationError
from repro.hw.aggregator import AggregatorCPU
from repro.hw.energy import EnergyLibrary
from repro.hw.wireless import WirelessLink


@dataclass(frozen=True)
class PartitionMetrics:
    """Per-event energy/delay figures of one partition.

    All energies in joules, all times in seconds.

    Attributes:
        in_sensor: The evaluated in-sensor cell set.
        sensor_compute_j: Eq. 2 computation energy on the sensor.
        sensor_tx_j: Transmission part of Eq. 3.
        sensor_rx_j: Reception part of Eq. 3.
        delay_front_s: Critical-path time of the in-sensor dataflow.
        delay_link_s: Serialisation time of all crossing payloads.
        delay_back_s: Aggregator CPU time of the in-aggregator cells.
        aggregator_cpu_j: CPU energy of in-aggregator software cells.
        aggregator_radio_j: Aggregator-side radio energy (Rx of uplink
            payloads, Tx of downlink payloads, listen windows).
        crossing_bits_up: On-air bits sensor -> aggregator per event.
        crossing_bits_down: On-air bits aggregator -> sensor per event.
    """

    in_sensor: FrozenSet[str]
    sensor_compute_j: float
    sensor_tx_j: float
    sensor_rx_j: float
    delay_front_s: float
    delay_link_s: float
    delay_back_s: float
    aggregator_cpu_j: float
    aggregator_radio_j: float
    crossing_bits_up: int
    crossing_bits_down: int

    @property
    def sensor_total_j(self) -> float:
        """Total sensor-node energy per event (the min-cut objective)."""
        return self.sensor_compute_j + self.sensor_tx_j + self.sensor_rx_j

    @property
    def sensor_wireless_j(self) -> float:
        """Eq. 3: total sensor radio energy per event."""
        return self.sensor_tx_j + self.sensor_rx_j

    @property
    def delay_total_s(self) -> float:
        """End-to-end per-event processing delay."""
        return self.delay_front_s + self.delay_link_s + self.delay_back_s

    @property
    def aggregator_total_j(self) -> float:
        """Total aggregator-side energy per event."""
        return self.aggregator_cpu_j + self.aggregator_radio_j


def _crossing_ports(
    topology: CellTopology, in_sensor: FrozenSet[str]
) -> Tuple[List[PortRef], List[Tuple[PortRef, str]]]:
    """Ports crossing the cut.

    Returns:
        ``(uplink_ports, downlink_pairs)``: ports transmitted once from
        sensor to aggregator, and (port, consumer) pairs received by
        in-sensor consumers from aggregator-side producers.
    """
    consumers_map = topology.consumers_by_port()
    uplink: List[PortRef] = []
    downlink: List[Tuple[PortRef, str]] = []
    result_ref = topology.result
    for ref, _port in topology.producer_ports():
        consumers = consumers_map.get(ref, [])
        producer_in_sensor = ref.cell == SOURCE_CELL or ref.cell in in_sensor
        if producer_in_sensor:
            needs_uplink = any(c not in in_sensor for c in consumers)
            if ref == result_ref:
                needs_uplink = True  # the result must always reach the back-end
            if needs_uplink:
                uplink.append(ref)
        else:
            for consumer in consumers:
                if consumer in in_sensor:
                    downlink.append((ref, consumer))
    return uplink, downlink


def _front_critical_path_s(
    topology: CellTopology, in_sensor: FrozenSet[str], energy_lib: EnergyLibrary
) -> float:
    """Longest path (in seconds) through the in-sensor dataflow subgraph."""
    finish: Dict[str, float] = {}
    for name in topology.cell_names:  # topological order
        if name not in in_sensor:
            continue
        cell = topology.cell(name)
        cost = energy_lib.cell_cost(cell.op_counts, cell.mode, cell.parallel_width)
        start = 0.0
        for pred in topology.predecessors(name):
            if pred in in_sensor:
                start = max(start, finish.get(pred, 0.0))
        finish[name] = start + energy_lib.seconds(cost.cycles)
    return max(finish.values()) if finish else 0.0


def evaluate_partition(
    topology: CellTopology,
    in_sensor: FrozenSet[str] | Set[str],
    energy_lib: EnergyLibrary,
    link: WirelessLink,
    cpu: AggregatorCPU,
) -> PartitionMetrics:
    """Evaluate one partition under the given hardware models.

    Args:
        topology: The functional-cell dataflow graph.
        in_sensor: Names of cells placed on the sensor node; all remaining
            cells run as software on the aggregator.
        energy_lib: In-sensor (ASIC) energy model.
        link: Wireless transceiver model.
        cpu: Aggregator CPU model.

    Returns:
        The full :class:`PartitionMetrics` for one event.
    """
    in_sensor = frozenset(in_sensor)
    unknown = in_sensor - set(topology.cells)
    if unknown:
        raise ConfigurationError(f"unknown cells in partition: {sorted(unknown)}")

    # -- computation ---------------------------------------------------------
    sensor_compute = 0.0
    aggregator_cpu_energy = 0.0
    aggregator_cpu_time = 0.0
    for name, cell in topology.cells.items():
        if name in in_sensor:
            cost = energy_lib.cell_cost(cell.op_counts, cell.mode, cell.parallel_width)
            sensor_compute += cost.energy_j
        else:
            aggregator_cpu_energy += cpu.compute_energy(cell.op_counts)
            aggregator_cpu_time += cpu.compute_time(cell.op_counts)

    # -- communication ---------------------------------------------------------
    uplink, downlink = _crossing_ports(topology, in_sensor)
    sensor_tx = 0.0
    sensor_rx = 0.0
    aggregator_radio = 0.0
    link_delay = 0.0
    bits_up = 0
    bits_down = 0
    for ref in uplink:
        port = topology.port_of(ref)
        sensor_tx += link.tx_energy(port.n_values, port.bits_per_value)
        aggregator_radio += link.rx_energy(port.n_values, port.bits_per_value)
        transfer = link.transfer_delay(port.n_values, port.bits_per_value)
        link_delay += transfer
        aggregator_radio += cpu.listen_energy(transfer)
        bits_up += link.payload_bits(port.n_values, port.bits_per_value)
    for ref, _consumer in downlink:
        port = topology.port_of(ref)
        sensor_rx += link.rx_energy(port.n_values, port.bits_per_value)
        aggregator_radio += link.tx_energy(port.n_values, port.bits_per_value)
        link_delay += link.transfer_delay(port.n_values, port.bits_per_value)
        bits_down += link.payload_bits(port.n_values, port.bits_per_value)

    return PartitionMetrics(
        in_sensor=in_sensor,
        sensor_compute_j=sensor_compute,
        sensor_tx_j=sensor_tx,
        sensor_rx_j=sensor_rx,
        delay_front_s=_front_critical_path_s(topology, in_sensor, energy_lib),
        delay_link_s=link_delay,
        delay_back_s=aggregator_cpu_time,
        aggregator_cpu_j=aggregator_cpu_energy,
        aggregator_radio_j=aggregator_radio,
        crossing_bits_up=bits_up,
        crossing_bits_down=bits_down,
    )


def metrics_identical(a: PartitionMetrics, b: PartitionMetrics) -> bool:
    """Bit-exact equality of two metrics records.

    Float fields are compared by ``repr`` (round-trip exact, and unlike
    ``==`` it treats two NaNs as equal); the ``in_sensor`` sets by set
    equality, since frozenset *iteration order* depends on insertion
    history and is not part of the value.
    """
    if a.in_sensor != b.in_sensor:
        return False
    return all(
        repr(getattr(a, name)) == repr(getattr(b, name))
        for name in a.__dataclass_fields__
        if name != "in_sensor"
    )


class PartitionEvaluationCache:
    """Bounded LRU memo for pure partition evaluations.

    :func:`evaluate_partition` is deterministic in ``(topology, in_sensor,
    energy_lib, link, cpu)``, and callers like the Automatic XPro Generator
    hold the hardware context fixed while probing many partitions — so a
    per-context memo keyed on the ``in_sensor`` frozenset alone is sound.
    The *owner* is responsible for calling :meth:`clear` whenever its
    context (topology or any hardware model) changes; the cache itself
    cannot see those objects.

    A ``maxsize`` of 0 disables caching (every lookup recomputes); the
    default bound comfortably covers one Lagrangian search (~50 distinct
    cuts) plus a sweep's worth of neighbouring contexts' repeats.

    Attributes:
        maxsize: Maximum number of retained entries (0 = disabled).
        hits: Lookups served from the cache.
        misses: Lookups that had to compute.
        evictions: Entries dropped to respect ``maxsize``.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 0:
            raise ConfigurationError("cache maxsize must be >= 0")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[FrozenSet[str], PartitionMetrics]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compute(
        self,
        in_sensor: FrozenSet[str],
        compute: Callable[[FrozenSet[str]], PartitionMetrics],
    ) -> PartitionMetrics:
        """Return the memoized metrics for ``in_sensor``, computing on miss."""
        if self.maxsize == 0:
            self.misses += 1
            return compute(in_sensor)
        cached = self._entries.get(in_sensor)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(in_sensor)
            return cached
        self.misses += 1
        metrics = compute(in_sensor)
        self._entries[in_sensor] = metrics
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return metrics

    def clear(self) -> None:
        """Drop all entries (owner's context changed); counters survive."""
        self._entries.clear()
