"""Battery lifetime estimation from per-event energy.

The sensor node processes one segment ("event") per acquisition window; its
average power is the per-event energy divided by the event period, plus a
small always-on baseline (AFE/ADC bias, sleep leakage — the paper's Es term,
"reduced to an extremely small level").  The Polymer Li-Ion model converts
that power into a runtime.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.battery import BatteryModel, SENSOR_BATTERY

#: Nominal per-modality sampling rates (Hz) used to derive event periods.
MODALITY_SAMPLE_RATES = {"ecg": 250.0, "eeg": 256.0, "emg": 500.0, "acc": 50.0}

#: Always-on baseline power of the sensor node (W): analog front-end bias
#: plus sleep leakage.  Small compared to event energy, per the paper's Es
#: argument, but non-zero so lifetimes stay finite for degenerate loads.
DEFAULT_BASELINE_W = 2e-6


def event_period_s(segment_length: int, sample_rate_hz: float) -> float:
    """Time between events when segments are acquired back to back."""
    if segment_length <= 0 or sample_rate_hz <= 0:
        raise ConfigurationError("segment length and sample rate must be positive")
    return segment_length / sample_rate_hz


def average_power_w(
    energy_per_event_j: float,
    period_s: float,
    baseline_w: float = DEFAULT_BASELINE_W,
) -> float:
    """Average node power under a periodic event load."""
    if energy_per_event_j < 0 or period_s <= 0 or baseline_w < 0:
        raise ConfigurationError("invalid power model inputs")
    return energy_per_event_j / period_s + baseline_w


def battery_lifetime_hours(
    energy_per_event_j: float,
    period_s: float,
    battery: BatteryModel = SENSOR_BATTERY,
    baseline_w: float = DEFAULT_BASELINE_W,
) -> float:
    """Battery lifetime (hours) of a node under a periodic event load."""
    power = average_power_w(energy_per_event_j, period_s, baseline_w)
    return battery.lifetime_hours(power)
