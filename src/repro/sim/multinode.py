"""Multi-sensor body sensor network simulation (paper §5.7).

*"The proposed cross-end approach and the Automatic XPro Generator can also
be used with minimal modifications for the case of multiple sensor nodes
associated with a data aggregator.  MIMO or other specialized wireless
protocol can be applied to avoid potential information conflict on the
aggregator end."*

This module provides exactly that: each sensor node carries its own
analytic topology and is partitioned independently by the generator (the
cut objective is per-node battery energy, so independence is exact); the
*system* model then accounts for what the nodes share —

- the **wireless medium**: under ``"tdma"`` the nodes' payloads serialise
  into time slots (one radio channel); under ``"mimo"`` they transfer
  concurrently (the paper's MIMO remark);
- the **aggregator**: one CPU executes every node's in-aggregator cells,
  and its radio listens across all reception windows.

The BSN-level lifetime is the *minimum* per-node battery lifetime — the
network dies with its first dead sensor.

This is the per-object, one-network-at-a-time model.  For
population-scale fleets (10^4-10^6 devices) use the struct-of-arrays
engine in :mod:`repro.sim.fleetsoa`, which vectorises TDMA/MIMO fleet
rounds across all networks at once and keeps a bit-identical scalar twin
(:func:`~repro.sim.fleetsoa.FleetSpec.from_networks` builds a fleet spec
from ``MultiNodeBSN`` instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.hw.battery import BatteryModel, SENSOR_BATTERY
from repro.sim.evaluate import PartitionMetrics
from repro.sim.lifetime import DEFAULT_BASELINE_W, battery_lifetime_hours

#: Supported medium-sharing protocols.
PROTOCOLS = ("tdma", "mimo")


@dataclass(frozen=True)
class BSNNode:
    """One sensor node's contribution to the BSN system model.

    Attributes:
        name: Node identifier (e.g. ``"chest_ecg"``).
        metrics: Per-event metrics of this node's (partitioned) engine.
        period_s: The node's event period (acquisition window).
    """

    name: str
    metrics: PartitionMetrics
    period_s: float

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigurationError("period must be positive")


@dataclass(frozen=True)
class BSNReport:
    """System-level outcome of a multi-node BSN configuration.

    Attributes:
        node_lifetimes_h: Battery lifetime per node, hours.
        bsn_lifetime_h: min over nodes (first-death network lifetime).
        channel_utilisation: Fraction of wall-clock the shared medium is
            busy under TDMA (must stay below 1 for feasibility).
        aggregator_power_w: Average aggregator-side power over all nodes.
        worst_event_delay_s: Worst per-node event delay including medium
            contention.
    """

    node_lifetimes_h: Mapping[str, float]
    bsn_lifetime_h: float
    channel_utilisation: float
    aggregator_power_w: float
    worst_event_delay_s: float


class MultiNodeBSN:
    """A body sensor network of independently partitioned XPro nodes.

    Args:
        nodes: The participating sensor nodes.
        protocol: ``"tdma"`` (shared channel, serialised slots) or
            ``"mimo"`` (concurrent transfers, the paper's remark).
        battery: Per-node battery model (40 mAh sensor default).
        baseline_w: Per-node always-on baseline power.
    """

    def __init__(
        self,
        nodes: List[BSNNode],
        protocol: str = "tdma",
        battery: BatteryModel = SENSOR_BATTERY,
        baseline_w: float = DEFAULT_BASELINE_W,
    ) -> None:
        if not nodes:
            raise ConfigurationError("a BSN needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        if protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {protocol!r}; available: {PROTOCOLS}"
            )
        self.nodes = list(nodes)
        self.protocol = protocol
        self.battery = battery
        self.baseline_w = float(baseline_w)

    # -- closed-form system report ------------------------------------------------

    def report(self) -> BSNReport:
        """Closed-form system metrics of the configured BSN."""
        lifetimes: Dict[str, float] = {}
        utilisation = 0.0
        aggregator_power = 0.0
        worst_delay = 0.0
        for node in self.nodes:
            m = node.metrics
            lifetimes[node.name] = battery_lifetime_hours(
                m.sensor_total_j, node.period_s, self.battery, self.baseline_w
            )
            utilisation += m.delay_link_s / node.period_s
            aggregator_power += m.aggregator_total_j / node.period_s
            contention = (
                self._tdma_wait(node) if self.protocol == "tdma" else 0.0
            )
            worst_delay = max(worst_delay, m.delay_total_s + contention)
        if self.protocol == "mimo":
            utilisation = max(
                n.metrics.delay_link_s / n.period_s for n in self.nodes
            )
        return BSNReport(
            node_lifetimes_h=lifetimes,
            bsn_lifetime_h=min(lifetimes.values()),
            channel_utilisation=utilisation,
            aggregator_power_w=aggregator_power,
            worst_event_delay_s=worst_delay,
        )

    def _tdma_wait(self, node: BSNNode) -> float:
        """Worst-case slot wait: everyone else's transfers go first."""
        return sum(
            other.metrics.delay_link_s
            for other in self.nodes
            if other.name != node.name
        )

    def is_feasible(self) -> bool:
        """Whether the shared medium can sustain all nodes' event rates."""
        return self.report().channel_utilisation < 1.0

    # -- discrete-event validation ----------------------------------------------

    def simulate(self, n_events: int) -> Dict[str, float]:
        """Event-driven simulation of the shared medium over ``n_events``
        events per node.

        Returns per-node mean latencies; raises
        :class:`~repro.errors.SimulationError` if any node's backlog
        diverges (the TDMA channel cannot keep up).
        """
        if n_events <= 0:
            raise ConfigurationError("n_events must be positive")
        shared_link_free = 0.0
        cpu_free = 0.0
        latencies: Dict[str, List[float]] = {n.name: [] for n in self.nodes}
        # Merge all events in release order.
        events: List[Tuple[float, BSNNode]] = [
            (k * node.period_s, node) for node in self.nodes for k in range(n_events)
        ]
        events.sort(key=lambda pair: (pair[0], pair[1].name))
        front_free: Dict[str, float] = {n.name: 0.0 for n in self.nodes}
        for release, node in events:
            m = node.metrics
            start = max(release, front_free[node.name])
            front_end = start + m.delay_front_s
            front_free[node.name] = front_end
            if self.protocol == "tdma":
                link_start = max(front_end, shared_link_free)
                link_end = link_start + m.delay_link_s
                shared_link_free = link_end
            else:  # mimo: no medium contention
                link_end = front_end + m.delay_link_s
            back_start = max(link_end, cpu_free)
            finish = back_start + m.delay_back_s
            cpu_free = finish
            latency = finish - release
            if latency > 100 * node.period_s:
                raise SimulationError(
                    f"node {node.name!r} backlog diverges: latency "
                    f"{latency:.4f}s >> period {node.period_s:.4f}s"
                )
            latencies[node.name].append(latency)
        return {
            name: sum(vals) / len(vals) for name, vals in latencies.items()
        }
