"""Fleet-scale parallel simulation driver.

The evaluation layers run large numbers of *independent* simulations: one
:class:`~repro.sim.multinode.MultiNodeBSN` report per body-sensor-network
configuration, one seeded :class:`~repro.sim.faults.FaultCampaign` per
scenario, one partition evaluation per design-space point.  Each task is
self-contained and carries its own seed, so the sweep is embarrassingly
parallel — this module fans it across worker processes.  Population-scale
fleets go through :func:`fleet_soa_rounds`, which shards the network axis
of a struct-of-arrays :class:`~repro.sim.fleetsoa.FleetSpec` and ships the
shared read-only columns once per worker; live stream populations go
through :func:`stream_soa_windows`, which shards the stream axis of a
:class:`~repro.stream.engine.StreamSpec` the same way.

Determinism contract
--------------------

Parallel execution is **bit-identical** to serial execution:

- no task ever shares RNG state — every stochastic task derives its own
  generator from an explicit seed (campaigns re-arm from ``campaign.seed``
  inside :meth:`~repro.sim.faults.FaultCampaign.run`; fan-outs of seeded
  replicas use :func:`derive_seeds`, which spawns independent
  ``SeedSequence`` children from one master seed);
- results are returned in task-submission order, never completion order;
- worker count and backend choice affect wall-clock only, never values.

One comparison caveat: results carrying NaN sentinels (e.g. the
``latency_s`` of a dropped event) are bit-identical across backends but
compare unequal under naive ``==`` because ``nan != nan`` — compare field
reprs (round-trip exact for floats) when asserting cross-backend identity.

The ``"serial"`` backend runs the identical task list in-process, which is
both the reference for the bit-identity tests and the fallback for
environments where process pools are unavailable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from itertools import product
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.faults import FaultCampaign, ResilienceReport
from repro.sim.multinode import BSNReport, MultiNodeBSN
from repro.sim.simulator import CrossEndSimulator

#: Supported execution backends.
BACKENDS = ("serial", "process")


@dataclass(frozen=True)
class ParallelConfig:
    """How a task fan-out executes.

    Attributes:
        backend: ``"process"`` fans tasks across worker processes;
            ``"serial"`` runs them in-process (reference semantics).
        max_workers: Worker-process count; ``None`` uses the CPU count.
        chunksize: Tasks handed to a worker per dispatch; raise it for
            many cheap tasks to amortise pickling overhead.
    """

    backend: str = "process"
    max_workers: Optional[int] = None
    chunksize: int = 1

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; available: {BACKENDS}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1 when given")
        if self.chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")

    def resolved_workers(self) -> int:
        """The actual worker count this configuration resolves to."""
        return self.max_workers or max(1, os.cpu_count() or 1)


#: In-process reference configuration (bit-identity baseline).
SERIAL = ParallelConfig(backend="serial")


def derive_seeds(master_seed: int, n_tasks: int) -> List[int]:
    """Independent per-task seeds from one master seed.

    Spawns ``n_tasks`` children of ``SeedSequence(master_seed)`` and
    collapses each to a 64-bit integer seed.  The derivation depends only
    on ``(master_seed, task_index)`` — never on worker assignment or
    completion order — so per-task RNG streams are identical however the
    tasks are scheduled.
    """
    if n_tasks < 0:
        raise ConfigurationError("n_tasks must be >= 0")
    root = np.random.SeedSequence(int(master_seed))
    return [
        int(child.generate_state(1, np.uint64)[0]) for child in root.spawn(n_tasks)
    ]


def parallel_map(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    config: Optional[ParallelConfig] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
) -> List[Any]:
    """Apply ``func`` to every item, preserving item order in the result.

    Args:
        func: A module-level callable (worker processes import it by
            qualified name, so lambdas and closures are rejected by the
            pickle layer).
        items: Task inputs; each must be picklable under the process
            backend.
        config: Execution configuration; defaults to the process backend
            with one worker per CPU.
        initializer: Optional module-level callable run once per worker
            before any task (and once in-process under the serial
            backend).  Use it to install per-run shared state so heavy
            invariants cross the process boundary once per worker rather
            than once per task.
        initargs: Arguments for ``initializer`` (picklable).

    Worker-death recovery: a worker process that dies mid-task (OOM
    kill, segfault, ``os._exit``) no longer poisons the whole fan-out
    with an opaque ``BrokenProcessPool``.  Because every task is
    self-contained and carries its own derived seed, the chunks lost with
    the dead worker are simply re-executed serially in-process — with
    bit-identical results.  A task that then fails *again* raises a
    :class:`~repro.errors.SimulationError` naming its index.  Ordinary
    exceptions raised by ``func`` inside a healthy worker propagate
    unchanged.

    Returns:
        ``[func(item) for item in items]`` — same values, any backend.
    """
    config = config or ParallelConfig()
    items = list(items)
    if not items:
        return []
    if config.backend == "serial":
        if initializer is not None:
            initializer(*initargs)
        return [func(item) for item in items]
    workers = min(config.resolved_workers(), len(items))
    chunks = [
        items[i : i + config.chunksize]
        for i in range(0, len(items), config.chunksize)
    ]
    chunk_results: List[Optional[List[Any]]] = [None] * len(chunks)
    broken: List[int] = []
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as pool:
        futures = [
            pool.submit(_run_item_chunk, (func, chunk)) for chunk in chunks
        ]
        for ci, future in enumerate(futures):
            try:
                chunk_results[ci] = future.result()
            except BrokenProcessPool:
                broken.append(ci)
    if broken:
        if initializer is not None:
            initializer(*initargs)
        for ci in broken:
            base = ci * config.chunksize
            retried: List[Any] = []
            for offset, item in enumerate(chunks[ci]):
                try:
                    retried.append(func(item))
                except Exception as exc:
                    raise SimulationError(
                        f"task {base + offset} failed in a worker process "
                        f"and again on the serial retry: {exc}"
                    ) from exc
            chunk_results[ci] = retried
    return [value for chunk in chunk_results for value in chunk]


def _run_item_chunk(
    payload: Tuple[Callable[[Any], Any], List[Any]]
) -> List[Any]:
    """Worker: evaluate one contiguous chunk of task items in order."""
    func, chunk = payload
    return [func(item) for item in chunk]


# -- fleet drivers (module-level workers so the process backend can pickle) --


def _bsn_report(bsn: MultiNodeBSN) -> BSNReport:
    """Worker: closed-form system report of one BSN configuration."""
    return bsn.report()


def _bsn_simulate(task: Tuple[MultiNodeBSN, int]) -> Dict[str, float]:
    """Worker: event-driven medium simulation of one BSN configuration."""
    bsn, n_events = task
    return bsn.simulate(n_events)


def fleet_reports(
    bsns: Sequence[MultiNodeBSN], config: Optional[ParallelConfig] = None
) -> List[BSNReport]:
    """Closed-form :class:`BSNReport` of every BSN in the fleet.

    The reports are pure functions of each BSN's configuration, so the
    parallel fan-out is trivially bit-identical to the serial one.
    """
    return parallel_map(_bsn_report, bsns, config)


def fleet_simulations(
    bsns: Sequence[MultiNodeBSN],
    n_events: int,
    config: Optional[ParallelConfig] = None,
) -> List[Dict[str, float]]:
    """Event-driven medium simulation of every BSN in the fleet.

    Args:
        bsns: The fleet; each network is simulated independently.
        n_events: Events per node streamed through each simulation.
        config: Execution configuration.

    Returns:
        Per-BSN mean-latency dictionaries, in fleet order.
    """
    if n_events <= 0:
        raise ConfigurationError("n_events must be positive")
    return parallel_map(_bsn_simulate, [(bsn, n_events) for bsn in bsns], config)


#: Per-process shared SoA fleet state installed by :func:`_init_fleet_shared`:
#: the read-only spec columns, round count and policy cross the process
#: boundary once per worker instead of once per shard.
_FLEET_SHARED: Dict[str, Any] = {}


def _init_fleet_shared(spec: Any, n_rounds: int, policy: Any) -> None:
    """Worker initializer: install the fleet's shared read-only arrays."""
    global _FLEET_SHARED
    _FLEET_SHARED = {"spec": spec, "n_rounds": n_rounds, "policy": policy}


def _fleet_soa_shard(bounds: Tuple[int, int]) -> Any:
    """Worker: simulate one contiguous network range of the shared fleet."""
    from repro.sim.fleetsoa import simulate_fleet_soa

    lo, hi = bounds
    shared = _FLEET_SHARED
    return simulate_fleet_soa(
        shared["spec"].slice_networks(lo, hi),
        shared["n_rounds"],
        policy=shared["policy"],
    )


def fleet_soa_rounds(
    spec: Any,
    n_rounds: int,
    policy: Any = None,
    config: Optional[ParallelConfig] = None,
    shards: Optional[int] = None,
) -> Any:
    """Process-parallel struct-of-arrays fleet simulation.

    Shards the network axis of a :class:`~repro.sim.fleetsoa.FleetSpec`
    into contiguous ranges (one per worker by default), hands the shared
    read-only spec columns to each worker once via the pool initializer,
    simulates every range with :func:`~repro.sim.fleetsoa.
    simulate_fleet_soa` and stitches the shards back into fleet order.

    Every network owns an independent seeded stream
    (:func:`derive_seeds`), every supervised device an independent health
    machine, so the sharded result is **bit-identical** to the unsharded
    one — and the serial backend to the process backend — by
    construction.

    Args:
        spec: The fleet layout (:class:`~repro.sim.fleetsoa.FleetSpec`).
        n_rounds: Supervision rounds to simulate.
        policy: Optional :class:`~repro.sim.supervise.HealthPolicy`.
        config: Execution configuration.
        shards: Shard count override (default: resolved worker count).

    Returns:
        One stitched :class:`~repro.sim.fleetsoa.FleetResult`.
    """
    from repro.sim.fleetsoa import concat_fleet_results, simulate_fleet_soa

    if n_rounds < 1:
        raise ConfigurationError("n_rounds must be >= 1")
    if shards is not None and shards < 1:
        raise ConfigurationError("shards must be >= 1 when given")
    config = config or ParallelConfig()
    n_networks = spec.n_networks
    if n_networks == 0:
        return simulate_fleet_soa(spec, n_rounds, policy=policy)
    n_shards = min(shards or config.resolved_workers(), n_networks)
    bounds = [
        (
            (s * n_networks) // n_shards,
            ((s + 1) * n_networks) // n_shards,
        )
        for s in range(n_shards)
    ]
    try:
        parts = parallel_map(
            _fleet_soa_shard,
            bounds,
            config,
            initializer=_init_fleet_shared,
            initargs=(spec, n_rounds, policy),
        )
    finally:
        _init_fleet_shared(None, 0, None)  # don't leak serial-backend state
    return concat_fleet_results(parts)


#: Per-process shared stream-pool state installed by
#: :func:`_init_stream_shared`: the read-only spec columns, backend,
#: sample matrix and tick cadence cross the process boundary once per
#: worker instead of once per shard.
_STREAM_SHARED: Dict[str, Any] = {}


def _init_stream_shared(
    spec: Any, backend: Any, samples: Any, tick_samples: int, policy: Any
) -> None:
    """Worker initializer: install the pool's shared read-only state."""
    global _STREAM_SHARED
    _STREAM_SHARED = {
        "spec": spec,
        "backend": backend,
        "samples": samples,
        "tick_samples": tick_samples,
        "policy": policy,
    }


def _stream_soa_shard(bounds: Tuple[int, int]) -> Any:
    """Worker: run one contiguous stream range of the shared pool."""
    from repro.stream.engine import run_stream_pool

    lo, hi = bounds
    shared = _STREAM_SHARED
    return run_stream_pool(
        shared["spec"].slice_streams(lo, hi),
        shared["backend"],
        shared["samples"][lo:hi],
        shared["tick_samples"],
        policy=shared["policy"],
    )


def stream_soa_windows(
    spec: Any,
    backend: Any,
    samples: Any,
    tick_samples: int,
    policy: str = "skip_stale",
    config: Optional[ParallelConfig] = None,
    shards: Optional[int] = None,
) -> Any:
    """Process-parallel struct-of-arrays multi-stream window scoring.

    Shards the stream axis of a :class:`~repro.stream.engine.StreamSpec`
    into contiguous ranges (one per worker by default), ships the shared
    read-only spec columns, backend and sample matrix to each worker once
    via the pool initializer, runs every range with
    :func:`~repro.stream.engine.run_stream_pool` and stitches the shards
    back into canonical stream order.

    Streams are mutually independent — each consumes only its own sample
    row and ring buffer — so the sharded result is **bit-identical** to
    the unsharded one (and the serial backend to the process backend)
    under :func:`~repro.stream.engine.stream_results_identical`.

    Args:
        spec: The stream population (:class:`~repro.stream.engine.
            StreamSpec`).
        backend: Picklable window scorer (e.g. :class:`~repro.stream.
            engine.MomentsBackend`).
        samples: ``(n_streams, T)`` sample matrix.
        tick_samples: Samples ingested between scoring ticks.
        policy: Backpressure policy (see :class:`~repro.stream.engine.
            StreamPool`).
        config: Execution configuration.
        shards: Shard count override (default: resolved worker count).

    Returns:
        One stitched :class:`~repro.stream.engine.StreamRunResult`.
    """
    import numpy as _np

    from repro.stream.engine import concat_stream_results, run_stream_pool

    if tick_samples < 1:
        raise ConfigurationError("tick_samples must be >= 1")
    if shards is not None and shards < 1:
        raise ConfigurationError("shards must be >= 1 when given")
    config = config or ParallelConfig()
    x = _np.asarray(samples, dtype=_np.float64)
    if x.ndim != 2 or x.shape[0] != spec.n_streams:
        raise ConfigurationError(
            f"samples must be ({spec.n_streams}, T), got {x.shape}"
        )
    n_streams = spec.n_streams
    n_shards = min(shards or config.resolved_workers(), n_streams)
    if n_shards <= 1:
        return run_stream_pool(spec, backend, x, tick_samples, policy=policy)
    bounds = [
        (
            (s * n_streams) // n_shards,
            ((s + 1) * n_streams) // n_shards,
        )
        for s in range(n_shards)
    ]
    try:
        parts = parallel_map(
            _stream_soa_shard,
            bounds,
            config,
            initializer=_init_stream_shared,
            initargs=(spec, backend, x, tick_samples, policy),
        )
    finally:
        _init_stream_shared(None, None, None, 1, None)
    return concat_stream_results(parts, [lo for lo, _ in bounds])


#: Per-process shared subspace-training state installed by
#: :func:`_init_subspace_shared`: the feature matrix, labels, kernel and
#: split indices cross the process boundary once per worker instead of
#: once per draw.
_SUBSPACE_SHARED: Dict[str, Any] = {}


def _init_subspace_shared(payload: Dict[str, Any]) -> None:
    """Worker initializer: install the training run's shared state."""
    global _SUBSPACE_SHARED
    _SUBSPACE_SHARED = payload


def _subspace_draw_task(task: Tuple[Any, int, int]) -> Any:
    """Worker: train and score one subspace draw on the shared state."""
    from repro.ml.subspace import fit_subspace_draw

    subset, member_seed, fold_seed = task
    shared = _SUBSPACE_SHARED
    return fit_subspace_draw(
        shared["X"],
        shared["y"],
        subset,
        shared["kernel"],
        shared["C"],
        member_seed,
        fold_seed,
        shared["cv_folds"],
        shared["fit_idx"],
        shared["val_idx"],
        shared["pre"],
    )


def subspace_draws(
    X: Any,
    y: Any,
    subsets: Sequence[Any],
    seeds: Sequence[Tuple[int, int]],
    kernel: Any,
    C: float,
    cv_folds: Optional[int],
    fit_idx: Any,
    val_idx: Any,
    config: Optional[ParallelConfig] = None,
) -> List[Any]:
    """Process-parallel training of the random-subspace draws.

    Ships ``(X, y, kernel, split indices)`` and the kernel's shared
    per-column Gram precompute to each worker once via the pool
    initializer, then fans one
    :func:`~repro.ml.subspace.fit_subspace_draw` task per draw.  Every
    draw carries its own ``(member_seed, fold_seed)`` pair and never
    touches shared RNG state, so the member list is **bit-identical** to
    the serial path — results come back in draw order, never completion
    order.

    Args:
        X: Full ``(n, d)`` normalised feature matrix.
        y: Binary {0, 1} labels.
        subsets: Pre-drawn feature-index tuples, one per draw.
        seeds: Per-draw ``(member_seed, fold_seed)`` pairs.
        kernel: Kernel instance shared by every draw (picklable).
        C: Soft-margin penalty.
        cv_folds: ``None`` for the holdout protocol, else the CV fold count.
        fit_idx: Holdout training rows.
        val_idx: Holdout validation rows.
        config: Execution configuration.

    Returns:
        One :class:`~repro.ml.subspace.SubspaceMember` (or ``None`` for an
        untrainable draw) per subset, in draw order.
    """
    if len(subsets) != len(seeds):
        raise ConfigurationError("subsets and seeds must pair up one per draw")
    payload = {
        "X": X,
        "y": y,
        "kernel": kernel,
        "C": C,
        "cv_folds": cv_folds,
        "fit_idx": fit_idx,
        "val_idx": val_idx,
        "pre": kernel.gram_precompute(X),
    }
    tasks = [
        (subsets[d], seeds[d][0], seeds[d][1]) for d in range(len(subsets))
    ]
    try:
        return parallel_map(
            _subspace_draw_task,
            tasks,
            config,
            initializer=_init_subspace_shared,
            initargs=(payload,),
        )
    finally:
        _init_subspace_shared({})  # don't leak serial-backend state


@dataclass(frozen=True)
class CampaignTask:
    """One seeded fault-injection campaign to run against one simulator.

    The campaign re-arms every fault model from its own seed inside
    :meth:`~repro.sim.faults.FaultCampaign.run`, so the task produces the
    same :class:`~repro.sim.faults.ResilienceReport` wherever it executes.

    Attributes:
        label: Task name carried through to the result ordering.
        campaign: The seeded fault campaign.
        simulator: Supplies partition metrics and the event period.
        n_events: Events streamed through the campaign.
        run_kwargs: Extra keyword arguments forwarded to
            :meth:`FaultCampaign.run` (ARQ config, degradation policy,
            integrity config, ...).  Must be picklable.
    """

    label: str
    campaign: FaultCampaign
    simulator: CrossEndSimulator
    n_events: int
    run_kwargs: Tuple[Tuple[str, Any], ...] = ()

    def run(self) -> ResilienceReport:
        """Execute the campaign exactly as the serial path would."""
        return self.campaign.run(
            self.simulator, self.n_events, **dict(self.run_kwargs)
        )


def _run_campaign(task: CampaignTask) -> ResilienceReport:
    """Worker: one fault campaign, reset-from-seed semantics."""
    return task.run()


def run_campaigns(
    tasks: Sequence[CampaignTask], config: Optional[ParallelConfig] = None
) -> List[ResilienceReport]:
    """Run every fault campaign, in task order, on the configured backend."""
    return parallel_map(_run_campaign, tasks, config)


#: Per-process shared sweep state installed by :func:`_init_sweep_shared`.
#: Workers receive it once (pool initializer) instead of per task.
_SWEEP_SHARED: Dict[str, Any] = {}


def _init_sweep_shared(shared: Dict[str, Any]) -> None:
    """Worker initializer: install the sweep's shared keyword arguments."""
    global _SWEEP_SHARED
    _SWEEP_SHARED = shared


def _call_with_params(
    task: Tuple[Callable[..., Any], Tuple[Tuple[str, Any], ...]]
) -> Any:
    """Worker: evaluate one design-space point."""
    func, params = task
    kwargs = dict(_SWEEP_SHARED)
    kwargs.update(params)
    return func(**kwargs)


def sweep(
    func: Callable[..., Any],
    grid: Mapping[str, Sequence[Any]],
    config: Optional[ParallelConfig] = None,
    shared: Optional[Mapping[str, Any]] = None,
    checkpoint: Optional[object] = None,
    resume: bool = False,
) -> List[Tuple[Dict[str, Any], Any]]:
    """Evaluate ``func`` over the cartesian product of a parameter grid.

    The design-space sweep primitive: ``grid`` maps parameter names to the
    values each may take; every combination is evaluated as one task.

    Args:
        func: Module-level callable accepting the grid's keys as keyword
            arguments.
        grid: Parameter name -> candidate values.  Iteration order of the
            mapping fixes the product order (first key varies slowest).
        config: Execution configuration.
        shared: Extra keyword arguments passed to *every* point, shipped
            once per worker (pool initializer) instead of once per task.
            Use it for heavyweight sweep-invariant state — e.g. an
            :class:`~repro.graph.stgraph.STGraphTemplate` or a
            :class:`~repro.sim.evaluate.PartitionEvaluationCache` when the
            topology does not vary across the grid.  Names must not
            collide with grid keys.  Each worker operates on its own copy, so
            mutations (accumulated warm states, memo entries) speed up
            that worker without feeding back to the caller — results stay
            bit-identical to the serial backend either way.
        checkpoint: Optional
            :class:`~repro.sim.supervise.SweepCheckpointer`; the grid is
            evaluated in batches of ``checkpoint.every`` points and the
            completed ``index -> value`` map is snapshot after each batch
            (crash-safe atomic writes).
        resume: Skip the points recorded in ``checkpoint``'s last
            snapshot and evaluate only the remainder.  Every point is an
            independent seeded task, so the stitched result is
            bit-identical to an uninterrupted sweep.

    Returns:
        ``(params, value)`` pairs in deterministic product order, where
        ``params`` is the keyword dictionary of that point.
    """
    if not grid:
        raise ConfigurationError("sweep grid must name at least one parameter")
    if resume and checkpoint is None:
        raise ConfigurationError("resume=True requires a checkpoint")
    names = list(grid.keys())
    overlap = set(names) & set(shared or {})
    if overlap:
        raise ConfigurationError(
            f"sweep grid and shared kwargs overlap: {sorted(overlap)}"
        )
    combos = [
        tuple(zip(names, values)) for values in product(*(grid[n] for n in names))
    ]
    if checkpoint is None:
        try:
            results = parallel_map(
                _call_with_params,
                [(func, c) for c in combos],
                config,
                initializer=_init_sweep_shared,
                initargs=(dict(shared or {}),),
            )
        finally:
            _init_sweep_shared({})  # don't leak serial-backend state
        return [(dict(c), r) for c, r in zip(combos, results)]
    done: Dict[int, Any] = (
        checkpoint.load(func=func, grid=grid, shared=shared) if resume else {}
    )
    pending = [i for i in range(len(combos)) if i not in done]
    try:
        for lo in range(0, len(pending), checkpoint.every):
            batch = pending[lo : lo + checkpoint.every]
            values = parallel_map(
                _call_with_params,
                [(func, combos[i]) for i in batch],
                config,
                initializer=_init_sweep_shared,
                initargs=(dict(shared or {}),),
            )
            for i, value in zip(batch, values):
                done[i] = value
            checkpoint.save(func=func, grid=grid, shared=shared, done=done)
    finally:
        _init_sweep_shared({})  # don't leak serial-backend state across sweeps
    return [(dict(combos[i]), done[i]) for i in range(len(combos))]
