"""Event-timeline (Gantt) rendering of simulated schedules.

Turns the per-event records of :class:`~repro.sim.simulator.CrossEndSimulator`
into a terminal Gantt chart — front-end compute, link transfer and back-end
compute lanes per event — so pipelining and contention are visible at a
glance.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.sim.simulator import EventRecord

_LANE_GLYPHS = {"front": "F", "link": "=", "back": "B"}


def render_timeline(
    events: Sequence[EventRecord],
    width: int = 72,
    max_events: int = 12,
) -> str:
    """Render event stages on a shared time axis.

    Args:
        events: Records from a simulation run (the first ``max_events``
            are drawn).
        width: Character width of the time axis.
        max_events: Rows to draw.

    Returns:
        The chart: one row per event, ``F`` = front-end compute,
        ``=`` = link transfer, ``B`` = back-end compute, ``.`` = waiting.
    """
    if not events:
        raise ConfigurationError("no events to render")
    if width < 10:
        raise ConfigurationError("width must be at least 10")
    shown = list(events)[:max_events]
    t0 = shown[0].release_s
    t1 = max(e.finish_s for e in shown)
    span = max(t1 - t0, 1e-12)

    def column(t: float) -> int:
        return min(width - 1, int((t - t0) / span * (width - 1)))

    lines: List[str] = [
        f"time axis: {t0 * 1e3:.3f} ms .. {t1 * 1e3:.3f} ms "
        f"({span * 1e3:.3f} ms span)"
    ]
    for event in shown:
        row = [" "] * width
        # Waiting period between release and first activity.
        for c in range(column(event.release_s), column(event.front_start_s)):
            row[c] = "."
        spans = [
            ("front", event.front_start_s, event.link_start_s),
            ("link", event.link_start_s, event.back_start_s),
            ("back", event.back_start_s, event.finish_s),
        ]
        for lane, start, end in spans:
            lo, hi = column(start), column(end)
            glyph = _LANE_GLYPHS[lane]
            for c in range(lo, max(hi, lo + (1 if end > start else 0))):
                row[c] = glyph
        lines.append(f"ev{event.index:03d} |{''.join(row)}|")
    lines.append("legend: F front-end compute, = link transfer, B back-end, . queued")
    return "\n".join(lines)
