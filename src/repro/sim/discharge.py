"""Battery discharge-trace simulation.

The closed-form lifetime model (:mod:`repro.sim.lifetime`) divides usable
energy by average power.  This simulator discharges the battery *through
time* instead: state of charge is integrated event by event, the
rate-capacity derating is applied to the instantaneous load (heavy loads
waste charge), and the node dies when the state of charge is exhausted.
It exists to (a) validate the closed-form model against an independent
integration and (b) support duty-cycle schedules the closed form cannot
express (e.g. nightly analysis pauses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hw.battery import BatteryModel, SENSOR_BATTERY
from repro.sim.lifetime import DEFAULT_BASELINE_W

#: Schedule callback: absolute time (s) -> duty factor in [0, 1]
#: (1 = events run at the nominal rate, 0 = analysis paused).
Schedule = Callable[[float], float]


@dataclass(frozen=True)
class DischargeTrace:
    """Result of a discharge simulation.

    Attributes:
        lifetime_hours: Time until the battery was exhausted.
        samples: (time_s, state_of_charge_fraction) pairs along the run.
        events_processed: Total analytic events completed before death.
    """

    lifetime_hours: float
    samples: Tuple[Tuple[float, float], ...]
    events_processed: int


def simulate_discharge(
    energy_per_event_j: float,
    period_s: float,
    battery: BatteryModel = SENSOR_BATTERY,
    baseline_w: float = DEFAULT_BASELINE_W,
    schedule: Optional[Schedule] = None,
    time_step_s: float = 3600.0,
    max_hours: float = 1e6,
    n_trace_samples: int = 64,
) -> DischargeTrace:
    """Integrate the battery's state of charge until exhaustion.

    Args:
        energy_per_event_j: Per-event sensor energy (from the evaluator).
        period_s: Nominal event period.
        battery: Battery model (rate-capacity derating applied per step).
        baseline_w: Always-on node power.
        schedule: Optional duty-factor function of absolute time; default
            is always-on.
        time_step_s: Integration step (coarse is fine: loads are steady
            within a step).
        max_hours: Safety cap on simulated time.
        n_trace_samples: Number of (time, SoC) samples to retain.

    Returns:
        The :class:`DischargeTrace`.
    """
    if energy_per_event_j < 0 or period_s <= 0:
        raise ConfigurationError("invalid event load")
    if time_step_s <= 0:
        raise ConfigurationError("time_step_s must be positive")
    duty = schedule or (lambda _t: 1.0)

    capacity_j = battery.energy_j
    charge = capacity_j
    t = 0.0
    events = 0
    samples: List[Tuple[float, float]] = [(0.0, 1.0)]
    sample_every = max(1, int(max_hours * 3600 / time_step_s / n_trace_samples))
    step_index = 0
    while charge > 0 and t < max_hours * 3600:
        factor = float(duty(t))
        if not 0.0 <= factor <= 1.0:
            raise ConfigurationError(f"schedule returned {factor} at t={t}")
        event_rate = factor / period_s
        power = baseline_w + energy_per_event_j * event_rate
        # Rate-capacity effect: at this load only a fraction of the rated
        # energy is extractable; drain proportionally faster.
        usable = battery.usable_energy_j(power)
        waste_factor = capacity_j / usable if usable > 0 else float("inf")
        charge -= power * waste_factor * time_step_s
        events += int(round(event_rate * time_step_s))
        t += time_step_s
        step_index += 1
        if step_index % sample_every == 0:
            samples.append((t, max(charge, 0.0) / capacity_j))
    samples.append((t, max(charge, 0.0) / capacity_j))
    return DischargeTrace(
        lifetime_hours=t / 3600.0,
        samples=tuple(samples),
        events_processed=events,
    )
