"""Fleet supervision: health states, circuit breakers, checkpoint/resume.

Long campaigns and population-scale fleets need a supervisory tier above
the per-event machinery of :mod:`repro.sim.faults`:

- a per-device **health state machine** (:class:`DeviceHealth`,
  :class:`FleetSupervisor`): campaign outcomes drive each device through
  ``healthy -> degraded -> quarantined -> recovering``, quarantine removes
  the device from TDMA/MIMO scheduling (:meth:`FleetSupervisor.
  filter_nodes`), and drop/degraded/battery figures are accounted per
  state so operators can see what each state costs;
- a **link circuit breaker** (:class:`LinkCircuitBreaker`): after
  ``failure_threshold`` consecutive exhausted-retry drops the breaker
  opens and the sensor stops burning radio energy on a dead link,
  re-probing on an exponential-backoff schedule of whole events.  The
  breaker is a plain deterministic state machine — campaigns that carry
  one replay bit-for-bit — and composes with
  :class:`~repro.core.degrade.GracefulDegradationPolicy` (a blocked event
  is a drop signal to the policy, so an open breaker drives the
  deployment onto the in-sensor fallback cut);
- **crash-safe checkpoint/resume** for :meth:`~repro.sim.faults.
  FaultCampaign.run` (:class:`CampaignCheckpointer`), :func:`~repro.sim.
  parallel.sweep` (:class:`SweepCheckpointer`) and :func:`~repro.sim.
  chaos.chaos_search` (:class:`ChaosCheckpointer`).  Snapshots carry RNG
  bit-generator state, the campaign cursor, accumulated counters and the
  evaluated-outcome archive as digest-pinned canonical JSON (the PR-6
  replay-bundle discipline: floats via ``float.hex()``, identifiers via
  SHA-256, never ``hash()``), so a resumed run reproduces the
  uninterrupted run's report **bit-for-bit** on both the fast and scalar
  campaign runners.

Checkpoint files are self-validating: a ``config_key`` digest pins the
exact run configuration (campaign seed, fault signatures, runner, ARQ,
policy, simulator and breaker parameters), and a ``state_digest`` pins
the state payload, so a checkpoint written by a different run — or edited
by hand — is rejected with :class:`~repro.errors.CheckpointError` instead
of silently resuming the wrong campaign.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CheckpointError, ConfigurationError
from repro.hw.arq import ARQConfig
from repro.sim.chaos import (
    ChaosOutcome,
    ChaosScenario,
    ChaosScore,
    _metrics_to_dict,
    canonical_json,
    stable_digest,
)
from repro.sim.faults import (
    DELIVERED,
    AggregatorStall,
    BurstLoss,
    DecisionRecord,
    LinkOutage,
    PayloadCorruption,
    ResilienceReport,
    SensorBrownout,
)

#: Schema marker stamped into every checkpoint file.
CHECKPOINT_SCHEMA = "xpro-checkpoint-v1"

#: Health states a supervised device moves through.
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"
RECOVERING = "recovering"
HEALTH_STATES = (HEALTHY, DEGRADED, QUARANTINED, RECOVERING)


# -- float / RNG / record codecs -----------------------------------------------


def _enc_float(value: float) -> str:
    """Bit-exact text form of one float (NaN/inf-safe, resume-stable)."""
    return float(value).hex()


def _dec_float(token: str) -> float:
    """Inverse of :func:`_enc_float`."""
    return float.fromhex(token)


def rng_state(generator: np.random.Generator) -> Dict[str, Any]:
    """JSON-safe snapshot of a numpy ``Generator``'s bit-generator state."""
    return generator.bit_generator.state


def restore_rng(state: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild a numpy ``Generator`` from :func:`rng_state` output."""
    generator = np.random.default_rng(0)
    try:
        generator.bit_generator.state = dict(state)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"invalid RNG state in checkpoint: {exc}") from exc
    return generator


def _enc_record(record: DecisionRecord) -> List[Any]:
    return [
        record.index,
        record.status,
        record.tries,
        _enc_float(record.latency_s),
        record.fallback,
        record.staleness,
        record.corrupted,
    ]


def _dec_record(row: Sequence[Any]) -> DecisionRecord:
    return DecisionRecord(
        index=int(row[0]),
        status=str(row[1]),
        tries=int(row[2]),
        latency_s=_dec_float(row[3]),
        fallback=bool(row[4]),
        staleness=int(row[5]),
        corrupted=bool(row[6]),
    )


_REPORT_FLOATS = ("sensor_energy_j", "aggregator_energy_j", "retry_energy_j")
_REPORT_INTS = (
    "retransmissions",
    "fallback_events",
    "deadline_misses",
    "frames_sent",
    "frames_corrupted",
    "corruptions_detected",
    "corrupted_deliveries",
    "integrity_discards",
)


def _enc_report(report: ResilienceReport) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "records": [_enc_record(r) for r in report.records]
    }
    for name in _REPORT_FLOATS:
        data[name] = _enc_float(getattr(report, name))
    for name in _REPORT_INTS:
        data[name] = int(getattr(report, name))
    return data


def _dec_report(data: Mapping[str, Any]) -> ResilienceReport:
    kwargs: Dict[str, Any] = {
        "records": [_dec_record(row) for row in data["records"]]
    }
    for name in _REPORT_FLOATS:
        kwargs[name] = _dec_float(data[name])
    for name in _REPORT_INTS:
        kwargs[name] = int(data[name])
    return ResilienceReport(**kwargs)


# -- fault signatures and mutable fault state ----------------------------------


def fault_signature(fault: Any) -> Dict[str, Any]:
    """Canonical configuration signature of one checkpointable fault model.

    Enters the checkpoint's ``config_key`` digest, so a resume against a
    campaign with different fault parameters (or order) is rejected.
    Raises :class:`~repro.errors.CheckpointError` for fault types this
    module cannot snapshot (subclassed or third-party models).
    """
    if isinstance(fault, BurstLoss) and type(fault) is BurstLoss:
        return {"type": "BurstLoss", "params": asdict(fault.params)}
    if isinstance(fault, PayloadCorruption) and type(fault) is PayloadCorruption:
        return {
            "type": "PayloadCorruption",
            "rate": float(fault.rate),
            "mode": fault.mode,
            "max_bit_flips": int(fault.max_bit_flips),
        }
    for cls in (LinkOutage, SensorBrownout, AggregatorStall):
        if type(fault) is cls:
            data: Dict[str, Any] = {
                "type": cls.__name__,
                "start_event": int(fault.start_event),
                "n_events": int(fault.n_events),
            }
            if cls is AggregatorStall:
                data["extra_delay_s"] = float(fault.extra_delay_s)
            return data
    raise CheckpointError(
        f"cannot checkpoint campaigns containing {type(fault).__name__}: "
        "only the fault models shipped by repro.sim.faults have exact "
        "state snapshots"
    )


def fault_state(fault: Any) -> Dict[str, Any]:
    """Snapshot the mutable (RNG/chain) state of one armed fault model."""
    if type(fault) is BurstLoss:
        channel = fault._channel
        if channel is None:
            raise CheckpointError(
                "BurstLoss has no armed channel: reset the campaign first"
            )
        return {
            "kind": "burst",
            "rng": rng_state(channel._rng),
            "bad": bool(channel._bad),
        }
    if type(fault) is PayloadCorruption:
        return {"kind": "corruption", "rng": rng_state(fault._require_rng())}
    fault_signature(fault)  # reject unknown types with the clearer message
    return {"kind": "window"}


def load_fault_state(fault: Any, state: Mapping[str, Any]) -> None:
    """Restore :func:`fault_state` output into an armed fault model."""
    if type(fault) is BurstLoss:
        channel = fault._channel
        if channel is None or state.get("kind") != "burst":
            raise CheckpointError("checkpoint fault state mismatch (BurstLoss)")
        channel._rng = restore_rng(state["rng"])
        channel._bad = bool(state["bad"])
        return
    if type(fault) is PayloadCorruption:
        if state.get("kind") != "corruption":
            raise CheckpointError(
                "checkpoint fault state mismatch (PayloadCorruption)"
            )
        fault._rng = restore_rng(state["rng"])
        return
    if state.get("kind") != "window":
        raise CheckpointError(
            f"checkpoint fault state mismatch ({type(fault).__name__})"
        )


def _arq_to_dict(arq: ARQConfig) -> Dict[str, Any]:
    return {
        "max_retries": arq.max_retries,
        "timeout_s": float(arq.timeout_s),
        "backoff_factor": float(arq.backoff_factor),
        "jitter_fraction": float(arq.jitter_fraction),
    }


def _integrity_to_dict(integrity: Any) -> Optional[Dict[str, Any]]:
    if integrity is None:
        return None
    return {
        "max_payload_bytes": integrity.framing.max_payload_bytes,
        "crc": integrity.framing.crc,
        "version": integrity.framing.version,
        "retransmit_on_corrupt": integrity.retransmit_on_corrupt,
        "values_per_payload": integrity.values_per_payload,
    }


# -- the checkpoint store ------------------------------------------------------


def save_checkpoint(
    path: str | Path, kind: str, config_key: str, state: Dict[str, Any]
) -> Path:
    """Atomically write one digest-pinned checkpoint document.

    The file carries the schema marker, the run's ``config_key`` and a
    ``state_digest`` (SHA-256 of the canonical state JSON), so
    :func:`load_checkpoint` can reject stale, foreign or hand-edited
    checkpoints.  The write goes through a temporary file plus
    ``os.replace`` — a crash mid-save leaves the previous checkpoint
    intact instead of a torn file.
    """
    target = Path(path)
    try:
        digest = stable_digest(state)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint state is not canonical-JSON-safe: {exc}"
        ) from exc
    doc = {
        "schema": CHECKPOINT_SCHEMA,
        "kind": kind,
        "config_key": config_key,
        "state_digest": digest,
        "state": state,
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(doc, sort_keys=True) + "\n")
    os.replace(tmp, target)
    return target


def load_checkpoint(
    path: str | Path, kind: str, config_key: str
) -> Dict[str, Any]:
    """Load and validate one checkpoint document, returning its state.

    Raises :class:`~repro.errors.CheckpointError` when the file is
    missing, unparseable, of the wrong kind, written for a different run
    configuration, or fails its state digest (tampering/corruption).
    """
    target = Path(path)
    try:
        data = json.loads(target.read_text())
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{target} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{target}: not a checkpoint file "
            f"(expected schema {CHECKPOINT_SCHEMA!r})"
        )
    if data.get("kind") != kind:
        raise CheckpointError(
            f"{target}: checkpoint kind {data.get('kind')!r} != expected {kind!r}"
        )
    if data.get("config_key") != config_key:
        raise CheckpointError(
            f"{target}: checkpoint was written for a different run "
            f"configuration (config_key {data.get('config_key')} != "
            f"{config_key}); refusing to resume"
        )
    state = data.get("state")
    if not isinstance(state, dict):
        raise CheckpointError(f"{target}: checkpoint misses its state payload")
    if stable_digest(state) != data.get("state_digest"):
        raise CheckpointError(
            f"{target}: state digest mismatch — the checkpoint was edited "
            "or corrupted"
        )
    return state


# -- the link circuit breaker --------------------------------------------------


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs of a :class:`LinkCircuitBreaker`.

    Attributes:
        failure_threshold: Consecutive exhausted-retry drops that open the
            breaker.
        probe_backoff_events: Events to wait (blocking the link) before
            the first half-open probe after opening.
        backoff_factor: Multiplicative growth of the probe wait after each
            failed probe.
        max_backoff_events: Upper bound on the probe wait.
        probe_retries: ARQ retries granted to one probe transmission
            (``0`` = single-shot probe); always capped by the campaign's
            own ARQ budget.
    """

    failure_threshold: int = 3
    probe_backoff_events: int = 8
    backoff_factor: float = 2.0
    max_backoff_events: int = 256
    probe_retries: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.probe_backoff_events < 1:
            raise ConfigurationError("probe_backoff_events must be >= 1")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.max_backoff_events < self.probe_backoff_events:
            raise ConfigurationError(
                "max_backoff_events must be >= probe_backoff_events"
            )
        if self.probe_retries < 0:
            raise ConfigurationError("probe_retries must be >= 0")


class LinkCircuitBreaker:
    """Deterministic circuit breaker over the wireless link's ARQ layer.

    States:

    - **closed** — traffic flows; ``failure_threshold`` consecutive
      exhausted-retry drops open the breaker;
    - **open** — events are blocked (the radio stays off; the decision
      layer serves the last-known-good cache or drops) until the probe
      schedule fires;
    - **half-open** — one probe transmission with a reduced retry budget;
      a delivered probe closes the breaker, a failed probe re-opens it
      with the probe wait grown by ``backoff_factor`` (capped).

    The breaker holds no RNG: given the same sequence of
    ``decide``/``record`` calls it follows the same trajectory, which is
    what keeps breaker-wrapped campaigns bit-identical across the scalar
    and fast runners and across checkpoint resumes.
    """

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        self.config = config or BreakerConfig()
        self.reset()

    def reset(self) -> None:
        """Return to the initial closed state and zero the counters."""
        self._open = False
        self._probing = False
        self._failures = 0
        self._backoff = self.config.probe_backoff_events
        self._probe_at = 0
        self.blocked_events = 0
        self.probes = 0
        self.probe_successes = 0
        self.opens = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (probe in flight)."""
        if not self._open:
            return "closed"
        return "half_open" if self._probing else "open"

    def probe_arq(self, arq: ARQConfig) -> ARQConfig:
        """The reduced-budget ARQ policy of one half-open probe.

        Shares the campaign ARQ's timeout/backoff/jitter (so per-retry
        backoff waits are identical — :meth:`~repro.hw.arq.ARQConfig.
        backoff_s` does not depend on ``max_retries``) with the retry
        budget cut to ``probe_retries``.
        """
        if arq.max_retries is None:
            raise ConfigurationError(
                "a circuit breaker requires a bounded ARQConfig"
            )
        return ARQConfig(
            max_retries=min(self.config.probe_retries, arq.max_retries),
            timeout_s=arq.timeout_s,
            backoff_factor=arq.backoff_factor,
            jitter_fraction=arq.jitter_fraction,
        )

    def decide(self, event_index: int) -> str:
        """Gate one event: ``"allow"``, ``"block"`` or ``"probe"``.

        Call exactly once per non-browned-out event, in event order;
        follow every ``"allow"``/``"probe"`` with :meth:`record`.
        """
        if not self._open:
            return "allow"
        if event_index >= self._probe_at:
            self._probing = True
            self.probes += 1
            return "probe"
        self.blocked_events += 1
        return "block"

    def record(self, event_index: int, delivered: bool) -> None:
        """Fold the link-level outcome of one allowed/probed event in."""
        probing = self._probing
        self._probing = False
        if delivered:
            if probing:
                self.probe_successes += 1
            self._open = False
            self._failures = 0
            self._backoff = self.config.probe_backoff_events
            return
        if probing:
            self._backoff = min(
                int(math.ceil(self._backoff * self.config.backoff_factor)),
                self.config.max_backoff_events,
            )
            self._probe_at = event_index + self._backoff
            return
        self._failures += 1
        if self._failures >= self.config.failure_threshold:
            self._open = True
            self.opens += 1
            self._failures = 0
            self._backoff = self.config.probe_backoff_events
            self._probe_at = event_index + self._backoff

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot the mutable breaker state (config pinned separately)."""
        return {
            "open": self._open,
            "probing": self._probing,
            "failures": self._failures,
            "backoff": self._backoff,
            "probe_at": self._probe_at,
            "blocked_events": self.blocked_events,
            "probes": self.probes,
            "probe_successes": self.probe_successes,
            "opens": self.opens,
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self._open = bool(state["open"])
        self._probing = bool(state["probing"])
        self._failures = int(state["failures"])
        self._backoff = int(state["backoff"])
        self._probe_at = int(state["probe_at"])
        self.blocked_events = int(state["blocked_events"])
        self.probes = int(state["probes"])
        self.probe_successes = int(state["probe_successes"])
        self.opens = int(state["opens"])


def wasted_radio_j(
    report: ResilienceReport,
    metrics: Any,
    fallback_metrics: Optional[Any] = None,
) -> float:
    """Radio energy (J) spent on events that produced no fresh decision.

    Sums, over every non-delivered record with at least one transmission,
    ``tries * (sensor_tx_j + sensor_rx_j + aggregator_radio_j)`` of the
    metrics active for that event (the fallback cut's when the record ran
    in fallback).  This is precisely the energy a circuit breaker can
    save: retries that bought a delivery are *not* wasted, and blocked
    events (``tries == 0``) cost nothing.
    """
    total = 0.0
    for record in report.records:
        if record.status == DELIVERED or record.tries == 0:
            continue
        active = (
            fallback_metrics
            if (record.fallback and fallback_metrics is not None)
            else metrics
        )
        total += record.tries * (
            active.sensor_tx_j + active.sensor_rx_j + active.aggregator_radio_j
        )
    return total


# -- campaign checkpointing ----------------------------------------------------


@dataclass
class CampaignResumeState:
    """Decoded mid-run state handed back to a resuming campaign runner.

    Attributes:
        cursor: Index of the first event still to simulate.
        clocks: ``(front_free, link_free, back_free)`` resource clocks.
        energies: ``(sensor_j, aggregator_j, retry_j)`` accumulators.
        counters: ``(retransmissions, fallback_events, deadline_misses)``.
        records: Decision records of the already-simulated events.
        wire: Data-plane integrity counters.
        extra: Runner-specific state (RNG snapshots, loss-stream
            remainder); consumed by the runner that wrote it.
    """

    cursor: int
    clocks: Tuple[float, float, float]
    energies: Tuple[float, float, float]
    counters: Tuple[int, int, int]
    records: List[DecisionRecord]
    wire: Dict[str, int]
    extra: Dict[str, Any] = field(default_factory=dict)


class CampaignCheckpointer:
    """Periodic crash-safe snapshots of one :meth:`FaultCampaign.run`.

    Pass one to ``FaultCampaign.run(..., checkpoint=...)`` to snapshot
    every ``every`` events, and ``resume=True`` to continue from the last
    snapshot: the resumed run's report is bit-identical to an
    uninterrupted run on the same runner.  The config key pins campaign
    seed, fault signatures, runner, ARQ, simulator, policy, cache,
    integrity and breaker configuration, so a checkpoint can never resume
    a different run.
    """

    kind = "campaign"

    def __init__(self, path: str | Path, every: int = 200) -> None:
        if every < 1:
            raise ConfigurationError("every must be >= 1")
        self.path = Path(path)
        self.every = int(every)
        self.saves = 0

    def due(self, events_done: int) -> bool:
        """Whether a snapshot is due after ``events_done`` events."""
        return events_done > 0 and events_done % self.every == 0

    def config_key(
        self,
        *,
        campaign: Any,
        runner: str,
        simulator: Any,
        n_events: int,
        arq: ARQConfig,
        policy: Optional[Any],
        fallback_metrics: Optional[Any],
        cache: Optional[Any],
        integrity: Optional[Any],
        breaker: Optional[LinkCircuitBreaker],
    ) -> str:
        """Digest pinning the complete run configuration."""
        payload = {
            "campaign": {
                "seed": int(campaign.seed),
                "faults": [fault_signature(f) for f in campaign.faults],
            },
            "runner": runner,
            "n_events": int(n_events),
            "simulator": {
                "period_s": float(simulator.period_s),
                "jitter_sigma": float(simulator.jitter_sigma),
                "seed": int(simulator.seed),
                "metrics": _metrics_to_dict(simulator.metrics),
            },
            "arq": _arq_to_dict(arq),
            "policy": (
                None
                if policy is None
                else {
                    "outage_threshold": int(policy.outage_threshold),
                    "recovery_hysteresis": int(policy.recovery_hysteresis),
                }
            ),
            "fallback_metrics": (
                None
                if fallback_metrics is None
                else _metrics_to_dict(fallback_metrics)
            ),
            "cache": (
                None if cache is None else {"max_staleness": cache.max_staleness}
            ),
            "integrity": _integrity_to_dict(integrity),
            "breaker": None if breaker is None else asdict(breaker.config),
        }
        return stable_digest(payload)

    def save(
        self,
        *,
        campaign: Any,
        runner: str,
        simulator: Any,
        n_events: int,
        arq: ARQConfig,
        policy: Optional[Any],
        fallback_metrics: Optional[Any],
        cache: Optional[Any],
        integrity: Optional[Any],
        breaker: Optional[LinkCircuitBreaker],
        cursor: int,
        clocks: Sequence[float],
        energies: Sequence[float],
        counters: Sequence[int],
        records: Sequence[DecisionRecord],
        wire: Mapping[str, int],
        extra: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Write one snapshot of the running campaign (atomic replace)."""
        key = self.config_key(
            campaign=campaign,
            runner=runner,
            simulator=simulator,
            n_events=n_events,
            arq=arq,
            policy=policy,
            fallback_metrics=fallback_metrics,
            cache=cache,
            integrity=integrity,
            breaker=breaker,
        )
        state = {
            "cursor": int(cursor),
            "clocks": [_enc_float(v) for v in clocks],
            "energies": [_enc_float(v) for v in energies],
            "counters": [int(v) for v in counters],
            "records": [_enc_record(r) for r in records],
            "wire": {k: int(v) for k, v in wire.items()},
            "faults": [fault_state(f) for f in campaign.faults],
            "policy": None if policy is None else policy.state_dict(),
            "cache": None if cache is None else cache.state_dict(),
            "breaker": None if breaker is None else breaker.state_dict(),
            "extra": dict(extra or {}),
        }
        path = save_checkpoint(self.path, self.kind, key, state)
        self.saves += 1
        return path

    def load(
        self,
        *,
        campaign: Any,
        runner: str,
        simulator: Any,
        n_events: int,
        arq: ARQConfig,
        policy: Optional[Any],
        fallback_metrics: Optional[Any],
        cache: Optional[Any],
        integrity: Optional[Any],
        breaker: Optional[LinkCircuitBreaker],
    ) -> CampaignResumeState:
        """Validate, restore in-place fault/policy/cache/breaker state.

        Re-arms the campaign (``campaign.reset()``), overwrites every
        stochastic fault's RNG position with the snapshot, restores the
        degradation policy, cache and breaker, and returns the decoded
        :class:`CampaignResumeState` for the runner to continue from.
        """
        key = self.config_key(
            campaign=campaign,
            runner=runner,
            simulator=simulator,
            n_events=n_events,
            arq=arq,
            policy=policy,
            fallback_metrics=fallback_metrics,
            cache=cache,
            integrity=integrity,
            breaker=breaker,
        )
        state = load_checkpoint(self.path, self.kind, key)
        campaign.reset()
        for fault, fstate in zip(campaign.faults, state["faults"]):
            load_fault_state(fault, fstate)
        if policy is not None:
            policy.load_state(state["policy"])
        if cache is not None:
            cache.load_state(state["cache"])
        if breaker is not None:
            breaker.load_state(state["breaker"])
        clocks = tuple(_dec_float(v) for v in state["clocks"])
        energies = tuple(_dec_float(v) for v in state["energies"])
        counters = tuple(int(v) for v in state["counters"])
        return CampaignResumeState(
            cursor=int(state["cursor"]),
            clocks=clocks,  # type: ignore[arg-type]
            energies=energies,  # type: ignore[arg-type]
            counters=counters,  # type: ignore[arg-type]
            records=[_dec_record(row) for row in state["records"]],
            wire={k: int(v) for k, v in state["wire"].items()},
            extra=dict(state["extra"]),
        )


# -- sweep checkpointing -------------------------------------------------------


def _encode_sweep_value(value: Any) -> Dict[str, Any]:
    """Default sweep-value encoder (reports, floats, JSON scalars)."""
    if isinstance(value, ResilienceReport):
        return {"kind": "report", "data": _enc_report(value)}
    if isinstance(value, float):
        return {"kind": "float", "data": _enc_float(value)}
    try:
        canonical_json(value)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"sweep value of type {type(value).__name__} is not "
            "checkpoint-safe; pass SweepCheckpointer(encode=..., decode=...)"
        ) from exc
    return {"kind": "json", "data": value}


def _decode_sweep_value(data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`_encode_sweep_value`."""
    kind = data.get("kind")
    if kind == "report":
        return _dec_report(data["data"])
    if kind == "float":
        return _dec_float(data["data"])
    if kind == "json":
        return data["data"]
    raise CheckpointError(f"unknown sweep value kind {kind!r} in checkpoint")


class SweepCheckpointer:
    """Periodic snapshots of a :func:`~repro.sim.parallel.sweep`.

    The sweep evaluates its pending grid points in batches of ``every``
    and saves the accumulated ``point index -> value`` map after each
    batch; on ``resume=True`` the completed points are skipped and only
    the remainder is re-evaluated.  Because every point is an independent
    seeded task, the stitched result is bit-identical to an uninterrupted
    sweep.  The config key pins the function identity, the grid (names
    and value reprs) and the shared-kwarg names.

    Values are encoded with a default codec covering
    :class:`~repro.sim.faults.ResilienceReport`, floats (``float.hex``)
    and JSON scalars; pass ``encode``/``decode`` for anything else.
    """

    kind = "sweep"

    def __init__(
        self,
        path: str | Path,
        every: int = 1,
        encode: Optional[Callable[[Any], Dict[str, Any]]] = None,
        decode: Optional[Callable[[Mapping[str, Any]], Any]] = None,
    ) -> None:
        if every < 1:
            raise ConfigurationError("every must be >= 1")
        self.path = Path(path)
        self.every = int(every)
        self.encode = encode or _encode_sweep_value
        self.decode = decode or _decode_sweep_value
        self.saves = 0

    def config_key(
        self,
        *,
        func: Callable[..., Any],
        grid: Mapping[str, Sequence[Any]],
        shared: Optional[Mapping[str, Any]],
    ) -> str:
        """Digest pinning the sweep's function, grid and shared names."""
        payload = {
            "func": f"{func.__module__}.{func.__qualname__}",
            "grid": {
                name: [repr(v) for v in values] for name, values in grid.items()
            },
            "grid_order": list(grid.keys()),
            "shared": sorted(shared or {}),
        }
        return stable_digest(payload)

    def save(
        self,
        *,
        func: Callable[..., Any],
        grid: Mapping[str, Sequence[Any]],
        shared: Optional[Mapping[str, Any]],
        done: Mapping[int, Any],
    ) -> Path:
        """Write the completed-point map (atomic replace)."""
        key = self.config_key(func=func, grid=grid, shared=shared)
        state = {
            "done": {str(i): self.encode(v) for i, v in done.items()}
        }
        path = save_checkpoint(self.path, self.kind, key, state)
        self.saves += 1
        return path

    def load(
        self,
        *,
        func: Callable[..., Any],
        grid: Mapping[str, Sequence[Any]],
        shared: Optional[Mapping[str, Any]],
    ) -> Dict[int, Any]:
        """Validate and decode the completed-point map."""
        key = self.config_key(func=func, grid=grid, shared=shared)
        state = load_checkpoint(self.path, self.kind, key)
        return {int(i): self.decode(v) for i, v in state["done"].items()}


# -- chaos-search checkpointing ------------------------------------------------


_SCORE_FLOATS = (
    "unavailability",
    "silent_corruption",
    "latency_tail",
    "battery_overhead",
    "degraded_rate",
    "badness",
)


def _enc_score(score: ChaosScore) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        name: _enc_float(getattr(score, name)) for name in _SCORE_FLOATS
    }
    data["diverged"] = bool(score.diverged)
    return data


def _dec_score(data: Mapping[str, Any]) -> ChaosScore:
    kwargs = {name: _dec_float(data[name]) for name in _SCORE_FLOATS}
    return ChaosScore(diverged=bool(data["diverged"]), **kwargs)


def _enc_outcome(outcome: ChaosOutcome) -> Dict[str, Any]:
    return {
        "scenario": outcome.scenario.to_dict(),
        "score": _enc_score(outcome.score),
        "report": (
            None if outcome.report is None else _enc_report(outcome.report)
        ),
        "report_digest": outcome.report_digest,
        "generation": int(outcome.generation),
    }


def _dec_outcome(data: Mapping[str, Any]) -> ChaosOutcome:
    return ChaosOutcome(
        scenario=ChaosScenario.from_dict(data["scenario"]),
        score=_dec_score(data["score"]),
        report=(
            None if data["report"] is None else _dec_report(data["report"])
        ),
        report_digest=data["report_digest"],
        generation=int(data["generation"]),
    )


@dataclass
class ChaosResumeState:
    """Decoded mid-search state handed back to :func:`chaos_search`.

    Attributes:
        generation: Generation the search stopped inside.
        position: Index of the next scenario of that generation.
        population: The generation's full candidate population.
        outcomes: Every outcome evaluated so far, in evaluation order.
        evaluations: Campaign runs executed so far.
    """

    generation: int
    position: int
    population: List[ChaosScenario]
    outcomes: List[ChaosOutcome]
    evaluations: int


class ChaosCheckpointer:
    """Periodic snapshots of one :func:`~repro.sim.chaos.chaos_search`.

    Snapshots fire every ``every`` campaign evaluations and carry the
    strategist's RNG bit-generator state, the generation cursor, the
    candidate population and the full evaluated-outcome archive (scores
    and reports hex-float encoded), so a resumed search retraces the
    uninterrupted search exactly — same proposals, same Pareto frontier,
    same worst-case digest.
    """

    kind = "chaos"

    def __init__(self, path: str | Path, every: int = 8) -> None:
        if every < 1:
            raise ConfigurationError("every must be >= 1")
        self.path = Path(path)
        self.every = int(every)
        self.saves = 0

    def due(self, evaluations: int) -> bool:
        """Whether a snapshot is due after ``evaluations`` campaign runs."""
        return evaluations > 0 and evaluations % self.every == 0

    def config_key(
        self, *, run_config: Any, search: Any, bounds: Any, judge: Any
    ) -> str:
        """Digest pinning harness, search shape, bounds and judge."""
        payload = {
            "run": run_config.to_dict(),
            "search": asdict(search),
            "bounds": asdict(bounds),
            "judge": {
                "period_s": float(judge.period_s),
                "clean_sensor_j": float(judge.clean_sensor_j),
                "weights": asdict(judge.weights),
            },
        }
        return stable_digest(payload)

    def save(
        self,
        *,
        run_config: Any,
        search: Any,
        bounds: Any,
        judge: Any,
        strategist: Any,
        generation: int,
        position: int,
        population: Sequence[ChaosScenario],
        outcomes: Sequence[ChaosOutcome],
        evaluations: int,
    ) -> Path:
        """Write one snapshot of the running search (atomic replace)."""
        key = self.config_key(
            run_config=run_config, search=search, bounds=bounds, judge=judge
        )
        state = {
            "strategist": strategist.state_dict(),
            "generation": int(generation),
            "position": int(position),
            "population": [s.to_dict() for s in population],
            "outcomes": [_enc_outcome(o) for o in outcomes],
            "evaluations": int(evaluations),
        }
        path = save_checkpoint(self.path, self.kind, key, state)
        self.saves += 1
        return path

    def load(
        self,
        *,
        run_config: Any,
        search: Any,
        bounds: Any,
        judge: Any,
        strategist: Any,
    ) -> ChaosResumeState:
        """Validate, restore the strategist RNG, return the decoded state."""
        key = self.config_key(
            run_config=run_config, search=search, bounds=bounds, judge=judge
        )
        state = load_checkpoint(self.path, self.kind, key)
        strategist.load_state(state["strategist"])
        return ChaosResumeState(
            generation=int(state["generation"]),
            position=int(state["position"]),
            population=[
                ChaosScenario.from_dict(s) for s in state["population"]
            ],
            outcomes=[_dec_outcome(o) for o in state["outcomes"]],
            evaluations=int(state["evaluations"]),
        )


# -- per-device health state machine -------------------------------------------


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds driving the per-device health state machine.

    A campaign round is classified by its availability: *ok* at or above
    ``degraded_availability``, *poor* below it, *bad* below
    ``quarantine_availability``.

    Attributes:
        degraded_availability: Round availability below which the round
            counts against the device.
        quarantine_availability: Round availability below which a single
            round quarantines the device immediately.
        quarantine_rounds: Consecutive poor rounds that quarantine the
            device.
        recovery_rounds: Unscheduled rest rounds a quarantined device sits
            out before re-entering service as recovering.
        probation_rounds: Consecutive ok rounds a recovering device must
            deliver before it counts as healthy again.
    """

    degraded_availability: float = 0.98
    quarantine_availability: float = 0.90
    quarantine_rounds: int = 2
    recovery_rounds: int = 2
    probation_rounds: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.quarantine_availability <= 1.0:
            raise ConfigurationError(
                "quarantine_availability must be in [0, 1]"
            )
        if not self.quarantine_availability <= self.degraded_availability <= 1.0:
            raise ConfigurationError(
                "degraded_availability must be in "
                "[quarantine_availability, 1]"
            )
        for name in ("quarantine_rounds", "recovery_rounds", "probation_rounds"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")


def _state_bucket() -> Dict[str, Any]:
    return {
        "rounds": 0,
        "events": 0,
        "delivered": 0,
        "degraded": 0,
        "dropped": 0,
        "sensor_j": 0.0,
    }


class DeviceHealth:
    """Health state machine of one supervised device.

    Campaign-round outcomes (:class:`~repro.sim.faults.ResilienceReport`)
    drive the device through ``healthy -> degraded -> quarantined ->
    recovering``; per-state accounting tracks how many events, drops,
    degraded serves and joules each state absorbed, so the cost of a
    sick device is visible per state rather than smeared over the fleet.
    """

    def __init__(self, name: str, policy: Optional[HealthPolicy] = None) -> None:
        self.name = str(name)
        self.policy = policy or HealthPolicy()
        self._state = HEALTHY
        self._bad_streak = 0
        self._ok_streak = 0
        self._rest = 0
        self.quarantines = 0
        self.accounting: Dict[str, Dict[str, Any]] = {
            state: _state_bucket() for state in HEALTH_STATES
        }

    @property
    def state(self) -> str:
        """Current health state (one of :data:`HEALTH_STATES`)."""
        return self._state

    @property
    def schedulable(self) -> bool:
        """Whether the device may be scheduled (not quarantined)."""
        return self._state != QUARANTINED

    def observe(self, report: ResilienceReport) -> str:
        """Fold one scheduled round's report in; returns the new state.

        Raises :class:`~repro.errors.ConfigurationError` when called on a
        quarantined device — quarantine removes the device from
        scheduling, so it cannot produce campaign rounds.
        """
        return self.observe_counts(
            events=report.n_events,
            delivered=report.n_delivered,
            degraded=report.n_degraded,
            dropped=report.n_dropped,
            sensor_j=report.sensor_energy_j,
            availability=report.availability,
        )

    def observe_counts(
        self,
        events: int,
        delivered: int,
        degraded: int,
        dropped: int,
        sensor_j: float,
        availability: float,
    ) -> str:
        """Fold one scheduled round in from raw counts; returns the state.

        The column-oriented entry point used by the struct-of-arrays
        fleet engine (:mod:`repro.sim.fleetsoa`): no per-round report
        object has to exist, the round's numbers are enough.  Semantics
        are exactly :meth:`observe`'s.
        """
        if self._state == QUARANTINED:
            raise ConfigurationError(
                f"device {self.name!r} is quarantined and was not scheduled; "
                "tick() it instead"
            )
        bucket = self.accounting[self._state]
        bucket["rounds"] += 1
        bucket["events"] += events
        bucket["delivered"] += delivered
        bucket["degraded"] += degraded
        bucket["dropped"] += dropped
        bucket["sensor_j"] += sensor_j

        poor = availability < self.policy.degraded_availability
        bad = availability < self.policy.quarantine_availability

        if self._state == RECOVERING:
            if poor:
                self._quarantine()
            else:
                self._ok_streak += 1
                if self._ok_streak >= self.policy.probation_rounds:
                    self._state = HEALTHY
                    self._bad_streak = 0
            return self._state

        if not poor:
            self._state = HEALTHY
            self._bad_streak = 0
            return self._state
        self._bad_streak += 1
        if bad or self._bad_streak >= self.policy.quarantine_rounds:
            self._quarantine()
        else:
            self._state = DEGRADED
        return self._state

    def _quarantine(self) -> None:
        self._state = QUARANTINED
        self._rest = self.policy.recovery_rounds
        self._bad_streak = 0
        self._ok_streak = 0
        self.quarantines += 1

    def tick(self) -> str:
        """One unscheduled rest round of a quarantined device."""
        if self._state != QUARANTINED:
            raise ConfigurationError(
                f"device {self.name!r} is {self._state}, not quarantined"
            )
        self.accounting[QUARANTINED]["rounds"] += 1
        self._rest -= 1
        if self._rest <= 0:
            self._state = RECOVERING
            self._ok_streak = 0
        return self._state

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot the mutable device state as a JSON-safe dict."""
        return {
            "state": self._state,
            "bad_streak": self._bad_streak,
            "ok_streak": self._ok_streak,
            "rest": self._rest,
            "quarantines": self.quarantines,
            "accounting": {
                state: dict(bucket)
                for state, bucket in self.accounting.items()
            },
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        if state["state"] not in HEALTH_STATES:
            raise CheckpointError(f"unknown health state {state['state']!r}")
        self._state = state["state"]
        self._bad_streak = int(state["bad_streak"])
        self._ok_streak = int(state["ok_streak"])
        self._rest = int(state["rest"])
        self.quarantines = int(state["quarantines"])
        self.accounting = {
            s: dict(bucket) for s, bucket in state["accounting"].items()
        }


class FleetSupervisor:
    """Round-based health supervision of a named device fleet.

    Each supervision round, the scheduler asks :meth:`schedulable` (or
    :meth:`filter_nodes` for TDMA/MIMO node lists) which devices may run,
    executes their campaigns, and feeds the per-device reports back
    through :meth:`observe_round` — which also ages every quarantined
    device toward recovery.  All state is deterministic and
    snapshot-able, so fleet supervision survives checkpoint/resume.
    """

    def __init__(
        self,
        names: Sequence[str],
        policy: Optional[HealthPolicy] = None,
    ) -> None:
        if not names:
            raise ConfigurationError("a fleet needs at least one device")
        if len(set(names)) != len(names):
            raise ConfigurationError("device names must be unique")
        self.policy = policy or HealthPolicy()
        self._devices: Dict[str, DeviceHealth] = {
            name: DeviceHealth(name, self.policy) for name in names
        }

    def device(self, name: str) -> DeviceHealth:
        """The :class:`DeviceHealth` of one named device."""
        try:
            return self._devices[name]
        except KeyError:
            raise ConfigurationError(f"unknown device {name!r}") from None

    def schedulable(self) -> List[str]:
        """Names of the devices currently allowed to run, fleet order."""
        return [d.name for d in self._devices.values() if d.schedulable]

    def filter_nodes(self, nodes: Sequence[Any]) -> List[Any]:
        """Drop quarantined devices from a TDMA/MIMO node list.

        Filters by each node's ``.name`` (e.g. :class:`~repro.sim.
        multinode.BSNNode`); unknown names pass through untouched so
        unsupervised infrastructure nodes keep their slots.
        """
        return [
            node
            for node in nodes
            if node.name not in self._devices
            or self._devices[node.name].schedulable
        ]

    def schedulable_mask(self, names: Sequence[str]) -> np.ndarray:
        """Boolean schedulability column for a device-name ordering.

        The struct-of-arrays fleet engine (:mod:`repro.sim.fleetsoa`)
        asks once per round with its fleet-order name column; the mask is
        ANDed with the battery-alive column to form the round's schedule.
        """
        return np.fromiter(
            (self.device(name).schedulable for name in names),
            dtype=bool,
            count=len(names),
        )

    def observe_availability_round(
        self,
        names: Sequence[str],
        scheduled: np.ndarray,
        events: int,
        delivered: np.ndarray,
        dropped: np.ndarray,
        sensor_j: np.ndarray,
    ) -> None:
        """Fold one SoA fleet round in from its per-device columns.

        The column counterpart of :meth:`observe_round`: ``scheduled`` is
        the round's schedule mask and the remaining columns are that
        round's per-device counters in the same fleet order as ``names``.
        Scheduled devices are observed (availability =
        ``delivered / events``, fleet rounds have no degraded serves);
        every device quarantined at the start of the round is ticked one
        rest round instead — exactly :meth:`observe_round`'s semantics,
        without per-round report objects existing.
        """
        resting = [
            d for d in self._devices.values() if d.state == QUARANTINED
        ]
        for i in np.flatnonzero(np.asarray(scheduled, dtype=bool)):
            n_delivered = int(delivered[i])
            self.device(names[i]).observe_counts(
                events=int(events),
                delivered=n_delivered,
                degraded=0,
                dropped=int(dropped[i]),
                sensor_j=float(sensor_j[i]),
                availability=n_delivered / float(events),
            )
        for dev in resting:
            dev.tick()

    def observe_round(self, reports: Mapping[str, ResilienceReport]) -> None:
        """Fold one supervision round in.

        ``reports`` maps device name to that round's campaign report for
        every *scheduled* device; every device quarantined at the start
        of the round is ticked one rest round instead.
        """
        resting = [
            d for d in self._devices.values() if d.state == QUARANTINED
        ]
        for name, report in reports.items():
            self.device(name).observe(report)
        for dev in resting:
            dev.tick()

    def states(self) -> Dict[str, str]:
        """Device name -> current health state, fleet order."""
        return {name: d.state for name, d in self._devices.items()}

    def state_counts(self) -> Dict[str, int]:
        """Health-state histogram over the fleet."""
        counts = {state: 0 for state in HEALTH_STATES}
        for dev in self._devices.values():
            counts[dev.state] += 1
        return counts

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot every device's mutable state as a JSON-safe dict."""
        return {
            "devices": {
                name: dev.state_dict() for name, dev in self._devices.items()
            }
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        devices = state["devices"]
        missing = set(self._devices) - set(devices)
        if missing:
            raise CheckpointError(
                f"fleet snapshot misses devices: {sorted(missing)}"
            )
        for name, dev in self._devices.items():
            dev.load_state(devices[name])


__all__ = [
    "CHECKPOINT_SCHEMA",
    "HEALTH_STATES",
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "RECOVERING",
    "BreakerConfig",
    "CampaignCheckpointer",
    "CampaignResumeState",
    "ChaosCheckpointer",
    "ChaosResumeState",
    "DeviceHealth",
    "FleetSupervisor",
    "HealthPolicy",
    "LinkCircuitBreaker",
    "SweepCheckpointer",
    "fault_signature",
    "fault_state",
    "load_checkpoint",
    "load_fault_state",
    "restore_rng",
    "rng_state",
    "save_checkpoint",
    "wasted_radio_j",
]
