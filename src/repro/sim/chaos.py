"""Adversarial chaos search over fault-mix space, with bit-exact replay.

The fixed seeded campaigns of :mod:`repro.eval.resilience` answer "does the
resilience layer survive *this* fault mix?"; this module answers the harder
question "what is the *worst* fault mix the resilience layer admits?" by
searching the bounded campaign-schedule space instead of replaying fixed
points in it.  The pipeline factors the way production chaos harnesses do:

- a **strategist** (:class:`ChaosStrategist`) proposes campaign schedules
  — outage/burst/corruption/brownout/stall parameters and timing — via
  seeded random sampling plus evolutionary hill-climbing mutation of the
  worst schedules found so far, all inside a bounded parameter grid
  (:class:`ChaosBounds`);
- a **driver** (:class:`ChaosDriver`) runs each schedule through the
  existing :class:`~repro.sim.faults.FaultCampaign` machinery under one
  fixed harness configuration (:class:`ChaosRunConfig`: bounded ARQ,
  graceful degradation, last-known-good cache, byte-level wire format),
  taking the vectorized fast runner whenever
  :meth:`~repro.sim.faults.FaultCampaign.supports_fast` allows and falling
  back to the scalar reference otherwise;
- a **judge** (:class:`ChaosJudge`) scores each run on degradation rather
  than pass/fail: silent-corruption rate, unavailability, latency tail and
  battery impact versus the clean-run energy of the partition;
- an **orchestrator** (:func:`chaos_search`) tracks the Pareto-worst
  scenarios across generations and emits a **bit-exact replay bundle**
  (:func:`build_bundle`) for each: a self-contained JSON document carrying
  the scenario, the full harness configuration (partition metrics
  included, so no trained context is needed to replay) and the expected
  report digest.  :func:`replay_bundle` re-runs a bundle on either
  campaign runner and asserts report identity.

Everything is deterministic: scenario keys and bundle IDs are SHA-256
digests of canonical JSON (never Python ``hash()``, which is salted per
interpreter run), the strategist's randomness flows from one seed, and the
fault campaigns re-arm from their own seeds, so the same search finds the
same worst cases and the same bundle replays to the same digest on any
machine and either runner.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.degrade import GracefulDegradationPolicy, LastKnownGoodCache
from repro.errors import ConfigurationError, ReplayMismatchError, SimulationError
from repro.hw.arq import ARQConfig
from repro.hw.framing import FramingConfig
from repro.sim.channel import GilbertElliottParams
from repro.sim.evaluate import PartitionMetrics
from repro.sim.faults import (
    AggregatorStall,
    BurstLoss,
    FaultCampaign,
    IntegrityConfig,
    LinkOutage,
    PayloadCorruption,
    ResilienceReport,
    SensorBrownout,
)
from repro.sim.simulator import CrossEndSimulator

#: Schema marker stamped into every replay bundle.
BUNDLE_SCHEMA = "xpro-chaos-bundle-v1"

#: Hex digits kept for scenario keys and bundle IDs (of 64 total).
_ID_HEX = 16


# -- canonical digests ---------------------------------------------------------


def canonical_json(obj: Any) -> str:
    """Canonical JSON text of a JSON-safe object.

    Keys are sorted, separators are minimal and NaN/Infinity are rejected,
    so equal objects always serialise to equal bytes.  Python floats are
    rendered by ``repr`` (shortest round-trip form), which re-parses to
    the identical IEEE-754 value — canonical text is therefore bit-exact
    for float payloads too.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def stable_digest(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`.

    The only sanctioned way to derive scenario keys and bundle IDs:
    Python's builtin ``hash()`` is salted per interpreter run and must
    never leak into persisted identifiers.
    """
    return hashlib.sha256(canonical_json(obj).encode("ascii")).hexdigest()


def _float_token(value: float) -> str:
    """Bit-exact text form of one float (NaN-safe, replay-stable)."""
    return float(value).hex()


def report_digest(report: ResilienceReport) -> str:
    """Bit-exact SHA-256 digest of one :class:`ResilienceReport`.

    Every record field and every counter enters the digest; floats are
    hashed via ``float.hex()`` so NaN latencies (dropped events) and
    denormal-scale energies are captured exactly.  Two reports share a
    digest iff :func:`repro.sim.faults.reports_identical` holds.
    """
    payload = {
        "records": [
            [
                r.index,
                r.status,
                r.tries,
                _float_token(r.latency_s),
                r.fallback,
                r.staleness,
                r.corrupted,
            ]
            for r in report.records
        ],
        "counters": {
            "sensor_energy_j": _float_token(report.sensor_energy_j),
            "aggregator_energy_j": _float_token(report.aggregator_energy_j),
            "retry_energy_j": _float_token(report.retry_energy_j),
            "retransmissions": report.retransmissions,
            "fallback_events": report.fallback_events,
            "deadline_misses": report.deadline_misses,
            "frames_sent": report.frames_sent,
            "frames_corrupted": report.frames_corrupted,
            "corruptions_detected": report.corruptions_detected,
            "corrupted_deliveries": report.corrupted_deliveries,
            "integrity_discards": report.integrity_discards,
        },
    }
    return stable_digest(payload)


# -- the scenario space --------------------------------------------------------


@dataclass(frozen=True)
class ChaosScenario:
    """One point of fault-mix space: a complete campaign schedule.

    Window lengths of 0 disable the corresponding fault; rates of 0 keep
    the corruptors armed but inert (they still consume their seeded RNG
    streams, which keeps the scenario -> campaign mapping a pure
    function).  All fields are JSON-scalar so the scenario canonicalises
    losslessly into replay bundles.

    Attributes:
        seed: Campaign seed (re-arms every fault model per run).
        n_events: Events streamed through the campaign.
        burst_p_gb / burst_p_bg / burst_loss_good / burst_loss_bad:
            Gilbert-Elliott chain parameters of the background burst loss.
        erasure_rate: Per-attempt abstract payload-corruption probability.
        bitflip_rate: Per-frame byte-level corruption probability.
        max_bit_flips: Upper bound on flipped bits per corrupted frame.
        outage_start / outage_len: Hard link-outage window (events).
        brownout_start / brownout_len: Sensor brownout window (events).
        stall_start / stall_len: Aggregator stall window (events).
        stall_ms: Service-time inflation inside the stall window (ms).
    """

    seed: int
    n_events: int
    burst_p_gb: float = 0.02
    burst_p_bg: float = 0.10
    burst_loss_good: float = 0.01
    burst_loss_bad: float = 0.6
    erasure_rate: float = 0.01
    bitflip_rate: float = 0.0
    max_bit_flips: int = 4
    outage_start: int = 0
    outage_len: int = 0
    brownout_start: int = 0
    brownout_len: int = 0
    stall_start: int = 0
    stall_len: int = 0
    stall_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.n_events < 1:
            raise ConfigurationError("n_events must be >= 1")
        for name in ("outage_len", "brownout_len", "stall_len"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        for name in ("outage_start", "brownout_start", "stall_start"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.stall_ms < 0:
            raise ConfigurationError("stall_ms must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe field dictionary (the canonical scenario form)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosScenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C401
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown chaos scenario fields: {sorted(unknown)}"
            )
        return cls(**data)

    @property
    def key(self) -> str:
        """Stable scenario key (SHA-256 of the canonical spec, truncated)."""
        return stable_digest(self.to_dict())[:_ID_HEX]

    def to_campaign(self) -> FaultCampaign:
        """The seeded :class:`FaultCampaign` this schedule describes.

        The fault order is fixed (burst, erasure, bitflip, outage,
        brownout, stall) because campaign reset hands each fault its seed
        in list order — reordering would change every replay.
        """
        faults: List[Any] = [
            BurstLoss(
                GilbertElliottParams(
                    self.burst_p_gb,
                    self.burst_p_bg,
                    self.burst_loss_good,
                    self.burst_loss_bad,
                )
            ),
            PayloadCorruption(self.erasure_rate, mode="erasure"),
            PayloadCorruption(
                self.bitflip_rate, mode="bitflip", max_bit_flips=self.max_bit_flips
            ),
        ]
        if self.outage_len > 0:
            faults.append(
                LinkOutage(start_event=self.outage_start, n_events=self.outage_len)
            )
        if self.brownout_len > 0:
            faults.append(
                SensorBrownout(
                    start_event=self.brownout_start, n_events=self.brownout_len
                )
            )
        if self.stall_len > 0:
            faults.append(
                AggregatorStall(
                    start_event=self.stall_start,
                    n_events=self.stall_len,
                    extra_delay_s=self.stall_ms * 1e-3,
                )
            )
        return FaultCampaign(faults, seed=self.seed)


@dataclass(frozen=True)
class ChaosBounds:
    """The bounded parameter grid the strategist searches inside.

    Window lengths are bounded as fractions of the run so schedules stay
    comparable across run lengths; probability bounds respect the domain
    constraints of :class:`~repro.sim.channel.GilbertElliottParams` and
    :class:`~repro.sim.faults.PayloadCorruption`.
    """

    n_events: int
    max_outage_frac: float = 0.25
    max_brownout_frac: float = 0.10
    max_stall_frac: float = 0.15
    max_stall_ms: float = 10.0
    min_burst_p_gb: float = 0.002
    max_burst_p_gb: float = 0.20
    min_burst_p_bg: float = 0.02
    max_burst_p_bg: float = 0.50
    max_burst_loss_good: float = 0.05
    min_burst_loss_bad: float = 0.20
    max_burst_loss_bad: float = 0.95
    max_erasure_rate: float = 0.20
    max_bitflip_rate: float = 0.30
    max_bit_flips: int = 8

    def __post_init__(self) -> None:
        if self.n_events < 1:
            raise ConfigurationError("n_events must be >= 1")
        for name in ("max_outage_frac", "max_brownout_frac", "max_stall_frac"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.max_bit_flips < 1:
            raise ConfigurationError("max_bit_flips must be >= 1")

    @property
    def max_outage_len(self) -> int:
        return int(self.max_outage_frac * self.n_events)

    @property
    def max_brownout_len(self) -> int:
        return int(self.max_brownout_frac * self.n_events)

    @property
    def max_stall_len(self) -> int:
        return int(self.max_stall_frac * self.n_events)


def _round6(value: float) -> float:
    """Quantise a searched float so canonical JSON stays short and stable."""
    return round(float(value), 6)


class ChaosStrategist:
    """Seeded schedule proposer: random exploration + worst-first mutation.

    The strategist never evaluates anything itself — it only emits
    :class:`ChaosScenario` candidates.  ``initial_population`` samples the
    bounded grid uniformly; ``evolve`` mutates the worst scenarios found
    so far (hill-climbing toward higher judge badness) while reserving a
    fresh-random fraction against local optima.  All draws come from one
    ``numpy`` generator seeded at construction, so a strategist is a pure
    function of ``(bounds, seed)``.
    """

    def __init__(
        self,
        bounds: ChaosBounds,
        seed: int = 0,
        elite: int = 3,
        fresh_fraction: float = 0.25,
        mutation_rate: float = 0.45,
    ) -> None:
        if elite < 1:
            raise ConfigurationError("elite must be >= 1")
        if not 0.0 <= fresh_fraction <= 1.0:
            raise ConfigurationError("fresh_fraction must be in [0, 1]")
        if not 0.0 < mutation_rate <= 1.0:
            raise ConfigurationError("mutation_rate must be in (0, 1]")
        self.bounds = bounds
        self.seed = int(seed)
        self.elite = int(elite)
        self.fresh_fraction = float(fresh_fraction)
        self.mutation_rate = float(mutation_rate)
        self._rng = np.random.default_rng(self.seed)

    # -- sampling helpers ------------------------------------------------------

    def _uniform(self, lo: float, hi: float) -> float:
        return _round6(lo + (hi - lo) * float(self._rng.random()))

    def _window(self, max_len: int) -> Tuple[int, int]:
        """A (start, length) window; zero-length windows disable the fault."""
        n = self.bounds.n_events
        length = int(self._rng.integers(0, max_len + 1))
        start = int(self._rng.integers(0, n)) if length else 0
        return start, length

    def _scenario_seed(self) -> int:
        return int(self._rng.integers(2**31))

    def random_scenario(self) -> ChaosScenario:
        """One uniform draw from the bounded grid."""
        b = self.bounds
        outage_start, outage_len = self._window(b.max_outage_len)
        brown_start, brown_len = self._window(b.max_brownout_len)
        stall_start, stall_len = self._window(b.max_stall_len)
        return ChaosScenario(
            seed=self._scenario_seed(),
            n_events=b.n_events,
            burst_p_gb=self._uniform(b.min_burst_p_gb, b.max_burst_p_gb),
            burst_p_bg=self._uniform(b.min_burst_p_bg, b.max_burst_p_bg),
            burst_loss_good=self._uniform(0.0, b.max_burst_loss_good),
            burst_loss_bad=self._uniform(b.min_burst_loss_bad, b.max_burst_loss_bad),
            erasure_rate=self._uniform(0.0, b.max_erasure_rate),
            bitflip_rate=self._uniform(0.0, b.max_bitflip_rate),
            max_bit_flips=int(self._rng.integers(1, b.max_bit_flips + 1)),
            outage_start=outage_start,
            outage_len=outage_len,
            brownout_start=brown_start,
            brownout_len=brown_len,
            stall_start=stall_start,
            stall_len=stall_len,
            stall_ms=self._uniform(0.0, b.max_stall_ms),
        )

    def initial_population(self, n: int) -> List[ChaosScenario]:
        """``n`` independent uniform draws (generation zero)."""
        if n < 1:
            raise ConfigurationError("population must be >= 1")
        return [self.random_scenario() for _ in range(n)]

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot the strategist's RNG position as a JSON-safe dict.

        The configuration (bounds, seed, elite...) is not included —
        checkpoints pin it in their config key instead (see
        :class:`~repro.sim.supervise.ChaosCheckpointer`).
        """
        return {"rng": self._rng.bit_generator.state}

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        generator = np.random.default_rng(0)
        generator.bit_generator.state = dict(state["rng"])
        self._rng = generator

    # -- mutation --------------------------------------------------------------

    def _perturb_float(self, value: float, lo: float, hi: float) -> float:
        sigma = 0.2 * (hi - lo)
        mutated = value + sigma * float(self._rng.standard_normal())
        return _round6(min(hi, max(lo, mutated)))

    def _perturb_int(self, value: int, lo: int, hi: int) -> int:
        if hi <= lo:
            return lo
        step = max(1, (hi - lo) // 5)
        mutated = value + int(self._rng.integers(-step, step + 1))
        return min(hi, max(lo, mutated))

    def mutate(self, parent: ChaosScenario) -> ChaosScenario:
        """One evolutionary child: each gene perturbed with ``mutation_rate``.

        The child always receives a fresh campaign seed, so even a
        zero-gene mutation explores a new stochastic realisation of the
        same schedule.
        """
        b = self.bounds
        n = b.n_events
        changes: Dict[str, Any] = {"seed": self._scenario_seed()}
        flt = [
            ("burst_p_gb", b.min_burst_p_gb, b.max_burst_p_gb),
            ("burst_p_bg", b.min_burst_p_bg, b.max_burst_p_bg),
            ("burst_loss_good", 0.0, b.max_burst_loss_good),
            ("burst_loss_bad", b.min_burst_loss_bad, b.max_burst_loss_bad),
            ("erasure_rate", 0.0, b.max_erasure_rate),
            ("bitflip_rate", 0.0, b.max_bitflip_rate),
            ("stall_ms", 0.0, b.max_stall_ms),
        ]
        for name, lo, hi in flt:
            if self._rng.random() < self.mutation_rate:
                changes[name] = self._perturb_float(getattr(parent, name), lo, hi)
        ints = [
            ("max_bit_flips", 1, b.max_bit_flips),
            ("outage_start", 0, n - 1),
            ("outage_len", 0, b.max_outage_len),
            ("brownout_start", 0, n - 1),
            ("brownout_len", 0, b.max_brownout_len),
            ("stall_start", 0, n - 1),
            ("stall_len", 0, b.max_stall_len),
        ]
        for name, lo, hi in ints:
            if self._rng.random() < self.mutation_rate:
                changes[name] = self._perturb_int(getattr(parent, name), lo, hi)
        return replace(parent, **changes)

    def evolve(
        self, ranked_worst: Sequence[ChaosScenario], n: int
    ) -> List[ChaosScenario]:
        """Next generation from the worst-so-far ranking.

        Args:
            ranked_worst: Scenarios ordered worst (highest badness) first;
                the leading ``elite`` entries are the mutation parents.
            n: Population size of the next generation.
        """
        if not ranked_worst:
            return self.initial_population(n)
        parents = list(ranked_worst[: self.elite])
        out: List[ChaosScenario] = []
        for _ in range(n):
            if float(self._rng.random()) < self.fresh_fraction:
                out.append(self.random_scenario())
            else:
                pick = int(self._rng.integers(len(parents)))
                out.append(self.mutate(parents[pick]))
        return out


# -- the harness configuration -------------------------------------------------


_METRIC_FLOATS = (
    "sensor_compute_j",
    "sensor_tx_j",
    "sensor_rx_j",
    "delay_front_s",
    "delay_link_s",
    "delay_back_s",
    "aggregator_cpu_j",
    "aggregator_radio_j",
)


def _metrics_to_dict(metrics: PartitionMetrics) -> Dict[str, Any]:
    """JSON-safe form of one :class:`PartitionMetrics` (floats via repr)."""
    data: Dict[str, Any] = {"in_sensor": sorted(metrics.in_sensor)}
    for name in _METRIC_FLOATS:
        data[name] = float(getattr(metrics, name))
    data["crossing_bits_up"] = int(metrics.crossing_bits_up)
    data["crossing_bits_down"] = int(metrics.crossing_bits_down)
    return data


def _metrics_from_dict(data: Dict[str, Any]) -> PartitionMetrics:
    return PartitionMetrics(
        in_sensor=frozenset(data["in_sensor"]),
        crossing_bits_up=int(data["crossing_bits_up"]),
        crossing_bits_down=int(data["crossing_bits_down"]),
        **{name: float(data[name]) for name in _METRIC_FLOATS},
    )


@dataclass(frozen=True)
class ChaosRunConfig:
    """The fixed harness every chaos scenario runs under.

    Self-contained by design: the partition metrics are embedded (not
    referenced by case symbol), so a replay bundle carrying this config
    re-runs without a trained :class:`~repro.eval.context.
    ExperimentContext` — on any machine, bit-for-bit.

    Attributes:
        metrics: Clean-link metrics of the partition under test.
        fallback_metrics: Clean-link metrics of the in-sensor fallback cut
            used while the degradation policy declares an outage.
        period_s: Event release period.
        jitter_sigma / sim_seed: Jitter model of the simulator.
        arq: Bounded-retry ARQ policy.
        outage_threshold / recovery_hysteresis: Degradation-policy knobs.
        cache_max_staleness: Last-known-good staleness bound (events); a
            finite bound is what turns long outages into visible drops.
        integrity: Optional byte-level wire format of the run.  The chaos
            default is CRC-less framing — the adversarial worst case, in
            which bit flips reach the decision layer silently and the
            judge's silent-corruption axis carries signal.
    """

    metrics: PartitionMetrics
    fallback_metrics: Optional[PartitionMetrics]
    period_s: float
    jitter_sigma: float = 0.0
    sim_seed: int = 0
    arq: ARQConfig = field(
        default_factory=lambda: ARQConfig(
            max_retries=3, timeout_s=2e-3, backoff_factor=2.0
        )
    )
    outage_threshold: int = 3
    recovery_hysteresis: int = 8
    cache_max_staleness: Optional[int] = 16
    integrity: Optional[IntegrityConfig] = field(
        default_factory=lambda: IntegrityConfig(
            framing=FramingConfig(crc=False), retransmit_on_corrupt=False
        )
    )

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigurationError("period_s must be positive")
        if not self.arq.bounded:
            raise ConfigurationError(
                "chaos runs require a bounded ARQ policy (an adversarial "
                "outage makes the unbounded model diverge by construction)"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe canonical form (enters the bundle ID digest)."""
        data: Dict[str, Any] = {
            "metrics": _metrics_to_dict(self.metrics),
            "fallback_metrics": (
                None
                if self.fallback_metrics is None
                else _metrics_to_dict(self.fallback_metrics)
            ),
            "period_s": float(self.period_s),
            "jitter_sigma": float(self.jitter_sigma),
            "sim_seed": int(self.sim_seed),
            "arq": {
                "max_retries": self.arq.max_retries,
                "timeout_s": float(self.arq.timeout_s),
                "backoff_factor": float(self.arq.backoff_factor),
                "jitter_fraction": float(self.arq.jitter_fraction),
            },
            "outage_threshold": int(self.outage_threshold),
            "recovery_hysteresis": int(self.recovery_hysteresis),
            "cache_max_staleness": self.cache_max_staleness,
            "integrity": None,
        }
        if self.integrity is not None:
            data["integrity"] = {
                "max_payload_bytes": self.integrity.framing.max_payload_bytes,
                "crc": self.integrity.framing.crc,
                "version": self.integrity.framing.version,
                "retransmit_on_corrupt": self.integrity.retransmit_on_corrupt,
                "values_per_payload": self.integrity.values_per_payload,
            }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosRunConfig":
        """Rebuild a run config from :meth:`to_dict` output."""
        integrity = None
        if data.get("integrity") is not None:
            raw = data["integrity"]
            integrity = IntegrityConfig(
                framing=FramingConfig(
                    max_payload_bytes=int(raw["max_payload_bytes"]),
                    crc=bool(raw["crc"]),
                    version=int(raw["version"]),
                ),
                retransmit_on_corrupt=bool(raw["retransmit_on_corrupt"]),
                values_per_payload=int(raw["values_per_payload"]),
            )
        return cls(
            metrics=_metrics_from_dict(data["metrics"]),
            fallback_metrics=(
                None
                if data.get("fallback_metrics") is None
                else _metrics_from_dict(data["fallback_metrics"])
            ),
            period_s=float(data["period_s"]),
            jitter_sigma=float(data["jitter_sigma"]),
            sim_seed=int(data["sim_seed"]),
            arq=ARQConfig(
                max_retries=data["arq"]["max_retries"],
                timeout_s=float(data["arq"]["timeout_s"]),
                backoff_factor=float(data["arq"]["backoff_factor"]),
                jitter_fraction=float(data["arq"]["jitter_fraction"]),
            ),
            outage_threshold=int(data["outage_threshold"]),
            recovery_hysteresis=int(data["recovery_hysteresis"]),
            cache_max_staleness=data.get("cache_max_staleness"),
            integrity=integrity,
        )


class ChaosDriver:
    """Runs one scenario through the campaign machinery, fast when possible.

    The driver holds the fixed harness (:class:`ChaosRunConfig`) and turns
    each :class:`ChaosScenario` into one deterministic
    :meth:`~repro.sim.faults.FaultCampaign.run`: the vectorized fast
    runner when the campaign's fault models support it, the scalar
    reference otherwise (the two are bit-identical, so the choice never
    changes a digest).
    """

    def __init__(self, run_config: ChaosRunConfig) -> None:
        self.run_config = run_config
        self.simulator = CrossEndSimulator(
            run_config.metrics,
            period_s=run_config.period_s,
            jitter_sigma=run_config.jitter_sigma,
            seed=run_config.sim_seed,
        )
        self._policy = (
            None
            if run_config.fallback_metrics is None
            else GracefulDegradationPolicy(
                outage_threshold=run_config.outage_threshold,
                recovery_hysteresis=run_config.recovery_hysteresis,
            )
        )
        self._cache = LastKnownGoodCache(
            max_staleness=run_config.cache_max_staleness
        )

    def run(
        self, scenario: ChaosScenario, fast: Optional[bool] = None
    ) -> ResilienceReport:
        """One deterministic campaign run of ``scenario``.

        Args:
            fast: ``None`` auto-selects (fast path when
                ``campaign.supports_fast()``, scalar otherwise); ``False``
                forces the scalar reference; ``True`` demands the fast
                path.  Reports are bit-identical either way.
        """
        campaign = scenario.to_campaign()
        if fast is None:
            fast = campaign.supports_fast()
        return campaign.run(
            self.simulator,
            scenario.n_events,
            arq=self.run_config.arq,
            policy=self._policy,
            fallback_metrics=self.run_config.fallback_metrics,
            cache=self._cache,
            integrity=self.run_config.integrity,
            fast=fast,
        )


# -- the judge -----------------------------------------------------------------


@dataclass(frozen=True)
class ChaosWeights:
    """Axis weights folding a :class:`ChaosScore` into scalar badness."""

    unavailability: float = 1.0
    silent_corruption: float = 1.0
    latency_tail: float = 0.1
    battery_overhead: float = 0.1


@dataclass(frozen=True)
class ChaosScore:
    """Judge verdict on one run: degradation axes, all higher-is-worse.

    Attributes:
        unavailability: Fraction of events with no decision at all.
        silent_corruption: Fraction of events whose delivered decision was
            silently corrupted in flight.
        latency_tail: p99 decision latency over the event period (0 when
            nothing was served).
        battery_overhead: Fractional sensor-energy inflation versus the
            clean (fault-free) per-event figure of the partition.
        degraded_rate: Fraction of events served stale from the cache —
            reported for context, not part of badness (stale service is
            the degradation machinery *working*).
        badness: Weighted scalar the strategist climbs.
        diverged: True when the run aborted with a
            :class:`~repro.errors.SimulationError` (event backlog
            divergence); the score is then pinned maximally bad.
    """

    unavailability: float
    silent_corruption: float
    latency_tail: float
    battery_overhead: float
    degraded_rate: float
    badness: float
    diverged: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe field dictionary (embedded into replay bundles)."""
        return asdict(self)


class ChaosJudge:
    """Scores degradation instead of pass/fail.

    Args:
        period_s: Event period (latency-tail normaliser).
        clean_sensor_j: Fault-free per-event sensor energy of the
            partition under test (battery-impact reference).
        weights: Axis weights of the scalar badness.
    """

    #: Badness assigned to a diverged run (dominates every finite score).
    DIVERGED_BADNESS = 1e9

    def __init__(
        self,
        period_s: float,
        clean_sensor_j: float,
        weights: Optional[ChaosWeights] = None,
    ) -> None:
        if period_s <= 0:
            raise ConfigurationError("period_s must be positive")
        if clean_sensor_j <= 0:
            raise ConfigurationError("clean_sensor_j must be positive")
        self.period_s = float(period_s)
        self.clean_sensor_j = float(clean_sensor_j)
        self.weights = weights or ChaosWeights()

    def score(self, report: ResilienceReport) -> ChaosScore:
        """The degradation verdict on one campaign report."""
        unavailability = report.dropped_decision_rate
        silent = report.corrupted_delivery_rate
        p99 = report.latency_percentile(99)
        tail = 0.0 if math.isnan(p99) else p99 / self.period_s
        per_event = report.sensor_energy_j / max(1, report.n_events)
        battery = max(0.0, per_event / self.clean_sensor_j - 1.0)
        degraded = report.n_degraded / max(1, report.n_events)
        w = self.weights
        badness = (
            w.unavailability * unavailability
            + w.silent_corruption * silent
            + w.latency_tail * tail
            + w.battery_overhead * battery
        )
        return ChaosScore(
            unavailability=unavailability,
            silent_corruption=silent,
            latency_tail=tail,
            battery_overhead=battery,
            degraded_rate=degraded,
            badness=badness,
        )

    def diverged_score(self) -> ChaosScore:
        """Maximal-badness verdict for a run that diverged outright."""
        return ChaosScore(
            unavailability=1.0,
            silent_corruption=0.0,
            latency_tail=math.inf,
            battery_overhead=0.0,
            degraded_rate=0.0,
            badness=self.DIVERGED_BADNESS,
            diverged=True,
        )


# -- orchestration -------------------------------------------------------------


#: Score axes entering Pareto dominance, all maximised by the adversary.
PARETO_AXES = (
    "unavailability",
    "silent_corruption",
    "latency_tail",
    "battery_overhead",
)


@dataclass(frozen=True)
class ChaosOutcome:
    """One evaluated scenario: schedule, verdict and replay anchor.

    ``report`` is None only for diverged runs (there is nothing stable to
    digest); such outcomes never become replay bundles.
    """

    scenario: ChaosScenario
    score: ChaosScore
    report: Optional[ResilienceReport]
    report_digest: Optional[str]
    generation: int

    def axes(self) -> Tuple[float, ...]:
        """The Pareto coordinates of this outcome."""
        return tuple(getattr(self.score, name) for name in PARETO_AXES)


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """Whether point ``a`` is at least as bad everywhere and worse somewhere."""
    return all(x >= y for x, y in zip(a, b)) and any(x > y for x, y in zip(a, b))


def pareto_worst(outcomes: Sequence[ChaosOutcome]) -> List[ChaosOutcome]:
    """The non-dominated (Pareto-worst) subset, stable input order.

    Duplicate coordinate tuples keep their first representative only, so
    re-proposed identical scenarios cannot flood the archive.
    """
    frontier: List[ChaosOutcome] = []
    seen: set = set()
    for candidate in outcomes:
        axes = candidate.axes()
        if axes in seen:
            continue
        if any(_dominates(kept.axes(), axes) for kept in frontier):
            continue
        frontier = [k for k in frontier if not _dominates(axes, k.axes())]
        frontier.append(candidate)
        seen.add(axes)
    return frontier


@dataclass(frozen=True)
class ChaosSearchConfig:
    """Orchestrator knobs: population shape and the strategist seed."""

    population: int = 8
    generations: int = 4
    seed: int = 0
    elite: int = 3
    fresh_fraction: float = 0.25
    fast: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ConfigurationError("population must be >= 1")
        if self.generations < 1:
            raise ConfigurationError("generations must be >= 1")


@dataclass(frozen=True)
class ChaosSearchResult:
    """Everything one adversarial search produced.

    Attributes:
        outcomes: Every distinct scenario evaluated, in evaluation order.
        frontier: The Pareto-worst subset of ``outcomes``.
        worst: The single worst outcome by scalar badness (ties broken by
            evaluation order).
        evaluations: Campaign runs actually executed (duplicates proposed
            by the strategist are served from the outcome memo).
    """

    outcomes: Tuple[ChaosOutcome, ...]
    frontier: Tuple[ChaosOutcome, ...]
    worst: ChaosOutcome
    evaluations: int


def chaos_search(
    run_config: ChaosRunConfig,
    search: Optional[ChaosSearchConfig] = None,
    bounds: Optional[ChaosBounds] = None,
    n_events: int = 400,
    judge: Optional[ChaosJudge] = None,
    checkpoint: Optional[object] = None,
    resume: bool = False,
) -> ChaosSearchResult:
    """The orchestrator: strategist -> driver -> judge, generation by generation.

    Args:
        run_config: The fixed harness every scenario runs under.
        search: Population/generation shape (defaults to 8 x 4).
        bounds: Parameter grid (defaults to :class:`ChaosBounds` at
            ``n_events``); ``bounds.n_events`` wins over ``n_events`` when
            both are given.
        n_events: Run length when ``bounds`` is omitted.
        judge: Scoring override; the default judge normalises against the
            run config's period and clean sensor energy.
        checkpoint: Optional
            :class:`~repro.sim.supervise.ChaosCheckpointer`; snapshots
            the strategist RNG, the generation cursor, the population and
            every evaluated outcome every ``checkpoint.every`` campaign
            evaluations.
        resume: Continue from ``checkpoint``'s last snapshot; the resumed
            search retraces the uninterrupted search exactly (same
            proposals, same frontier, same worst case).

    Returns:
        The :class:`ChaosSearchResult`; deterministic in all arguments.
    """
    search = search or ChaosSearchConfig()
    bounds = bounds or ChaosBounds(n_events=n_events)
    judge = judge or ChaosJudge(
        period_s=run_config.period_s,
        clean_sensor_j=run_config.metrics.sensor_total_j,
    )
    driver = ChaosDriver(run_config)
    strategist = ChaosStrategist(
        bounds,
        seed=search.seed,
        elite=search.elite,
        fresh_fraction=search.fresh_fraction,
    )

    memo: Dict[str, ChaosOutcome] = {}
    outcomes: List[ChaosOutcome] = []
    evaluations = 0
    start_generation = 0
    start_position = 0
    if resume:
        if checkpoint is None:
            raise ConfigurationError("resume=True requires a checkpoint")
        state = checkpoint.load(
            run_config=run_config,
            search=search,
            bounds=bounds,
            judge=judge,
            strategist=strategist,
        )
        start_generation = state.generation
        start_position = state.position
        population = list(state.population)
        outcomes = list(state.outcomes)
        evaluations = state.evaluations
        memo = {o.scenario.key: o for o in outcomes}
    else:
        population = strategist.initial_population(search.population)
    for generation in range(start_generation, search.generations):
        pos0 = start_position if generation == start_generation else 0
        for pos in range(pos0, len(population)):
            scenario = population[pos]
            key = scenario.key
            if key not in memo:
                try:
                    report = driver.run(scenario, fast=search.fast)
                except SimulationError:
                    outcome = ChaosOutcome(
                        scenario=scenario,
                        score=judge.diverged_score(),
                        report=None,
                        report_digest=None,
                        generation=generation,
                    )
                else:
                    outcome = ChaosOutcome(
                        scenario=scenario,
                        score=judge.score(report),
                        report=report,
                        report_digest=report_digest(report),
                        generation=generation,
                    )
                evaluations += 1
                memo[key] = outcome
                outcomes.append(outcome)
            if checkpoint is not None and checkpoint.due(evaluations):
                # The strategist RNG here is post-initial_population /
                # post-last-evolve, so a resume replays the next evolve
                # (and everything after it) identically.
                checkpoint.save(
                    run_config=run_config,
                    search=search,
                    bounds=bounds,
                    judge=judge,
                    strategist=strategist,
                    generation=generation,
                    position=pos + 1,
                    population=population,
                    outcomes=outcomes,
                    evaluations=evaluations,
                )
        ranked = sorted(
            outcomes, key=lambda o: o.score.badness, reverse=True
        )
        if generation + 1 < search.generations:
            population = strategist.evolve(
                [o.scenario for o in ranked], search.population
            )

    worst = max(outcomes, key=lambda o: o.score.badness)
    return ChaosSearchResult(
        outcomes=tuple(outcomes),
        frontier=tuple(pareto_worst(outcomes)),
        worst=worst,
        evaluations=evaluations,
    )


# -- replay bundles ------------------------------------------------------------


def build_bundle(
    scenario: ChaosScenario,
    run_config: ChaosRunConfig,
    report: ResilienceReport,
    score: Optional[ChaosScore] = None,
) -> Dict[str, Any]:
    """A self-contained, bit-exact replay bundle for one scenario.

    The bundle ID is the SHA-256 of the canonical ``(scenario, run)``
    spec — stable across interpreter runs and machines — and the expected
    block pins the :func:`report_digest` the replay must reproduce.
    """
    spec = {"scenario": scenario.to_dict(), "run": run_config.to_dict()}
    bundle: Dict[str, Any] = {
        "schema": BUNDLE_SCHEMA,
        "bundle_id": stable_digest(spec)[:_ID_HEX],
        "scenario": spec["scenario"],
        "scenario_key": scenario.key,
        "run": spec["run"],
        "expected": {
            "report_digest": report_digest(report),
            "availability": report.availability,
            "corrupted_delivery_rate": report.corrupted_delivery_rate,
            "retransmissions": report.retransmissions,
        },
    }
    if score is not None:
        bundle["score"] = score.to_dict()
    return bundle


def save_bundle(bundle: Dict[str, Any], directory: str | Path) -> Path:
    """Write one bundle as ``chaos-<bundle_id>.json`` under ``directory``."""
    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / f"chaos-{bundle['bundle_id']}.json"
    target.write_text(json.dumps(bundle, indent=2, sort_keys=True) + "\n")
    return target


def load_bundle(path: str | Path) -> Dict[str, Any]:
    """Load and validate one replay bundle."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read bundle {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != BUNDLE_SCHEMA:
        raise ConfigurationError(
            f"{path}: not a chaos replay bundle "
            f"(expected schema {BUNDLE_SCHEMA!r})"
        )
    for field_name in ("scenario", "run", "expected", "bundle_id"):
        if field_name not in data:
            raise ConfigurationError(f"{path}: bundle misses {field_name!r}")
    spec = {"scenario": data["scenario"], "run": data["run"]}
    expected_id = stable_digest(spec)[:_ID_HEX]
    if data["bundle_id"] != expected_id:
        raise ConfigurationError(
            f"{path}: bundle_id {data['bundle_id']} does not match its spec "
            f"digest {expected_id} (bundle edited by hand?)"
        )
    return data


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one bundle replay.

    Attributes:
        bundle_id: ID of the replayed bundle.
        runner: ``"fast"`` or ``"scalar"``.
        digest: Digest of the re-run report.
        expected_digest: Digest the bundle pinned at capture time.
        report: The re-run report itself.
    """

    bundle_id: str
    runner: str
    digest: str
    expected_digest: str
    report: ResilienceReport

    @property
    def matches(self) -> bool:
        """Whether the replay reproduced the pinned digest bit-for-bit."""
        return self.digest == self.expected_digest


def replay_bundle(
    bundle: Dict[str, Any], fast: Optional[bool] = None
) -> ReplayResult:
    """Re-run a bundle's scenario and compare report digests.

    Args:
        bundle: A loaded replay bundle (see :func:`load_bundle`).
        fast: Runner choice, as in :meth:`ChaosDriver.run`.

    Returns:
        The :class:`ReplayResult`; check ``.matches`` or use
        :func:`assert_replay` to raise on mismatch.
    """
    scenario = ChaosScenario.from_dict(bundle["scenario"])
    run_config = ChaosRunConfig.from_dict(bundle["run"])
    driver = ChaosDriver(run_config)
    if fast is None:
        fast = scenario.to_campaign().supports_fast()
    report = driver.run(scenario, fast=fast)
    return ReplayResult(
        bundle_id=bundle["bundle_id"],
        runner="fast" if fast else "scalar",
        digest=report_digest(report),
        expected_digest=bundle["expected"]["report_digest"],
        report=report,
    )


def assert_replay(
    bundle: Dict[str, Any], fast: Optional[bool] = None
) -> ReplayResult:
    """:func:`replay_bundle`, raising :class:`ReplayMismatchError` on drift."""
    result = replay_bundle(bundle, fast=fast)
    if not result.matches:
        raise ReplayMismatchError(
            f"bundle {result.bundle_id} did not replay bit-identically on the "
            f"{result.runner} runner: report digest {result.digest} != "
            f"expected {result.expected_digest}"
        )
    return result
