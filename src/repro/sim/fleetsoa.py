"""Population-scale fleet simulation: struct-of-arrays engine + scalar twin.

The process-parallel fan-out in :mod:`repro.sim.parallel` scales the BSN
fleet across cores, but each network is still a per-object Python event
loop — fine for 16 networks, hopeless for the ROADMAP's "millions of
wearables".  This module keeps **one ndarray per state field** across
*all* devices in the fleet (battery charge, TDMA slot phase, sequence
counters, pending-retry flags, per-round availability) and advances the
whole population with a handful of vectorised operations per round, so a
single box simulates 10^4-10^6 devices per run.

Model: fleet rounds on a fixed slot grid
----------------------------------------

A *fleet* is a list of networks; each network holds a device column range
in the flat arrays.  Time advances in **rounds**.  Per round every device
owns ``events_per_round`` event windows of ``1 + max_retries`` attempt
slots each (stop-and-wait ARQ: first success in the window delivers, a
fully lost window leaves the event *pending* and the next window's fresh
event is dropped — buffer overwrite).  The Gilbert-Elliott channel of
every device advances **one step per attempt slot, every round,
regardless of scheduling** — posture and interference do not pause for a
quarantined or dead device — which makes per-round draw counts fixed and
therefore block-drawable.

Scheduling: a device transmits in a round iff it is *alive* (positive
battery charge at round start) and, when supervised, *schedulable*
(:class:`~repro.sim.supervise.FleetSupervisor` — not quarantined).  Under
TDMA the scheduled devices of a network serialise: a device's slot wait
is the summed link delay of the scheduled devices holding earlier slots
this round, with the slot assignment rotating one position per round.
MIMO networks transfer concurrently (zero wait).

RNG draw-order contract
-----------------------

Each network owns an independent stream seeded by
``derive_seeds(config.seed, n_networks)[k]`` — the same
``SeedSequence``-spawn discipline as every other fan-out — so a network's
outcomes depend only on ``(seed, network index)``, never on sharding:

1. at construction, one uniform per device in device order resolves the
   initial chain state (``u < stationary_bad_fraction``, exactly
   :class:`~repro.sim.channel.GilbertElliottChannel`'s constructor draw);
2. per round, one ``rng.random(2 * n_devices_k * S)`` block, consumed
   device-major / slot-minor / (transition, loss)-interleaved — the
   C-order flattening of the scalar twin's nested
   ``for device: for slot: next_outcome()`` loop.

The scalar twin (:func:`simulate_fleet_scalar`) builds real
:class:`~repro.sim.channel.GilbertElliottChannel` objects sharing the
per-network generator (``rng=`` injection) and walks per-object Python
loops; :func:`fleet_results_identical` asserts the two paths agree
**bit-for-bit**, NaN sentinels included, which is how the perf bench and
the CI gate hold the fast path honest (the `reports_identical` discipline
from :mod:`repro.sim.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.battery import SENSOR_BATTERY
from repro.hw.framing import SEQ_MODULUS
from repro.sim.channel import (
    GilbertElliottChannel,
    GilbertElliottParams,
    ge_outcome_block,
)
from repro.sim.evaluate import PartitionMetrics
from repro.sim.multinode import PROTOCOLS, MultiNodeBSN
from repro.sim.parallel import derive_seeds

#: Integer protocol codes stored in the per-network ``protocols`` column.
PROTOCOL_IDS = {"tdma": 0, "mimo": 1}


@dataclass(frozen=True)
class FleetConfig:
    """Round structure and environment shared by the whole fleet.

    Attributes:
        events_per_round: Event windows per device per round.
        max_retries: Stop-and-wait retransmissions per event window.
        channel: Gilbert-Elliott parameters of every device link.
        battery_j: Initial per-device battery charge, joules.
        seed: Master seed; per-network streams derive from it via
            :func:`~repro.sim.parallel.derive_seeds`.
    """

    events_per_round: int = 4
    max_retries: int = 2
    channel: GilbertElliottParams = GilbertElliottParams()
    battery_j: float = SENSOR_BATTERY.energy_j
    seed: int = 0

    def __post_init__(self) -> None:
        if self.events_per_round < 1:
            raise ConfigurationError("events_per_round must be >= 1")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.battery_j <= 0:
            raise ConfigurationError("battery_j must be positive")

    @property
    def slots_per_round(self) -> int:
        """Channel steps per device per round (windows x attempts)."""
        return self.events_per_round * (1 + self.max_retries)


class FleetSpec:
    """Immutable struct-of-arrays layout of one device fleet.

    Per-network columns (length ``n_networks``): ``network_sizes``,
    ``protocols`` (:data:`PROTOCOL_IDS`), ``network_seeds``.  Per-device
    columns (length ``n_devices``, device order = network order then
    within-network order): ``period_s``, ``front_delay_s``,
    ``link_delay_s``, ``compute_j``, ``radio_j``.  Derived index columns:
    ``network_id``, ``net_off``, ``within``, ``net_size_of``.

    Build via :meth:`from_networks` (one device per
    :class:`~repro.sim.multinode.BSNNode`) or :meth:`homogeneous`
    (population-scale fleets of identical devices).
    """

    def __init__(
        self,
        *,
        network_sizes: Sequence[int],
        protocols: Sequence[int],
        period_s: np.ndarray,
        front_delay_s: np.ndarray,
        link_delay_s: np.ndarray,
        compute_j: np.ndarray,
        radio_j: np.ndarray,
        config: Optional[FleetConfig] = None,
        network_names: Optional[Sequence[str]] = None,
        device_names: Optional[Sequence[str]] = None,
        network_seeds: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = config or FleetConfig()
        self.network_sizes = np.asarray(network_sizes, dtype=np.int64)
        self.protocols = np.asarray(protocols, dtype=np.int64)
        if self.network_sizes.ndim != 1 or self.protocols.shape != (
            self.network_sizes.shape[0],
        ):
            raise ConfigurationError(
                "network_sizes and protocols must be 1-D and equal length"
            )
        if self.network_sizes.size and self.network_sizes.min() < 1:
            raise ConfigurationError("every network needs at least one device")
        if not np.isin(self.protocols, list(PROTOCOL_IDS.values())).all():
            raise ConfigurationError(
                f"protocol codes must be one of {PROTOCOL_IDS}"
            )
        n_devices = int(self.network_sizes.sum())
        for name, column in (
            ("period_s", period_s),
            ("front_delay_s", front_delay_s),
            ("link_delay_s", link_delay_s),
            ("compute_j", compute_j),
            ("radio_j", radio_j),
        ):
            arr = np.asarray(column, dtype=np.float64)
            if arr.shape != (n_devices,):
                raise ConfigurationError(
                    f"{name} must have one entry per device ({n_devices})"
                )
            setattr(self, name, arr)
        if self.period_s.size and self.period_s.min() <= 0:
            raise ConfigurationError("periods must be positive")
        for name in ("front_delay_s", "link_delay_s", "compute_j", "radio_j"):
            col = getattr(self, name)
            if col.size and col.min() < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        n_networks = self.network_sizes.shape[0]
        if network_names is None:
            network_names = [f"net{k}" for k in range(n_networks)]
        if len(network_names) != n_networks:
            raise ConfigurationError("one network name per network required")
        self.network_names: List[str] = [str(n) for n in network_names]
        if device_names is not None and len(device_names) != n_devices:
            raise ConfigurationError("one device name per device required")
        self._device_names = (
            list(device_names) if device_names is not None else None
        )
        if network_seeds is None:
            seeds = derive_seeds(self.config.seed, n_networks)
        else:
            seeds = [int(s) for s in network_seeds]
            if len(seeds) != n_networks:
                raise ConfigurationError("one seed per network required")
        self.network_seeds: List[int] = seeds
        # Derived index columns.
        self.net_off = np.concatenate(
            ([0], np.cumsum(self.network_sizes)[:-1])
        ).astype(np.int64) if n_networks else np.zeros(0, dtype=np.int64)
        self.network_id = np.repeat(
            np.arange(n_networks, dtype=np.int64), self.network_sizes
        )
        self.within = (
            np.arange(n_devices, dtype=np.int64)
            - np.repeat(self.net_off, self.network_sizes)
        )
        self.net_size_of = np.repeat(self.network_sizes, self.network_sizes)

    @property
    def n_networks(self) -> int:
        """Networks in the fleet."""
        return int(self.network_sizes.shape[0])

    @property
    def n_devices(self) -> int:
        """Devices across all networks."""
        return int(self.network_id.shape[0])

    def device_names(self) -> List[str]:
        """Unique fleet-order device names (supervision identities)."""
        if self._device_names is not None:
            return list(self._device_names)
        return [
            f"{self.network_names[int(k)]}/dev{int(j)}"
            for k, j in zip(self.network_id, self.within)
        ]

    @classmethod
    def from_networks(
        cls,
        networks: Sequence[MultiNodeBSN],
        config: Optional[FleetConfig] = None,
    ) -> "FleetSpec":
        """One device per :class:`~repro.sim.multinode.BSNNode`.

        Device static columns come from each node's
        :class:`~repro.sim.evaluate.PartitionMetrics` (``radio_j`` =
        tx + rx energy per attempt); device names are
        ``net{k}/{node.name}`` so supervision identities stay unique
        across networks.
        """
        sizes: List[int] = []
        protocols: List[int] = []
        period: List[float] = []
        front: List[float] = []
        link: List[float] = []
        compute: List[float] = []
        radio: List[float] = []
        names: List[str] = []
        for k, bsn in enumerate(networks):
            sizes.append(len(bsn.nodes))
            protocols.append(PROTOCOL_IDS[bsn.protocol])
            for node in bsn.nodes:
                m = node.metrics
                period.append(node.period_s)
                front.append(m.delay_front_s)
                link.append(m.delay_link_s)
                compute.append(m.sensor_compute_j)
                radio.append(m.sensor_tx_j + m.sensor_rx_j)
                names.append(f"net{k}/{node.name}")
        return cls(
            network_sizes=sizes,
            protocols=protocols,
            period_s=np.asarray(period),
            front_delay_s=np.asarray(front),
            link_delay_s=np.asarray(link),
            compute_j=np.asarray(compute),
            radio_j=np.asarray(radio),
            config=config,
            device_names=names,
        )

    @classmethod
    def homogeneous(
        cls,
        n_networks: int,
        devices_per_network: int,
        metrics: PartitionMetrics,
        period_s: float = 0.25,
        protocol: str = "mixed",
        config: Optional[FleetConfig] = None,
    ) -> "FleetSpec":
        """A population-scale fleet of identical devices.

        ``protocol`` is ``"tdma"``, ``"mimo"`` or ``"mixed"`` (alternating
        by network index, the perf-bench fleet shape).
        """
        if n_networks < 0 or devices_per_network < 1:
            raise ConfigurationError(
                "need n_networks >= 0 and devices_per_network >= 1"
            )
        if protocol == "mixed":
            codes = [k % 2 for k in range(n_networks)]
        elif protocol in PROTOCOLS:
            codes = [PROTOCOL_IDS[protocol]] * n_networks
        else:
            raise ConfigurationError(
                f"unknown protocol {protocol!r}; available: "
                f"{PROTOCOLS + ('mixed',)}"
            )
        n_devices = n_networks * devices_per_network
        return cls(
            network_sizes=[devices_per_network] * n_networks,
            protocols=codes,
            period_s=np.full(n_devices, float(period_s)),
            front_delay_s=np.full(n_devices, metrics.delay_front_s),
            link_delay_s=np.full(n_devices, metrics.delay_link_s),
            compute_j=np.full(n_devices, metrics.sensor_compute_j),
            radio_j=np.full(
                n_devices, metrics.sensor_tx_j + metrics.sensor_rx_j
            ),
            config=config,
        )

    def slice_networks(self, lo: int, hi: int) -> "FleetSpec":
        """The sub-fleet of networks ``[lo, hi)``, streams preserved.

        The slice carries the parent's per-network seeds and names, so
        simulating a slice reproduces exactly the parent fleet's columns
        for those networks — the property the sharded fan-out in
        :func:`repro.sim.parallel.fleet_soa_rounds` relies on.
        """
        if not 0 <= lo <= hi <= self.n_networks:
            raise ConfigurationError(
                f"network slice [{lo}, {hi}) out of range "
                f"[0, {self.n_networks})"
            )
        dlo = int(self.net_off[lo]) if lo < self.n_networks else self.n_devices
        dhi = (
            int(self.net_off[hi - 1] + self.network_sizes[hi - 1])
            if hi > lo
            else dlo
        )
        return FleetSpec(
            network_sizes=self.network_sizes[lo:hi],
            protocols=self.protocols[lo:hi],
            period_s=self.period_s[dlo:dhi],
            front_delay_s=self.front_delay_s[dlo:dhi],
            link_delay_s=self.link_delay_s[dlo:dhi],
            compute_j=self.compute_j[dlo:dhi],
            radio_j=self.radio_j[dlo:dhi],
            config=self.config,
            network_names=self.network_names[lo:hi],
            device_names=(
                self._device_names[dlo:dhi]
                if self._device_names is not None
                else None
            ),
            network_seeds=self.network_seeds[lo:hi],
        )


@dataclass
class FleetResult:
    """Struct-of-arrays outcome of one fleet simulation.

    All per-device arrays are in fleet device order; ``availability`` is
    ``(n_rounds, n_devices)`` with NaN marking rounds the device was not
    scheduled (dead or quarantined) — the NaN-sentinel discipline of
    dropped-event latencies in :mod:`repro.sim.faults`.
    """

    n_rounds: int
    availability: np.ndarray
    offered: np.ndarray
    delivered: np.ndarray
    dropped: np.ndarray
    attempts: np.ndarray
    latency_sum_s: np.ndarray
    latency_events: np.ndarray
    energy_j: np.ndarray
    charge_j: np.ndarray
    seq: np.ndarray
    slot: np.ndarray
    pending: np.ndarray
    chain_bad: np.ndarray
    health: Optional[List[str]] = None
    quarantines: Optional[np.ndarray] = None

    @property
    def n_devices(self) -> int:
        """Devices covered by this result."""
        return int(self.offered.shape[0])

    @property
    def mean_latency_s(self) -> np.ndarray:
        """Per-device mean delivered-event latency (NaN: no deliveries)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                self.latency_events > 0,
                self.latency_sum_s / self.latency_events,
                np.nan,
            )

    @property
    def fleet_availability(self) -> float:
        """Delivered fraction of all offered events across the fleet."""
        offered = int(self.offered.sum())
        if offered == 0:
            return 1.0
        return float(self.delivered.sum() / offered)

    @property
    def alive(self) -> np.ndarray:
        """Devices with battery charge remaining at the end of the run."""
        return self.charge_j > 0.0


#: (field name, NaN-aware float comparison) pairs checked for identity.
_RESULT_FLOAT_FIELDS = (
    "availability",
    "latency_sum_s",
    "energy_j",
    "charge_j",
)
_RESULT_INT_FIELDS = (
    "offered",
    "delivered",
    "dropped",
    "attempts",
    "latency_events",
    "seq",
    "slot",
)
_RESULT_BOOL_FIELDS = ("pending", "chain_bad")


def fleet_results_identical(a: FleetResult, b: FleetResult) -> bool:
    """Bit-identity of two fleet results, NaN-aware.

    Float columns compare with ``np.array_equal(..., equal_nan=True)``
    (NaN sentinels mark unscheduled rounds and zero-delivery latencies);
    integer/bool columns and final health states compare exactly.
    """
    if a.n_rounds != b.n_rounds or a.n_devices != b.n_devices:
        return False
    for name in _RESULT_FLOAT_FIELDS:
        if not np.array_equal(
            getattr(a, name), getattr(b, name), equal_nan=True
        ):
            return False
    for name in _RESULT_INT_FIELDS + _RESULT_BOOL_FIELDS:
        if not np.array_equal(getattr(a, name), getattr(b, name)):
            return False
    if (a.health is None) != (b.health is None) or a.health != b.health:
        return False
    if (a.quarantines is None) != (b.quarantines is None):
        return False
    if a.quarantines is not None and not np.array_equal(
        a.quarantines, b.quarantines
    ):
        return False
    return True


def concat_fleet_results(parts: Sequence[FleetResult]) -> FleetResult:
    """Stitch per-shard results back into fleet device order.

    Every per-network column is independent, so concatenating contiguous
    network-range shards reproduces the unsharded result bit-for-bit.
    """
    if not parts:
        raise ConfigurationError("need at least one result to concatenate")
    n_rounds = parts[0].n_rounds
    if any(p.n_rounds != n_rounds for p in parts):
        raise ConfigurationError("shards disagree on n_rounds")
    kwargs: Dict[str, Any] = {"n_rounds": n_rounds}
    kwargs["availability"] = np.concatenate(
        [p.availability for p in parts], axis=1
    )
    for name in (
        _RESULT_FLOAT_FIELDS[1:] + _RESULT_INT_FIELDS + _RESULT_BOOL_FIELDS
    ):
        kwargs[name] = np.concatenate([getattr(p, name) for p in parts])
    healths = [p.health for p in parts]
    if all(h is not None for h in healths):
        kwargs["health"] = [s for h in healths for s in h]  # type: ignore[union-attr]
        kwargs["quarantines"] = np.concatenate(
            [p.quarantines for p in parts]  # type: ignore[misc]
        )
    elif any(h is not None for h in healths):
        raise ConfigurationError("mixed supervised/unsupervised shards")
    return FleetResult(**kwargs)


def _check_rounds(n_rounds: int) -> None:
    if n_rounds < 1:
        raise ConfigurationError("n_rounds must be >= 1")


def _make_supervisor(spec: FleetSpec, policy: Optional[Any]) -> Optional[Any]:
    """A per-run :class:`FleetSupervisor`, or None when unsupervised."""
    if policy is None or spec.n_devices == 0:
        return None
    from repro.sim.supervise import FleetSupervisor

    return FleetSupervisor(spec.device_names(), policy)


def simulate_fleet_soa(
    spec: FleetSpec,
    n_rounds: int,
    policy: Optional[Any] = None,
) -> FleetResult:
    """Vectorised struct-of-arrays simulation of the whole fleet.

    Per round: one uniform block per network resolves every device's
    channel chain via :func:`~repro.sim.channel.ge_outcome_block` (a 2-D
    matrix, one row per device), TDMA waits come from an exclusive
    running sum in slot order per network, and the event windows update
    every state column with flat array operations — no per-device Python.

    Args:
        spec: The fleet layout.
        n_rounds: Supervision rounds to simulate.
        policy: Optional :class:`~repro.sim.supervise.HealthPolicy`; when
            given, a per-run :class:`~repro.sim.supervise.FleetSupervisor`
            reads each round's availability columns
            (:meth:`~repro.sim.supervise.FleetSupervisor.
            observe_availability_round`) and quarantined devices drop out
            of scheduling while their channels keep evolving.

    Returns:
        A :class:`FleetResult`, bit-identical to
        :func:`simulate_fleet_scalar` on the same spec.
    """
    _check_rounds(n_rounds)
    cfg = spec.config
    params = cfg.channel
    n_dev = spec.n_devices
    n_net = spec.n_networks
    E = cfg.events_per_round
    attempts_per_event = 1 + cfg.max_retries
    S = cfg.slots_per_round
    rngs = [np.random.default_rng(s) for s in spec.network_seeds]
    sizes = spec.network_sizes
    offs = spec.net_off
    tdma_net = spec.protocols == PROTOCOL_IDS["tdma"]
    tdma_dev = np.repeat(tdma_net, sizes)
    # Rectangular fleets (every network the same size) share one slot
    # rotation per round, so the TDMA wait prefix sums vectorise across
    # all networks as a roll + one 2-D cumsum; ragged fleets fall back to
    # a per-network scan.
    rect_size = int(sizes[0]) if n_net and (sizes == sizes[0]).all() else 0

    chain_bad = np.zeros(n_dev, dtype=bool)
    for k in range(n_net):
        lo, hi = int(offs[k]), int(offs[k] + sizes[k])
        chain_bad[lo:hi] = (
            rngs[k].random(int(sizes[k])) < params.stationary_bad_fraction
        )

    charge = np.full(n_dev, float(cfg.battery_j))
    seq = np.zeros(n_dev, dtype=np.int64)
    slot = spec.within.copy()
    pending = np.zeros(n_dev, dtype=bool)
    offered = np.zeros(n_dev, dtype=np.int64)
    delivered = np.zeros(n_dev, dtype=np.int64)
    dropped = np.zeros(n_dev, dtype=np.int64)
    attempts = np.zeros(n_dev, dtype=np.int64)
    latency_sum = np.zeros(n_dev)
    latency_events = np.zeros(n_dev, dtype=np.int64)
    energy = np.zeros(n_dev)
    availability = np.full((n_rounds, n_dev), np.nan)

    supervisor = _make_supervisor(spec, policy)
    names = spec.device_names() if supervisor is not None else []

    draws = np.empty((n_dev, S, 2))
    bounds = [
        (int(offs[k]), int(offs[k] + sizes[k])) for k in range(n_net)
    ]
    for r in range(n_rounds):
        alive = charge > 0.0
        if supervisor is not None:
            sched = alive & supervisor.schedulable_mask(names)
        else:
            sched = alive
        for (lo, hi), rng in zip(bounds, rngs):
            rng.random(out=draws[lo:hi])
        # TDMA slot wait: exclusive running sum of scheduled link delays
        # in slot order — device at slot 0 waits 0, slot s waits the
        # sequential sum over slots [0, s), the order the scalar twin
        # accumulates in, so the floats match bit-for-bit.
        contrib = np.where(sched, spec.link_delay_s, 0.0)
        if rect_size > 1:
            rho = r % rect_size
            c_slot = np.roll(contrib.reshape(n_net, rect_size), rho, axis=1)
            cs = np.cumsum(c_slot, axis=1)
            w_slot = np.concatenate(
                (np.zeros((n_net, 1)), cs[:, :-1]), axis=1
            )
            wait = np.roll(w_slot, -rho, axis=1).reshape(-1)
            wait = np.where(tdma_dev, wait, 0.0)
        else:
            wait = np.zeros(n_dev)
            for k, (lo, hi) in enumerate(bounds):
                size = hi - lo
                if not tdma_net[k] or size <= 1:
                    continue
                sl = slot[lo:hi]
                by_slot = np.empty(size, dtype=np.int64)
                by_slot[sl] = np.arange(size)
                c = contrib[lo:hi][by_slot]
                cs = np.cumsum(c)
                w_slot = np.concatenate(([0.0], cs[:-1]))
                wait[lo:hi] = w_slot[sl]
        if n_dev:
            loss, chain_bad = ge_outcome_block(
                chain_bad, draws[..., 0], draws[..., 1], params
            )
        else:
            loss = np.zeros((0, S), dtype=bool)
        delivered_round = np.zeros(n_dev, dtype=np.int64)
        dropped_round = np.zeros(n_dev, dtype=np.int64)
        energy_round = np.zeros(n_dev)
        for w in range(E):
            window = loss[:, w * attempts_per_event : (w + 1) * attempts_per_event]
            succ = ~window
            any_succ = succ.any(axis=1)
            tries = np.where(
                any_succ, succ.argmax(axis=1) + 1, attempts_per_event
            )
            tries = np.where(sched, tries, 0)
            deliver = sched & any_succ
            drop = sched & pending
            offered += sched
            delivered += deliver
            dropped += drop
            attempts += tries
            seq = (seq + tries) % SEQ_MODULUS
            e = np.where(sched, spec.compute_j + tries * spec.radio_j, 0.0)
            energy += e
            charge = charge - e
            lat = spec.front_delay_s + wait + tries * spec.link_delay_s
            latency_sum += np.where(deliver, lat, 0.0)
            latency_events += deliver
            pending = np.where(sched, ~any_succ, pending)
            delivered_round += deliver
            dropped_round += drop
            energy_round += e
        availability[r, sched] = delivered_round[sched] / float(E)
        if supervisor is not None:
            supervisor.observe_availability_round(
                names,
                sched,
                events=E,
                delivered=delivered_round,
                dropped=dropped_round,
                sensor_j=energy_round,
            )
        slot = (slot + 1) % spec.net_size_of

    health: Optional[List[str]] = None
    quarantines: Optional[np.ndarray] = None
    if supervisor is not None:
        states = supervisor.states()
        health = [states[name] for name in names]
        quarantines = np.asarray(
            [supervisor.device(name).quarantines for name in names],
            dtype=np.int64,
        )
    return FleetResult(
        n_rounds=n_rounds,
        availability=availability,
        offered=offered,
        delivered=delivered,
        dropped=dropped,
        attempts=attempts,
        latency_sum_s=latency_sum,
        latency_events=latency_events,
        energy_j=energy,
        charge_j=charge,
        seq=seq,
        slot=slot,
        pending=pending,
        chain_bad=chain_bad,
        health=health,
        quarantines=quarantines,
    )


def simulate_fleet_scalar(
    spec: FleetSpec,
    n_rounds: int,
    policy: Optional[Any] = None,
) -> FleetResult:
    """The scalar twin: per-object Python loops, one device at a time.

    Channels are real :class:`~repro.sim.channel.GilbertElliottChannel`
    objects sharing each network's generator (constructed in device
    order, stepped one :meth:`~repro.sim.channel.GilbertElliottChannel.
    next_outcome` per attempt slot), so the uniform stream is consumed in
    exactly the SoA engine's block order and the outcome — every counter,
    every float — is bit-identical.  This is the reference the perf bench
    times against and the equivalence tests pin.
    """
    _check_rounds(n_rounds)
    cfg = spec.config
    n_dev = spec.n_devices
    n_net = spec.n_networks
    E = cfg.events_per_round
    attempts_per_event = 1 + cfg.max_retries
    S = cfg.slots_per_round
    rngs = [np.random.default_rng(s) for s in spec.network_seeds]
    sizes = spec.network_sizes
    offs = spec.net_off

    channels: List[GilbertElliottChannel] = []
    for k in range(n_net):
        for _ in range(int(sizes[k])):
            channels.append(GilbertElliottChannel(cfg.channel, rng=rngs[k]))

    charge = [float(cfg.battery_j)] * n_dev
    seq = [0] * n_dev
    slot = [int(v) for v in spec.within]
    pending = [False] * n_dev
    offered = [0] * n_dev
    delivered = [0] * n_dev
    dropped = [0] * n_dev
    attempts = [0] * n_dev
    latency_sum = [0.0] * n_dev
    latency_events = [0] * n_dev
    energy = [0.0] * n_dev
    availability = np.full((n_rounds, n_dev), np.nan)

    supervisor = _make_supervisor(spec, policy)
    names = spec.device_names() if supervisor is not None else []

    for r in range(n_rounds):
        if supervisor is not None:
            mask = supervisor.schedulable_mask(names)
            sched = [charge[d] > 0.0 and bool(mask[d]) for d in range(n_dev)]
        else:
            sched = [charge[d] > 0.0 for d in range(n_dev)]
        delivered_round = [0] * n_dev
        dropped_round = [0] * n_dev
        energy_round = [0.0] * n_dev
        for k in range(n_net):
            lo, hi = int(offs[k]), int(offs[k] + sizes[k])
            # Channel steps for every device, scheduled or not: the
            # environment does not pause for a quarantined device.
            outcomes = [
                [channels[d].next_outcome() for _ in range(S)]
                for d in range(lo, hi)
            ]
            # Exclusive running sum of scheduled link delays in slot order.
            wait = [0.0] * (hi - lo)
            if spec.protocols[k] == PROTOCOL_IDS["tdma"]:
                order = sorted(range(lo, hi), key=lambda d: slot[d])
                acc = 0.0
                for d in order:
                    wait[d - lo] = acc
                    acc = acc + (
                        spec.link_delay_s[d] if sched[d] else 0.0
                    )
            for d in range(lo, hi):
                lost = outcomes[d - lo]
                for w in range(E):
                    window = lost[
                        w * attempts_per_event : (w + 1) * attempts_per_event
                    ]
                    any_succ = not all(window)
                    if any_succ:
                        tries = window.index(False) + 1
                    else:
                        tries = attempts_per_event
                    if not sched[d]:
                        continue
                    offered[d] += 1
                    if pending[d]:
                        dropped[d] += 1
                        dropped_round[d] += 1
                    attempts[d] += tries
                    seq[d] = (seq[d] + tries) % SEQ_MODULUS
                    e = spec.compute_j[d] + tries * spec.radio_j[d]
                    energy[d] += e
                    energy_round[d] += e
                    charge[d] = charge[d] - e
                    if any_succ:
                        delivered[d] += 1
                        delivered_round[d] += 1
                        latency_sum[d] += (
                            spec.front_delay_s[d]
                            + wait[d - lo]
                            + tries * spec.link_delay_s[d]
                        )
                        latency_events[d] += 1
                    pending[d] = not any_succ
                if sched[d]:
                    availability[r, d] = delivered_round[d] / float(E)
        if supervisor is not None:
            supervisor.observe_availability_round(
                names,
                np.asarray(sched, dtype=bool),
                events=E,
                delivered=np.asarray(delivered_round, dtype=np.int64),
                dropped=np.asarray(dropped_round, dtype=np.int64),
                sensor_j=np.asarray(energy_round),
            )
        for d in range(n_dev):
            slot[d] = (slot[d] + 1) % int(spec.net_size_of[d])

    health: Optional[List[str]] = None
    quarantines: Optional[np.ndarray] = None
    if supervisor is not None:
        states = supervisor.states()
        health = [states[name] for name in names]
        quarantines = np.asarray(
            [supervisor.device(name).quarantines for name in names],
            dtype=np.int64,
        )
    return FleetResult(
        n_rounds=n_rounds,
        availability=availability,
        offered=np.asarray(offered, dtype=np.int64),
        delivered=np.asarray(delivered, dtype=np.int64),
        dropped=np.asarray(dropped, dtype=np.int64),
        attempts=np.asarray(attempts, dtype=np.int64),
        latency_sum_s=np.asarray(latency_sum),
        latency_events=np.asarray(latency_events, dtype=np.int64),
        energy_j=np.asarray(energy),
        charge_j=np.asarray(charge),
        seq=np.asarray(seq, dtype=np.int64),
        slot=np.asarray(slot, dtype=np.int64),
        pending=np.asarray(pending, dtype=bool),
        chain_bad=np.asarray(
            [c.in_bad_state for c in channels], dtype=bool
        ),
        health=health,
        quarantines=quarantines,
    )


__all__ = [
    "PROTOCOL_IDS",
    "FleetConfig",
    "FleetResult",
    "FleetSpec",
    "concat_fleet_results",
    "fleet_results_identical",
    "simulate_fleet_scalar",
    "simulate_fleet_soa",
]
