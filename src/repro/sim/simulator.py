"""Discrete-event simulator of the cross-end wearable computing system.

The static evaluator (:mod:`repro.sim.evaluate`) computes closed-form
per-event figures.  This simulator executes a *stream* of events against
three serial resources — the sensor's analytic front-end, the shared
wireless link and the aggregator CPU — so it additionally captures queueing
when an engine cannot keep up with the acquisition rate (a real-time
overrun), and provides an independent cross-check of the static model's
energy totals.

Each event is a pipeline job: ``front compute -> link transfer -> back
compute``.  A resource processes one job at a time (the link is half-duplex;
the aggregator CPU is a single core; the front-end is one analytic engine
instance), so event *k* may have to wait for event *k-1*.

This simulator is the single-device microscope.  For simulating whole
device *populations* (availability, retries, battery death and
supervision across 10^4-10^6 devices) see the struct-of-arrays fleet
engine in :mod:`repro.sim.fleetsoa`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.evaluate import PartitionMetrics


@dataclass(frozen=True)
class EventRecord:
    """Timing of one simulated event (all times in seconds, absolute)."""

    index: int
    release_s: float
    front_start_s: float
    link_start_s: float
    back_start_s: float
    finish_s: float

    @property
    def latency_s(self) -> float:
        """End-to-end sojourn time of the event."""
        return self.finish_s - self.release_s


@dataclass(frozen=True)
class SimulationReport:
    """Aggregate outcome of a streaming simulation.

    Attributes:
        events: Per-event timing records.
        sensor_energy_j: Total sensor energy over the run.
        aggregator_energy_j: Total aggregator energy over the run.
        mean_latency_s: Mean end-to-end event latency.
        max_latency_s: Worst event latency.
        deadline_misses: Events whose latency exceeded the event period
            (the engine cannot sustain real-time processing).
    """

    events: List[EventRecord]
    sensor_energy_j: float
    aggregator_energy_j: float
    mean_latency_s: float
    max_latency_s: float
    deadline_misses: int

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile over the run (e.g. 95 for the p95)."""
        if not 0 <= percentile <= 100:
            raise ConfigurationError("percentile must be in [0, 100]")
        return float(
            np.percentile([e.latency_s for e in self.events], percentile)
        )


class CrossEndSimulator:
    """Streams periodic events through a partitioned analytic engine.

    Args:
        metrics: Static per-event figures of the partition under test
            (stage service times and energies are taken from it).
        period_s: Event release period (acquisition window).
        jitter_sigma: When positive, every stage service time is scaled by
            an independent lognormal factor with this log-space standard
            deviation — modelling clock drift, retransmission bursts and
            scheduler noise.  The lognormal is normalised to unit mean, so
            averages match the static model while tails emerge.
        seed: Seed for the jitter draws.
    """

    def __init__(
        self,
        metrics: PartitionMetrics,
        period_s: float,
        jitter_sigma: float = 0.0,
        seed: int = 0,
    ) -> None:
        if period_s <= 0:
            raise ConfigurationError("period must be positive")
        if jitter_sigma < 0:
            raise ConfigurationError("jitter_sigma must be >= 0")
        self.metrics = metrics
        self.period_s = float(period_s)
        self.jitter_sigma = float(jitter_sigma)
        self.seed = int(seed)

    def _service_times(self, rng: Optional[np.random.Generator]):
        m = self.metrics
        base = (m.delay_front_s, m.delay_link_s, m.delay_back_s)
        if rng is None:
            return base
        # Unit-mean lognormal: exp(N(-sigma^2/2, sigma)).
        factors = np.exp(
            rng.normal(-self.jitter_sigma**2 / 2.0, self.jitter_sigma, size=3)
        )
        return tuple(b * f for b, f in zip(base, factors))

    def run(self, n_events: int) -> SimulationReport:
        """Simulate ``n_events`` periodic events.

        Returns:
            A :class:`SimulationReport`; raises
            :class:`~repro.errors.SimulationError` if the event backlog
            diverges (latency grows past 100 periods), which indicates the
            partition is fundamentally unable to keep up.
        """
        if n_events <= 0:
            raise ConfigurationError("n_events must be positive")
        m = self.metrics
        rng = (
            np.random.default_rng(self.seed) if self.jitter_sigma > 0 else None
        )
        front_free = 0.0
        link_free = 0.0
        back_free = 0.0
        records: List[EventRecord] = []
        misses = 0
        for k in range(n_events):
            t_front, t_link, t_back = self._service_times(rng)
            release = k * self.period_s
            front_start = max(release, front_free)
            front_end = front_start + t_front
            front_free = front_end
            link_start = max(front_end, link_free)
            link_end = link_start + t_link
            link_free = link_end
            back_start = max(link_end, back_free)
            finish = back_start + t_back
            back_free = finish
            latency = finish - release
            if latency > self.period_s:
                misses += 1
            if latency > 100 * self.period_s:
                raise SimulationError(
                    f"event backlog diverges at event {k}: latency "
                    f"{latency:.4f}s >> period {self.period_s:.4f}s"
                )
            records.append(
                EventRecord(k, release, front_start, link_start, back_start, finish)
            )
        latencies = [r.latency_s for r in records]
        return SimulationReport(
            events=records,
            sensor_energy_j=m.sensor_total_j * n_events,
            aggregator_energy_j=m.aggregator_total_j * n_events,
            mean_latency_s=sum(latencies) / len(latencies),
            max_latency_s=max(latencies),
            deadline_misses=misses,
        )
