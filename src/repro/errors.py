"""Exception hierarchy for the XPro reproduction library.

Every error raised by :mod:`repro` derives from :class:`XProError`, so
callers can catch one type to handle any library failure while still
distinguishing configuration mistakes from solver failures.
"""

from __future__ import annotations


class XProError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(XProError):
    """An object was constructed or configured with invalid parameters."""


class TopologyError(XProError):
    """A functional-cell topology is malformed (cycles, dangling ports...)."""


class PartitionError(XProError):
    """The Automatic XPro Generator could not produce a valid partition."""


class InfeasibleConstraintError(PartitionError):
    """No partition satisfies the requested delay constraint.

    By construction (Eq. 4 of the paper) this should never happen when the
    constraint is ``min(T_sensor, T_aggregator)``, because at least one of the
    two single-end extreme cuts is always feasible.  It can happen for
    user-supplied tighter constraints.
    """


class DataValidationError(ConfigurationError):
    """Input data failed validation (non-finite samples, empty or
    inconsistent datasets).  Subclasses :class:`ConfigurationError` so
    existing handlers keep working."""


class IntegrityError(XProError):
    """A wire-format integrity check failed (bad frame, CRC mismatch)."""


class SimulationError(XProError):
    """The cross-end system simulator reached an inconsistent state."""


class TrainingError(XProError):
    """A classifier could not be trained (degenerate data, no convergence)."""


class PerfRegressionError(XProError):
    """A measured performance metric regressed past the allowed threshold
    relative to the committed baseline (see :mod:`repro.eval.perf`)."""


class ReplayMismatchError(XProError):
    """A chaos replay bundle did not reproduce its pinned report digest
    bit-for-bit (see :mod:`repro.sim.chaos`)."""


class ChaosRegressionError(XProError):
    """The adversarial chaos search found a worst case materially worse
    than the committed baseline allows (see :mod:`repro.eval.chaos`)."""


class CheckpointError(XProError):
    """A checkpoint file is missing, tampered with, or was written for a
    different run configuration (see :mod:`repro.sim.supervise`)."""


class SupervisionGateError(XProError):
    """The supervision benchmark failed an acceptance gate: the circuit
    breaker did not save wasted retry energy, availability regressed, or
    checkpoint/resume was not bit-identical (see
    :mod:`repro.eval.supervision`)."""
