"""Multi-level discrete wavelet transform (DWT) for biosignal analysis.

The XPro generic classification extracts statistical features not only on the
time-domain segment but also on the approximation sub-bands of a multi-level
DWT decomposition (Section 2.1).  For the paper's 128-sample segments a
5-level transform is used, whose per-level lengths are 64/32/16/8/4 with the
5th level contributing *two* 4-sample segments (approximation + detail,
Section 4.4).

This module implements the DWT from scratch (no pywt available offline):

- :class:`WaveletFilter` -- quadrature mirror filter pairs; Haar and the
  Daubechies-4 ("db2") family are provided, Haar being the hardware-friendly
  default (the in-sensor DWT cell is a shift-add datapath).
- :func:`dwt_single_level` -- one analysis step (low-pass/high-pass filter +
  downsample by 2) with periodic boundary extension.
- :func:`dwt_multilevel` -- the full pyramid, returning the sub-band segments
  in the order the functional-cell topology consumes them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

_SQRT2 = math.sqrt(2.0)

#: Analysis filters of the supported wavelet families, keyed by name.
_FILTER_BANK = {
    "haar": (
        np.array([1.0 / _SQRT2, 1.0 / _SQRT2]),
        np.array([1.0 / _SQRT2, -1.0 / _SQRT2]),
    ),
    # Daubechies-4 (two vanishing moments); coefficients from the closed form
    # ((1 ± sqrt(3)) / (4 sqrt(2)), (3 ± sqrt(3)) / (4 sqrt(2))).
    "db2": (
        np.array(
            [
                (1 + math.sqrt(3)) / (4 * _SQRT2),
                (3 + math.sqrt(3)) / (4 * _SQRT2),
                (3 - math.sqrt(3)) / (4 * _SQRT2),
                (1 - math.sqrt(3)) / (4 * _SQRT2),
            ]
        ),
        np.array(
            [
                (1 - math.sqrt(3)) / (4 * _SQRT2),
                -(3 - math.sqrt(3)) / (4 * _SQRT2),
                (3 + math.sqrt(3)) / (4 * _SQRT2),
                -(1 + math.sqrt(3)) / (4 * _SQRT2),
            ]
        ),
    ),
}


def daubechies_lowpass(order: int) -> np.ndarray:
    """Construct the Daubechies-``order`` scaling filter (2*order taps).

    Classic spectral factorisation: the Daubechies polynomial
    ``P(y) = sum_k C(order-1+k, k) y^k`` is evaluated on the substitution
    ``y = (2 - z - 1/z) / 4``; its roots come in ``(z, 1/z)`` pairs and the
    minimum-phase half (|z| < 1) is kept, multiplied by the required
    ``(1 + z)^order`` factor, then normalised to ``sum h = sqrt(2)``.

    Verified properties (see the wavelet tests): orthonormality of the
    polyphase shifts, ``order`` vanishing moments of the matching wavelet,
    and agreement with the closed-form db2 coefficients.

    Args:
        order: Number of vanishing moments (db1 = Haar ... db8 supported;
            higher orders suffer root-finding conditioning).
    """
    if not 1 <= order <= 8:
        raise ConfigurationError("Daubechies order must be in [1, 8]")
    if order == 1:
        return np.array([1.0, 1.0]) / _SQRT2

    p = order
    # Daubechies polynomial coefficients in y, ascending order.
    poly_y = [math.comb(p - 1 + k, k) for k in range(p)]
    # Roots of P(y).
    y_roots = np.roots(list(reversed(poly_y)))
    z_roots = []
    for y in y_roots:
        # y = (2 - z - 1/z)/4  =>  z^2 - (2 - 4y) z + 1 = 0.
        b = 2.0 - 4.0 * y
        disc = np.sqrt(b * b - 4.0 + 0j)
        for z in ((b + disc) / 2.0, (b - disc) / 2.0):
            if abs(z) < 1.0 - 1e-12:
                z_roots.append(z)
                break
    # h(z) = (1 + z)^p * prod (z - z_k), then normalise.
    coeffs = np.array([1.0 + 0j])
    for _ in range(p):
        coeffs = np.convolve(coeffs, np.array([1.0, 1.0]))
    for z in z_roots:
        coeffs = np.convolve(coeffs, np.array([1.0, -z]))
    taps = np.real(coeffs)
    taps = taps / taps.sum() * _SQRT2
    return taps


def quadrature_mirror(lowpass: np.ndarray) -> np.ndarray:
    """High-pass taps from low-pass taps: ``g[k] = (-1)^k h[N-1-k]``."""
    n = len(lowpass)
    return np.array([(-1) ** k * lowpass[n - 1 - k] for k in range(n)])


@dataclass(frozen=True)
class WaveletFilter:
    """An analysis filter pair for one DWT step.

    Attributes:
        name: Family name (``"haar"``, ``"db2"`` ... ``"db8"``).
        lowpass: Scaling (approximation) filter taps.
        highpass: Wavelet (detail) filter taps.
    """

    name: str
    lowpass: np.ndarray
    highpass: np.ndarray

    @classmethod
    def by_name(cls, name: str) -> "WaveletFilter":
        """Look up a built-in family, or construct ``db<N>`` on demand."""
        key = name.lower()
        if key in _FILTER_BANK:
            low, high = _FILTER_BANK[key]
            return cls(name=key, lowpass=low.copy(), highpass=high.copy())
        if key.startswith("db") and key[2:].isdigit():
            low = daubechies_lowpass(int(key[2:]))
            return cls(name=key, lowpass=low, highpass=quadrature_mirror(low))
        raise ConfigurationError(
            f"unknown wavelet {name!r}; available: "
            f"{sorted(_FILTER_BANK)} and db1..db8"
        )

    @property
    def length(self) -> int:
        """Number of taps in each filter."""
        return len(self.lowpass)

    def multiplies_per_output(self) -> int:
        """Multiplier count per output sample — feeds the energy model."""
        return self.length


def _analysis_step(
    segment: np.ndarray, taps: np.ndarray
) -> np.ndarray:
    """Filter with periodic extension, then downsample by two."""
    n = len(segment)
    extended = np.concatenate([segment, segment[: len(taps) - 1]])
    filtered = np.convolve(extended, taps[::-1], mode="valid")
    return filtered[:n][::2]


def dwt_single_level(
    segment: Sequence[float], wavelet: WaveletFilter
) -> Tuple[np.ndarray, np.ndarray]:
    """One DWT analysis level.

    Args:
        segment: Input samples; the length must be even (the hardware DWT
            cell processes power-of-two segments).
        wavelet: Filter pair to use.

    Returns:
        ``(approximation, detail)`` arrays, each of half the input length.
    """
    arr = np.asarray(segment, dtype=np.float64)
    if arr.ndim != 1:
        raise ConfigurationError("DWT input must be one-dimensional")
    if len(arr) < 2 or len(arr) % 2 != 0:
        raise ConfigurationError(
            f"DWT input length must be even and >= 2, got {len(arr)}"
        )
    approx = _analysis_step(arr, wavelet.lowpass)
    detail = _analysis_step(arr, wavelet.highpass)
    return approx, detail


def dwt_multilevel(
    segment: Sequence[float],
    levels: int,
    wavelet: WaveletFilter | str = "haar",
) -> List[np.ndarray]:
    """Full multi-level DWT pyramid in functional-cell consumption order.

    The returned list contains, for a 5-level transform of a 128-sample
    segment, sub-bands of lengths ``[64, 32, 16, 8, 4, 4]``: the detail
    band of each level 1..L-1 is replaced by the next level's decomposition
    of the approximation band, and the deepest level contributes both its
    approximation and detail bands (the paper's "the 5-th level has two
    4-sample segments").

    Concretely the output is ``[D1, D2, ..., D(L-1), A(L), D(L)]`` where
    ``A``/``D`` are approximation/detail bands — each entry is one "DWT
    domain segment" on which the statistical feature cells operate.

    Args:
        segment: Input samples; length must be divisible by ``2**levels``.
        levels: Number of decomposition levels (>= 1).
        wavelet: Filter family name or a :class:`WaveletFilter`.

    Returns:
        List of sub-band arrays ordered shallow-to-deep.
    """
    if isinstance(wavelet, str):
        wavelet = WaveletFilter.by_name(wavelet)
    if levels < 1:
        raise ConfigurationError("levels must be >= 1")
    arr = np.asarray(segment, dtype=np.float64)
    if len(arr) % (1 << levels) != 0:
        raise ConfigurationError(
            f"segment length {len(arr)} not divisible by 2**{levels}"
        )

    bands: List[np.ndarray] = []
    approx = arr
    for level in range(1, levels + 1):
        approx, detail = dwt_single_level(approx, wavelet)
        if level < levels:
            bands.append(detail)
        else:
            bands.append(approx)
            bands.append(detail)
    return bands


def _analysis_step_batch(batch: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Row-wise filter with periodic extension, then downsample by two.

    Matches :func:`_analysis_step` output for every row: the valid part of
    ``convolve(extended, taps[::-1])`` equals the correlation
    ``sum_j taps[j] * extended[:, j:j+n]``, computed here as one
    vectorised accumulation over the (few) filter taps instead of a
    per-row convolution call.
    """
    n = batch.shape[1]
    extended = np.concatenate([batch, batch[:, : len(taps) - 1]], axis=1)
    filtered = np.zeros((batch.shape[0], n))
    for j, tap in enumerate(taps):
        filtered += tap * extended[:, j : j + n]
    return filtered[:, ::2]


def dwt_single_level_batch(
    batch: Sequence[Sequence[float]], wavelet: WaveletFilter | str = "haar"
) -> Tuple[np.ndarray, np.ndarray]:
    """One DWT analysis level over a whole ``(rows, n)`` batch.

    The batched counterpart of :func:`dwt_single_level` for any supported
    wavelet family: row ``i`` of each output equals
    ``dwt_single_level(batch[i], wavelet)``.

    Returns:
        ``(approximation, detail)`` arrays of shape ``(rows, n // 2)``.
    """
    if isinstance(wavelet, str):
        wavelet = WaveletFilter.by_name(wavelet)
    arr = np.asarray(batch, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError("batched DWT input must be two-dimensional")
    if arr.shape[1] < 2 or arr.shape[1] % 2 != 0:
        raise ConfigurationError(
            f"DWT input length must be even and >= 2, got {arr.shape[1]}"
        )
    approx = _analysis_step_batch(arr, wavelet.lowpass)
    detail = _analysis_step_batch(arr, wavelet.highpass)
    return approx, detail


def dwt_multilevel_batch(
    batch: Sequence[Sequence[float]],
    levels: int,
    wavelet: WaveletFilter | str = "haar",
) -> List[np.ndarray]:
    """Batched :func:`dwt_multilevel`: the full pyramid for every row at once.

    Returns the sub-band batches in the same consumption order
    ``[D1, ..., D(L-1), A(L), D(L)]``; entry ``k`` has shape
    ``(rows, band_length_k)`` and its row ``i`` equals band ``k`` of
    ``dwt_multilevel(batch[i], levels, wavelet)``.
    """
    if isinstance(wavelet, str):
        wavelet = WaveletFilter.by_name(wavelet)
    if levels < 1:
        raise ConfigurationError("levels must be >= 1")
    arr = np.asarray(batch, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError("batched DWT input must be two-dimensional")
    if arr.shape[1] % (1 << levels) != 0:
        raise ConfigurationError(
            f"row length {arr.shape[1]} not divisible by 2**{levels}"
        )
    bands: List[np.ndarray] = []
    approx = arr
    for level in range(1, levels + 1):
        approx, detail = dwt_single_level_batch(approx, wavelet)
        if level < levels:
            bands.append(detail)
        else:
            bands.append(approx)
            bands.append(detail)
    return bands


def dwt_band_lengths(segment_length: int, levels: int) -> List[int]:
    """Sub-band lengths produced by :func:`dwt_multilevel`, without computing.

    >>> dwt_band_lengths(128, 5)
    [64, 32, 16, 8, 4, 4]
    """
    if levels < 1:
        raise ConfigurationError("levels must be >= 1")
    if segment_length % (1 << levels) != 0:
        raise ConfigurationError(
            f"segment length {segment_length} not divisible by 2**{levels}"
        )
    lengths = [segment_length >> level for level in range(1, levels)]
    lengths.extend([segment_length >> levels] * 2)
    return lengths


def reconstruct_single_level(
    approx: np.ndarray, detail: np.ndarray, wavelet: WaveletFilter | str = "haar"
) -> np.ndarray:
    """Inverse of :func:`dwt_single_level` (used only to test invertibility).

    Upsamples both bands by two, filters with the time-reversed analysis
    filters (orthogonal wavelets are self-dual up to reversal) and sums.
    """
    if isinstance(wavelet, str):
        wavelet = WaveletFilter.by_name(wavelet)
    if len(approx) != len(detail):
        raise ConfigurationError("approximation/detail lengths differ")
    n = 2 * len(approx)
    up_a = np.zeros(n)
    up_d = np.zeros(n)
    up_a[::2] = approx
    up_d[::2] = detail

    def _synthesis(upsampled: np.ndarray, taps: np.ndarray) -> np.ndarray:
        extended = np.concatenate([upsampled[-(len(taps) - 1):], upsampled])
        return np.convolve(extended, taps, mode="valid")[:n]

    return _synthesis(up_a, wavelet.lowpass) + _synthesis(up_d, wavelet.highpass)
