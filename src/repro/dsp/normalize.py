"""Feature normalisation to the [0, 1] range.

Section 4.4: *"All the statistical features are normalized to range
[0, 1]."*  The normaliser is fit on the training set only (per-feature min
and max) and then applied to both training and testing features; values
outside the training range are clipped, which is what a fixed-point
saturating datapath would do on the sensor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class MinMaxNormalizer:
    """Per-column min-max scaler with clipping, fit/transform interface.

    >>> norm = MinMaxNormalizer()
    >>> X = norm.fit_transform(np.array([[0.0, 10.0], [2.0, 30.0]]))
    >>> X.min(), X.max()
    (0.0, 1.0)
    """

    def __init__(self) -> None:
        self._mins: Optional[np.ndarray] = None
        self._ranges: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._mins is not None

    @property
    def mins(self) -> np.ndarray:
        """Fitted per-column minima."""
        self._require_fitted()
        return self._mins.copy()

    @property
    def ranges(self) -> np.ndarray:
        """Fitted per-column ranges (zeros replaced by 1 at fit time)."""
        self._require_fitted()
        return self._ranges.copy()

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("normalizer used before fit()")

    def fit(self, features: np.ndarray) -> "MinMaxNormalizer":
        """Record per-column min/max from a (rows, columns) feature matrix."""
        mat = np.asarray(features, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] == 0:
            raise ConfigurationError("fit expects a non-empty 2-D matrix")
        self._mins = mat.min(axis=0)
        ranges = mat.max(axis=0) - self._mins
        # Constant columns map to 0 rather than dividing by zero.
        ranges[ranges == 0] = 1.0
        self._ranges = ranges
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Scale into [0, 1] using the fitted statistics, clipping outliers."""
        if not self.is_fitted:
            raise ConfigurationError("normalizer used before fit()")
        mat = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if mat.shape[1] != len(self._mins):
            raise ConfigurationError(
                f"feature dimension {mat.shape[1]} != fitted {len(self._mins)}"
            )
        scaled = (mat - self._mins) / self._ranges
        out = np.clip(scaled, 0.0, 1.0)
        return out if np.asarray(features).ndim == 2 else out[0]

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on the matrix, then transform it."""
        return self.fit(features).transform(features)
