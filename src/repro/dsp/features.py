"""The eight hardware-friendly statistical features of XPro.

Section 2.1 of the paper fixes the generic feature set to: maximal value
(Max), minimal value (Min), mean value (Mean), variance (Var), standard
deviation (Std), zero-crossing count (Czero), skewness (Skew) and kurtosis
(Kurt), extracted on the time-domain segment and on every DWT sub-band.

Each feature has:

- a batch reference implementation operating on a whole segment (used by the
  classifier training pipeline and the aggregator-side software cells), and
- an operation-count model (:func:`operation_counts`) describing what the
  in-sensor S-ALU executes, which drives the energy/delay characterisation
  of the corresponding functional cell (Figure 4).

The statistical definitions follow the population (biased) moment
conventions, which is what a single-pass hardware datapath computes:
``var = E[x^2] - E[x]^2``, ``skew = m3 / m2^{3/2}``, ``kurt = m4 / m2^2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Canonical feature ordering used across the whole library (feature-vector
#: layout, functional-cell naming, random-subspace indexing).
FEATURE_NAMES: Tuple[str, ...] = (
    "max",
    "min",
    "mean",
    "var",
    "std",
    "czero",
    "skew",
    "kurt",
)


def _as_segment(segment: Sequence[float]) -> np.ndarray:
    arr = np.asarray(segment, dtype=np.float64)
    if arr.ndim != 1:
        raise ConfigurationError("feature input must be one-dimensional")
    if arr.size == 0:
        raise ConfigurationError("feature input must be non-empty")
    return arr


def maximum(segment: Sequence[float]) -> float:
    """Maximal sample value of the segment."""
    return float(np.max(_as_segment(segment)))


def minimum(segment: Sequence[float]) -> float:
    """Minimal sample value of the segment."""
    return float(np.min(_as_segment(segment)))


def mean(segment: Sequence[float]) -> float:
    """Arithmetic mean of the segment."""
    return float(np.mean(_as_segment(segment)))


def variance(segment: Sequence[float]) -> float:
    """Population variance ``E[x^2] - E[x]^2`` (single-pass hardware form)."""
    arr = _as_segment(segment)
    mu = arr.mean()
    return float(np.mean(arr * arr) - mu * mu)


def standard_deviation(segment: Sequence[float]) -> float:
    """Population standard deviation (square root of :func:`variance`).

    In hardware the Std cell *reuses* the Var cell and adds only a square
    root (Figure 5) — the software definition mirrors that composition.
    """
    return float(np.sqrt(max(variance(segment), 0.0)))


def _propagate_signs(signs: np.ndarray) -> np.ndarray:
    """Carry the last non-zero sign through exact zeros, row-wise.

    Equivalent to the sequential rule "an equal-to-level sample keeps the
    previous sign; a leading flat run counts as positive", but computed with
    a single ``maximum.accumulate`` pass instead of a per-element loop:
    every position looks up the index of the most recent non-zero sign and
    gathers it, and positions before the first non-zero (which gather a
    zero) default to +1.

    Accepts a 1-D ``(n,)`` or 2-D ``(rows, n)`` sign array.
    """
    arr = np.atleast_2d(signs)
    positions = np.arange(arr.shape[1])[None, :]
    last_nonzero = np.where(arr != 0, positions, 0)
    np.maximum.accumulate(last_nonzero, axis=1, out=last_nonzero)
    filled = np.take_along_axis(arr, last_nonzero, axis=1)
    filled[filled == 0] = 1.0
    return filled if signs.ndim == 2 else filled[0]


def crossing_count(segment: Sequence[float], level: float = 0.0) -> float:
    """Number of crossings of ``level`` (Czero uses the mean as level).

    The hardware Czero cell counts sign changes of ``x[i] - level`` between
    consecutive samples; equal-to-level samples carry the previous sign so a
    flat run is not counted repeatedly.
    """
    arr = _as_segment(segment)
    signs = _propagate_signs(np.sign(arr - level))
    return float(np.count_nonzero(signs[1:] != signs[:-1]))


def zero_crossings(segment: Sequence[float]) -> float:
    """Czero as the paper uses it: crossings of the segment mean."""
    arr = _as_segment(segment)
    return crossing_count(arr, level=float(arr.mean()))


def skewness(segment: Sequence[float]) -> float:
    """Population skewness ``m3 / m2^{3/2}`` (0 for constant segments)."""
    arr = _as_segment(segment)
    mu = arr.mean()
    centered = arr - mu
    m2 = float(np.mean(centered**2))
    if m2 <= 1e-12:
        return 0.0
    m3 = float(np.mean(centered**3))
    return m3 / (m2**1.5)


def kurtosis(segment: Sequence[float]) -> float:
    """Population kurtosis ``m4 / m2^2`` (non-excess; 0 for constants)."""
    arr = _as_segment(segment)
    mu = arr.mean()
    centered = arr - mu
    m2 = float(np.mean(centered**2))
    if m2 <= 1e-12:
        return 0.0
    m4 = float(np.mean(centered**4))
    return m4 / (m2**2)


#: name -> batch implementation
_FEATURE_FUNCS: Dict[str, Callable[[Sequence[float]], float]] = {
    "max": maximum,
    "min": minimum,
    "mean": mean,
    "var": variance,
    "std": standard_deviation,
    "czero": zero_crossings,
    "skew": skewness,
    "kurt": kurtosis,
}


def compute_feature(name: str, segment: Sequence[float]) -> float:
    """Compute one named feature on a segment."""
    try:
        func = _FEATURE_FUNCS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown feature {name!r}; available: {list(FEATURE_NAMES)}"
        ) from None
    return func(segment)


def feature_vector(
    segment: Sequence[float], names: Sequence[str] = FEATURE_NAMES
) -> np.ndarray:
    """Compute a vector of features in the given order."""
    return np.asarray([compute_feature(n, segment) for n in names])


def batch_feature_matrix(
    segments: Sequence[Sequence[float]], names: Sequence[str] = FEATURE_NAMES
) -> np.ndarray:
    """All requested features of a ``(n_segments, n_samples)`` batch at once.

    The batched analogue of :func:`feature_vector`: row ``i`` of the result
    is ``feature_vector(segments[i], names)``, but every feature is computed
    for the whole batch in single NumPy passes (one reduction per moment,
    one accumulate pass for the Czero sign propagation) instead of a Python
    loop over segments.  Values match the scalar reference to float
    precision (within 1 ulp; the reductions are the same up to summation
    blocking), which the equivalence tests pin down to ``atol=1e-9``.

    Args:
        segments: Two-dimensional batch; every row is one segment.
        names: Features to compute, in output-column order.

    Returns:
        ``(n_segments, len(names))`` feature matrix.
    """
    X = np.asarray(segments, dtype=np.float64)
    if X.ndim != 2:
        raise ConfigurationError("segments must be a 2-D batch")
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise ConfigurationError("segments batch must be non-empty")
    unknown = [n for n in names if n not in _FEATURE_FUNCS]
    if unknown:
        raise ConfigurationError(f"unknown features: {unknown}")

    need = set(names)
    columns: Dict[str, np.ndarray] = {}
    if "max" in need:
        columns["max"] = X.max(axis=1)
    if "min" in need:
        columns["min"] = X.min(axis=1)
    if need - {"max", "min"}:
        mu = X.mean(axis=1)
        columns["mean"] = mu
        if need & {"var", "std"}:
            var = (X * X).mean(axis=1) - mu * mu
            columns["var"] = var
            columns["std"] = np.sqrt(np.maximum(var, 0.0))
        if need & {"czero", "skew", "kurt"}:
            centered = X - mu[:, None]
            if "czero" in need:
                signs = _propagate_signs(np.sign(centered))
                columns["czero"] = (signs[:, 1:] != signs[:, :-1]).sum(
                    axis=1
                ).astype(np.float64)
            if need & {"skew", "kurt"}:
                m2 = (centered**2).mean(axis=1)
                degenerate = m2 <= 1e-12
                safe_m2 = np.where(degenerate, 1.0, m2)
                if "skew" in need:
                    m3 = (centered**3).mean(axis=1)
                    columns["skew"] = np.where(degenerate, 0.0, m3 / safe_m2**1.5)
                if "kurt" in need:
                    m4 = (centered**4).mean(axis=1)
                    columns["kurt"] = np.where(degenerate, 0.0, m4 / safe_m2**2)
    return np.column_stack([columns[n] for n in names])


def operation_counts(name: str, segment_length: int) -> Mapping[str, int]:
    """S-ALU operation counts for one feature cell over an N-sample segment.

    These counts are the bridge between the algorithmic definition of a
    feature and its hardware cost: the energy library multiplies them by
    per-operation energies, and the delay model by per-operation cycle
    counts.  ``cmp`` is a comparator operation, ``super`` is one use of the
    S-ALU super-computation unit (sqrt/exp/reciprocal, Section 3.1.1).

    The Std entry deliberately counts only the *additional* square root on
    top of Var, reflecting the cell-level reuse rule (Figure 5); topology
    construction adds the Var cell explicitly as its predecessor.
    """
    n = int(segment_length)
    if n <= 0:
        raise ConfigurationError("segment_length must be positive")
    counts: Dict[str, Mapping[str, int]] = {
        "max": {"cmp": n - 1},
        "min": {"cmp": n - 1},
        "mean": {"add": n - 1, "div": 1},
        # sum, sum of squares, one division each, one multiply + subtract.
        "var": {"add": 2 * (n - 1), "mul": n + 1, "div": 2, "sub": 1},
        "std": {"super": 1},
        "czero": {"add": n - 1, "div": 1, "sub": n, "cmp": 2 * n},
        # centered third moment: subtract mean (n), cube (2n mul), sum, then
        # normalisation m2^{3/2} = m2 * sqrt(m2) -> 1 super + 1 mul + 1 div.
        "skew": {
            "add": 2 * (n - 1),
            "sub": n + 1,
            "mul": 3 * n + 2,
            "div": 3,
            "super": 1,
        },
        # centered fourth moment: subtract mean (n), 4th power (3n mul or 2n
        # with squaring reuse), sum, normalisation m2^2 -> 1 mul + 1 div.
        "kurt": {"add": 2 * (n - 1), "sub": n + 1, "mul": 3 * n + 2, "div": 3},
    }
    if name not in counts:
        raise ConfigurationError(
            f"unknown feature {name!r}; available: {list(FEATURE_NAMES)}"
        )
    return dict(counts[name])


@dataclass
class FeatureExtractor:
    """Batch feature extraction over time-domain + DWT sub-band segments.

    This is the software reference for the full feature front of the generic
    classification: given the list of domain segments (time segment first,
    then DWT sub-bands, as produced by the pipeline builder), it emits one
    concatenated feature vector whose layout matches the functional-cell
    topology ordering.

    Attributes:
        feature_names: Which of the eight features to extract per segment.
    """

    feature_names: Sequence[str] = FEATURE_NAMES

    def __post_init__(self) -> None:
        unknown = [n for n in self.feature_names if n not in _FEATURE_FUNCS]
        if unknown:
            raise ConfigurationError(f"unknown features: {unknown}")

    def extract(self, domain_segments: Sequence[Sequence[float]]) -> np.ndarray:
        """Concatenated feature vector across all domain segments."""
        if not domain_segments:
            raise ConfigurationError("need at least one domain segment")
        parts = [feature_vector(seg, self.feature_names) for seg in domain_segments]
        return np.concatenate(parts)

    def extract_batch(
        self, domain_segments: Sequence[Sequence[Sequence[float]]] | np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`extract`: one feature matrix for many events.

        Args:
            domain_segments: Either a single ``(n_events, n_samples)`` array
                (one domain segment per event) or a sequence of such
                batches, one per domain, all with the same number of rows —
                the batched counterpart of the per-event domain-segment
                list :meth:`extract` consumes.

        Returns:
            ``(n_events, n_domains * len(feature_names))`` matrix whose row
            ``i`` equals ``extract([batch[i] for batch in domain_segments])``.
        """
        if isinstance(domain_segments, np.ndarray) and domain_segments.ndim == 2:
            domain_segments = [domain_segments]
        if len(domain_segments) == 0:
            raise ConfigurationError("need at least one domain segment batch")
        batches = [np.asarray(b, dtype=np.float64) for b in domain_segments]
        n_events = {b.shape[0] for b in batches if b.ndim == 2}
        if any(b.ndim != 2 for b in batches) or len(n_events) != 1:
            raise ConfigurationError(
                "domain batches must all be 2-D with the same row count"
            )
        parts = [batch_feature_matrix(b, self.feature_names) for b in batches]
        return np.concatenate(parts, axis=1)

    def labels(self, n_segments: int) -> List[str]:
        """Human-readable labels ``<feature>@seg<k>`` matching :meth:`extract`."""
        return [
            f"{name}@seg{k}"
            for k in range(n_segments)
            for name in self.feature_names
        ]

    def dimension(self, n_segments: int) -> int:
        """Length of the vector :meth:`extract` returns for N segments."""
        return n_segments * len(self.feature_names)
