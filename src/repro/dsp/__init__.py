"""Digital signal processing substrate for the XPro generic classification.

This package provides everything the generic classification framework
computes on a signal segment before it reaches the classifier:

- :mod:`repro.dsp.fixedpoint` -- the Q16.16 32-bit fixed-point number system
  used by the in-sensor functional cells (Section 4.4 of the paper).
- :mod:`repro.dsp.wavelet` -- multi-level discrete wavelet transform.
- :mod:`repro.dsp.features` -- the eight hardware-friendly statistical
  features (Max, Min, Mean, Var, Std, Czero, Skew, Kurt).
- :mod:`repro.dsp.normalize` -- the [0, 1] feature normalisation applied
  before classification.
"""

from repro.dsp.features import (
    FEATURE_NAMES,
    FeatureExtractor,
    batch_feature_matrix,
    crossing_count,
    feature_vector,
    kurtosis,
    maximum,
    mean,
    minimum,
    skewness,
    standard_deviation,
    variance,
)
from repro.dsp.fixedpoint import FixedPoint, FixedPointFormat, Q16_16
from repro.dsp.normalize import MinMaxNormalizer
from repro.dsp.streaming import CrossingCounter, StreamingMoments
from repro.dsp.wavelet import (
    WaveletFilter,
    dwt_multilevel,
    dwt_multilevel_batch,
    dwt_single_level,
    dwt_single_level_batch,
)

__all__ = [
    "CrossingCounter",
    "FEATURE_NAMES",
    "StreamingMoments",
    "FeatureExtractor",
    "FixedPoint",
    "FixedPointFormat",
    "MinMaxNormalizer",
    "Q16_16",
    "WaveletFilter",
    "batch_feature_matrix",
    "crossing_count",
    "dwt_multilevel",
    "dwt_multilevel_batch",
    "dwt_single_level",
    "dwt_single_level_batch",
    "feature_vector",
    "kurtosis",
    "maximum",
    "mean",
    "minimum",
    "skewness",
    "standard_deviation",
    "variance",
]
