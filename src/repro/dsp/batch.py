"""Vectorised batch feature extraction.

Training extracts the 56-dimensional feature vector for every segment; the
reference path (:meth:`repro.core.layout.FeatureLayout.extract`) does it
row by row with per-feature Python calls.  This module computes the same
values for a whole ``(n_segments, segment_length)`` batch with numpy array
operations — identical results (verified by tests to float precision),
roughly an order of magnitude faster, which matters when sweeping training
configurations.

Only the Haar wavelet has a vectorised DWT path here (the hardware default
throughout the paper reproduction); other families fall back to the
reference implementation per row.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.layout import FeatureLayout
from repro.errors import ConfigurationError

_SQRT2 = np.sqrt(2.0)


def batch_haar_level(batch: np.ndarray) -> tuple:
    """One Haar DWT level over a (rows, n) batch -> (approx, detail)."""
    if batch.ndim != 2 or batch.shape[1] % 2:
        raise ConfigurationError("batch must be 2-D with even row length")
    pairs = batch.reshape(batch.shape[0], -1, 2)
    approx = (pairs[:, :, 0] + pairs[:, :, 1]) / _SQRT2
    # Sign convention matches the reference convolution path of
    # repro.dsp.wavelet: detail[k] = (x[2k] - x[2k+1]) / sqrt(2).
    detail = (pairs[:, :, 0] - pairs[:, :, 1]) / _SQRT2
    return approx, detail


def batch_haar_multilevel(batch: np.ndarray, levels: int) -> List[np.ndarray]:
    """Batched equivalent of :func:`repro.dsp.wavelet.dwt_multilevel` (Haar).

    Returns the sub-band batches in the same order: D1..D(L-1), A(L), D(L).
    """
    if levels < 1:
        raise ConfigurationError("levels must be >= 1")
    if batch.shape[1] % (1 << levels):
        raise ConfigurationError(
            f"row length {batch.shape[1]} not divisible by 2**{levels}"
        )
    bands: List[np.ndarray] = []
    approx = np.asarray(batch, dtype=np.float64)
    for level in range(1, levels + 1):
        approx, detail = batch_haar_level(approx)
        if level < levels:
            bands.append(detail)
        else:
            bands.append(approx)
            bands.append(detail)
    return bands


def _batch_features(segment_batch: np.ndarray) -> np.ndarray:
    """The 8 statistical features per row, columns in canonical order."""
    X = np.asarray(segment_batch, dtype=np.float64)
    maximum = X.max(axis=1)
    minimum = X.min(axis=1)
    mean = X.mean(axis=1)
    e2 = (X * X).mean(axis=1)
    var = e2 - mean * mean
    std = np.sqrt(np.maximum(var, 0.0))
    centered = X - mean[:, None]
    m2 = (centered**2).mean(axis=1)
    m3 = (centered**3).mean(axis=1)
    m4 = (centered**4).mean(axis=1)
    degenerate = m2 <= 1e-12
    safe_m2 = np.where(degenerate, 1.0, m2)
    skew = np.where(degenerate, 0.0, m3 / safe_m2**1.5)
    kurt = np.where(degenerate, 0.0, m4 / safe_m2**2)
    # Czero: crossings of the row mean with zero-run sign propagation.
    signs = np.sign(centered)
    # Propagate previous sign through exact zeros, column by column.
    for col in range(signs.shape[1]):
        if col == 0:
            signs[:, 0] = np.where(signs[:, 0] == 0, 1.0, signs[:, 0])
        else:
            zero = signs[:, col] == 0
            signs[zero, col] = signs[zero, col - 1]
    czero = (signs[:, 1:] != signs[:, :-1]).sum(axis=1).astype(np.float64)
    return np.column_stack([maximum, minimum, mean, var, std, czero, skew, kurt])


def batch_extract_matrix(
    segments: np.ndarray, layout: FeatureLayout
) -> np.ndarray:
    """Vectorised drop-in for :meth:`FeatureLayout.extract_matrix`.

    Falls back to the reference path for non-Haar layouts or non-default
    feature orderings (correctness over speed in the unusual cases).
    """
    X = np.asarray(segments, dtype=np.float64)
    if X.ndim != 2:
        raise ConfigurationError("segments must be a 2-D batch")
    from repro.dsp.features import FEATURE_NAMES

    if layout.wavelet != "haar" or tuple(layout.feature_names) != FEATURE_NAMES:
        return layout.extract_matrix(X)
    if X.shape[1] != layout.segment_length:
        raise ConfigurationError(
            f"rows must have length {layout.segment_length}, got {X.shape[1]}"
        )

    # Align for the DWT path (truncate/zero-pad every row).
    target = layout.dwt_aligned_length
    if X.shape[1] >= target:
        aligned = X[:, :target]
    else:
        aligned = np.zeros((X.shape[0], target))
        aligned[:, : X.shape[1]] = X

    parts = [_batch_features(X)]
    for band in batch_haar_multilevel(aligned, layout.dwt_levels):
        parts.append(_batch_features(band))
    return np.concatenate(parts, axis=1)
