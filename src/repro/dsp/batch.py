"""Vectorised batch feature extraction.

Training extracts the 56-dimensional feature vector for every segment; the
reference path (:meth:`repro.core.layout.FeatureLayout.extract`) does it
row by row with per-feature Python calls.  This module computes the same
values for a whole ``(n_segments, segment_length)`` batch with numpy array
operations — identical results (verified by tests to float precision),
roughly an order of magnitude faster, which matters when sweeping training
configurations.

The Haar wavelet (the hardware default throughout the paper reproduction)
gets a dedicated pair-arithmetic DWT path; every other family runs through
the general batched filter bank of
:func:`repro.dsp.wavelet.dwt_multilevel_batch`, so the whole front end is
vectorised for any layout.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.layout import FeatureLayout
from repro.dsp.features import batch_feature_matrix
from repro.dsp.wavelet import dwt_multilevel_batch
from repro.errors import ConfigurationError

_SQRT2 = np.sqrt(2.0)


def batch_haar_level(batch: np.ndarray) -> tuple:
    """One Haar DWT level over a (rows, n) batch -> (approx, detail)."""
    if batch.ndim != 2 or batch.shape[1] % 2:
        raise ConfigurationError("batch must be 2-D with even row length")
    pairs = batch.reshape(batch.shape[0], -1, 2)
    approx = (pairs[:, :, 0] + pairs[:, :, 1]) / _SQRT2
    # Sign convention matches the reference convolution path of
    # repro.dsp.wavelet: detail[k] = (x[2k] - x[2k+1]) / sqrt(2).
    detail = (pairs[:, :, 0] - pairs[:, :, 1]) / _SQRT2
    return approx, detail


def batch_haar_multilevel(batch: np.ndarray, levels: int) -> List[np.ndarray]:
    """Batched equivalent of :func:`repro.dsp.wavelet.dwt_multilevel` (Haar).

    Returns the sub-band batches in the same order: D1..D(L-1), A(L), D(L).
    """
    if levels < 1:
        raise ConfigurationError("levels must be >= 1")
    if batch.shape[1] % (1 << levels):
        raise ConfigurationError(
            f"row length {batch.shape[1]} not divisible by 2**{levels}"
        )
    bands: List[np.ndarray] = []
    approx = np.asarray(batch, dtype=np.float64)
    for level in range(1, levels + 1):
        approx, detail = batch_haar_level(approx)
        if level < levels:
            bands.append(detail)
        else:
            bands.append(approx)
            bands.append(detail)
    return bands


def batch_extract_matrix(
    segments: np.ndarray, layout: FeatureLayout
) -> np.ndarray:
    """Vectorised drop-in for :meth:`FeatureLayout.extract_matrix`.

    Haar layouts use the dedicated pair-arithmetic DWT; every other wavelet
    family runs through the general batched filter bank, so no layout falls
    back to per-row extraction.
    """
    X = np.asarray(segments, dtype=np.float64)
    if X.ndim != 2:
        raise ConfigurationError("segments must be a 2-D batch")
    if X.shape[1] != layout.segment_length:
        raise ConfigurationError(
            f"rows must have length {layout.segment_length}, got {X.shape[1]}"
        )

    # Align for the DWT path (truncate/zero-pad every row).
    target = layout.dwt_aligned_length
    if X.shape[1] >= target:
        aligned = X[:, :target]
    else:
        aligned = np.zeros((X.shape[0], target))
        aligned[:, : X.shape[1]] = X

    if layout.wavelet == "haar":
        bands = batch_haar_multilevel(aligned, layout.dwt_levels)
    else:
        bands = dwt_multilevel_batch(aligned, layout.dwt_levels, layout.wavelet)

    parts = [batch_feature_matrix(X, layout.feature_names)]
    parts.extend(batch_feature_matrix(band, layout.feature_names) for band in bands)
    return np.concatenate(parts, axis=1)
