"""Q16.16 fixed-point arithmetic as implemented by XPro functional cells.

The paper (Section 4.4) states: *"We adopt 32-bit fixed-number with 16-bit
integer and 16-bit decimals for functional cells."*  This module provides a
software model of that number system so the in-sensor analytic part can be
executed bit-faithfully in Python, and so tests can verify that the cross-end
partition computes the same results as a monolithic implementation.

Two interfaces are offered:

- :class:`FixedPoint` -- a scalar value type with arithmetic operators,
  saturation and explicit rounding semantics.  Convenient for unit tests and
  for the reference implementations of individual functional cells.
- vectorised helpers (:func:`quantize_array`, :func:`to_float_array`) --
  used by the feature extractors to process whole segments efficiently while
  keeping the same quantisation behaviour.

Design choices modelled on common ASIC datapath practice:

- truncation toward negative infinity on multiplication/division (matching a
  simple right-shift after the multiply), and
- saturating addition/subtraction (wearable DSP blocks saturate rather than
  wrap, because wrapping corrupts downstream statistics silently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError

Number = Union[int, float, "FixedPoint"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``integer_bits.fraction_bits``.

    The total width is ``integer_bits + fraction_bits`` and includes the sign
    bit (two's complement), so Q16.16 is a 32-bit word able to represent
    values in ``[-32768.0, 32767.99998...]`` with resolution ``2**-16``.
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise ConfigurationError("integer_bits must include the sign bit (>= 1)")
        if self.fraction_bits < 0:
            raise ConfigurationError("fraction_bits must be non-negative")

    @property
    def total_bits(self) -> int:
        """Total word width in bits, including the sign bit."""
        return self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> int:
        """Integer scale factor: one LSB represents ``1 / scale``."""
        return 1 << self.fraction_bits

    @property
    def max_raw(self) -> int:
        """Largest representable raw (scaled integer) value."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_raw(self) -> int:
        """Smallest (most negative) representable raw value."""
        return -(1 << (self.total_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        """The real value of one least-significant bit."""
        return 1.0 / self.scale

    def saturate(self, raw: int) -> int:
        """Clamp a raw integer into the representable range."""
        if raw > self.max_raw:
            return self.max_raw
        if raw < self.min_raw:
            return self.min_raw
        return raw

    def from_float(self, value: float) -> int:
        """Quantise a real value to a raw integer (round-half-away, saturate)."""
        if np.isnan(value):
            raise ConfigurationError("cannot quantise NaN to fixed point")
        raw = int(np.floor(value * self.scale + 0.5)) if value >= 0 else -int(
            np.floor(-value * self.scale + 0.5)
        )
        return self.saturate(raw)

    def to_float(self, raw: int) -> float:
        """Convert a raw integer back to its real value."""
        return raw / self.scale


#: The paper's datapath format: 32-bit word, 16 integer + 16 fraction bits.
Q16_16 = FixedPointFormat(integer_bits=16, fraction_bits=16)


class FixedPoint:
    """A scalar fixed-point value in a given :class:`FixedPointFormat`.

    Arithmetic between two :class:`FixedPoint` values requires matching
    formats; mixing with Python ints/floats quantises the other operand
    first.  All results saturate to the format's range.

    >>> x = FixedPoint(1.5)
    >>> y = FixedPoint(2.25)
    >>> float(x * y)
    3.375
    """

    __slots__ = ("_raw", "_fmt")

    def __init__(self, value: Number = 0.0, fmt: FixedPointFormat = Q16_16):
        self._fmt = fmt
        if isinstance(value, FixedPoint):
            self._raw = fmt.saturate(
                value._raw
                if value._fmt == fmt
                else fmt.from_float(float(value))
            )
        else:
            self._raw = fmt.from_float(float(value))

    @classmethod
    def from_raw(cls, raw: int, fmt: FixedPointFormat = Q16_16) -> "FixedPoint":
        """Build a value directly from its raw scaled-integer representation."""
        out = cls.__new__(cls)
        out._fmt = fmt
        out._raw = fmt.saturate(int(raw))
        return out

    @property
    def raw(self) -> int:
        """The underlying scaled two's-complement integer."""
        return self._raw

    @property
    def fmt(self) -> FixedPointFormat:
        """The format this value is quantised in."""
        return self._fmt

    def _coerce(self, other: Number) -> "FixedPoint":
        if isinstance(other, FixedPoint):
            if other._fmt != self._fmt:
                raise ConfigurationError(
                    "cannot mix fixed-point formats "
                    f"Q{self._fmt.integer_bits}.{self._fmt.fraction_bits} and "
                    f"Q{other._fmt.integer_bits}.{other._fmt.fraction_bits}"
                )
            return other
        return FixedPoint(other, self._fmt)

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: Number) -> "FixedPoint":
        rhs = self._coerce(other)
        return FixedPoint.from_raw(self._fmt.saturate(self._raw + rhs._raw), self._fmt)

    __radd__ = __add__

    def __sub__(self, other: Number) -> "FixedPoint":
        rhs = self._coerce(other)
        return FixedPoint.from_raw(self._fmt.saturate(self._raw - rhs._raw), self._fmt)

    def __rsub__(self, other: Number) -> "FixedPoint":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Number) -> "FixedPoint":
        rhs = self._coerce(other)
        # Full-precision product then truncating right-shift, as a hardware
        # multiplier followed by a barrel shifter would produce.
        raw = (self._raw * rhs._raw) >> self._fmt.fraction_bits
        return FixedPoint.from_raw(self._fmt.saturate(raw), self._fmt)

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "FixedPoint":
        rhs = self._coerce(other)
        if rhs._raw == 0:
            raise ZeroDivisionError("fixed-point division by zero")
        # Pre-shift the dividend so the quotient lands back in Qi.f.
        raw = (self._raw << self._fmt.fraction_bits) // rhs._raw
        return FixedPoint.from_raw(self._fmt.saturate(raw), self._fmt)

    def __rtruediv__(self, other: Number) -> "FixedPoint":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "FixedPoint":
        return FixedPoint.from_raw(self._fmt.saturate(-self._raw), self._fmt)

    def __abs__(self) -> "FixedPoint":
        return FixedPoint.from_raw(self._fmt.saturate(abs(self._raw)), self._fmt)

    def sqrt(self) -> "FixedPoint":
        """Square root via integer Newton iteration on the raw value.

        Models the S-ALU "super computation" unit (Section 3.1.1), which
        supports square root for the Std functional cell.
        """
        if self._raw < 0:
            raise ConfigurationError("square root of negative fixed-point value")
        if self._raw == 0:
            return FixedPoint.from_raw(0, self._fmt)
        # sqrt(raw / s) = sqrt(raw * s) / s, so take isqrt of raw << f.
        target = self._raw << self._fmt.fraction_bits
        x = 1 << ((target.bit_length() + 1) // 2)
        while True:
            nxt = (x + target // x) // 2
            if nxt >= x:
                break
            x = nxt
        return FixedPoint.from_raw(self._fmt.saturate(x), self._fmt)

    # -- comparisons --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FixedPoint):
            return self._fmt == other._fmt and self._raw == other._raw
        if isinstance(other, (int, float)):
            return self._raw == self._fmt.from_float(float(other))
        return NotImplemented

    def __lt__(self, other: Number) -> bool:
        return self._raw < self._coerce(other)._raw

    def __le__(self, other: Number) -> bool:
        return self._raw <= self._coerce(other)._raw

    def __gt__(self, other: Number) -> bool:
        return self._raw > self._coerce(other)._raw

    def __ge__(self, other: Number) -> bool:
        return self._raw >= self._coerce(other)._raw

    def __hash__(self) -> int:
        return hash((self._raw, self._fmt))

    # -- conversions --------------------------------------------------------

    def __float__(self) -> float:
        return self._fmt.to_float(self._raw)

    def __int__(self) -> int:
        return int(self._fmt.to_float(self._raw))

    def __repr__(self) -> str:
        return (
            f"FixedPoint({float(self):g}, "
            f"Q{self._fmt.integer_bits}.{self._fmt.fraction_bits})"
        )


def quantize_array(
    values: np.ndarray, fmt: FixedPointFormat = Q16_16
) -> np.ndarray:
    """Quantise a float array onto the fixed-point grid (returns floats).

    The result contains the exact real values representable in ``fmt`` —
    i.e. ``round(v * scale) / scale`` with saturation — which lets the
    vectorised feature extractors reproduce the quantisation error of the
    scalar :class:`FixedPoint` path without per-element Python overhead.
    """
    arr = np.asarray(values, dtype=np.float64)
    if np.isnan(arr).any():
        raise ConfigurationError("cannot quantise NaN values to fixed point")
    scaled = np.where(
        arr >= 0, np.floor(arr * fmt.scale + 0.5), -np.floor(-arr * fmt.scale + 0.5)
    )
    clipped = np.clip(scaled, fmt.min_raw, fmt.max_raw)
    return clipped / fmt.scale


def to_float_array(values) -> np.ndarray:
    """Convert an iterable of :class:`FixedPoint` (or numbers) to float64."""
    return np.asarray([float(v) for v in values], dtype=np.float64)
