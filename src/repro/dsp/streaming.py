"""Single-pass (streaming) statistical feature extraction.

The in-sensor feature cells are single-pass datapaths: they consume the
segment sample by sample, maintaining raw power sums
``S1 = sum x, S2 = sum x^2, S3 = sum x^3, S4 = sum x^4`` plus running
max/min, and produce the statistical features at segment end — exactly the
hardware structure behind the op counts in
:func:`repro.dsp.features.operation_counts`.  This module provides that
accumulator as a software object, so streaming deployments (see
``examples/ecg_monitor.py``) can compute features without buffering a
whole segment, and so the tests can verify the single-pass formulation is
algebraically identical to the batch reference.

The zero-crossing feature (Czero) is deliberately absent: it counts
crossings of the *segment mean*, which requires a second pass over a
buffered segment — which is precisely why the hardware Czero cell carries
a buffer (Fig. 3) and the highest comparator count of the feature set.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable

import numpy as np

from repro.errors import ConfigurationError


def _vectorizable(samples: Iterable[float]) -> bool:
    """Whether ``samples`` qualifies for the ndarray extend fast paths."""
    return (
        isinstance(samples, np.ndarray)
        and samples.ndim == 1
        and samples.dtype.kind in "fiu"
    )

#: Features the single-pass accumulator produces, in canonical order.
STREAMING_FEATURES = ("max", "min", "mean", "var", "std", "skew", "kurt")


class StreamingMoments:
    """Single-pass accumulator of raw power sums and extrema.

    >>> acc = StreamingMoments()
    >>> acc.extend([1.0, 2.0, 3.0])
    >>> acc.finalize()["mean"]
    2.0
    """

    def __init__(self) -> None:
        self._n = 0
        self._s1 = 0.0
        self._s2 = 0.0
        self._s3 = 0.0
        self._s4 = 0.0
        self._max = -math.inf
        self._min = math.inf

    @property
    def count(self) -> int:
        """Samples consumed so far."""
        return self._n

    def update(self, sample: float) -> None:
        """Consume one sample (one clock of the hardware datapath).

        Rejects *any* non-finite sample: a NaN poisons every raw sum, and
        a single ``inf`` saturates max/min and the power sums just as
        irrecoverably — a real ADC cannot produce either.
        """
        x = float(sample)
        if not math.isfinite(x):
            raise ConfigurationError(
                f"cannot accumulate non-finite sample {x!r}"
            )
        self._n += 1
        self._s1 += x
        x2 = x * x
        self._s2 += x2
        self._s3 += x2 * x
        self._s4 += x2 * x2
        if x > self._max:
            self._max = x
        if x < self._min:
            self._min = x

    def extend(self, samples: Iterable[float]) -> None:
        """Consume a burst of samples.

        A one-dimensional numeric ndarray takes a vectorized merge path
        whose result matches the per-sample loop bit-for-bit: ``cumsum``
        reproduces the loop's sequential accumulation order exactly, and
        the elementwise powers are the same products the loop forms.  Any
        other input — and any burst containing a non-finite sample, which
        must leave the partial state and raise exactly where the loop
        would — falls back to per-sample updates.
        """
        if _vectorizable(samples):
            x = samples.astype(np.float64, copy=False)
            if x.size == 0:
                return
            if np.isfinite(x).all():
                x2 = x * x
                self._s1 = float(np.cumsum(np.concatenate(([self._s1], x)))[-1])
                self._s2 = float(np.cumsum(np.concatenate(([self._s2], x2)))[-1])
                self._s3 = float(
                    np.cumsum(np.concatenate(([self._s3], x2 * x)))[-1]
                )
                self._s4 = float(
                    np.cumsum(np.concatenate(([self._s4], x2 * x2)))[-1]
                )
                self._n += x.size
                top = float(x.max())
                bot = float(x.min())
                if top > self._max:
                    self._max = top
                if bot < self._min:
                    self._min = bot
                return
        for sample in samples:
            self.update(sample)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Combine two accumulators (parallel sub-segment datapaths).

        An empty side contributes nothing: its ``±inf`` extrema sentinels
        are never allowed to leak into the merged max/min.
        """
        out = StreamingMoments()
        out._n = self._n + other._n
        out._s1 = self._s1 + other._s1
        out._s2 = self._s2 + other._s2
        out._s3 = self._s3 + other._s3
        out._s4 = self._s4 + other._s4
        if self._n == 0:
            out._max, out._min = other._max, other._min
        elif other._n == 0:
            out._max, out._min = self._max, self._min
        else:
            out._max = max(self._max, other._max)
            out._min = min(self._min, other._min)
        return out

    def finalize(self) -> Dict[str, float]:
        """Compute the features from the accumulated sums.

        Uses the population-moment conventions of
        :mod:`repro.dsp.features`: ``var = E[x^2] - E[x]^2``,
        ``skew = m3 / m2^1.5``, ``kurt = m4 / m2^2``.
        """
        if self._n == 0:
            # Refuse rather than leak the ±inf extrema sentinels (and a
            # division by zero) into downstream features.
            raise ConfigurationError("finalize() before any samples")
        n = self._n
        mean = self._s1 / n
        e2 = self._s2 / n
        e3 = self._s3 / n
        e4 = self._s4 / n
        var = e2 - mean * mean
        # Central moments from raw moments (binomial expansion).
        m3 = e3 - 3 * mean * e2 + 2 * mean**3
        m4 = e4 - 4 * mean * e3 + 6 * mean**2 * e2 - 3 * mean**4
        # Degeneracy guard: the raw-sum formulation (what the hardware
        # datapath computes) cancels catastrophically on (near-)constant
        # inputs, leaving O(n * eps * E[x^2]) garbage in `var`.  Treat any
        # variance below that noise floor as zero, scale-aware.
        noise_floor = max(1e-12, 1e-12 * n * abs(e2))
        if var <= noise_floor:
            var = 0.0
            skew = 0.0
            kurt = 0.0
        else:
            skew = m3 / var**1.5
            kurt = m4 / var**2
        return {
            "max": self._max,
            "min": self._min,
            "mean": mean,
            "var": var,
            "std": math.sqrt(max(var, 0.0)),
            "skew": skew,
            "kurt": kurt,
        }


class CrossingCounter:
    """Streaming crossing counter about a *fixed* level.

    Matches :func:`repro.dsp.features.crossing_count` for a known level
    (e.g. a calibrated baseline); the mean-referenced Czero of the generic
    feature set needs the buffered two-pass cell instead.
    """

    def __init__(self, level: float = 0.0) -> None:
        self.level = float(level)
        self._last_sign = 0
        self._crossings = 0
        self._n = 0

    @property
    def crossings(self) -> int:
        """Crossings counted so far."""
        return self._crossings

    def update(self, sample: float) -> None:
        """Consume one sample."""
        x = float(sample) - self.level
        sign = 1 if x > 0 else (-1 if x < 0 else self._last_sign or 1)
        if self._n > 0 and sign != self._last_sign:
            self._crossings += 1
        self._last_sign = sign
        self._n += 1

    def extend(self, samples: Iterable[float]) -> None:
        """Consume a burst of samples.

        A one-dimensional numeric ndarray takes a vectorized path that
        matches the per-sample loop exactly: on-level (and NaN) samples
        inherit the preceding sign via an index forward-fill, leading
        ties inherit the pre-burst sign (or +1 at stream start), and
        sign changes are counted against the shifted sign sequence.
        """
        if _vectorizable(samples):
            x = samples.astype(np.float64, copy=False) - self.level
            n = x.size
            if n == 0:
                return
            # NaN compares False on both sides, so it lands in the
            # "inherit previous sign" bucket — same as the scalar update.
            raw = np.where(x > 0, 1, np.where(x < 0, -1, 0))
            nonzero_at = np.where(raw != 0, np.arange(n), -1)
            last_nonzero = np.maximum.accumulate(nonzero_at)
            seed = self._last_sign or 1
            signs = np.where(
                last_nonzero >= 0, raw[np.clip(last_nonzero, 0, None)], seed
            )
            changed = signs != np.concatenate(([self._last_sign], signs[:-1]))
            if self._n == 0:
                changed[0] = False
            self._crossings += int(np.count_nonzero(changed))
            self._last_sign = int(signs[-1])
            self._n += n
            return
        for sample in samples:
            self.update(sample)
