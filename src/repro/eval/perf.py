"""Scalar-vs-batch performance harness and the perf-regression gate.

Times the classification hot path both ways — the per-event scalar
reference and the vectorised batch path — for each stage of the pipeline:

- **extraction**: :meth:`FeatureLayout.extract_matrix` (per-row Python
  loop) vs :func:`repro.dsp.batch.batch_extract_matrix`;
- **dwt**: per-row :func:`~repro.dsp.wavelet.dwt_multilevel` vs the
  batched pyramid :func:`~repro.dsp.wavelet.dwt_multilevel_batch`;
- **inference**: per-event ensemble prediction (one tiny Gram matrix per
  member per event) vs :class:`~repro.ml.inference.EnsembleBatchScorer`
  (one Gram matrix per member per batch);
- **end_to_end**: :meth:`TrainedAnalyticEngine.predict_segment` in a loop
  vs :meth:`TrainedAnalyticEngine.predict_batch` — raw segments to
  decisions;
- **generator**: a delay-limit ladder of constrained
  :meth:`AutomaticXProGenerator.generate` calls — the legacy per-solve
  cold path (graph rebuilt, Dinic from scratch, no memo) vs the warm
  fast path (shared s-t graph template, residual warm-starts,
  partition-evaluation memo);
- **wire**: the wire data plane — per-value Q16.16 packing, per-byte
  CRC-16 and per-frame encode/decode (:mod:`repro.hw.framing` scalar
  reference) vs the batch codec (``encode_values``/``encode_frames``/
  ``decode_frames``/``decode_values``); its equivalence flag also
  asserts a seeded scalar-vs-fast :class:`~repro.sim.faults.
  FaultCampaign` byte-level run replays bit-identically;
- **fleet**: population-scale fleet rounds — the per-object scalar twin
  (:func:`~repro.sim.fleetsoa.simulate_fleet_scalar`, real
  :class:`~repro.sim.channel.GilbertElliottChannel` objects stepped one
  slot at a time) vs the struct-of-arrays engine
  (:func:`~repro.sim.fleetsoa.simulate_fleet_soa`, one ndarray per state
  field across 10^4 devices, block channel draws); its equivalence flag
  asserts the two paths are **bit-identical** (NaN-aware, same RNG draw
  order) via :func:`~repro.sim.fleetsoa.fleet_results_identical`;
- **streaming**: live multi-stream ingestion — the per-stream scalar twin
  (:func:`~repro.stream.twin.run_twin`, Python ring buffers, per-sample
  appends, one :class:`~repro.dsp.streaming.StreamingMoments` /
  :class:`~repro.dsp.streaming.CrossingCounter` pass per window) vs the
  struct-of-arrays pool (:func:`~repro.stream.engine.run_stream_pool`,
  one ring block across ≥1000 concurrent streams, one batched scoring
  call per tick); its equivalence flag asserts **bit-identical**
  per-window scores, decisions and backpressure counters via
  :func:`~repro.stream.engine.stream_results_identical`, and the case
  carries per-window p50/p99 tick latency extras;
- **training**: the §4.4 subspace training protocol (``n_draws`` random
  subspaces × 10-fold CV each, final refits, member selection, fusion)
  — the pinned reference twin (fresh Gram per fold,
  :meth:`~repro.ml.svm.SVMClassifier.fit_reference`'s per-index KKT
  scan) vs the fast path (one fold-sliced Gram per draw through
  :meth:`~repro.ml.kernels.Kernel.subspace_gram`, the cached-error
  screened SMO of :meth:`~repro.ml.svm.SVMClassifier.fit`); its
  equivalence flag asserts **decision-identical ensembles** — same
  retained subsets, bitwise-equal dual coefficients and biases, same
  ``used_feature_indices`` and identical predictions — on the timed
  pair and (full mode) across all six Table-1 cases.

Every benchmark first asserts the two paths agree (decision-identical or
within float precision), so a timing run is also an equivalence check.

The report is serialised to ``benchmarks/results/BENCH_perf.json``
(schema documented in ``docs/PERFORMANCE.md``).  CI regenerates the
report in fast mode and feeds it to :func:`compare_reports`, which fails
the build when any *tracked* metric — the machine-portable speedup
ratios — regresses by more than 25% against the committed baseline.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from repro.core.layout import FeatureLayout
from repro.core.pipeline import TrainingConfig, train_analytic_engine
from repro.dsp.batch import batch_extract_matrix
from repro.dsp.wavelet import dwt_multilevel, dwt_multilevel_batch
from repro.errors import ConfigurationError, PerfRegressionError
from repro.signals.datasets import load_case

#: Report schema identifier (bump on breaking layout changes).
SCHEMA = "xpro-bench-perf/1"

#: Metrics the CI regression gate compares against the committed baseline.
#: Only speedup *ratios* are tracked: absolute segments/s depends on the
#: machine, while the scalar/batch ratio is a property of the code.
TRACKED_METRICS = (
    "extraction.speedup",
    "dwt.speedup",
    "inference.speedup",
    "end_to_end.speedup",
    "generator.speedup",
    "wire.speedup",
    "fleet.speedup",
    "streaming.speedup",
    "training.speedup",
)

#: Stage names accepted by :func:`collect_perf_report`'s ``stages`` filter.
ALL_STAGES = (
    "extraction",
    "dwt",
    "inference",
    "end_to_end",
    "generator",
    "wire",
    "fleet",
    "streaming",
    "training",
)

#: Allowed fractional regression on a tracked metric before the gate fails.
DEFAULT_THRESHOLD = 0.25

#: Safety margin applied to tracked ratios when a report is used as a
#: baseline: the gate compares fresh measurements against
#: ``measured * GATE_MARGIN``, so timer noise (±30-40% on busy runners)
#: passes while real regressions — losing vectorisation collapses every
#: tracked ratio to ~1x — still fail by an order of magnitude.
GATE_MARGIN = 0.6

#: Training scale used by the inference/end-to-end benches: small enough to
#: train in seconds, big enough to retain several members and realistic
#: support-vector counts.
_BENCH_TRAINING = TrainingConfig(
    subspace_dim=6, n_draws=8, keep_fraction=0.25, seed=7
)


@dataclass(frozen=True)
class PerfCase:
    """One scalar-vs-batch timing comparison.

    Attributes:
        name: Stage name (``"extraction"``, ``"dwt"``, ...).
        n_items: Work items (segments/events) processed per timed pass.
        scalar_wall_s: Best wall time of the scalar reference path.
        batch_wall_s: Best wall time of the vectorised batch path.
        equivalent: Whether the two paths agreed on this run's data.
        extras: Stage-specific metrics, reported under
            ``"<name>.<key>"`` in the metrics dictionary (e.g. the
            streaming stage's per-window tick-latency percentiles).
            Extras are informational unless listed in
            :data:`TRACKED_METRICS`.
    """

    name: str
    n_items: int
    scalar_wall_s: float
    batch_wall_s: float
    equivalent: bool
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def scalar_per_s(self) -> float:
        """Scalar-path throughput in items per second."""
        return self.n_items / self.scalar_wall_s

    @property
    def batch_per_s(self) -> float:
        """Batch-path throughput in items per second."""
        return self.n_items / self.batch_wall_s

    @property
    def speedup(self) -> float:
        """Batch over scalar throughput ratio."""
        return self.scalar_wall_s / self.batch_wall_s

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of this case."""
        return {
            "n_items": self.n_items,
            "scalar_wall_s": self.scalar_wall_s,
            "batch_wall_s": self.batch_wall_s,
            "scalar_per_s": self.scalar_per_s,
            "batch_per_s": self.batch_per_s,
            "speedup": self.speedup,
            "equivalent": self.equivalent,
            **{key: value for key, value in sorted(self.extras.items())},
        }


def _best_wall_s(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn`` (minimum filters scheduler
    noise, the standard timeit practice)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_extraction(
    n_segments: int = 256,
    segment_length: int = 128,
    repeats: int = 3,
    seed: int = 2025,
) -> PerfCase:
    """Time full feature extraction: per-row reference vs batch path."""
    if n_segments < 1:
        raise ConfigurationError("n_segments must be positive")
    layout = FeatureLayout(segment_length=segment_length)
    X = np.random.default_rng(seed).normal(size=(n_segments, segment_length))
    equivalent = bool(
        np.allclose(batch_extract_matrix(X, layout), layout.extract_matrix(X),
                    atol=1e-9)
    )
    scalar = _best_wall_s(lambda: layout.extract_matrix(X), repeats)
    batch = _best_wall_s(lambda: batch_extract_matrix(X, layout), repeats)
    return PerfCase("extraction", n_segments, scalar, batch, equivalent)


def bench_dwt(
    n_segments: int = 512,
    segment_length: int = 128,
    levels: int = 5,
    wavelet: str = "db2",
    repeats: int = 3,
    seed: int = 2025,
) -> PerfCase:
    """Time the multi-level DWT pyramid: per-row reference vs batched.

    Defaults to db2 so the general filter-bank path (not the Haar
    pair-arithmetic shortcut) is what the gate watches.
    """
    X = np.random.default_rng(seed).normal(size=(n_segments, segment_length))
    ref = [dwt_multilevel(row, levels, wavelet) for row in X]
    fast = dwt_multilevel_batch(X, levels, wavelet)
    equivalent = all(
        np.allclose(fast[band][i], ref[i][band], atol=1e-9)
        for i in range(n_segments)
        for band in range(len(fast))
    )
    scalar = _best_wall_s(
        lambda: [dwt_multilevel(row, levels, wavelet) for row in X], repeats
    )
    batch = _best_wall_s(lambda: dwt_multilevel_batch(X, levels, wavelet), repeats)
    return PerfCase("dwt", n_segments, scalar, batch, equivalent)


def _bench_engine(n_segments: int):
    """A small trained engine plus its dataset, shared by the inference and
    end-to-end benches."""
    dataset = load_case("C1", n_segments=max(60, n_segments))
    engine = train_analytic_engine(dataset, _BENCH_TRAINING)
    return engine, dataset


def bench_inference(
    n_events: int = 256, repeats: int = 3, seed: int = 2025
) -> PerfCase:
    """Time ensemble inference on normalised features: per-event vs batch."""
    from repro.ml.inference import EnsembleBatchScorer

    engine, dataset = _bench_engine(n_events)
    rows = np.random.default_rng(seed).integers(
        0, len(dataset.segments), size=n_events
    )
    X = engine.normalizer.transform(
        batch_extract_matrix(dataset.segments[rows], engine.layout)
    )
    ensemble = engine.ensemble
    scorer = EnsembleBatchScorer(ensemble)
    per_event = np.array([int(ensemble.predict(x[None, :])[0]) for x in X])
    equivalent = bool(np.array_equal(per_event, scorer.predict(X)))
    scalar = _best_wall_s(
        lambda: [int(ensemble.predict(x[None, :])[0]) for x in X], repeats
    )
    batch = _best_wall_s(lambda: scorer.predict(X), repeats)
    return PerfCase("inference", n_events, scalar, batch, equivalent)


def bench_end_to_end(
    n_events: int = 256, repeats: int = 3, seed: int = 2025
) -> PerfCase:
    """Time raw segments to decisions: predict_segment loop vs predict_batch."""
    engine, dataset = _bench_engine(n_events)
    rows = np.random.default_rng(seed).integers(
        0, len(dataset.segments), size=n_events
    )
    segments = dataset.segments[rows]
    per_event = np.array([engine.predict_segment(row) for row in segments])
    equivalent = bool(np.array_equal(per_event, engine.predict_batch(segments)))
    scalar = _best_wall_s(
        lambda: [engine.predict_segment(row) for row in segments], repeats
    )
    batch = _best_wall_s(lambda: engine.predict_batch(segments), repeats)
    return PerfCase("end_to_end", n_events, scalar, batch, equivalent)


def bench_generator(
    n_limits: int = 6, repeats: int = 3
) -> PerfCase:
    """Time a delay-limit ladder of constrained ``generate()`` calls.

    The workload mirrors the design-space sweeps (pareto, codesign,
    sensitivity) that call the Automatic XPro Generator once per point
    with a fixed hardware context: ``n_limits`` delay limits spanning the
    feasible band between the best single-end delay and the unconstrained
    min-cut delay, each limit tight enough to force the full Lagrangian
    bisection.

    - *scalar path*: a fresh ``warm_start=False, cache_size=0`` generator
      per limit — every lambda probe rebuilds the s-t graph, solves Dinic
      from a cold start and re-prices every cut through the energy/delay
      model (the pre-fast-path behaviour);
    - *batch path*: one warm generator for the whole ladder — a single
      s-t graph template re-priced per lambda, residual-flow warm starts,
      and the partition-evaluation memo shared across limits.

    Equivalence asserts both paths return identical partitions and
    bit-identical metrics at every limit.
    """
    from repro.core.generator import AutomaticXProGenerator
    from repro.graph.cuts import aggregator_cut, sensor_cut
    from repro.hw.aggregator import AggregatorCPU
    from repro.hw.energy import EnergyLibrary
    from repro.hw.wireless import WirelessLink
    from repro.sim.evaluate import metrics_identical

    if n_limits < 1:
        raise ConfigurationError("n_limits must be positive")
    engine, _ = _bench_engine(120)
    lib = EnergyLibrary("90nm")
    topology = engine.build_topology(lib)
    link = WirelessLink("model3")  # slow link => real cross-end cuts
    cpu = AggregatorCPU()

    probe = AutomaticXProGenerator(topology, lib, link, cpu)
    unconstrained = probe.evaluate(probe.min_cut_partition().in_sensor)
    single_end = min(
        probe.evaluate(sensor_cut(topology)).delay_total_s,
        probe.evaluate(aggregator_cut(topology)).delay_total_s,
    )
    lo = min(single_end, unconstrained.delay_total_s)
    hi = max(single_end, unconstrained.delay_total_s)
    if hi <= lo:
        raise ConfigurationError(
            "generator bench is degenerate: the unconstrained min cut "
            "already matches the best single-end delay, so no limit in "
            "the ladder would force the Lagrangian search"
        )
    limits = [
        lo + (hi - lo) * (i + 1) / (n_limits + 1) for i in range(n_limits)
    ]

    def run_cold():
        return [
            AutomaticXProGenerator(
                topology, lib, link, cpu, warm_start=False, cache_size=0
            ).generate(delay_limit_s=limit)
            for limit in limits
        ]

    def run_warm():
        gen = AutomaticXProGenerator(topology, lib, link, cpu)
        return [gen.generate(delay_limit_s=limit) for limit in limits]

    cold_results = run_cold()
    warm_results = run_warm()
    equivalent = all(
        c.partition == w.partition and metrics_identical(c.metrics, w.metrics)
        for c, w in zip(cold_results, warm_results)
    )
    scalar = _best_wall_s(run_cold, repeats)
    batch = _best_wall_s(run_warm, repeats)
    return PerfCase("generator", n_limits, scalar, batch, equivalent)


def _bench_metrics():
    """Fixed cross-end operating point shared by the wire/fleet benches."""
    from repro.sim.evaluate import PartitionMetrics

    return PartitionMetrics(
        in_sensor=frozenset({"cell"}),
        sensor_compute_j=2e-6,
        sensor_tx_j=1e-6,
        sensor_rx_j=0.0,
        delay_front_s=1e-3,
        delay_link_s=2e-3,
        delay_back_s=1e-3,
        aggregator_cpu_j=1e-6,
        aggregator_radio_j=1e-6,
        crossing_bits_up=512,
        crossing_bits_down=0,
    )


def bench_wire(
    n_payloads: int = 512,
    values_per_payload: int = 24,
    repeats: int = 3,
    seed: int = 2025,
) -> PerfCase:
    """Time the wire data plane: scalar vs batch framing/CRC/codec.

    One item is a full payload round trip — Q16.16 serialisation,
    fragmentation into CRC-protected frames, receiver-side decode and
    value recovery:

    - *scalar path*: :func:`~repro.hw.framing.encode_values_scalar`,
      per-frame :func:`~repro.hw.framing.fragment_payload` /
      :func:`~repro.hw.framing.decode_frame` (per-byte CRC loops), then
      :func:`~repro.hw.framing.decode_values_scalar` — the pre-batch
      reference implementations;
    - *batch path*: the vectorised codec over all payloads at once
      (:func:`~repro.hw.framing.encode_values`,
      :func:`~repro.hw.framing.encode_frames`,
      :func:`~repro.hw.framing.decode_frames`,
      :func:`~repro.hw.framing.decode_values`).

    ``equivalent`` asserts byte-identical frames, exactly equal decoded
    values, *and* that a seeded byte-level :class:`~repro.sim.faults.
    FaultCampaign` replays bit-identically through its fast path.
    """
    from repro.hw.arq import ARQConfig
    from repro.hw.framing import (
        SEQ_MODULUS,
        FramingConfig,
        decode_frame,
        decode_frames,
        decode_values,
        decode_values_scalar,
        encode_frames,
        encode_values,
        encode_values_scalar,
        fragment_payload,
    )
    from repro.sim.channel import GilbertElliottParams
    from repro.sim.faults import (
        BurstLoss,
        FaultCampaign,
        IntegrityConfig,
        PayloadCorruption,
        reports_identical,
    )
    from repro.sim.simulator import CrossEndSimulator

    if n_payloads < 1 or values_per_payload < 1:
        raise ConfigurationError(
            "n_payloads and values_per_payload must be positive"
        )
    config = FramingConfig(max_payload_bytes=64, crc=True)
    values = np.random.default_rng(seed).uniform(
        -1000.0, 1000.0, (n_payloads, values_per_payload)
    )
    payload_len = values_per_payload * 4  # Q16.16 words
    n_chunks = -(-payload_len // config.max_payload_bytes)

    def run_scalar():
        decoded = []
        seq = 0
        for row in values:
            payload = encode_values_scalar(row)
            frames = fragment_payload(payload, seq, config)
            seq = (seq + len(frames)) % SEQ_MODULUS
            parts = [decode_frame(frame, config).payload for frame in frames]
            decoded.append(decode_values_scalar(b"".join(parts)))
        return decoded

    def run_batch():
        blob = encode_values(values)
        chunks = [
            blob[start : start + min(config.max_payload_bytes,
                                     payload_len - offset)]
            for base in range(0, len(blob), payload_len)
            for offset in range(0, payload_len, config.max_payload_bytes)
            for start in (base + offset,)
        ]
        index = np.arange(n_payloads * n_chunks)
        matrix, lengths = encode_frames(
            chunks,
            index % SEQ_MODULUS,
            config,
            last=(index % n_chunks) == n_chunks - 1,
        )
        batch = decode_frames(matrix, config, lengths)
        decoded = decode_values(b"".join(batch.payloads))  # type: ignore[arg-type]
        return matrix, lengths, decoded.reshape(n_payloads, values_per_payload)

    scalar_decoded = run_scalar()
    matrix, lengths, batch_decoded = run_batch()
    seq = 0
    frames_ok = True
    for i, row in enumerate(values):
        frames = fragment_payload(encode_values_scalar(row), seq, config)
        seq = (seq + len(frames)) % SEQ_MODULUS
        for j, frame in enumerate(frames):
            r = i * n_chunks + j
            if matrix[r, : int(lengths[r])].tobytes() != frame:
                frames_ok = False
    values_ok = all(
        np.array_equal(scalar_decoded[i], batch_decoded[i])
        for i in range(n_payloads)
    )

    campaign = FaultCampaign(
        [
            BurstLoss(GilbertElliottParams(0.01, 0.20, 0.005, 0.5)),
            PayloadCorruption(0.05, mode="bitflip"),
        ],
        seed=seed,
    )
    simulator = CrossEndSimulator(_bench_metrics(), period_s=0.25, seed=seed)
    integrity = IntegrityConfig(framing=config, values_per_payload=8)
    arq = ARQConfig(max_retries=3, timeout_s=2e-3)
    campaign_ok = reports_identical(
        campaign.run(simulator, 200, arq=arq, integrity=integrity, fast=False),
        campaign.run(simulator, 200, arq=arq, integrity=integrity, fast=True),
    )

    equivalent = frames_ok and values_ok and campaign_ok
    scalar = _best_wall_s(run_scalar, repeats)
    batch = _best_wall_s(run_batch, repeats)
    return PerfCase("wire", n_payloads, scalar, batch, equivalent)


def bench_fleet(
    n_networks: int = 1250,
    devices_per_network: int = 8,
    n_rounds: int = 4,
    repeats: int = 1,
    seed: int = 2025,
) -> PerfCase:
    """Time population-scale fleet rounds: scalar twin vs SoA engine.

    One item is one simulated device (``n_items = n_networks *
    devices_per_network`` — 10^4 at the full-mode defaults).  Both paths
    simulate the identical fleet — mixed TDMA/MIMO networks, bursty
    Gilbert-Elliott links, bounded stop-and-wait retries — under the
    per-network RNG draw-order contract of :mod:`repro.sim.fleetsoa`:

    - *scalar path*: :func:`~repro.sim.fleetsoa.simulate_fleet_scalar` —
      one Python event loop per device, real
      :class:`~repro.sim.channel.GilbertElliottChannel` objects stepped
      one attempt slot at a time (the pre-SoA fleet shape);
    - *batch path*: :func:`~repro.sim.fleetsoa.simulate_fleet_soa` — one
      ndarray per state field across the whole fleet, block channel
      draws through :func:`~repro.sim.channel.ge_outcome_block`.

    ``equivalent`` asserts the full :class:`~repro.sim.fleetsoa.
    FleetResult` columns — counters, energies, latencies, availability
    (NaN sentinels included) and final channel states — are bit-identical
    via :func:`~repro.sim.fleetsoa.fleet_results_identical`.  Both
    timings run on one core, so the ratio is machine-portable and gated
    (``fleet.speedup`` in :data:`TRACKED_METRICS`).
    """
    from repro.sim.fleetsoa import (
        FleetConfig,
        FleetSpec,
        fleet_results_identical,
        simulate_fleet_scalar,
        simulate_fleet_soa,
    )

    if n_networks < 1 or devices_per_network < 1 or n_rounds < 1:
        raise ConfigurationError(
            "n_networks, devices_per_network and n_rounds must be positive"
        )
    spec = FleetSpec.homogeneous(
        n_networks,
        devices_per_network,
        _bench_metrics(),
        period_s=0.25,
        protocol="mixed",
        config=FleetConfig(events_per_round=4, max_retries=2, seed=seed),
    )
    equivalent = fleet_results_identical(
        simulate_fleet_scalar(spec, n_rounds),
        simulate_fleet_soa(spec, n_rounds),
    )
    scalar = _best_wall_s(lambda: simulate_fleet_scalar(spec, n_rounds), repeats)
    batch = _best_wall_s(lambda: simulate_fleet_soa(spec, n_rounds), repeats)
    return PerfCase("fleet", spec.n_devices, scalar, batch, equivalent)


def bench_streaming(
    n_streams: int = 1024,
    n_ticks: int = 8,
    tick_samples: int = 32,
    repeats: int = 1,
    seed: int = 2025,
) -> PerfCase:
    """Time live multi-stream window scoring: scalar twin vs SoA pool.

    One item is one emitted (scored) sliding window.  Both paths ingest
    the identical ``(n_streams, n_ticks * tick_samples)`` sample matrix
    on the identical tick cadence, over a heterogeneous window/hop grid
    (windows cycling 64/96/128 samples, hops 16/24/32 — overlapping
    windows at three rates, the AdaSense-style per-stream knobs):

    - *scalar path*: :func:`~repro.stream.twin.run_twin` — one Python
      ring buffer per stream, per-sample appends, one
      :class:`~repro.dsp.streaming.StreamingMoments` /
      :class:`~repro.dsp.streaming.CrossingCounter` pass per window (the
      pre-SoA streaming shape);
    - *batch path*: :func:`~repro.stream.engine.run_stream_pool` — one
      ring-buffer ndarray block across all streams, one batched scoring
      call per tick for all due windows at once.

    ``equivalent`` asserts the full :class:`~repro.stream.engine.
    StreamRunResult` — per-window scores, decisions, window sequencing
    and every backpressure/rejection counter — is **bit-identical**
    (NaN-aware) via :func:`~repro.stream.engine.
    stream_results_identical`.  The case's extras carry p50/p99
    per-window latency in milliseconds from an instrumented SoA run:
    every window emitted by a tick is charged that tick's wall time
    (ingest + gather + batched scoring), the serving-latency view of the
    same work.  Both timings run on one core, so the ratio is
    machine-portable and gated (``streaming.speedup`` in
    :data:`TRACKED_METRICS`).
    """
    from repro.stream import (
        MomentsBackend,
        StreamPool,
        StreamSpec,
        run_stream_pool,
        run_twin,
        stream_results_identical,
    )

    if n_streams < 1 or n_ticks < 1 or tick_samples < 1:
        raise ConfigurationError(
            "n_streams, n_ticks and tick_samples must be positive"
        )
    idx = np.arange(n_streams)
    spec = StreamSpec(
        windows=np.asarray([64, 96, 128], dtype=np.int64)[idx % 3],
        hops=np.asarray([16, 24, 32], dtype=np.int64)[idx % 3],
        levels=np.zeros(n_streams),
        tenants=idx % max(1, n_streams // 64),
        capacity=256,
    )
    backend = MomentsBackend()
    rng = np.random.default_rng(seed)
    samples = rng.normal(0.0, 1.0, (n_streams, n_ticks * tick_samples))

    twin_result = run_twin(spec, backend, samples, tick_samples)
    soa_result = run_stream_pool(spec, backend, samples, tick_samples)
    equivalent = stream_results_identical(twin_result, soa_result)

    # Instrumented SoA pass: per-tick wall time, charged to every window
    # that tick emitted — the per-window serving latency.
    pool = StreamPool(spec, backend)
    latencies: List[float] = []
    for t0 in range(0, samples.shape[1], tick_samples):
        t_start = time.perf_counter()
        pool.extend_block(samples[:, t0 : t0 + tick_samples])
        emitted = len(pool.tick())
        latencies.extend([time.perf_counter() - t_start] * emitted)
    lat_ms = np.asarray(latencies) * 1e3
    extras = {
        "n_streams": float(n_streams),
        "p50_window_latency_ms": float(np.percentile(lat_ms, 50)),
        "p99_window_latency_ms": float(np.percentile(lat_ms, 99)),
    }

    scalar = _best_wall_s(
        lambda: run_twin(spec, backend, samples, tick_samples), repeats
    )
    batch = _best_wall_s(
        lambda: run_stream_pool(spec, backend, samples, tick_samples), repeats
    )
    return PerfCase(
        "streaming", soa_result.n_windows, scalar, batch, equivalent, extras
    )


def _ensembles_identical(ref, fast, X: np.ndarray) -> bool:
    """Decision identity between two trained subspace ensembles.

    Checks the full chain the training twin guarantees: same retained
    subsets in the same order, bitwise-equal dual coefficients, biases,
    support rows and validation accuracies per member, the same
    ``used_feature_indices`` union, and identical predictions on ``X``.
    """
    if len(ref.members) != len(fast.members):
        return False
    for ma, mb in zip(ref.members, fast.members):
        if ma.feature_indices != mb.feature_indices:
            return False
        ca, cb = ma.classifier, mb.classifier
        if not (
            np.array_equal(ca.dual_coef, cb.dual_coef)
            and ca.bias == cb.bias
            and np.array_equal(ca.support_indices, cb.support_indices)
            and ma.validation_accuracy == mb.validation_accuracy
        ):
            return False
    if ref.used_feature_indices() != fast.used_feature_indices():
        return False
    return bool(np.array_equal(ref.predict(X), fast.predict(X)))


def _training_case_data(symbol: str, n_segments: int):
    """Normalised feature matrix + labels for one Table-1 case."""
    from repro.dsp.normalize import MinMaxNormalizer

    dataset = load_case(symbol, n_segments=n_segments)
    layout = FeatureLayout(segment_length=dataset.segment_length)
    features = batch_extract_matrix(dataset.segments, layout)
    return (
        MinMaxNormalizer().fit(features).transform(features),
        np.asarray(dataset.labels),
    )


def bench_training(
    n_segments: int = 200,
    n_draws: int = 100,
    cv_folds: int = 10,
    repeats: int = 1,
    check_all_cases: bool = True,
    seed: int = 42,
) -> PerfCase:
    """Time the §4.4 subspace training protocol: reference vs fast path.

    One item is one subspace draw (each costing ``cv_folds`` fold fits
    plus the final refit).  Both paths run the identical protocol on the
    identical C1 feature matrix with the identical master seed:

    - *scalar path*: ``fit(fast=False)`` — a fresh Gram matrix per fold
      per draw, each SVM trained by the pinned
      :meth:`~repro.ml.svm.SVMClassifier.fit_reference` per-index loop;
    - *batch path*: ``fit()`` — one full-row Gram per draw
      (:meth:`~repro.ml.kernels.Kernel.subspace_gram`, RBF squared-column
      precompute shared across draws) sliced with ``np.ix_`` across all
      folds, the refit and the validation scoring, each SVM trained by
      the cached-error screened SMO.

    ``equivalent`` asserts decision-identical ensembles (see
    :func:`_ensembles_identical`) on the timed pair and — when
    ``check_all_cases`` is set — on every Table-1 case at a reduced
    scale, so a timing run is also a six-case twin check.  Extras carry
    the protocol shape (``n_rows``, ``n_draws``, ``cv_folds``,
    ``cases_checked``).

    Args:
        n_segments: Segments of the C1 dataset to train on.
        n_draws: Random subspace draws (paper scale: 100).
        cv_folds: CV folds per draw (paper: 10).
        repeats: Best-of repeats per timed path (the reference path costs
            minutes at paper scale, so the default times each path once).
        check_all_cases: Also assert ref-vs-fast identity on all six
            Table-1 cases at reduced scale (full-report mode).
        seed: Master ensemble seed.
    """
    from repro.ml.subspace import RandomSubspaceClassifier

    if n_segments < 40:
        raise ConfigurationError("n_segments must be >= 40")
    if n_draws < 1:
        raise ConfigurationError("n_draws must be >= 1")
    X, y = _training_case_data("C1", n_segments)

    def make() -> RandomSubspaceClassifier:
        return RandomSubspaceClassifier(
            n_features=X.shape[1],
            subspace_dim=12,
            n_draws=n_draws,
            keep_fraction=0.10,
            C=1.0,
            seed=seed,
            cv_folds=cv_folds,
        )

    # The timed fits double as the equivalence pair: the reference path
    # costs minutes at paper scale, so it is not fit a second time.
    fitted: Dict[str, Any] = {}
    scalar = _best_wall_s(
        lambda: fitted.__setitem__("ref", make().fit(X, y, fast=False)), repeats
    )
    batch = _best_wall_s(
        lambda: fitted.__setitem__("fast", make().fit(X, y)), repeats
    )
    equivalent = _ensembles_identical(fitted["ref"], fitted["fast"], X)

    cases_checked = 1
    if check_all_cases:
        from repro.signals.datasets import CASE_ORDER

        for symbol in CASE_ORDER:
            Xc, yc = _training_case_data(symbol, 96)

            def make_small() -> RandomSubspaceClassifier:
                return RandomSubspaceClassifier(
                    n_features=Xc.shape[1],
                    subspace_dim=12,
                    n_draws=4,
                    keep_fraction=0.5,
                    C=1.0,
                    seed=seed,
                    cv_folds=3,
                )

            equivalent = equivalent and _ensembles_identical(
                make_small().fit(Xc, yc, fast=False),
                make_small().fit(Xc, yc),
                Xc,
            )
            cases_checked += 1

    extras = {
        "n_rows": float(len(X)),
        "n_draws": float(n_draws),
        "cv_folds": float(cv_folds),
        "cases_checked": float(cases_checked),
    }
    return PerfCase("training", n_draws, scalar, batch, equivalent, extras)


def collect_perf_report(
    fast: bool = False,
    repeats: int = 3,
    include_fleet: bool = True,
    include_streaming: bool = True,
    include_training: bool = True,
    stages: Sequence[str] | None = None,
) -> Dict[str, Any]:
    """Run every benchmark and assemble the machine-readable report.

    Work sizes are deliberately identical in fast and full mode — only the
    repeat count (and the fleet size) changes — so a fast-mode fresh report
    is directly comparable to the committed full-mode baseline.

    Args:
        fast: CI smoke scale — single repeat, a smaller fleet and a
            smaller stream population.
        repeats: Best-of repeats per timed path (forced to 1 in fast mode).
        include_fleet: Whether to run the (slower, machine-dependent)
            fleet sweep comparison.
        include_streaming: Whether to run the (scalar-twin-bound)
            multi-stream ingestion comparison.
        include_training: Whether to run the (reference-SMO-bound, by far
            the slowest full-mode stage) subspace training comparison.
        stages: Optional subset of :data:`ALL_STAGES` to run (``None``
            runs them all).  Subset reports time faster but only carry
            the selected tracked metrics, so they serve smoke checks —
            the committed baseline is always a full report.

    Returns:
        JSON-ready report dictionary (see ``docs/PERFORMANCE.md``).
    """
    if stages is not None:
        unknown = set(stages) - set(ALL_STAGES)
        if unknown:
            raise ConfigurationError(
                f"unknown perf stages {sorted(unknown)}; available: {ALL_STAGES}"
            )

    def wanted(name: str) -> bool:
        return stages is None or name in stages

    repeats = 1 if fast else repeats
    cases: List[PerfCase] = []
    if wanted("extraction"):
        cases.append(bench_extraction(n_segments=256, repeats=repeats))
    if wanted("dwt"):
        cases.append(bench_dwt(n_segments=512, repeats=repeats))
    if wanted("inference"):
        cases.append(bench_inference(n_events=256, repeats=repeats))
    if wanted("end_to_end"):
        cases.append(bench_end_to_end(n_events=256, repeats=repeats))
    if wanted("generator"):
        cases.append(bench_generator(n_limits=6, repeats=repeats))
    if wanted("wire"):
        cases.append(bench_wire(n_payloads=512, repeats=repeats))
    if include_fleet and wanted("fleet"):
        cases.append(
            bench_fleet(
                n_networks=256 if fast else 1250,
                devices_per_network=8,
                n_rounds=4,
                repeats=1,
            )
        )
    if include_streaming and wanted("streaming"):
        cases.append(
            bench_streaming(
                n_streams=256 if fast else 1024,
                n_ticks=8,
                tick_samples=32,
                # Best-of-3 even in fast mode: the twin-vs-SoA ratio at
                # one repeat is noisy enough (~4-13x observed) to graze
                # the >= 8x acceptance floor and the CI gate cutoff on a
                # busy machine, and the whole stage times in ~1 s.
                repeats=3,
            )
        )
    if include_training and wanted("training"):
        cases.append(
            bench_training(
                n_segments=200,
                # Paper scale (100 draws x 10-fold CV) costs the reference
                # path minutes; fast mode trims the draw count, keeping
                # the per-draw work — and therefore the ratio — intact.
                n_draws=6 if fast else 100,
                cv_folds=10,
                repeats=1,
                check_all_cases=not fast,
            )
        )

    metrics: Dict[str, float] = {}
    for case in cases:
        metrics[f"{case.name}.speedup"] = case.speedup
        metrics[f"{case.name}.scalar_per_s"] = case.scalar_per_s
        metrics[f"{case.name}.batch_per_s"] = case.batch_per_s
        for key, value in case.extras.items():
            metrics[f"{case.name}.{key}"] = value
    tracked = [name for name in TRACKED_METRICS if name in metrics]
    return {
        "schema": SCHEMA,
        "fast_mode": bool(fast),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "cases": {case.name: case.as_dict() for case in cases},
        "metrics": metrics,
        "tracked": tracked,
        "gate": {
            name: round(metrics[name] * GATE_MARGIN, 2) for name in tracked
        },
        "gate_margin": GATE_MARGIN,
    }


def write_perf_report(report: Dict[str, Any], path: str | Path) -> Path:
    """Serialise a perf report to pretty-printed JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target


def load_perf_report(path: str | Path) -> Dict[str, Any]:
    """Load a perf report, validating the schema marker."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"{path}: unknown perf report schema {data.get('schema')!r}"
        )
    return data


def compare_reports(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """The regression gate: fresh tracked metrics vs the committed baseline.

    A tracked metric regresses when it falls below the baseline's gate
    value (its measurement times :data:`GATE_MARGIN`) minus the threshold:
    ``gate * (1 - threshold)``.  Improvements never fail the gate.

    Args:
        fresh: Report measured by the current build.
        baseline: The committed baseline report.
        threshold: Allowed fractional regression (default 25%).

    Returns:
        Human-readable failure descriptions; empty when the gate is green.
    """
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError("threshold must be in (0, 1)")
    failures: List[str] = []
    fresh_metrics = fresh.get("metrics", {})
    gate_values = baseline.get("gate", {})
    for name in baseline.get("tracked", []):
        base_value = gate_values.get(name, baseline["metrics"][name])
        fresh_value = fresh_metrics.get(name)
        if fresh_value is None:
            failures.append(f"{name}: missing from the fresh report")
            continue
        floor = base_value * (1.0 - threshold)
        if fresh_value < floor:
            failures.append(
                f"{name}: {fresh_value:.2f} < {floor:.2f} "
                f"(baseline {base_value:.2f}, -{threshold:.0%} allowed)"
            )
    for case_name, case in fresh.get("cases", {}).items():
        if not case.get("equivalent", True):
            failures.append(
                f"{case_name}: scalar and batch paths disagreed on this run"
            )
    return failures


def check_regression(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> None:
    """Raise :class:`PerfRegressionError` when :func:`compare_reports` fails."""
    failures = compare_reports(fresh, baseline, threshold)
    if failures:
        raise PerfRegressionError(
            "perf regression gate failed:\n  " + "\n  ".join(failures)
        )


def perf_rows(report: Dict[str, Any]) -> List[Dict[str, object]]:
    """Result rows of one report for :func:`repro.eval.tables.format_table`."""
    rows: List[Dict[str, object]] = []
    for name, case in report["cases"].items():
        rows.append(
            {
                "stage": name,
                "items": case["n_items"],
                "scalar/s": case["scalar_per_s"],
                "batch/s": case["batch_per_s"],
                "speedup": case["speedup"],
                "equivalent": "yes" if case["equivalent"] else "NO",
            }
        )
    return rows
