"""Programmatic reproduction-validation suite.

The benchmark modules assert the paper's qualitative claims; this module
exposes the same checks as a callable API so a user can validate *their*
configuration (different datasets, calibration, radios) without running
pytest: ``python -m repro validate`` or :func:`validate_reproduction`.

Only scale-independent claims are checked — orderings, never-worse
guarantees, structural invariants — so the suite passes at any honest
harness size.  Quantitative factor bands (2.4x etc.) remain the benchmark
suite's job at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cells.library import characterize_all_modules
from repro.eval.context import ExperimentContext
from repro.hw.energy import ALUMode


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of checking one claim.

    Attributes:
        claim: Short statement of the paper claim.
        passed: Whether the check held.
        detail: Measured evidence (or the violation).
    """

    claim: str
    passed: bool
    detail: str


def _check(claim: str, passed: bool, detail: str) -> ClaimResult:
    return ClaimResult(claim=claim, passed=bool(passed), detail=detail)


def validate_reproduction(
    context: ExperimentContext,
    node: str = "90nm",
    wireless: str = "model2",
) -> List[ClaimResult]:
    """Run every scale-independent claim check; returns all results.

    Args:
        context: Experiment context (any harness scale).
        node: Process node for the single-configuration checks.
        wireless: Transceiver model for the single-configuration checks.
    """
    results: List[ClaimResult] = []

    # -- Fig. 4: ALU-mode optima ------------------------------------------------
    rows = {c.module: c for c in characterize_all_modules(context.energy_library(node))}
    serial_modules = [
        m for m in ("max", "min", "mean", "var", "czero", "skew", "kurt", "svm", "fusion")
        if rows[m].best_mode is ALUMode.SERIAL
    ]
    results.append(_check(
        "serial is the optimal ALU mode for the simple modules (Fig. 4)",
        len(serial_modules) == 9,
        f"{len(serial_modules)}/9 modules serial-optimal",
    ))
    results.append(_check(
        "Std and DWT prefer the pipeline mode (Fig. 4)",
        rows["std"].best_mode is ALUMode.PIPELINE
        and rows["dwt"].best_mode is ALUMode.PIPELINE,
        f"std={rows['std'].best_mode.value}, dwt={rows['dwt'].best_mode.value}",
    ))
    dwt = rows["dwt"]
    ratio = dwt.per_mode[ALUMode.PARALLEL] / dwt.per_mode[ALUMode.SERIAL]
    results.append(_check(
        "parallel DWT costs orders of magnitude more than serial (Fig. 4)",
        ratio > 10,
        f"parallel/serial = {ratio:.1f}x",
    ))

    # -- per-case cut quality --------------------------------------------------
    for symbol in context.all_cases():
        metrics = context.strategy_metrics(symbol, node, wireless)
        cross = metrics["cross"]
        limit = min(
            metrics["sensor"].delay_total_s, metrics["aggregator"].delay_total_s
        ) * (1 + 1e-9)
        feasible = [
            m for m in (metrics["sensor"], metrics["aggregator"])
            if m.delay_total_s <= limit
        ]
        never_worse = all(
            cross.sensor_total_j <= m.sensor_total_j + 1e-15 for m in feasible
        )
        results.append(_check(
            f"{symbol}: cross-end never worse than feasible single ends (§3.2)",
            never_worse,
            f"cross {cross.sensor_total_j * 1e6:.3f} uJ vs "
            + ", ".join(f"{m.sensor_total_j * 1e6:.3f}" for m in feasible),
        ))
        results.append(_check(
            f"{symbol}: cross-end meets the Eq. 4 delay limit",
            cross.delay_total_s <= limit,
            f"{cross.delay_total_s * 1e3:.3f} ms <= {limit * 1e3:.3f} ms",
        ))

    # -- Fig. 9 ordering flip ----------------------------------------------------
    symbol = context.all_cases()[2]  # an EEG case (compute-heavy)
    m1 = context.strategy_metrics(symbol, node, "model1")
    m3 = context.strategy_metrics(symbol, node, "model3")
    results.append(_check(
        "expensive radio favours the sensor engine (Fig. 9, Model 1)",
        m1["sensor"].sensor_total_j < m1["aggregator"].sensor_total_j,
        f"S {m1['sensor'].sensor_total_j * 1e6:.3f} uJ vs "
        f"A {m1['aggregator'].sensor_total_j * 1e6:.3f} uJ",
    ))
    # The Model-3 reversal presupposes realistic compute weight: the
    # in-sensor engine must cost more than streaming raw data over the
    # ultra-cheap radio.  Tiny test harnesses (few-member ensembles) can
    # sit below that floor; the claim is then vacuous, not violated.
    flip_applicable = (
        m3["sensor"].sensor_compute_j > m3["aggregator"].sensor_total_j
    )
    results.append(_check(
        "cheap radio reverses the ordering (Fig. 9, Model 3)",
        (m3["aggregator"].sensor_total_j < m3["sensor"].sensor_total_j)
        if flip_applicable
        else True,
        (
            f"A {m3['aggregator'].sensor_total_j * 1e6:.3f} uJ vs "
            f"S {m3['sensor'].sensor_total_j * 1e6:.3f} uJ"
            if flip_applicable
            else "not applicable at this harness scale (in-sensor compute "
            "below the Model-3 raw-streaming floor)"
        ),
    ))

    # -- Fig. 10 structure ----------------------------------------------------------
    d = context.strategy_metrics(symbol, node, wireless)
    results.append(_check(
        "aggregator engine's delay is wireless-dominated (Fig. 10)",
        d["aggregator"].delay_link_s > d["aggregator"].delay_back_s
        and d["aggregator"].delay_front_s == 0.0,
        f"link {d['aggregator'].delay_link_s * 1e3:.3f} ms, "
        f"back {d['aggregator'].delay_back_s * 1e3:.3f} ms",
    ))
    results.append(_check(
        "sensor engine's uplink is result-only (Fig. 10/11)",
        d["sensor"].crossing_bits_up <= 16 + 8,
        f"{d['sensor'].crossing_bits_up} bits up per event",
    ))

    return results


def summarize(results: List[ClaimResult]) -> str:
    """Render the claim results as a pass/fail table."""
    lines = ["reproduction validation:"]
    for result in results:
        mark = "PASS" if result.passed else "FAIL"
        lines.append(f"  [{mark}] {result.claim}")
        lines.append(f"         {result.detail}")
    n_pass = sum(r.passed for r in results)
    lines.append(f"{n_pass}/{len(results)} claims hold")
    return "\n".join(lines)
